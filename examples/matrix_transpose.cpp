// Distributed matrix transpose via the index operation — the motivating
// application of Section 1.1.  An N×N matrix of doubles is row-block
// distributed over n simulated processors; transposing it is ONE strided-
// layout alltoall (no pack loop, no staging buffer) plus the in-place R×R
// transpose of each landed tile — the element reorder a monotone datatype
// cannot carry.  Verified against a serial transpose; timed against the
// user-side staging idiom the layouts replace.
#include <cstdint>
#include <iostream>
#include <utility>
#include <vector>

#include "coll/api.hpp"
#include "coll/layout.hpp"
#include "model/linear_model.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using Matrix = std::vector<double>;  // row-major N×N
constexpr std::int64_t kD = static_cast<std::int64_t>(sizeof(double));

Matrix make_matrix(std::int64_t n_dim) {
  Matrix m(static_cast<std::size_t>(n_dim * n_dim));
  for (std::int64_t i = 0; i < n_dim * n_dim; ++i)
    m[static_cast<std::size_t>(i)] = static_cast<double>(i / n_dim) * 1000.0 +
                                     static_cast<double>(i % n_dim);
  return m;
}

Matrix transpose_serial(const Matrix& a, std::int64_t n_dim) {
  Matrix t(a.size());
  for (std::int64_t i = 0; i < n_dim * n_dim; ++i)
    t[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>((i % n_dim) * n_dim + i / n_dim)];
  return t;
}

/// Both sides of the exchange: tile j of a rows×N slab is the rows×rows
/// square at columns [j·rows, (j+1)·rows) — `rows` pieces of rows·8 bytes,
/// N·8 apart; consecutive tiles interleave 8·rows bytes apart.
bruck::coll::Layout tile_layout(std::int64_t n_dim, std::int64_t rows) {
  return bruck::coll::Layout::vector(rows, rows * kD, n_dim * kD)
      .with_block_stride(rows * kD);
}

/// In-place transpose of the rows×rows tile at column `col0` of a slab —
/// the per-tile element reorder the wire cannot carry.
void transpose_tile_inplace(double* slab, std::int64_t n_dim,
                            std::int64_t rows, std::int64_t col0) {
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = r + 1; c < rows; ++c)
      std::swap(slab[r * n_dim + col0 + c], slab[c * n_dim + col0 + r]);
  }
}

/// One layout alltoall per rank plus per-tile in-place transposes; `staged`
/// runs the replaced gather/alltoall/scatter idiom instead.
std::shared_ptr<bruck::mps::Trace> distributed_transpose(
    const Matrix& a, Matrix& out, std::int64_t n_dim, std::int64_t n_ranks,
    std::int64_t radix, bool staged) {
  const std::int64_t rows = n_dim / n_ranks;
  const bruck::coll::Layout lay = tile_layout(n_dim, rows);
  bruck::coll::AlltoallOptions options;
  options.algorithm = bruck::coll::IndexAlgorithm::kBruck;
  options.radix = radix;
  const std::size_t slab = static_cast<std::size_t>(rows * n_dim);
  return bruck::mps::run_spmd(n_ranks, 1, [&](bruck::mps::Communicator& comm) {
           const std::int64_t rank = comm.rank();
           double* my_out = out.data() + rank * rows * n_dim;
           const auto send = std::as_bytes(
               std::span(a).subspan(static_cast<std::size_t>(rank) * slab,
                                    slab));
           const auto recv = std::as_writable_bytes(std::span(my_out, slab));
           if (staged)
             bruck::coll::alltoall_staged(comm, send, recv, lay, lay, options);
           else
             bruck::coll::alltoall(comm, send, recv, lay, lay, options);
           for (std::int64_t i = 0; i < n_ranks; ++i) {
             transpose_tile_inplace(my_out, n_dim, rows, i * rows);
           }
         }).trace;
}

/// Best-of-3 wall clock of one full (verified) transpose, in milliseconds.
double best_ms(const Matrix& a, const Matrix& want, std::int64_t n_dim,
               std::int64_t n_ranks, bool staged) {
  return bruck::best_of_ms(3, [&] {
    Matrix out(a.size());
    distributed_transpose(a, out, n_dim, n_ranks, 2, staged);
    BRUCK_REQUIRE_MSG(out == want, "transpose result mismatch");
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n_ranks = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t n_dim = argc > 2 ? std::atoll(argv[2]) : 512;
  BRUCK_REQUIRE_MSG(n_dim % n_ranks == 0,
                    "matrix dimension must be divisible by the rank count");
  std::cout << "distributed transpose of a " << n_dim << "x" << n_dim
            << " matrix over " << n_ranks << " simulated processors\n"
            << "tile datatype (both sides): "
            << tile_layout(n_dim, n_dim / n_ranks).describe() << "\n\n";

  const Matrix a = make_matrix(n_dim);
  const Matrix want = transpose_serial(a, n_dim);
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();

  bruck::TextTable t({"radix", "C1 (rounds)", "C2 (bytes)", "total bytes",
                      "modeled us (SP-1)"});
  for (const std::int64_t radix : {std::int64_t{2}, std::int64_t{4}, n_ranks}) {
    if (radix > n_ranks) continue;
    Matrix out(a.size());
    const auto trace =
        distributed_transpose(a, out, n_dim, n_ranks, radix, /*staged=*/false);
    BRUCK_REQUIRE_MSG(out == want, "transpose result mismatch");
    const bruck::model::CostMetrics m = trace->metrics();
    t.add(radix, m.c1, m.c2, m.total_bytes, sp1.predict_us(m));
  }
  t.print(std::cout);

  const double staged_ms = best_ms(a, want, n_dim, n_ranks, /*staged=*/true);
  const double zero_ms = best_ms(a, want, n_dim, n_ranks, /*staged=*/false);
  std::cout << "\nstaged pack/unpack: " << staged_ms
            << " ms, zero-copy layout alltoall: " << zero_ms << " ms ("
            << staged_ms / zero_ms << "x)\n"
            << "all radices produced the exact serial transpose; "
               "r = 2 minimizes rounds, r = n minimizes bytes\n";
  return 0;
}
