// Distributed matrix transpose via the index operation — the motivating
// application of Section 1.1 ("the index operation can be used for computing
// the transpose of a matrix, when the matrix is partitioned into blocks of
// rows ... with different blocks residing on different processors").
//
// An N×N matrix of doubles is row-block distributed over n simulated
// processors (N/n rows each).  Transposing it is exactly one index
// operation: the (i, j) tile of the row-block decomposition swaps with the
// (j, i) tile.  The example runs the transpose with both the C1-optimal
// (r = 2) and C2-optimal (r = n) radices, verifies the result element-wise
// against a serial transpose, and reports the measured round/volume
// trade-off — the paper's Table-less core claim, on a real workload.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <vector>

#include "coll/index_bruck.hpp"
#include "model/linear_model.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using Matrix = std::vector<double>;  // row-major N×N

Matrix make_matrix(std::int64_t n_dim) {
  Matrix m(static_cast<std::size_t>(n_dim * n_dim));
  for (std::int64_t r = 0; r < n_dim; ++r) {
    for (std::int64_t c = 0; c < n_dim; ++c) {
      m[static_cast<std::size_t>(r * n_dim + c)] =
          static_cast<double>(r) * 1000.0 + static_cast<double>(c);
    }
  }
  return m;
}

/// Serial reference.
Matrix transpose_serial(const Matrix& a, std::int64_t n_dim) {
  Matrix t(a.size());
  for (std::int64_t r = 0; r < n_dim; ++r) {
    for (std::int64_t c = 0; c < n_dim; ++c) {
      t[static_cast<std::size_t>(c * n_dim + r)] =
          a[static_cast<std::size_t>(r * n_dim + c)];
    }
  }
  return t;
}

/// Distributed transpose of a row-block distributed matrix.
///
/// Each rank owns `rows = N/n` consecutive rows.  Step 1 packs the local
/// rows into n tiles (tile j = the rows×rows square destined for rank j) —
/// this is the "outmsg" layout of the index operation.  Step 2 is the index
/// operation itself.  Step 3 transposes each received rows×rows tile
/// locally into the output rows.
struct TransposeResult {
  std::shared_ptr<bruck::mps::Trace> trace;
  Matrix out;  // gathered result (for verification)
};

TransposeResult distributed_transpose(const Matrix& a, std::int64_t n_dim,
                                      std::int64_t n_ranks,
                                      std::int64_t radix) {
  BRUCK_REQUIRE_MSG(n_dim % n_ranks == 0,
                    "matrix dimension must be divisible by the rank count");
  const std::int64_t rows = n_dim / n_ranks;
  const std::int64_t tile_doubles = rows * rows;
  const std::int64_t tile_bytes =
      tile_doubles * static_cast<std::int64_t>(sizeof(double));

  Matrix out(a.size());
  bruck::mps::RunResult rr = bruck::mps::run_spmd(
      n_ranks, 1, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        const double* my_rows = a.data() + rank * rows * n_dim;

        // Pack: tile j, in row-major order of the local square.
        std::vector<std::byte> send(
            static_cast<std::size_t>(n_ranks * tile_bytes));
        for (std::int64_t j = 0; j < n_ranks; ++j) {
          double* tile = reinterpret_cast<double*>(send.data() + j * tile_bytes);
          for (std::int64_t r = 0; r < rows; ++r) {
            std::memcpy(tile + r * rows, my_rows + r * n_dim + j * rows,
                        static_cast<std::size_t>(rows) * sizeof(double));
          }
        }

        // Exchange tile (me, j) with tile (j, me).
        std::vector<std::byte> recv(send.size());
        bruck::coll::index_bruck(comm, send, recv, tile_bytes,
                                 bruck::coll::IndexBruckOptions{radix, 0});

        // Unpack: received tile i is the transpose-source square from rank
        // i; transpose it locally into my output rows.
        double* my_out = out.data() + rank * rows * n_dim;
        for (std::int64_t i = 0; i < n_ranks; ++i) {
          const double* tile =
              reinterpret_cast<const double*>(recv.data() + i * tile_bytes);
          for (std::int64_t r = 0; r < rows; ++r) {
            for (std::int64_t c = 0; c < rows; ++c) {
              my_out[c * n_dim + i * rows + r] = tile[r * rows + c];
            }
          }
        }
      });
  return TransposeResult{rr.trace, std::move(out)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n_ranks = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t n_dim = argc > 2 ? std::atoll(argv[2]) : 256;
  std::cout << "distributed transpose of a " << n_dim << "x" << n_dim
            << " matrix over " << n_ranks << " simulated processors\n\n";

  const Matrix a = make_matrix(n_dim);
  const Matrix want = transpose_serial(a, n_dim);
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();

  bruck::TextTable t({"radix", "C1 (rounds)", "C2 (bytes)", "total bytes",
                      "modeled us (SP-1)"});
  for (const std::int64_t radix : {std::int64_t{2}, std::int64_t{4}, n_ranks}) {
    if (radix > n_ranks) continue;
    const TransposeResult result =
        distributed_transpose(a, n_dim, n_ranks, radix);
    BRUCK_REQUIRE_MSG(result.out == want, "transpose result mismatch");
    const bruck::model::CostMetrics m = result.trace->metrics();
    t.add(radix, m.c1, m.c2, m.total_bytes, sp1.predict_us(m));
  }
  t.print(std::cout);
  std::cout << "\nall radices produced the exact serial transpose; "
               "r = 2 minimizes rounds, r = n minimizes bytes\n";
  return 0;
}
