// Two-dimensional FFT with a transpose-based decomposition — the Section 1.1
// application "the index operation is also used in FFT algorithms".  The N×N
// complex grid is row-block distributed; each of the two transposes is one
// zero-copy strided-layout alltoall (no pack or unpack buffer) plus the
// in-place R×R transpose of each landed tile — the element reorder a
// monotone datatype cannot carry.  Checked against a serial 2-D FFT forward
// and round trip; timed against the staged idiom it replaced.
#include <cmath>
#include <complex>
#include <cstdint>
#include <iostream>
#include <numbers>
#include <utility>
#include <vector>

#include "coll/api.hpp"
#include "coll/layout.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using Complex = std::complex<double>;
using Field = std::vector<Complex>;  // row-major N×N

// Serial radix-2 Cooley–Tukey FFT (power-of-two length), in place.
void fft_inplace(Complex* data, std::int64_t len, bool inverse) {
  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < len; ++i) {
    std::int64_t bit = len >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::int64_t half = 1; half < len; half <<= 1) {
    const double angle = (inverse ? 1.0 : -1.0) * std::numbers::pi /
                         static_cast<double>(half);
    const Complex step(std::cos(angle), std::sin(angle));
    for (std::int64_t base = 0; base < len; base += 2 * half) {
      Complex w(1.0, 0.0);
      for (std::int64_t off = 0; off < half; ++off) {
        const Complex even = data[base + off];
        const Complex odd = data[base + half + off] * w;
        data[base + off] = even + odd;
        data[base + half + off] = even - odd;
        w *= step;
      }
    }
  }
  if (inverse) {
    for (std::int64_t i = 0; i < len; ++i) data[i] /= static_cast<double>(len);
  }
}

Field fft2d_serial(Field field, std::int64_t n_dim, bool inverse) {
  // FFT rows, transpose — twice: columns get FFT'd and the grid lands back.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::int64_t r = 0; r < n_dim; ++r)
      fft_inplace(field.data() + r * n_dim, n_dim, inverse);
    Field t(field.size());
    for (std::int64_t i = 0; i < n_dim * n_dim; ++i) {
      t[static_cast<std::size_t>(i)] =
          field[static_cast<std::size_t>((i % n_dim) * n_dim + i / n_dim)];
    }
    field = std::move(t);
  }
  return field;
}

constexpr std::int64_t kC = static_cast<std::int64_t>(sizeof(Complex));

/// The column-tile datatype of a rows×N row-major slab (both sides of the
/// exchange): `rows` pieces of rows·16 bytes, N·16 apart, tiles interleaved.
bruck::coll::Layout tile_layout(std::int64_t n_dim, std::int64_t rows) {
  return bruck::coll::Layout::vector(rows, rows * kC, n_dim * kC)
      .with_block_stride(rows * kC);
}

/// In-place transpose of the rows×rows tile at column `col0` of a slab.
void transpose_tile_inplace(Complex* slab, std::int64_t n_dim,
                            std::int64_t rows, std::int64_t col0) {
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = r + 1; c < rows; ++c)
      std::swap(slab[r * n_dim + col0 + c], slab[c * n_dim + col0 + r]);
  }
}

/// Index-operation transpose of a row-block distributed complex field: one
/// zero-copy layout alltoall plus the per-tile in-place element transpose.
/// `staged` runs the replaced gather/alltoall/scatter idiom instead.
void transpose_step(bruck::mps::Communicator& comm, Field& local,
                    std::int64_t n_dim, std::int64_t n_ranks,
                    std::int64_t radix, int* round, bool staged) {
  const std::int64_t rows = n_dim / n_ranks;
  const bruck::coll::Layout lay = tile_layout(n_dim, rows);

  bruck::coll::AlltoallOptions options;
  options.algorithm = bruck::coll::IndexAlgorithm::kBruck;
  options.radix = radix;
  options.start_round = *round;

  Field next(local.size());
  const auto send = std::as_bytes(std::span(local));
  const auto recv = std::as_writable_bytes(std::span(next));
  *round = staged
               ? bruck::coll::alltoall_staged(comm, send, recv, lay, lay,
                                              options)
               : bruck::coll::alltoall(comm, send, recv, lay, lay, options);
  for (std::int64_t i = 0; i < n_ranks; ++i) {
    transpose_tile_inplace(next.data(), n_dim, rows, i * rows);
  }
  local = std::move(next);
}

/// Full distributed 2-D FFT over a shared input; writes the result back
/// into `field` and returns the communication trace.
std::shared_ptr<bruck::mps::Trace> fft2d_distributed(
    Field& field, std::int64_t n_dim, std::int64_t n_ranks,
    std::int64_t radix, bool inverse, bool staged = false) {
  const std::int64_t rows = n_dim / n_ranks;
  Field out(field.size());
  bruck::mps::RunResult rr = bruck::mps::run_spmd(
      n_ranks, 1, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        Field local(field.begin() + rank * rows * n_dim,
                    field.begin() + (rank + 1) * rows * n_dim);
        int round = 0;
        for (int pass = 0; pass < 2; ++pass) {
          for (std::int64_t r = 0; r < rows; ++r)
            fft_inplace(local.data() + r * n_dim, n_dim, inverse);
          transpose_step(comm, local, n_dim, n_ranks, radix, &round, staged);
        }
        std::copy(local.begin(), local.end(),
                  out.begin() + rank * rows * n_dim);
      });
  field = std::move(out);
  return rr.trace;
}

// A few superposed plane waves plus a deterministic "noise" term.
Field make_field(std::int64_t n_dim) {
  Field f(static_cast<std::size_t>(n_dim * n_dim));
  const double s = 1.0 / static_cast<double>(n_dim);
  for (std::int64_t i = 0; i < n_dim * n_dim; ++i) {
    const double x = static_cast<double>(i % n_dim) * s;
    const double y = static_cast<double>(i / n_dim) * s;
    f[static_cast<std::size_t>(i)] =
        Complex(std::sin(2 * std::numbers::pi * 3 * x) +
                    0.5 * std::cos(2 * std::numbers::pi * 5 * y),
                0.25 * std::sin(2 * std::numbers::pi * (2 * x + 7 * y)));
  }
  return f;
}

double max_abs_diff(const Field& a, const Field& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n_ranks = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t n_dim = argc > 2 ? std::atoll(argv[2]) : 128;
  BRUCK_REQUIRE_MSG((n_dim & (n_dim - 1)) == 0, "grid must be a power of two");
  BRUCK_REQUIRE_MSG(n_dim % n_ranks == 0, "grid must divide over ranks");
  const double tol = 1e-9 * static_cast<double>(n_dim);

  std::cout << "2-D FFT of a " << n_dim << "x" << n_dim << " grid over "
            << n_ranks << " simulated processors (transpose algorithm)\n\n";

  const Field original = make_field(n_dim);
  const Field want = fft2d_serial(original, n_dim, /*inverse=*/false);

  bruck::TextTable t({"radix", "C1 (rounds)", "C2 (bytes)", "total bytes",
                      "fwd max |err|"});
  for (const std::int64_t radix : {std::int64_t{2}, n_ranks}) {
    Field field = original;
    const auto trace =
        fft2d_distributed(field, n_dim, n_ranks, radix, /*inverse=*/false);
    const double err = max_abs_diff(field, want);
    BRUCK_REQUIRE_MSG(err < tol,
                      "distributed FFT diverged from the serial reference");
    const bruck::model::CostMetrics m = trace->metrics();
    t.add(radix, m.c1, m.c2, m.total_bytes, err);

    // Round trip: inverse transform must recover the input.
    fft2d_distributed(field, n_dim, n_ranks, radix, /*inverse=*/true);
    BRUCK_REQUIRE_MSG(max_abs_diff(field, original) < tol,
                      "inverse FFT failed to recover the input");
  }
  t.print(std::cout);

  // Staged vs zero-copy wall clock on the full forward transform (best of
  // 3 each; identical wire traffic, the difference is local staging).
  const auto best = [&](bool staged) {
    return bruck::best_of_ms(3, [&] {
      Field f = original;
      fft2d_distributed(f, n_dim, n_ranks, 2, /*inverse=*/false, staged);
      BRUCK_REQUIRE_MSG(max_abs_diff(f, want) < tol,
                        "timed transform diverged");
    });
  };
  const double staged_ms = best(true);
  const double zero_ms = best(false);
  std::cout << "\nstaged transposes: " << staged_ms
            << " ms, zero-copy layout transposes: " << zero_ms << " ms ("
            << staged_ms / zero_ms << "x, FFT compute included)\n"
            << "forward transform matches the serial FFT and the inverse "
               "recovers the input for every radix\n";
  return 0;
}
