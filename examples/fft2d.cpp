// Two-dimensional FFT with a transpose-based decomposition — the Section 1.1
// application "the index operation is also used in FFT algorithms" /
// "the solution of Poisson's problem by ... the two-dimensional FFT method".
//
// The N×N complex grid is row-block distributed.  The classic transpose
// algorithm runs:  1-D FFTs along local rows  →  index-operation transpose
// →  1-D FFTs along (what used to be) columns  →  transpose back.
// The example computes a forward 2-D FFT of a synthetic field, checks it
// against a serial 2-D FFT, then inverts it and checks the round trip, and
// reports the communication measures of the two transposes.
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <numbers>
#include <vector>

#include "coll/index_bruck.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using Complex = std::complex<double>;
using Field = std::vector<Complex>;  // row-major N×N

// ---------------------------------------------------------------------------
// Serial radix-2 Cooley–Tukey FFT (power-of-two length), in place.
void fft_inplace(Complex* data, std::int64_t len, bool inverse) {
  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < len; ++i) {
    std::int64_t bit = len >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::int64_t half = 1; half < len; half <<= 1) {
    const double angle = (inverse ? 1.0 : -1.0) * std::numbers::pi /
                         static_cast<double>(half);
    const Complex step(std::cos(angle), std::sin(angle));
    for (std::int64_t base = 0; base < len; base += 2 * half) {
      Complex w(1.0, 0.0);
      for (std::int64_t off = 0; off < half; ++off) {
        const Complex even = data[base + off];
        const Complex odd = data[base + half + off] * w;
        data[base + off] = even + odd;
        data[base + half + off] = even - odd;
        w *= step;
      }
    }
  }
  if (inverse) {
    for (std::int64_t i = 0; i < len; ++i) {
      data[i] /= static_cast<double>(len);
    }
  }
}

Field fft2d_serial(Field field, std::int64_t n_dim, bool inverse) {
  for (std::int64_t r = 0; r < n_dim; ++r) {
    fft_inplace(field.data() + r * n_dim, n_dim, inverse);
  }
  // Transpose, FFT rows, transpose back == FFT columns.
  Field t(field.size());
  for (std::int64_t r = 0; r < n_dim; ++r) {
    for (std::int64_t c = 0; c < n_dim; ++c) {
      t[static_cast<std::size_t>(c * n_dim + r)] =
          field[static_cast<std::size_t>(r * n_dim + c)];
    }
  }
  for (std::int64_t r = 0; r < n_dim; ++r) {
    fft_inplace(t.data() + r * n_dim, n_dim, inverse);
  }
  Field out(field.size());
  for (std::int64_t r = 0; r < n_dim; ++r) {
    for (std::int64_t c = 0; c < n_dim; ++c) {
      out[static_cast<std::size_t>(c * n_dim + r)] =
          t[static_cast<std::size_t>(r * n_dim + c)];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Distributed pieces.

/// Index-operation transpose of a row-block distributed complex field
/// (the communication core of the 2-D FFT).  Appends trace metrics.
void transpose_step(bruck::mps::Communicator& comm, Field& local,
                    std::int64_t n_dim, std::int64_t n_ranks,
                    std::int64_t radix, int* round) {
  const std::int64_t rows = n_dim / n_ranks;
  const std::int64_t tile = rows * rows;
  const std::int64_t tile_bytes =
      tile * static_cast<std::int64_t>(sizeof(Complex));
  std::vector<std::byte> send(static_cast<std::size_t>(n_ranks * tile_bytes));
  for (std::int64_t j = 0; j < n_ranks; ++j) {
    Complex* out = reinterpret_cast<Complex*>(send.data() + j * tile_bytes);
    for (std::int64_t r = 0; r < rows; ++r) {
      // Transpose while packing so received tiles land row-major.
      for (std::int64_t c = 0; c < rows; ++c) {
        out[c * rows + r] = local[static_cast<std::size_t>(r * n_dim +
                                                           j * rows + c)];
      }
    }
  }
  std::vector<std::byte> recv(send.size());
  *round = bruck::coll::index_bruck(comm, send, recv, tile_bytes,
                                    bruck::coll::IndexBruckOptions{radix,
                                                                   *round});
  for (std::int64_t i = 0; i < n_ranks; ++i) {
    const Complex* in =
        reinterpret_cast<const Complex*>(recv.data() + i * tile_bytes);
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(local.data() + r * n_dim + i * rows, in + r * rows,
                  static_cast<std::size_t>(rows) * sizeof(Complex));
    }
  }
}

/// Full distributed 2-D FFT over a shared input; writes the result back
/// into `field` and returns the communication trace.
std::shared_ptr<bruck::mps::Trace> fft2d_distributed(Field& field,
                                                     std::int64_t n_dim,
                                                     std::int64_t n_ranks,
                                                     std::int64_t radix,
                                                     bool inverse) {
  const std::int64_t rows = n_dim / n_ranks;
  Field out(field.size());
  bruck::mps::RunResult rr = bruck::mps::run_spmd(
      n_ranks, 1, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        Field local(field.begin() + rank * rows * n_dim,
                    field.begin() + (rank + 1) * rows * n_dim);
        int round = 0;
        for (std::int64_t r = 0; r < rows; ++r) {
          fft_inplace(local.data() + r * n_dim, n_dim, inverse);
        }
        transpose_step(comm, local, n_dim, n_ranks, radix, &round);
        for (std::int64_t r = 0; r < rows; ++r) {
          fft_inplace(local.data() + r * n_dim, n_dim, inverse);
        }
        transpose_step(comm, local, n_dim, n_ranks, radix, &round);
        std::copy(local.begin(), local.end(),
                  out.begin() + rank * rows * n_dim);
      });
  field = std::move(out);
  return rr.trace;
}

Field make_field(std::int64_t n_dim) {
  Field f(static_cast<std::size_t>(n_dim * n_dim));
  for (std::int64_t r = 0; r < n_dim; ++r) {
    for (std::int64_t c = 0; c < n_dim; ++c) {
      const double x = static_cast<double>(c) / static_cast<double>(n_dim);
      const double y = static_cast<double>(r) / static_cast<double>(n_dim);
      // A few superposed plane waves plus a deterministic "noise" term.
      f[static_cast<std::size_t>(r * n_dim + c)] =
          Complex(std::sin(2 * std::numbers::pi * 3 * x) +
                      0.5 * std::cos(2 * std::numbers::pi * 5 * y),
                  0.25 * std::sin(2 * std::numbers::pi * (2 * x + 7 * y)));
    }
  }
  return f;
}

double max_abs_diff(const Field& a, const Field& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n_ranks = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t n_dim = argc > 2 ? std::atoll(argv[2]) : 128;
  BRUCK_REQUIRE_MSG((n_dim & (n_dim - 1)) == 0, "grid must be a power of two");
  BRUCK_REQUIRE_MSG(n_dim % n_ranks == 0, "grid must divide over ranks");

  std::cout << "2-D FFT of a " << n_dim << "x" << n_dim << " grid over "
            << n_ranks << " simulated processors (transpose algorithm)\n\n";

  const Field original = make_field(n_dim);
  const Field want = fft2d_serial(original, n_dim, /*inverse=*/false);

  bruck::TextTable t({"radix", "C1 (rounds)", "C2 (bytes)", "total bytes",
                      "fwd max |err|"});
  for (const std::int64_t radix : {std::int64_t{2}, n_ranks}) {
    Field field = original;
    const auto trace =
        fft2d_distributed(field, n_dim, n_ranks, radix, /*inverse=*/false);
    const double err = max_abs_diff(field, want);
    BRUCK_REQUIRE_MSG(err < 1e-9 * static_cast<double>(n_dim),
                      "distributed FFT diverged from the serial reference");
    const bruck::model::CostMetrics m = trace->metrics();
    t.add(radix, m.c1, m.c2, m.total_bytes, err);

    // Round trip: inverse transform must recover the input.
    fft2d_distributed(field, n_dim, n_ranks, radix, /*inverse=*/true);
    BRUCK_REQUIRE_MSG(max_abs_diff(field, original) <
                          1e-9 * static_cast<double>(n_dim),
                      "inverse FFT failed to recover the input");
  }
  t.print(std::cout);
  std::cout << "\nforward transform matches the serial FFT and the inverse "
               "recovers the input for every radix\n";
  return 0;
}
