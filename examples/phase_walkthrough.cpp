// Reproduces the paper's walk-through figures on n = 5 processors:
//
//  * Fig. 1: memory-processor configurations before/after the index
//    operation,
//  * Fig. 2: the three phases of the index algorithm,
//  * Fig. 3: the Phase-2 subphases for the C1-optimal radix r = 2,
//  * Fig. 9: the one-port concatenation, round by round.
//
// Blocks carry the paper's "ij" labels (block j of processor i) as 2-byte
// payloads so the printed grids can be compared against the figures
// directly.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "coll/concat_bruck.hpp"
#include "coll/index_bruck.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"

namespace {

constexpr std::int64_t kN = 5;
constexpr std::int64_t kB = 2;  // payload "ij": two ASCII characters

using Grid = std::vector<std::vector<std::string>>;  // [rank][slot]

std::vector<std::byte> label_block(std::int64_t i, std::int64_t j) {
  return {static_cast<std::byte>('0' + i), static_cast<std::byte>('0' + j)};
}

std::string read_label(std::span<const std::byte> block) {
  std::string s;
  for (std::byte v : block) s += static_cast<char>(v);
  return s;
}

void print_grid(const std::string& title, const Grid& grid) {
  std::cout << title << '\n';
  std::cout << "        ";
  for (std::int64_t p = 0; p < kN; ++p) std::cout << " P" << p << " ";
  std::cout << '\n';
  for (std::int64_t slot = 0; slot < kN; ++slot) {
    std::cout << "  slot " << slot << ' ';
    for (std::int64_t p = 0; p < kN; ++p) {
      std::cout << ' ' << grid[static_cast<std::size_t>(p)]
                             [static_cast<std::size_t>(slot)] << ' ';
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

/// Collect each rank's buffer labels into a printable grid.
Grid snapshot(const std::vector<std::vector<std::byte>>& buffers) {
  Grid grid(kN, std::vector<std::string>(kN));
  for (std::int64_t p = 0; p < kN; ++p) {
    for (std::int64_t slot = 0; slot < kN; ++slot) {
      grid[static_cast<std::size_t>(p)][static_cast<std::size_t>(slot)] =
          read_label(std::span<const std::byte>(
              buffers[static_cast<std::size_t>(p)].data() + slot * kB,
              static_cast<std::size_t>(kB)));
    }
  }
  return grid;
}

}  // namespace

int main() {
  std::cout << "== Figures 1-3: the index operation on five processors ==\n\n";

  // Initial configuration (left side of Fig. 1): B[i, j] at processor i,
  // slot j.
  std::vector<std::vector<std::byte>> send(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    for (std::int64_t j = 0; j < kN; ++j) {
      const auto block = label_block(i, j);
      send[static_cast<std::size_t>(i)].insert(
          send[static_cast<std::size_t>(i)].end(), block.begin(), block.end());
    }
  }
  print_grid("Fig. 1 (before): block j of processor i = \"ij\"",
             snapshot(send));

  // Run the index operation with r = 2 (the Fig. 3 configuration) and show
  // the final transposed configuration (right side of Fig. 1).
  std::vector<std::vector<std::byte>> recv(
      kN, std::vector<std::byte>(static_cast<std::size_t>(kN * kB)));
  bruck::mps::run_spmd(kN, 1, [&](bruck::mps::Communicator& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    bruck::coll::index_bruck(comm, send[rank], recv[rank], kB,
                             bruck::coll::IndexBruckOptions{2, 0});
  });
  print_grid("Fig. 1 (after): processor i holds B[0,i] .. B[4,i]",
             snapshot(recv));
  for (std::int64_t p = 0; p < kN; ++p) {
    for (std::int64_t s = 0; s < kN; ++s) {
      const std::string expect = std::string(1, static_cast<char>('0' + s)) +
                                 static_cast<char>('0' + p);
      BRUCK_REQUIRE_MSG(
          read_label(std::span<const std::byte>(
              recv[static_cast<std::size_t>(p)].data() + s * kB,
              static_cast<std::size_t>(kB))) == expect,
          "figure-1 final configuration mismatch");
    }
  }

  // Fig. 2's Phase 1, shown locally: rotate processor i's column i steps up.
  std::vector<std::vector<std::byte>> phase1(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    auto& buf = phase1[static_cast<std::size_t>(i)];
    buf.resize(static_cast<std::size_t>(kN * kB));
    for (std::int64_t slot = 0; slot < kN; ++slot) {
      const auto block = label_block(i, (slot + i) % kN);
      std::copy(block.begin(), block.end(), buf.begin() + slot * kB);
    }
  }
  print_grid("Fig. 2 Phase 1: column i rotated i steps upwards",
             snapshot(phase1));

  std::cout << "Fig. 3 note: with r = 2 the slot-id digits are binary, so\n"
               "Phase 2 runs ceil(log2 5) = 3 subphases; subphase x rotates\n"
               "the blocks whose bit x is set by 2^x processors.\n\n";

  std::cout << "== Figure 9: one-port concatenation on five processors ==\n\n";
  // Show each round's window growth for rank 0 (windows are translations at
  // the other ranks).
  std::vector<std::vector<std::byte>> cat_recv(
      kN, std::vector<std::byte>(static_cast<std::size_t>(kN)));
  bruck::mps::run_spmd(kN, 1, [&](bruck::mps::Communicator& comm) {
    const std::int64_t rank = comm.rank();
    const std::vector<std::byte> mine{static_cast<std::byte>('A' + rank)};
    bruck::coll::concat_bruck(comm, mine,
                              cat_recv[static_cast<std::size_t>(rank)], 1, {});
  });
  std::cout << "round 0: each node sends its window of 1 block to rank-1\n";
  std::cout << "round 1: windows of 2 blocks to rank-2\n";
  std::cout << "round 2: the last n2 = 1 block completes the concatenation\n\n";
  std::cout << "final buffers (every processor must read ABCDE):\n";
  for (std::int64_t p = 0; p < kN; ++p) {
    std::cout << "  P" << p << ": ";
    for (std::byte v : cat_recv[static_cast<std::size_t>(p)]) {
      std::cout << static_cast<char>(v);
    }
    std::cout << '\n';
    BRUCK_REQUIRE(read_label(cat_recv[static_cast<std::size_t>(p)]) ==
                  "ABCDE");
  }
  std::cout << "\nwalkthrough verified against the paper's figures\n";
  return 0;
}
