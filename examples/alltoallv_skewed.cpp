// Irregular all-to-all under a heavy-tailed size distribution.
//
//   $ ./alltoallv_skewed [n] [k] [heavy_every] [heavy_bytes]
//
// Real all-to-all traffic is rarely uniform: graph partitions, sparse
// matrices, and shuffle phases all produce a few heavy (source,
// destination) pairs on top of many tiny ones.  This example builds such a
// shape — most pairs send a handful of bytes, every `heavy_every`-th pair
// sends `heavy_bytes` — and runs it three ways through coll::alltoallv:
//
//   1. the vector tuner's pick (kAuto: direct vs Bruck from the shape's
//      total + heaviest-pair bytes),
//   2. forced Bruck (max-padded scratch, wire messages trimmed to true
//      sizes),
//   3. forced direct exchange,
//
// verifying every delivered byte and reading the executed C1/C2 off the
// trace each time — so you can watch what skew does to the trade-off.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "coll/api.hpp"
#include "model/linear_model.hpp"
#include "mps/runtime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::int64_t arg_or(char** argv, int argc, int i, std::int64_t fallback) {
  return argc > i ? std::atoll(argv[i]) : fallback;
}

/// Deterministic payload byte for pair (src → dst).
std::byte pair_byte(std::int64_t src, std::int64_t dst, std::size_t off) {
  return bruck::payload_byte(/*seed=*/2026, src, dst, off);
}

struct RunOutcome {
  std::string label;
  bruck::model::CostMetrics metrics;
  double wall_ms = 0.0;
  bool ok = false;
};

RunOutcome run_one(const std::string& label, std::int64_t n, int k,
                   const std::vector<std::int64_t>& counts,
                   const bruck::coll::AlltoallvOptions& options) {
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  bruck::mps::RunResult rr =
      bruck::mps::run_spmd(n, k, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        // Packed canonical layout: block j of the send buffer at the prefix
        // sum of this rank's matrix row (empty displs ⇒ the facade derives
        // exactly this layout).
        std::int64_t send_bytes = 0;
        std::int64_t recv_bytes = 0;
        for (std::int64_t j = 0; j < n; ++j) {
          send_bytes += counts[static_cast<std::size_t>(rank * n + j)];
          recv_bytes += counts[static_cast<std::size_t>(j * n + rank)];
        }
        std::vector<std::byte> send(static_cast<std::size_t>(send_bytes));
        std::vector<std::byte> recv(static_cast<std::size_t>(recv_bytes));
        std::int64_t pos = 0;
        for (std::int64_t j = 0; j < n; ++j) {
          const std::int64_t len =
              counts[static_cast<std::size_t>(rank * n + j)];
          for (std::int64_t o = 0; o < len; ++o) {
            send[static_cast<std::size_t>(pos + o)] =
                pair_byte(rank, j, static_cast<std::size_t>(o));
          }
          pos += len;
        }

        bruck::coll::alltoallv(comm, send, recv, counts, {}, {}, options);

        pos = 0;
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t len =
              counts[static_cast<std::size_t>(i * n + rank)];
          for (std::int64_t o = 0; o < len; ++o) {
            if (recv[static_cast<std::size_t>(pos + o)] !=
                pair_byte(i, rank, static_cast<std::size_t>(o))) {
              errors[static_cast<std::size_t>(rank)] =
                  "bad byte in block " + std::to_string(i) + " -> " +
                  std::to_string(rank);
              return;
            }
          }
          pos += len;
        }
      });
  RunOutcome out;
  out.label = label;
  out.metrics = rr.trace->metrics();
  out.wall_ms = rr.wall_seconds * 1e3;
  out.ok = true;
  for (const std::string& e : errors) {
    if (!e.empty()) {
      std::cerr << label << " verification FAILED: " << e << '\n';
      out.ok = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = arg_or(argv, argc, 1, 12);
  const int k = static_cast<int>(arg_or(argv, argc, 2, 2));
  const std::int64_t heavy_every = arg_or(argv, argc, 3, 9);
  const std::int64_t heavy_bytes = arg_or(argv, argc, 4, 8192);

  // Heavy-tailed shape: pair (i, j) sends 1-16 bytes, except every
  // heavy_every-th pair which sends heavy_bytes.
  bruck::SplitMix64 rng(7);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n * n));
  std::int64_t total = 0;
  std::int64_t heavy_pairs = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const bool heavy = (i * n + j) % heavy_every == 0;
      const std::int64_t c =
          heavy ? heavy_bytes
                : 1 + static_cast<std::int64_t>(rng.next_below(16));
      counts[static_cast<std::size_t>(i * n + j)] = c;
      total += c;
      if (heavy) ++heavy_pairs;
    }
  }
  std::cout << "alltoallv, heavy-tailed shape: n = " << n << ", k = " << k
            << "; " << heavy_pairs << "/" << n * n << " pairs carry "
            << heavy_bytes << " bytes, the rest 1-16; total " << total
            << " bytes\n\n";

  bruck::coll::AlltoallvOptions tuned;
  // Radix 2 is the fewest-rounds end of the trade-off: the heavy blocks
  // get forwarded log2(n) times, so skew punishes it visibly in C2.
  bruck::coll::AlltoallvOptions forced_bruck;
  forced_bruck.algorithm = bruck::coll::IndexAlgorithm::kBruck;
  forced_bruck.radix = 2;
  bruck::coll::AlltoallvOptions forced_direct;
  forced_direct.algorithm = bruck::coll::IndexAlgorithm::kDirect;

  const bruck::model::VectorIndexChoice pick = bruck::model::pick_indexv(
      n, k, total,
      *std::max_element(counts.begin(), counts.end()),
      bruck::model::ibm_sp1());
  std::cout << "vector tuner pick: "
            << (pick.direct ? "direct exchange"
                            : "bruck, r = " + std::to_string(pick.radix))
            << " (~" << pick.predicted_us << " us modeled on SP-1)\n\n";

  const std::vector<RunOutcome> outcomes{
      run_one("tuned (kAuto)", n, k, counts, tuned),
      run_one("bruck r=2 (padded+trimmed)", n, k, counts, forced_bruck),
      run_one("direct per-pair", n, k, counts, forced_direct),
  };

  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();
  bruck::TextTable t({"algorithm", "C1 (rounds)", "C2 (bytes)", "total bytes",
                      "modeled us (SP-1)", "wall ms (here)"});
  for (const RunOutcome& o : outcomes) {
    if (!o.ok) return 1;
    t.add(o.label, o.metrics.c1, o.metrics.c2, o.metrics.total_bytes,
          sp1.predict_us(o.metrics), o.wall_ms);
  }
  t.print(std::cout);
  std::cout << "\nall three verified: every irregular block reached the "
               "right processor with the right contents\n";
  return 0;
}
