// Quickstart: run the two collectives of the paper on a simulated 8-node
// multiport machine and print what moved.
//
//   $ ./quickstart [n] [k] [block_bytes]
//
// Walks through:
//   1. launching an SPMD region on the in-process substrate,
//   2. the index operation (MPI_Alltoall) with an auto-tuned radix,
//   3. the concatenation operation (MPI_Allgather),
//   4. reading the executed C1/C2 measures off the trace and pricing them
//      under the paper's SP-1 linear model.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "coll/api.hpp"
#include "coll/verify.hpp"
#include "model/linear_model.hpp"
#include "mps/runtime.hpp"
#include "util/table.hpp"

namespace {

std::int64_t arg_or(char** argv, int argc, int i, std::int64_t fallback) {
  return argc > i ? std::atoll(argv[i]) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = arg_or(argv, argc, 1, 8);
  const int k = static_cast<int>(arg_or(argv, argc, 2, 1));
  const std::int64_t b = arg_or(argv, argc, 3, 64);
  const std::uint64_t seed = 2026;

  std::cout << "bruckcl quickstart: n = " << n << " processors, k = " << k
            << " ports, blocks of " << b << " bytes\n\n";

  // ------------------------------------------------------------------
  // What would the library pick for this machine?  (Section 3.3 tuning.)
  const bruck::coll::AlltoallPlan plan =
      bruck::coll::plan_alltoall(n, k, b, {});
  std::cout << "alltoall plan: algorithm = "
            << bruck::coll::to_string(plan.algorithm)
            << ", radix = " << plan.radix << ", predicted C1 = "
            << plan.predicted.c1 << " rounds, C2 = " << plan.predicted.c2
            << " bytes, ~" << plan.predicted_us << " us on the SP-1 model\n\n";

  // ------------------------------------------------------------------
  // Index operation (all-to-all personalized communication).
  std::vector<std::string> errors(static_cast<std::size_t>(n));
  bruck::mps::RunResult index_run =
      bruck::mps::run_spmd(n, k, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        std::vector<std::byte> send(static_cast<std::size_t>(n * b));
        std::vector<std::byte> recv(send.size());
        bruck::coll::fill_index_send(send, n, rank, b, seed);
        bruck::coll::alltoall(comm, send, recv, b);
        errors[static_cast<std::size_t>(rank)] =
            bruck::coll::check_index_recv(recv, n, rank, b, seed);
      });
  for (const std::string& e : errors) {
    if (!e.empty()) {
      std::cerr << "index verification FAILED: " << e << '\n';
      return 1;
    }
  }
  const bruck::model::CostMetrics index_m = index_run.trace->metrics();

  // ------------------------------------------------------------------
  // Concatenation operation (all-to-all broadcast).
  bruck::mps::RunResult concat_run =
      bruck::mps::run_spmd(n, k, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        std::vector<std::byte> send(static_cast<std::size_t>(b));
        std::vector<std::byte> recv(static_cast<std::size_t>(n * b));
        bruck::coll::fill_concat_send(send, rank, b, seed);
        bruck::coll::allgather(comm, send, recv, b);
        errors[static_cast<std::size_t>(rank)] =
            bruck::coll::check_concat_recv(recv, n, b, seed);
      });
  for (const std::string& e : errors) {
    if (!e.empty()) {
      std::cerr << "concat verification FAILED: " << e << '\n';
      return 1;
    }
  }
  const bruck::model::CostMetrics concat_m = concat_run.trace->metrics();

  // ------------------------------------------------------------------
  const bruck::model::LinearModel sp1 = bruck::model::ibm_sp1();
  bruck::TextTable t({"operation", "C1 (rounds)", "C2 (bytes)",
                      "total bytes", "modeled us (SP-1)", "wall ms (here)"});
  t.add("index / alltoall", index_m.c1, index_m.c2, index_m.total_bytes,
        sp1.predict_us(index_m), index_run.wall_seconds * 1e3);
  t.add("concat / allgather", concat_m.c1, concat_m.c2, concat_m.total_bytes,
        sp1.predict_us(concat_m), concat_run.wall_seconds * 1e3);
  t.print(std::cout);
  std::cout << "\nboth operations verified: every block reached the right "
               "processor with the right contents\n";
  return 0;
}
