// HPF array remapping via the index operation — the Section 1.1 motivation:
// "the index operation can be used to support the remapping of arrays in
// HPF compilers, such as remapping the data layout of a two-dimensional
// array from (block, *) to (cyclic, *)".
//
// An N×M integer array is distributed (block, *): rank p owns the N/n
// consecutive rows [p·N/n, (p+1)·N/n).  The target layout is (cyclic, *):
// rank p owns rows {p, p+n, p+2n, …}.  The remap is one index operation:
// the rows rank p owns that belong to rank q under the new layout form
// block q of p's send buffer.  Each block has exactly (N/n) / n ... rows —
// uniform when n² divides N, which keeps this inside the fixed-block index
// operation (the paper's operation is uniform by definition).
//
// The example performs the remap, verifies every row landed at the right
// rank in the right order, then remaps back and checks the round trip.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "coll/index_bruck.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using Row = std::vector<std::int32_t>;

std::int32_t element(std::int64_t row, std::int64_t col) {
  return static_cast<std::int32_t>(row * 10007 + col);
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t rows_total = argc > 2 ? std::atoll(argv[2]) : 256;
  const std::int64_t cols = argc > 3 ? std::atoll(argv[3]) : 32;
  BRUCK_REQUIRE_MSG(rows_total % (n * n) == 0,
                    "N must be divisible by n^2 for a uniform remap");
  const std::int64_t rows_per_rank = rows_total / n;
  const std::int64_t rows_per_block = rows_per_rank / n;
  const std::int64_t row_bytes =
      cols * static_cast<std::int64_t>(sizeof(std::int32_t));
  const std::int64_t block_bytes = rows_per_block * row_bytes;

  std::cout << "HPF remap (block,*) -> (cyclic,*) of a " << rows_total << "x"
            << cols << " array over " << n << " processors\n"
            << "  block layout: rank p owns rows [p*" << rows_per_rank
            << ", (p+1)*" << rows_per_rank << ")\n"
            << "  cyclic layout: rank p owns rows p, p+" << n << ", p+"
            << 2 * n << ", ...\n\n";

  std::vector<std::string> errors(static_cast<std::size_t>(n));
  bruck::mps::RunResult rr = bruck::mps::run_spmd(
      n, 1, [&](bruck::mps::Communicator& comm) {
        const std::int64_t rank = comm.rank();
        const std::int64_t first_row = rank * rows_per_rank;

        // Local (block, *) data.
        std::vector<std::int32_t> local(
            static_cast<std::size_t>(rows_per_rank * cols));
        for (std::int64_t r = 0; r < rows_per_rank; ++r) {
          for (std::int64_t c = 0; c < cols; ++c) {
            local[static_cast<std::size_t>(r * cols + c)] =
                element(first_row + r, c);
          }
        }

        // Pack: my row (first_row + r) belongs to rank (first_row + r) % n
        // under (cyclic, *).  Within block q, rows keep ascending order.
        std::vector<std::byte> send(static_cast<std::size_t>(n * block_bytes));
        std::vector<std::int64_t> fill(static_cast<std::size_t>(n), 0);
        for (std::int64_t r = 0; r < rows_per_rank; ++r) {
          const std::int64_t q = (first_row + r) % n;
          std::byte* dst = send.data() + q * block_bytes +
                           fill[static_cast<std::size_t>(q)] * row_bytes;
          std::memcpy(dst, local.data() + r * cols,
                      static_cast<std::size_t>(row_bytes));
          fill[static_cast<std::size_t>(q)] += 1;
        }
        for (std::int64_t q = 0; q < n; ++q) {
          BRUCK_ENSURE(fill[static_cast<std::size_t>(q)] == rows_per_block);
        }

        // One index operation performs the whole remap.
        std::vector<std::byte> recv(send.size());
        int round = bruck::coll::index_bruck(
            comm, send, recv, block_bytes, bruck::coll::IndexBruckOptions{2, 0});

        // Under (cyclic, *) rank owns rows rank, rank+n, ...; block i of
        // recv holds the slice of those rows that used to live on rank i,
        // i.e. global rows rank + (i*rows_per_block + t)*n.
        for (std::int64_t i = 0; i < n && errors[static_cast<std::size_t>(rank)].empty(); ++i) {
          for (std::int64_t t = 0; t < rows_per_block; ++t) {
            const std::int64_t global_row =
                rank + (i * rows_per_block + t) * n;
            const auto* got = reinterpret_cast<const std::int32_t*>(
                recv.data() + i * block_bytes + t * row_bytes);
            for (std::int64_t c = 0; c < cols; ++c) {
              if (got[c] != element(global_row, c)) {
                errors[static_cast<std::size_t>(rank)] =
                    "row " + std::to_string(global_row) + " misplaced";
                break;
              }
            }
          }
        }

        // Remap back: (cyclic, *) -> (block, *) is the inverse index.
        std::vector<std::byte> back(send.size());
        bruck::coll::index_bruck(comm, recv, back, block_bytes,
                                 bruck::coll::IndexBruckOptions{2, round});
        if (back != send && errors[static_cast<std::size_t>(rank)].empty()) {
          errors[static_cast<std::size_t>(rank)] = "round trip mismatch";
        }
      });

  for (const std::string& e : errors) {
    if (!e.empty()) {
      std::cerr << "remap FAILED: " << e << '\n';
      return 1;
    }
  }
  const bruck::model::CostMetrics m = rr.trace->metrics();
  bruck::TextTable t({"direction", "C1 (rounds)", "C2 (bytes)", "total bytes"});
  t.add("remap + inverse", m.c1, m.c2, m.total_bytes);
  t.print(std::cout);
  std::cout << "\nremap verified row-for-row; the inverse remap restored the "
               "(block,*) layout exactly\n";
  return 0;
}
