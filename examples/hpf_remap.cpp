// HPF array remapping via the index operation — the Section 1.1 motivation:
// remapping a two-dimensional array from (block, *) to (cyclic, *); one
// index operation, uniform when n² divides N.  With strided `coll::Layout`
// datatypes the remap moves no bytes locally: send block q *is* local rows
// q, q+n, q+2n, … in place, and the (cyclic, *) result is densely packed.
// The inverse remap swaps the two layouts and scatters rows straight back.
// Both directions are verified; the zero-copy calls are timed against the
// user-side staging they replace.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "coll/api.hpp"
#include "coll/layout.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

std::int32_t element(std::int64_t row, std::int64_t col) {
  return static_cast<std::int32_t>(row * 10007 + col);
}

/// Send side of (block,*) -> (cyclic,*): block q of my slab is local rows
/// q, q+n, q+2n, … — one-row pieces n rows apart, blocks one row apart.
/// The inverse remap uses the same layout on the receive side.
bruck::coll::Layout remap_layout(std::int64_t n, std::int64_t rows_per_block,
                                 std::int64_t row_bytes) {
  return bruck::coll::Layout::vector(rows_per_block, row_bytes, n * row_bytes)
      .with_block_stride(row_bytes);
}

/// Remap (block,*) -> (cyclic,*) and back on every rank, verifying both
/// directions; returns the trace.  `staged` runs the replaced user-side
/// staging idiom instead, for the wall-clock comparison.
std::shared_ptr<bruck::mps::Trace> remap_roundtrip(
    std::int64_t n, std::int64_t rows_per_rank, std::int64_t cols,
    bool staged) {
  const std::int64_t row_bytes =
      cols * static_cast<std::int64_t>(sizeof(std::int32_t));
  const bruck::coll::Layout strided =
      remap_layout(n, rows_per_rank / n, row_bytes);
  const bruck::coll::Layout dense =
      bruck::coll::Layout::contiguous(rows_per_rank / n * row_bytes);
  bruck::coll::AlltoallOptions fwd;
  fwd.algorithm = bruck::coll::IndexAlgorithm::kBruck;
  fwd.radix = 2;
  const auto x = [staged](auto&... a) {
    return staged ? bruck::coll::alltoall_staged(a...)
                  : bruck::coll::alltoall(a...);
  };

  const std::int64_t total = rows_per_rank * cols;
  return bruck::mps::run_spmd(n, 1, [&](bruck::mps::Communicator& comm) {
           const std::int64_t rank = comm.rank();
           // Local (block, *) data, one i32 row per global row.
           std::vector<std::int32_t> local(static_cast<std::size_t>(total));
           for (std::int64_t i = 0; i < total; ++i) {
             local[static_cast<std::size_t>(i)] =
                 element(rank * rows_per_rank + i / cols, i % cols);
           }
           const auto local_bytes = std::as_bytes(std::span(local));

           // Forward: one alltoall straight off the slab.  Row slot s of
           // the dense result holds global row rank + s·n.
           std::vector<std::byte> recv(local_bytes.size());
           const int round = x(comm, local_bytes, recv, strided, dense, fwd);
           const auto* got =
               reinterpret_cast<const std::int32_t*>(recv.data());
           for (std::int64_t i = 0; i < total; ++i) {
             BRUCK_REQUIRE_MSG(
                 got[i] == element(rank + i / cols * n, i % cols),
                 "row misplaced by the forward remap");
           }

           // Inverse: swap the layouts; the scatter rebuilds the slab.
           bruck::coll::AlltoallOptions inv = fwd;
           inv.start_round = round;
           std::vector<std::byte> back(local_bytes.size());
           x(comm, recv, back, dense, strided, inv);
           BRUCK_REQUIRE_MSG(
               std::equal(back.begin(), back.end(), local_bytes.begin()),
               "inverse remap failed to restore the (block,*) slab");
         }).trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t rows_total = argc > 2 ? std::atoll(argv[2]) : 2048;
  const std::int64_t cols = argc > 3 ? std::atoll(argv[3]) : 64;
  BRUCK_REQUIRE_MSG(rows_total % (n * n) == 0,
                    "N must be divisible by n^2 for a uniform remap");
  const std::int64_t rows_per_rank = rows_total / n;

  std::cout << "HPF remap (block,*) -> (cyclic,*) of a " << rows_total << "x"
            << cols << " array over " << n << " processors\n"
            << "  block layout: rank p owns rows [p*" << rows_per_rank
            << ", (p+1)*" << rows_per_rank << ")\n"
            << "  cyclic layout: rank p owns rows p, p+" << n << ", p+"
            << 2 * n << ", ...\n"
            << "  send datatype: "
            << remap_layout(n, rows_per_rank / n, 4 * cols).describe()
            << " (recv is contiguous; the inverse remap swaps them)\n\n";

  const auto first = remap_roundtrip(n, rows_per_rank, cols, false);
  const bruck::model::CostMetrics m = first->metrics();
  bruck::TextTable t({"direction", "C1 (rounds)", "C2 (bytes)", "total bytes"});
  t.add("remap + inverse", m.c1, m.c2, m.total_bytes);
  t.print(std::cout);

  // Staged vs zero-copy wall clock on the round trip (best of 3 each).
  const auto best = [&](bool staged) {
    return bruck::best_of_ms(
        3, [&] { remap_roundtrip(n, rows_per_rank, cols, staged); });
  };
  const double staged_ms = best(true);
  const double zero_ms = best(false);
  std::cout << "\nstaged pack/unpack: " << staged_ms
            << " ms, zero-copy layout remap: " << zero_ms << " ms ("
            << staged_ms / zero_ms << "x)\n"
            << "remap verified row-for-row; the inverse remap restored the "
               "(block,*) layout exactly\n";
  return 0;
}
