// Machine-aware radix tuning (Section 3.3/3.5): given a machine's (β, τ),
// print the modeled index-operation time across radices and the tuner's
// choice, for several machine profiles and message sizes.
//
//   $ ./radix_tuning [n] [k]
//
// This is the "one library, every group size" workflow the paper motivates:
// the application calls alltoall(); the library consults the model and picks
// r — no per-machine algorithm forks.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "coll/api.hpp"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 64;
  const int k = argc > 2 ? std::atoi(argv[2]) : 1;

  std::cout << "index-operation radix tuning for n = " << n << ", k = " << k
            << "\n\n";

  for (const bruck::model::LinearModel& machine :
       {bruck::model::ibm_sp1(), bruck::model::startup_dominated(),
        bruck::model::bandwidth_dominated()}) {
    std::cout << "machine \"" << machine.name << "\": beta = "
              << machine.beta_us << " us, tau = " << machine.tau_us_per_byte
              << " us/byte\n";
    bruck::TextTable t({"block bytes", "chosen radix", "C1", "C2 (bytes)",
                        "modeled us", "us at r=2", "us at r=n"});
    for (const std::int64_t b : {1, 8, 32, 128, 512, 2048, 8192}) {
      const bruck::model::RadixChoice choice =
          bruck::model::pick_index_radix(n, k, b, machine);
      const double at2 =
          machine.predict_us(bruck::model::index_bruck_cost(n, 2, k, b));
      const double atn =
          machine.predict_us(bruck::model::index_bruck_cost(n, n, k, b));
      t.add(b, choice.radix, choice.metrics.c1, choice.metrics.c2,
            choice.predicted_us, at2, atn);
    }
    t.print(std::cout);
    const std::int64_t crossover =
        bruck::model::crossover_block_bytes(n, k, 2, n, machine);
    if (crossover > 0) {
      std::cout << "r=2 / r=n break-even at ~" << crossover
                << "-byte blocks\n";
    } else {
      std::cout << "r=2 and r=n never cross on this machine\n";
    }
    std::cout << '\n';
  }

  std::cout << "the library's alltoall() applies exactly this selection via "
               "plan_alltoall()\n";
  return 0;
}
