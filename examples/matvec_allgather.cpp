// Iterated distributed matrix–vector products via the concatenation
// operation — the Section 1.1 application "the concatenation operation can
// be used in matrix multiplication and in basic linear algebra operations".
//
// The N×N matrix is row-block distributed; the length-N vector is block
// distributed the same way.  Each iteration of the power-method loop
//   x ← A·x / ‖A·x‖
// needs the *whole* current vector at every rank: exactly one concatenation
// (allgather).  The example runs a few iterations with the paper's
// algorithm and the two baselines, checks they produce bit-identical
// iterates, verifies convergence to the dominant eigenpair on a matrix with
// a known spectrum, and reports the per-iteration communication measures.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <vector>

#include "coll/api.hpp"
#include "mps/runtime.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace {

using Vector = std::vector<double>;
using Matrix = std::vector<double>;  // row-major N×N

/// Symmetric matrix with dominant eigenvalue 4 (eigenvector e1 basis):
/// diag(4, 2, 1, 1, …) conjugated by a fixed Householder reflection so the
/// matrix is dense and the dominant eigenvector is nontrivial.
struct Spectrum {
  Matrix a;
  Vector dominant;  // unit eigenvector for eigenvalue 4
};

Spectrum make_spectrum(std::int64_t n_dim) {
  // Householder vector v (normalized), H = I − 2vvᵀ, A = H·D·Hᵀ.
  Vector v(static_cast<std::size_t>(n_dim));
  double norm2 = 0.0;
  for (std::int64_t i = 0; i < n_dim; ++i) {
    v[static_cast<std::size_t>(i)] = 1.0 + static_cast<double>(i % 5);
    norm2 += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& x : v) x *= inv;

  auto h = [&](std::int64_t i, std::int64_t j) {
    return (i == j ? 1.0 : 0.0) -
           2.0 * v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(j)];
  };
  auto d = [&](std::int64_t i) { return i == 0 ? 4.0 : (i == 1 ? 2.0 : 1.0); };

  Spectrum s;
  s.a.resize(static_cast<std::size_t>(n_dim * n_dim));
  for (std::int64_t i = 0; i < n_dim; ++i) {
    for (std::int64_t j = 0; j < n_dim; ++j) {
      double acc = 0.0;
      for (std::int64_t t = 0; t < n_dim; ++t) {
        acc += h(i, t) * d(t) * h(j, t);
      }
      s.a[static_cast<std::size_t>(i * n_dim + j)] = acc;
    }
  }
  s.dominant.resize(static_cast<std::size_t>(n_dim));
  for (std::int64_t i = 0; i < n_dim; ++i) {
    s.dominant[static_cast<std::size_t>(i)] = h(i, 0);  // H·e0
  }
  return s;
}

struct PowerResult {
  Vector x;
  double eigenvalue = 0.0;
  bruck::model::CostMetrics per_iteration;
};

PowerResult power_method(const Matrix& a, std::int64_t n_dim,
                         std::int64_t n_ranks, int iterations,
                         bruck::coll::ConcatAlgorithm algorithm) {
  const std::int64_t rows = n_dim / n_ranks;
  const std::int64_t block_bytes =
      rows * static_cast<std::int64_t>(sizeof(double));
  Vector x(static_cast<std::size_t>(n_dim), 1.0 / std::sqrt(n_dim));
  double lambda = 0.0;
  bruck::model::CostMetrics per_iter;

  for (int iter = 0; iter < iterations; ++iter) {
    Vector next(static_cast<std::size_t>(n_dim));
    bruck::coll::AllgatherOptions options;
    options.algorithm = algorithm;
    bruck::mps::RunResult rr = bruck::mps::run_spmd(
        n_ranks, 1, [&](bruck::mps::Communicator& comm) {
          const std::int64_t rank = comm.rank();
          // Local slice of y = A·x.
          Vector local(static_cast<std::size_t>(rows));
          for (std::int64_t r = 0; r < rows; ++r) {
            const double* row = a.data() + (rank * rows + r) * n_dim;
            double acc = 0.0;
            for (std::int64_t c = 0; c < n_dim; ++c) acc += row[c] * x[static_cast<std::size_t>(c)];
            local[static_cast<std::size_t>(r)] = acc;
          }
          // Allgather the new vector so the next iteration can start.
          std::vector<std::byte> recv(static_cast<std::size_t>(n_dim) *
                                      sizeof(double));
          bruck::coll::allgather(
              comm,
              std::span<const std::byte>(
                  reinterpret_cast<const std::byte*>(local.data()),
                  static_cast<std::size_t>(block_bytes)),
              recv, block_bytes, options);
          if (rank == 0) {
            std::memcpy(next.data(), recv.data(), recv.size());
          }
        });
    per_iter = rr.trace->metrics();
    double norm = 0.0;
    for (double vi : next) norm += vi * vi;
    norm = std::sqrt(norm);
    lambda = norm;  // ‖A·x‖ for unit x converges to |λ₁|
    for (double& vi : next) vi /= norm;
    x = std::move(next);
  }
  return PowerResult{std::move(x), lambda, per_iter};
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n_ranks = argc > 1 ? std::atoll(argv[1]) : 8;
  const std::int64_t n_dim = argc > 2 ? std::atoll(argv[2]) : 64;
  const int iterations = 40;
  BRUCK_REQUIRE_MSG(n_dim % n_ranks == 0, "N must divide over ranks");

  std::cout << "power method on a dense " << n_dim << "x" << n_dim
            << " matrix over " << n_ranks
            << " simulated processors, one allgather per iteration\n\n";

  const Spectrum s = make_spectrum(n_dim);
  bruck::TextTable t({"algorithm", "C1/iter", "C2/iter (bytes)",
                      "total bytes/iter", "lambda", "|lambda - 4|"});

  Vector reference;
  for (const auto algorithm :
       {bruck::coll::ConcatAlgorithm::kBruck,
        bruck::coll::ConcatAlgorithm::kFolklore,
        bruck::coll::ConcatAlgorithm::kRing}) {
    const PowerResult result =
        power_method(s.a, n_dim, n_ranks, iterations, algorithm);
    if (reference.empty()) {
      reference = result.x;
    } else {
      BRUCK_REQUIRE_MSG(result.x == reference,
                        "different allgather algorithms must produce "
                        "bit-identical iterates");
    }
    BRUCK_REQUIRE_MSG(std::abs(result.eigenvalue - 4.0) < 1e-6,
                      "power method failed to find the dominant eigenvalue");
    // The iterate must align with the known dominant eigenvector.
    double dot = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      dot += result.x[i] * s.dominant[i];
    }
    BRUCK_REQUIRE_MSG(std::abs(std::abs(dot) - 1.0) < 1e-6,
                      "iterate did not converge to the dominant eigenvector");
    t.add(bruck::coll::to_string(algorithm), result.per_iteration.c1,
          result.per_iteration.c2, result.per_iteration.total_bytes,
          result.eigenvalue, std::abs(result.eigenvalue - 4.0));
  }
  t.print(std::cout);
  std::cout << "\nall three allgather algorithms produced bit-identical "
               "iterates;\nBruck needs ceil(log2 n) rounds/iter vs n-1 for "
               "the ring at the same volume\n";
  return 0;
}
