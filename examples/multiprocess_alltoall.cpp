// Multi-process quickstart: the same index operation (MPI_Alltoall) as
// examples/quickstart.cpp, but each rank is a real forked OS process and
// the blocks travel over a real transport — shared-memory MPSC rings by
// default, or loopback TCP sockets.
//
//   $ ./multiprocess_alltoall [backend] [n] [k] [block_bytes]
//
// `backend` is one of thread | shm | socket (default: the BRUCK_FABRIC
// environment variable, falling back to shm here).  Whatever the fabric,
// the plan engine, pipelined executor and trace machinery are identical —
// only the wire differs — so the executed C1/C2 measures printed at the
// end match the in-process oracle bit for bit.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "coll/api.hpp"
#include "coll/verify.hpp"
#include "mps/bootstrap.hpp"
#include "util/table.hpp"

namespace {

std::int64_t arg_or(char** argv, int argc, int i, std::int64_t fallback) {
  return argc > i ? std::atoll(argv[i]) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bruck::mps::FabricBackend backend = bruck::mps::FabricBackend::kShm;
  if (argc > 1) {
    if (const auto parsed = bruck::mps::parse_fabric_backend(argv[1])) {
      backend = *parsed;
    } else {
      std::cerr << "unknown backend '" << argv[1]
                << "' (expected thread | shm | socket)\n";
      return 2;
    }
  } else if (std::getenv("BRUCK_FABRIC") != nullptr) {
    backend = bruck::mps::default_fabric_backend();
  }
  const std::int64_t n = arg_or(argv, argc, 2, 4);
  const int k = static_cast<int>(arg_or(argv, argc, 3, 2));
  const std::int64_t b = arg_or(argv, argc, 4, 256);
  const std::uint64_t seed = 2026;

  std::cout << "multiprocess alltoall: backend = "
            << bruck::mps::to_string(backend) << ", n = " << n
            << " ranks, k = " << k << " ports, blocks of " << b
            << " bytes\n\n";

  bruck::mps::SpawnOptions so;
  so.n = n;
  so.k = k;
  so.backend = backend;
  so.record_trace = true;

  // Each rank returns its verification verdict as the payload: an empty
  // blob means success, anything else is the error text.  spawn_local
  // ships these back over a pipe from the forked children.
  const bruck::mps::SpawnResult run = bruck::mps::spawn_local(
      so, [&](bruck::mps::Communicator& comm) -> std::vector<std::byte> {
        const std::int64_t rank = comm.rank();
        std::vector<std::byte> send(static_cast<std::size_t>(n * b));
        std::vector<std::byte> recv(send.size());
        bruck::coll::fill_index_send(send, n, rank, b, seed);
        bruck::coll::alltoall(comm, send, recv, b);
        const std::string err =
            bruck::coll::check_index_recv(recv, n, rank, b, seed);
        std::vector<std::byte> out(err.size());
        std::memcpy(out.data(), err.data(), err.size());
        return out;
      });

  for (std::int64_t r = 0; r < n; ++r) {
    const auto& verdict = run.rank_payloads[static_cast<std::size_t>(r)];
    if (!verdict.empty()) {
      std::cerr << "rank " << r << " verification FAILED: "
                << std::string(reinterpret_cast<const char*>(verdict.data()),
                               verdict.size())
                << '\n';
      return 1;
    }
  }

  const bruck::model::CostMetrics m = run.trace->metrics();
  bruck::TextTable t({"backend", "C1 (rounds)", "C2 (bytes)", "total bytes",
                      "wall ms (incl. fork + connect)"});
  t.add(bruck::mps::to_string(backend), m.c1, m.c2, m.total_bytes,
        run.wall_seconds * 1e3);
  t.print(std::cout);
  std::cout << "\nall " << n << " processes verified: every block reached "
               "the right process with the right contents\n";
  return 0;
}
