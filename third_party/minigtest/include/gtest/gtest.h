// minigtest — a single-header, dependency-free implementation of the subset
// of the GoogleTest API this repository uses.
//
// Why it exists: the tier-1 verify command must work from a clean checkout
// with no network access (FetchContent) and no system googletest.  This shim
// implements TEST / TEST_P / INSTANTIATE_TEST_SUITE_P, the EXPECT_* /
// ASSERT_* comparison macros (with << message streaming), EXPECT_THROW /
// EXPECT_NO_THROW, EXPECT_NEAR / EXPECT_DOUBLE_EQ, SCOPED_TRACE and FAIL.
// Configure with -DBRUCK_USE_SYSTEM_GTEST=ON to build against a real
// googletest instead; the test sources compile unchanged against either.
//
// Deliberate simplifications (acceptable for this suite):
//  * --gtest_filter supports ':'-separated patterns with '*' wildcards and a
//    single leading '-' negative section, which covers interactive use.
//  * EXPECT_DOUBLE_EQ uses a 4-ULP distance like googletest.
//  * Death tests, matchers, TYPED_TEST and TEST_F are not implemented.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Message {
 public:
  Message() = default;
  Message(const Message& other) { os_ << other.str(); }

  template <class T>
  Message& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

namespace internal {

// ---------------------------------------------------------------------------
// Value printing: stream when the type supports it, else a placeholder.

template <class T>
std::string PrintValue(const T& value) {
  if constexpr (std::is_convertible_v<T, std::string_view>) {
    // Built with append (not operator+): gcc 12's -Wrestrict false
    // positive (PR105329) fires on the concatenation spelling.
    std::string quoted(1, '"');
    quoted.append(std::string_view(value));
    quoted.append(1, '"');
    return quoted;
  } else if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (requires(std::ostream& os, const T& v) { os << v; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    std::ostringstream os;
    os << "<" << sizeof(T) << "-byte object>";
    return os.str();
  }
}

// ---------------------------------------------------------------------------
// Registry of runnable tests and global per-test state.

struct TestCase {
  std::string full_name;  // "Suite.Name" (or "Prefix/Suite.Name/Param")
  std::function<void()> body;
};

struct Registry {
  std::vector<TestCase> tests;
  // Parameterized expansions, run after all static initialization.
  std::vector<std::function<void()>> deferred;
  std::vector<std::string> scoped_traces;
  std::string filter = "*";
  bool list_only = false;
  bool current_failed = false;

  static Registry& get() {
    static Registry r;
    return r;
  }
};

inline void ReportFailure(const char* file, int line, const std::string& text) {
  Registry& reg = Registry::get();
  reg.current_failed = true;
  std::cout << file << ":" << line << ": Failure\n" << text << "\n";
  for (auto it = reg.scoped_traces.rbegin(); it != reg.scoped_traces.rend();
       ++it) {
    std::cout << "Google Test trace:\n" << *it << "\n";
  }
}

/// `AssertHelper(...) = Message() << user_text` reports one failure; the
/// assignment-operator trick is what lets the macros accept trailing `<<`.
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string summary)
      : file_(file), line_(line), summary_(std::move(summary)) {}

  void operator=(const Message& message) const {
    std::string text = summary_;
    const std::string user = message.str();
    if (!user.empty()) {
      text.append(1, '\n');
      text.append(user);
    }
    ReportFailure(file_, line_, text);
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
};

class ScopedTrace {
 public:
  ScopedTrace(const char* file, int line, const std::string& msg) {
    std::ostringstream os;
    os << file << ":" << line << ": " << msg;
    Registry::get().scoped_traces.push_back(os.str());
  }
  ~ScopedTrace() { Registry::get().scoped_traces.pop_back(); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

// ---------------------------------------------------------------------------
// Comparisons.  Each returns "" on success or the failure description.

template <class A, class B, class Op>
std::string CompareOp(const char* a_expr, const char* b_expr, const A& a,
                      const B& b, Op op, const char* op_str) {
  if (op(a, b)) return {};
  std::ostringstream os;
  if (std::strcmp(op_str, "==") == 0) {
    os << "Expected equality of these values:\n  " << a_expr
       << "\n    Which is: " << PrintValue(a) << "\n  " << b_expr
       << "\n    Which is: " << PrintValue(b);
  } else {
    os << "Expected: (" << a_expr << ") " << op_str << " (" << b_expr
       << "), actual: " << PrintValue(a) << " vs " << PrintValue(b);
  }
  return os.str();
}

inline std::string CheckBool(const char* expr, bool value, bool expected) {
  if (value == expected) return {};
  std::ostringstream os;
  os << "Value of: " << expr << "\n  Actual: " << (value ? "true" : "false")
     << "\nExpected: " << (expected ? "true" : "false");
  return os.str();
}

inline std::string CheckNear(const char* a_expr, const char* b_expr,
                             const char* tol_expr, double a, double b,
                             double tol) {
  const double diff = std::fabs(a - b);
  if (diff <= tol) return {};
  std::ostringstream os;
  os << "The difference between " << a_expr << " and " << b_expr << " is "
     << diff << ", which exceeds " << tol_expr << ", where\n" << a_expr
     << " evaluates to " << a << ",\n" << b_expr << " evaluates to " << b
     << ", and\n" << tol_expr << " evaluates to " << tol << ".";
  return os.str();
}

inline bool AlmostEqualDoubles(double x, double y) {
  if (std::isnan(x) || std::isnan(y)) return false;
  if (x == y) return true;
  // 4-ULP comparison on the biased integer representation (googletest's rule).
  const auto biased = [](double v) -> std::uint64_t {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    constexpr std::uint64_t kSignBit = 0x8000000000000000ull;
    return (bits & kSignBit) ? ~bits + 1 : bits | kSignBit;
  };
  const std::uint64_t bx = biased(x);
  const std::uint64_t by = biased(y);
  const std::uint64_t dist = bx > by ? bx - by : by - bx;
  return dist <= 4;
}

inline std::string CheckDoubleEq(const char* a_expr, const char* b_expr,
                                 double a, double b) {
  if (AlmostEqualDoubles(a, b)) return {};
  std::ostringstream os;
  os << "Expected equality of these values:\n  " << a_expr
     << "\n    Which is: " << a << "\n  " << b_expr << "\n    Which is: " << b;
  return os.str();
}

// ---------------------------------------------------------------------------
// Filtering: ':'-separated '*' patterns, optional single '-' negative tail.

inline bool WildcardMatch(std::string_view pattern, std::string_view name) {
  if (pattern.empty()) return name.empty();
  if (pattern[0] == '*') {
    for (std::size_t i = 0; i <= name.size(); ++i) {
      if (WildcardMatch(pattern.substr(1), name.substr(i))) return true;
    }
    return false;
  }
  if (name.empty() || (pattern[0] != '?' && pattern[0] != name[0])) {
    return false;
  }
  return WildcardMatch(pattern.substr(1), name.substr(1));
}

inline bool MatchesSection(std::string_view section, std::string_view name) {
  while (!section.empty()) {
    const std::size_t colon = section.find(':');
    const std::string_view pat = section.substr(0, colon);
    if (WildcardMatch(pat, name)) return true;
    if (colon == std::string_view::npos) break;
    section.remove_prefix(colon + 1);
  }
  return false;
}

inline bool FilterAccepts(const std::string& filter, const std::string& name) {
  const std::size_t dash = filter.find('-');
  const std::string_view positive =
      dash == std::string::npos
          ? std::string_view(filter)
          : std::string_view(filter).substr(0, dash);
  const std::string_view negative =
      dash == std::string::npos ? std::string_view()
                                : std::string_view(filter).substr(dash + 1);
  if (!positive.empty() && !MatchesSection(positive, name)) return false;
  if (positive.empty() && !MatchesSection("*", name)) return false;
  if (!negative.empty() && MatchesSection(negative, name)) return false;
  return true;
}

inline bool RegisterTest(std::string full_name, std::function<void()> body) {
  Registry::get().tests.push_back({std::move(full_name), std::move(body)});
  return true;
}

inline int RunAll() {
  Registry& reg = Registry::get();
  for (auto& expand : reg.deferred) expand();
  reg.deferred.clear();

  std::vector<const TestCase*> selected;
  for (const TestCase& t : reg.tests) {
    if (FilterAccepts(reg.filter, t.full_name)) selected.push_back(&t);
  }
  if (reg.list_only) {
    for (const TestCase* t : selected) std::cout << t->full_name << "\n";
    return 0;
  }

  std::vector<std::string> failed;
  std::cout << "[==========] Running " << selected.size() << " tests.\n";
  for (const TestCase* t : selected) {
    std::cout << "[ RUN      ] " << t->full_name << "\n";
    reg.current_failed = false;
    try {
      t->body();
    } catch (const std::exception& e) {
      ReportFailure("<uncaught>", 0,
                    std::string("uncaught exception: ") + e.what());
    } catch (...) {
      ReportFailure("<uncaught>", 0, "uncaught non-std exception");
    }
    if (reg.current_failed) {
      failed.push_back(t->full_name);
      std::cout << "[  FAILED  ] " << t->full_name << "\n";
    } else {
      std::cout << "[       OK ] " << t->full_name << "\n";
    }
  }
  std::cout << "[==========] " << selected.size() << " tests ran.\n";
  std::cout << "[  PASSED  ] " << (selected.size() - failed.size())
            << " tests.\n";
  if (!failed.empty()) {
    std::cout << "[  FAILED  ] " << failed.size() << " tests, listed below:\n";
    for (const std::string& name : failed) {
      std::cout << "[  FAILED  ] " << name << "\n";
    }
  }
  return failed.empty() ? 0 : 1;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Test fixtures.

class Test {
 public:
  virtual ~Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;

  void Run() {
    SetUp();
    TestBody();
    TearDown();
  }
};

template <class T>
class TestWithParam : public Test {
 public:
  using ParamType = T;

  [[nodiscard]] const T& GetParam() const { return *CurrentParam(); }

  /// Slot holding the active parameter while a TEST_P body runs (tests are
  /// executed sequentially, so one slot per parameter type suffices).
  static const T*& CurrentParam() {
    static const T* current = nullptr;
    return current;
  }
};

template <class T>
struct TestParamInfo {
  T param;
  std::size_t index = 0;
};

// ---------------------------------------------------------------------------
// Parameter generators.

namespace internal {

template <class... Ts>
struct ValuesGen {
  std::tuple<Ts...> values;

  template <class P>
  [[nodiscard]] std::vector<P> materialize() const {
    std::vector<P> out;
    out.reserve(sizeof...(Ts));
    std::apply(
        [&out](const auto&... v) { (out.push_back(static_cast<P>(v)), ...); },
        values);
    return out;
  }
};

template <class V>
struct ValuesInGen {
  std::vector<V> values;

  template <class P>
  [[nodiscard]] std::vector<P> materialize() const {
    return std::vector<P>(values.begin(), values.end());
  }
};

template <class P, class Lists, std::size_t I = 0>
void CartesianProduct(const Lists& lists, P& current, std::vector<P>& out) {
  if constexpr (I == std::tuple_size_v<Lists>) {
    out.push_back(current);
  } else {
    for (const auto& v : std::get<I>(lists)) {
      std::get<I>(current) = v;
      CartesianProduct<P, Lists, I + 1>(lists, current, out);
    }
  }
}

template <class... Gs>
struct CombineGen {
  std::tuple<Gs...> gens;

  template <class P>
  [[nodiscard]] std::vector<P> materialize() const {
    return materialize_impl<P>(std::index_sequence_for<Gs...>{});
  }

  template <class P, std::size_t... Is>
  [[nodiscard]] std::vector<P> materialize_impl(
      std::index_sequence<Is...>) const {
    auto lists = std::make_tuple(
        std::get<Is>(gens)
            .template materialize<std::tuple_element_t<Is, P>>()...);
    std::vector<P> out;
    P current{};
    CartesianProduct<P>(lists, current, out);
    return out;
  }
};

/// Per-fixture registry: TEST_P bodies and INSTANTIATE_* generators meet
/// here; the cross product is expanded lazily inside RUN_ALL_TESTS so the
/// two macros may appear in any order in a translation unit.
template <class Fixture>
struct ParamRegistry {
  using P = typename Fixture::ParamType;
  struct PTest {
    std::string name;
    std::function<void(const P&)> run;
  };

  static std::vector<PTest>& tests() {
    static std::vector<PTest> v;
    return v;
  }

  static bool AddTest(const char* /*suite*/, const char* name,
                      std::function<void(const P&)> run) {
    tests().push_back({name, std::move(run)});
    return true;
  }

  template <class Gen>
  static bool AddInstantiation(const char* prefix, const char* suite,
                               Gen gen) {
    return AddInstantiation(prefix, suite, std::move(gen),
                            [](const TestParamInfo<P>& info) {
                              return std::to_string(info.index);
                            });
  }

  template <class Gen, class NameGen>
  static bool AddInstantiation(const char* prefix, const char* suite, Gen gen,
                               NameGen name_gen_raw) {
    const std::string prefix_s = prefix;
    const std::string suite_s = suite;
    // Type-erase the user's name generator: calling it through std::function
    // stops gcc 12 from inlining user string concatenations into the
    // registration loop, where its -Wrestrict false positive (PR105329)
    // would fire on otherwise-clean test code.
    const std::function<std::string(const TestParamInfo<P>&)> name_gen =
        name_gen_raw;
    Registry::get().deferred.push_back([prefix_s, suite_s, gen, name_gen] {
      auto params =
          std::make_shared<std::vector<P>>(gen.template materialize<P>());
      for (const PTest& t : tests()) {
        for (std::size_t i = 0; i < params->size(); ++i) {
          TestParamInfo<P> info{(*params)[i], i};
          // append, not operator+: sidesteps gcc 12's -Wrestrict false
          // positive (PR105329) through user name-generator lambdas.
          std::string full = prefix_s;
          full.append(1, '/').append(suite_s).append(1, '.').append(t.name);
          full.append(1, '/').append(name_gen(info));
          auto run = t.run;
          RegisterTest(std::move(full), [params, i, run] { run((*params)[i]); });
        }
      }
    });
    return true;
  }
};

}  // namespace internal

template <class... Ts>
internal::ValuesGen<std::decay_t<Ts>...> Values(Ts&&... values) {
  return {std::make_tuple(std::forward<Ts>(values)...)};
}

template <class C>
auto ValuesIn(const C& container) {
  using V = std::decay_t<decltype(*std::begin(container))>;
  return internal::ValuesInGen<V>{
      std::vector<V>(std::begin(container), std::end(container))};
}

template <class... Gs>
internal::CombineGen<std::decay_t<Gs>...> Combine(Gs&&... gens) {
  return {std::make_tuple(std::forward<Gs>(gens)...)};
}

inline void InitGoogleTest(int* argc, char** argv) {
  internal::Registry& reg = internal::Registry::get();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--gtest_filter=", 0) == 0) {
      reg.filter = std::string(arg.substr(15));
    } else if (arg == "--gtest_list_tests") {
      reg.list_only = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace testing

// ---------------------------------------------------------------------------
// Macros.

#define MINIGTEST_CLASS_NAME_(suite, name) suite##_##name##_MiniTest

#define TEST(suite, name)                                                     \
  class MINIGTEST_CLASS_NAME_(suite, name) : public ::testing::Test {         \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  static const bool minigtest_reg_##suite##_##name [[maybe_unused]] =         \
      ::testing::internal::RegisterTest(#suite "." #name, [] {                \
        MINIGTEST_CLASS_NAME_(suite, name) t;                                 \
        t.Run();                                                              \
      });                                                                     \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST_P(fixture, name)                                                 \
  class MINIGTEST_CLASS_NAME_(fixture, name) : public fixture {               \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  static const bool minigtest_preg_##fixture##_##name [[maybe_unused]] =      \
      ::testing::internal::ParamRegistry<fixture>::AddTest(                   \
          #fixture, #name, [](const typename fixture::ParamType& p) {         \
            fixture::CurrentParam() = &p;                                     \
            MINIGTEST_CLASS_NAME_(fixture, name) t;                           \
            t.Run();                                                          \
            fixture::CurrentParam() = nullptr;                                \
          });                                                                 \
  void MINIGTEST_CLASS_NAME_(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, ...)                        \
  static const bool minigtest_inst_##prefix##_##fixture [[maybe_unused]] =    \
      ::testing::internal::ParamRegistry<fixture>::AddInstantiation(          \
          #prefix, #fixture, __VA_ARGS__)

// `switch (0) case 0: default:` swallows the dangling-else ambiguity exactly
// as googletest does; `return helper = Message()` makes ASSERT_* fatal while
// still accepting a trailing `<<` chain.
#define MINIGTEST_AMBIGUOUS_ELSE_ switch (0) case 0: default:

#define MINIGTEST_NONFATAL_(text)                                             \
  ::testing::internal::AssertHelper(__FILE__, __LINE__, (text)) =             \
      ::testing::Message()

#define MINIGTEST_FATAL_(text)                                                \
  return ::testing::internal::AssertHelper(__FILE__, __LINE__, (text)) =      \
             ::testing::Message()

#define MINIGTEST_CMP_(a, b, op, op_str, fail)                                \
  MINIGTEST_AMBIGUOUS_ELSE_                                                   \
  if (const std::string minigtest_msg = ::testing::internal::CompareOp(       \
          #a, #b, (a), (b),                                                   \
          [](const auto& x, const auto& y) { return x op y; }, op_str);       \
      minigtest_msg.empty())                                                  \
    ;                                                                         \
  else                                                                        \
    fail(minigtest_msg)

#define EXPECT_EQ(a, b) MINIGTEST_CMP_(a, b, ==, "==", MINIGTEST_NONFATAL_)
#define EXPECT_NE(a, b) MINIGTEST_CMP_(a, b, !=, "!=", MINIGTEST_NONFATAL_)
#define EXPECT_LT(a, b) MINIGTEST_CMP_(a, b, <, "<", MINIGTEST_NONFATAL_)
#define EXPECT_LE(a, b) MINIGTEST_CMP_(a, b, <=, "<=", MINIGTEST_NONFATAL_)
#define EXPECT_GT(a, b) MINIGTEST_CMP_(a, b, >, ">", MINIGTEST_NONFATAL_)
#define EXPECT_GE(a, b) MINIGTEST_CMP_(a, b, >=, ">=", MINIGTEST_NONFATAL_)
#define ASSERT_EQ(a, b) MINIGTEST_CMP_(a, b, ==, "==", MINIGTEST_FATAL_)
#define ASSERT_NE(a, b) MINIGTEST_CMP_(a, b, !=, "!=", MINIGTEST_FATAL_)
#define ASSERT_LT(a, b) MINIGTEST_CMP_(a, b, <, "<", MINIGTEST_FATAL_)
#define ASSERT_LE(a, b) MINIGTEST_CMP_(a, b, <=, "<=", MINIGTEST_FATAL_)
#define ASSERT_GT(a, b) MINIGTEST_CMP_(a, b, >, ">", MINIGTEST_FATAL_)
#define ASSERT_GE(a, b) MINIGTEST_CMP_(a, b, >=, ">=", MINIGTEST_FATAL_)

#define MINIGTEST_BOOL_(expr, expected, fail)                                 \
  MINIGTEST_AMBIGUOUS_ELSE_                                                   \
  if (const std::string minigtest_msg = ::testing::internal::CheckBool(       \
          #expr, static_cast<bool>(expr), expected);                          \
      minigtest_msg.empty())                                                  \
    ;                                                                         \
  else                                                                        \
    fail(minigtest_msg)

#define EXPECT_TRUE(expr) MINIGTEST_BOOL_(expr, true, MINIGTEST_NONFATAL_)
#define EXPECT_FALSE(expr) MINIGTEST_BOOL_(expr, false, MINIGTEST_NONFATAL_)
#define ASSERT_TRUE(expr) MINIGTEST_BOOL_(expr, true, MINIGTEST_FATAL_)
#define ASSERT_FALSE(expr) MINIGTEST_BOOL_(expr, false, MINIGTEST_FATAL_)

#define EXPECT_NEAR(a, b, tol)                                                \
  MINIGTEST_AMBIGUOUS_ELSE_                                                   \
  if (const std::string minigtest_msg = ::testing::internal::CheckNear(       \
          #a, #b, #tol, (a), (b), (tol));                                     \
      minigtest_msg.empty())                                                  \
    ;                                                                         \
  else                                                                        \
    MINIGTEST_NONFATAL_(minigtest_msg)

#define EXPECT_DOUBLE_EQ(a, b)                                                \
  MINIGTEST_AMBIGUOUS_ELSE_                                                   \
  if (const std::string minigtest_msg =                                       \
          ::testing::internal::CheckDoubleEq(#a, #b, (a), (b));               \
      minigtest_msg.empty())                                                  \
    ;                                                                         \
  else                                                                        \
    MINIGTEST_NONFATAL_(minigtest_msg)

// The tested statement is allowed to discard [[nodiscard]] values — the
// point of the assertion is the throw, not the result.
#define MINIGTEST_THROW_(stmt, etype, fail)                                   \
  MINIGTEST_AMBIGUOUS_ELSE_                                                   \
  if ([&]() -> bool {                                                         \
        _Pragma("GCC diagnostic push")                                        \
        _Pragma("GCC diagnostic ignored \"-Wunused-result\"")                 \
        try {                                                                 \
          stmt;                                                               \
        } catch (const etype&) {                                              \
          return true;                                                        \
        } catch (...) {                                                       \
          return false;                                                       \
        }                                                                     \
        return false;                                                         \
        _Pragma("GCC diagnostic pop")                                         \
      }())                                                                    \
    ;                                                                         \
  else                                                                        \
    fail("Expected: " #stmt " throws an exception of type " #etype            \
         ".\n  Actual: it throws a different type or nothing.")

#define EXPECT_THROW(stmt, etype)                                             \
  MINIGTEST_THROW_(stmt, etype, MINIGTEST_NONFATAL_)
#define ASSERT_THROW(stmt, etype) MINIGTEST_THROW_(stmt, etype, MINIGTEST_FATAL_)

#define MINIGTEST_NO_THROW_(stmt, fail)                                       \
  MINIGTEST_AMBIGUOUS_ELSE_                                                   \
  if ([&]() -> bool {                                                         \
        _Pragma("GCC diagnostic push")                                        \
        _Pragma("GCC diagnostic ignored \"-Wunused-result\"")                 \
        try {                                                                 \
          stmt;                                                               \
        } catch (...) {                                                       \
          return false;                                                       \
        }                                                                     \
        return true;                                                          \
        _Pragma("GCC diagnostic pop")                                        \
      }())                                                                    \
    ;                                                                         \
  else                                                                        \
    fail("Expected: " #stmt " doesn't throw an exception.\n"                  \
         "  Actual: it throws.")

#define EXPECT_NO_THROW(stmt) MINIGTEST_NO_THROW_(stmt, MINIGTEST_NONFATAL_)
#define ASSERT_NO_THROW(stmt) MINIGTEST_NO_THROW_(stmt, MINIGTEST_FATAL_)

#define MINIGTEST_CAT_(a, b) a##b
#define MINIGTEST_CAT2_(a, b) MINIGTEST_CAT_(a, b)
#define SCOPED_TRACE(msg)                                                     \
  ::testing::internal::ScopedTrace MINIGTEST_CAT2_(minigtest_trace_,          \
                                                   __COUNTER__)(              \
      __FILE__, __LINE__, (msg))

#define FAIL() MINIGTEST_FATAL_("Failed")
#define ADD_FAILURE() MINIGTEST_NONFATAL_("Failed")
#define SUCCEED() static_cast<void>(0)

#define RUN_ALL_TESTS() ::testing::internal::RunAll()
