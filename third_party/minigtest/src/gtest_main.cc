// Drop-in replacement for googletest's gtest_main: every test binary links
// this translation unit and gets argument parsing + the test runner.
#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
