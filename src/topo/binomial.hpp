// Binomial gather/broadcast trees over ranks [0, n) rooted at 0, used by the
// folklore concatenation baseline (Section 4 intro).  n need not be a power
// of two; the trees are the standard truncated binomial trees.
#pragma once

#include <cstdint>
#include <vector>

namespace bruck::topo {

struct RoundEdge {
  std::int64_t from = 0;
  std::int64_t to = 0;

  friend auto operator<=>(const RoundEdge&, const RoundEdge&) = default;
};

/// Gather rounds: in round i (0-based), ranks r with r mod 2^{i+1} == 2^i
/// send their accumulated segment to r − 2^i.  ⌈log2 n⌉ rounds; after the
/// last, rank 0 holds everything.
[[nodiscard]] std::vector<std::vector<RoundEdge>> binomial_gather_rounds(
    std::int64_t n);

/// Broadcast rounds (reverse of gather): in round j, ranks r with
/// r mod 2^{d−j} == 0 send to r + 2^{d−1−j} (when < n).  ⌈log2 n⌉ rounds;
/// after the last, every rank has the root's data.
[[nodiscard]] std::vector<std::vector<RoundEdge>> binomial_broadcast_rounds(
    std::int64_t n);

/// Size (in blocks) of the contiguous segment [r, …) that rank r owns just
/// before gather round i; the message size of r's send in that round.
[[nodiscard]] std::int64_t binomial_gather_segment(std::int64_t n,
                                                   std::int64_t rank, int round);

}  // namespace bruck::topo
