// Circulant graphs and the round-labelled spanning trees of Section 4.1.
//
// The concatenation algorithm runs on the circulant graph G(n, S) with
// offset set S = S_0 ∪ … ∪ S_{d−2}, S_i = {(k+1)^i, 2(k+1)^i, …, k(k+1)^i}.
// The data of node `root` travels down a spanning tree T_root built round by
// round: in round i, every node already in the tree adds edges with the k
// offsets of S_i.  After d−1 rounds the tree spans exactly the n1 = (k+1)^{d−1}
// nodes root, root+1, …, root+n1−1 (mod n).  T_root is the translation of
// T_0 by root (Fig. 8), which is what makes one schedule serve all n
// broadcasts simultaneously.
//
// The library builds trees with *positive* offsets (node u sends to u + s);
// the executable concatenation algorithm follows Appendix B and uses the
// mirror-image negative offsets.  Tests pin down the correspondence.
#pragma once

#include <cstdint>
#include <vector>

namespace bruck::topo {

/// The circulant graph G(n, S) of the definition in Section 4.
class CirculantGraph {
 public:
  CirculantGraph(std::int64_t n, std::vector<std::int64_t> offsets);

  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] const std::vector<std::int64_t>& offsets() const {
    return offsets_;
  }

  /// True iff u and v are adjacent, i.e. v ≡ u ± s (mod n) for some s ∈ S.
  [[nodiscard]] bool has_edge(std::int64_t u, std::int64_t v) const;

  /// All neighbours of u, deduplicated, ascending.
  [[nodiscard]] std::vector<std::int64_t> neighbors(std::int64_t u) const;

 private:
  std::int64_t n_;
  std::vector<std::int64_t> offsets_;
};

/// The offset set S_i = {(k+1)^i, 2(k+1)^i, …, k(k+1)^i} of round i.
[[nodiscard]] std::vector<std::int64_t> concat_round_offsets(int k, int round);

/// The full offset set S = S_0 ∪ … ∪ S_{d−2} for (n, k), where
/// d = ⌈log_{k+1} n⌉.  Empty when d ≤ 1.
[[nodiscard]] std::vector<std::int64_t> concat_offset_set(std::int64_t n, int k);

/// One directed edge of a round-labelled spanning tree.
struct TreeEdge {
  std::int64_t parent = 0;
  std::int64_t child = 0;
  int round = 0;

  friend auto operator<=>(const TreeEdge&, const TreeEdge&) = default;
};

/// The spanning tree T_root of Section 4.1 for the first d−1 rounds of the
/// concatenation among n nodes with k ports.  Edges are returned sorted by
/// (round, parent, child).  The tree covers root, root+1, …, root+n1−1
/// (mod n) where n1 = (k+1)^{⌈log_{k+1} n⌉ − 1}.
[[nodiscard]] std::vector<TreeEdge> concat_spanning_tree(std::int64_t n, int k,
                                                         std::int64_t root);

/// The full d-round spanning tree of Figures 7–8, defined when n is an exact
/// power of k+1 (then the final round continues the uniform offset pattern
/// S_{d−1} and the tree spans all n nodes).  For n = 9, k = 2, root 0 this
/// is exactly the paper's Figure 7; root 1 gives Figure 8.
[[nodiscard]] std::vector<TreeEdge> concat_full_spanning_tree(std::int64_t n,
                                                              int k,
                                                              std::int64_t root);

}  // namespace bruck::topo
