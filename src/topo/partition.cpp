#include "topo/partition.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::topo {

std::int64_t Area::size() const {
  std::int64_t total = 0;
  for (const AreaCell& c : cells) total += c.size();
  return total;
}

std::int64_t Area::left_col() const {
  BRUCK_REQUIRE(!cells.empty());
  return cells.front().col;
}

std::int64_t Area::right_col() const {
  BRUCK_REQUIRE(!cells.empty());
  return cells.back().col;
}

std::int64_t Area::span() const { return right_col() - left_col() + 1; }

std::int64_t TablePartition::alpha() const {
  if (k == 0) return 0;
  return ceil_div(b * n2, k);
}

std::int64_t TablePartition::max_span() const {
  std::int64_t m = 0;
  for (const Area& area : areas) m = std::max(m, area.span());
  return m;
}

std::int64_t TablePartition::max_size() const {
  std::int64_t m = 0;
  for (const Area& area : areas) m = std::max(m, area.size());
  return m;
}

bool TablePartition::feasible() const {
  return max_span() <= n1 && max_size() <= alpha();
}

std::string TablePartition::check_exact_cover() const {
  // Mark every cell; detect overlaps and gaps.
  std::vector<int> owner(static_cast<std::size_t>(b * n2), -1);
  for (std::size_t ai = 0; ai < areas.size(); ++ai) {
    for (const AreaCell& c : areas[ai].cells) {
      if (c.col < 0 || c.col >= n2 || c.row_begin < 0 || c.row_end > b ||
          c.row_begin >= c.row_end) {
        std::ostringstream os;
        os << "area " << ai << " has an out-of-range cell run (col " << c.col
           << ", rows [" << c.row_begin << ", " << c.row_end << "))";
        return os.str();
      }
      for (std::int64_t row = c.row_begin; row < c.row_end; ++row) {
        auto& slot = owner[static_cast<std::size_t>(c.col * b + row)];
        if (slot != -1) {
          std::ostringstream os;
          os << "cell (col " << c.col << ", row " << row
             << ") covered by areas " << slot << " and " << ai;
          return os.str();
        }
        slot = static_cast<int>(ai);
      }
    }
  }
  for (std::int64_t col = 0; col < n2; ++col) {
    for (std::int64_t row = 0; row < b; ++row) {
      if (owner[static_cast<std::size_t>(col * b + row)] == -1) {
        std::ostringstream os;
        os << "cell (col " << col << ", row " << row << ") uncovered";
        return os.str();
      }
    }
  }
  if (static_cast<int>(areas.size()) > k) return "more than k areas";
  return {};
}

std::string TablePartition::render() const {
  std::vector<int> owner(static_cast<std::size_t>(b * n2), 0);
  for (std::size_t ai = 0; ai < areas.size(); ++ai) {
    for (const AreaCell& c : areas[ai].cells) {
      for (std::int64_t row = c.row_begin; row < c.row_end; ++row) {
        owner[static_cast<std::size_t>(c.col * b + row)] =
            static_cast<int>(ai) + 1;
      }
    }
  }
  std::ostringstream os;
  os << "byte\\node ";
  for (std::int64_t col = 0; col < n2; ++col) {
    os << 'p' << (n1 + col) << ' ';
  }
  os << '\n';
  for (std::int64_t row = 0; row < b; ++row) {
    os << "   " << row << "      ";
    for (std::int64_t col = 0; col < n2; ++col) {
      os << ' ' << owner[static_cast<std::size_t>(col * b + row)] << ' ';
      if (n1 + col >= 10) os << ' ';
    }
    os << '\n';
  }
  return os.str();
}

TablePartition byte_split_partition(std::int64_t n1, std::int64_t n2,
                                    std::int64_t b, int k) {
  BRUCK_REQUIRE(n1 >= 1);
  BRUCK_REQUIRE(n2 >= 0);
  BRUCK_REQUIRE(b >= 1);
  BRUCK_REQUIRE(k >= 1);
  TablePartition p{n1, n2, b, k, {}};
  const std::int64_t total = b * n2;
  if (total == 0) return p;
  // Area m owns the column-major cell range [m·α, min((m+1)·α, T)): each
  // area is filled to exactly α = ⌈T/k⌉ entries before the next one opens,
  // so constraint (2) holds by construction, and cuts align to column
  // boundaries whenever b divides α (in particular for the b ≤ 2 cases the
  // paper singles out as always optimal).  Constraint (1) (span ≤ n1) is
  // what can fail in the paper's stated range; callers check .feasible().
  const std::int64_t alpha = ceil_div(total, k);
  for (int m = 0; m < k; ++m) {
    const std::int64_t begin = std::min<std::int64_t>(m * alpha, total);
    const std::int64_t end = std::min<std::int64_t>((m + 1) * alpha, total);
    if (begin >= end) continue;
    Area area;
    std::int64_t pos = begin;
    while (pos < end) {
      const std::int64_t col = pos / b;
      const std::int64_t row = pos % b;
      const std::int64_t run = std::min(end - pos, b - row);
      area.cells.push_back(AreaCell{col, row, row + run});
      pos += run;
    }
    p.areas.push_back(std::move(area));
  }
  BRUCK_ENSURE_MSG(p.check_exact_cover().empty(), p.check_exact_cover());
  return p;
}

TablePartition column_granular_partition(std::int64_t n1, std::int64_t n2,
                                         std::int64_t b, int k) {
  BRUCK_REQUIRE(n1 >= 1);
  BRUCK_REQUIRE(n2 >= 0);
  BRUCK_REQUIRE(b >= 1);
  BRUCK_REQUIRE(k >= 1);
  TablePartition p{n1, n2, b, k, {}};
  if (n2 == 0) return p;
  // Area m owns whole columns [⌊m·n2/k⌋, ⌊(m+1)·n2/k⌋): at most ⌈n2/k⌉ ≤ n1
  // columns (n2 ≤ k·n1 always holds for the concatenation geometry), so the
  // span constraint can never fail.
  for (int m = 0; m < k; ++m) {
    const std::int64_t begin = static_cast<std::int64_t>(m) * n2 / k;
    const std::int64_t end = static_cast<std::int64_t>(m + 1) * n2 / k;
    if (begin >= end) continue;
    Area area;
    for (std::int64_t col = begin; col < end; ++col) {
      area.cells.push_back(AreaCell{col, 0, b});
    }
    p.areas.push_back(std::move(area));
  }
  BRUCK_ENSURE_MSG(p.check_exact_cover().empty(), p.check_exact_cover());
  return p;
}

// ---------------------------------------------------------------------------
// GroupGeometry

GroupGeometry::GroupGeometry(std::int64_t n, std::int64_t group) : n_(n) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(group >= 1);
  group_ = std::min(group, n);
  groups_ = ceil_div(n_, group_);
}

std::int64_t GroupGeometry::group_of(std::int64_t rank) const {
  BRUCK_REQUIRE(rank >= 0 && rank < n_);
  return rank / group_;
}

std::int64_t GroupGeometry::first(std::int64_t q) const {
  BRUCK_REQUIRE(q >= 0 && q < groups_);
  return q * group_;
}

std::int64_t GroupGeometry::size_of(std::int64_t q) const {
  return std::min(n_, first(q) + group_) - first(q);
}

std::int64_t GroupGeometry::leader_of(std::int64_t rank) const {
  return first(group_of(rank));
}

bool GroupGeometry::is_leader(std::int64_t rank) const {
  return leader_of(rank) == rank;
}

std::int64_t GroupGeometry::local_of(std::int64_t rank) const {
  return rank - leader_of(rank);
}

std::vector<std::int64_t> GroupGeometry::members(std::int64_t q) const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(size_of(q)));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = first(q) + static_cast<std::int64_t>(i);
  }
  return out;
}

std::vector<std::int64_t> GroupGeometry::leaders() const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(groups_));
  for (std::size_t q = 0; q < out.size(); ++q) {
    out[q] = first(static_cast<std::int64_t>(q));
  }
  return out;
}

}  // namespace bruck::topo
