// The table-partitioning construction of Proposition 4.2, which schedules
// the final (partial) round of the concatenation algorithm.
//
// Setting: after the first d−1 rounds every node holds a window of
// n1 = (k+1)^{d−1} consecutive blocks; n2 = n − n1 blocks remain to be
// delivered to each node.  Build a table of b rows (bytes of a block) and
// n2 columns (the still-unspanned nodes of the spanning tree, in circulant
// order) and partition it into at most k *areas* such that
//   (1) each area's column-span is at most n1 (so a single sender within
//       the already-spanned window holds every block the area references),
//   (2) each area has at most α = ⌈b·n2/k⌉ entries (so no port carries more
//       than α bytes in the round).
// Each area is then shipped on its own port with a single circulant offset
// determined by the area's leftmost column (Table 1 of the paper).
//
// The greedy column-major filling implemented here is the paper's
// "straightforward algorithm": it reproduces Table 1 exactly for
// (n1, n2, b, k) = (3, 7, 3, 3), and satisfies both constraints for every
// combination outside the paper's stated range b ≥ 3, k ≥ 3,
// (k+1)^d − k < n < (k+1)^d.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bruck::topo {

/// A maximal run of cells of one area inside one column:
/// rows [row_begin, row_end) of column `col`.
struct AreaCell {
  std::int64_t col = 0;
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;

  [[nodiscard]] std::int64_t size() const { return row_end - row_begin; }
  friend bool operator==(const AreaCell&, const AreaCell&) = default;
};

/// One area A_m of the partition; shipped on one port with circulant offset
/// n1 + left_col().
struct Area {
  std::vector<AreaCell> cells;  ///< ascending column order, non-empty runs

  [[nodiscard]] std::int64_t size() const;      ///< total entries (bytes)
  [[nodiscard]] std::int64_t left_col() const;  ///< L_m
  [[nodiscard]] std::int64_t right_col() const; ///< R_m
  [[nodiscard]] std::int64_t span() const;      ///< R_m − L_m + 1
};

struct TablePartition {
  std::int64_t n1 = 0;
  std::int64_t n2 = 0;
  std::int64_t b = 0;
  int k = 0;
  std::vector<Area> areas;  ///< non-empty areas, ≤ k of them

  /// Max entries allowed per area: α = ⌈b·n2/k⌉.
  [[nodiscard]] std::int64_t alpha() const;

  /// Largest column-span over areas (0 when there are no areas).
  [[nodiscard]] std::int64_t max_span() const;

  /// Largest entry count over areas (0 when there are no areas).
  [[nodiscard]] std::int64_t max_size() const;

  /// True iff every area satisfies both Proposition 4.2 constraints
  /// (span ≤ n1 and size ≤ α).  Column-granular partitions intentionally
  /// relax the size constraint to α + (b−1); check max_span()/max_size()
  /// against the relaxed bound for those.
  [[nodiscard]] bool feasible() const;

  /// Empty when the partition exactly tiles the table and every constraint
  /// holds, otherwise a description of the first defect (used by tests).
  [[nodiscard]] std::string check_exact_cover() const;

  /// Render the partition like the paper's Table 1: a b × n2 grid whose
  /// entry is the 1-based area number.
  [[nodiscard]] std::string render() const;
};

/// The paper's greedy byte-split partition (may violate the span constraint
/// inside the paper's non-optimal range; check .feasible()).
[[nodiscard]] TablePartition byte_split_partition(std::int64_t n1,
                                                  std::int64_t n2,
                                                  std::int64_t b, int k);

/// Whole-column partition: never splits a column across areas.  Always
/// feasible; per-area size at most b·⌈n2/k⌉ ≤ α + (b−1).
[[nodiscard]] TablePartition column_granular_partition(std::int64_t n1,
                                                       std::int64_t n2,
                                                       std::int64_t b, int k);

/// Contiguous leader-model processor partition: n ranks split into
/// ⌈n/group⌉ groups of nominal size `group` (the last group takes the
/// remainder).  Group q spans global ranks [q·group, min(n, (q+1)·group));
/// its leader is the group's first rank.  Leaders are therefore
/// {0, group, 2·group, …} — the rank set of the inter-leader exchange of
/// the hierarchical two-level collectives.
///
/// Degenerates are first-class: group = 1 makes every rank its own leader
/// (the inter stage is the flat collective), group ≥ n makes one group of
/// n (the inter stage is trivial).
struct GroupGeometry {
  GroupGeometry(std::int64_t n, std::int64_t group);

  [[nodiscard]] std::int64_t n() const { return n_; }
  /// Nominal group size (clamped to [1, n] at construction).
  [[nodiscard]] std::int64_t group() const { return group_; }
  /// Number of groups G = ⌈n / group⌉.
  [[nodiscard]] std::int64_t groups() const { return groups_; }
  /// Group index of a global rank.
  [[nodiscard]] std::int64_t group_of(std::int64_t rank) const;
  /// First global rank (= the leader) of group q.
  [[nodiscard]] std::int64_t first(std::int64_t q) const;
  /// Size of group q (= group(), except possibly the last group).
  [[nodiscard]] std::int64_t size_of(std::int64_t q) const;
  /// Largest group size — the nominal size, i.e. group().
  [[nodiscard]] std::int64_t max_size() const { return group_; }
  /// Leader (first rank) of the group containing `rank`.
  [[nodiscard]] std::int64_t leader_of(std::int64_t rank) const;
  [[nodiscard]] bool is_leader(std::int64_t rank) const;
  /// Intra-group rank: rank − first(group_of(rank)).
  [[nodiscard]] std::int64_t local_of(std::int64_t rank) const;
  /// Global ranks of group q, ascending.
  [[nodiscard]] std::vector<std::int64_t> members(std::int64_t q) const;
  /// Global ranks of all leaders, ascending (one per group).
  [[nodiscard]] std::vector<std::int64_t> leaders() const;

  friend bool operator==(const GroupGeometry&, const GroupGeometry&) = default;

 private:
  std::int64_t n_ = 1;
  std::int64_t group_ = 1;
  std::int64_t groups_ = 1;
};

}  // namespace bruck::topo
