#include "topo/binomial.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::topo {

std::vector<std::vector<RoundEdge>> binomial_gather_rounds(std::int64_t n) {
  BRUCK_REQUIRE(n >= 1);
  const int d = n == 1 ? 0 : ceil_log(n, 2);
  std::vector<std::vector<RoundEdge>> rounds;
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    std::vector<RoundEdge> edges;
    for (std::int64_t r = stride; r < n; r += 2 * stride) {
      edges.push_back(RoundEdge{r, r - stride});
    }
    rounds.push_back(std::move(edges));
  }
  return rounds;
}

std::vector<std::vector<RoundEdge>> binomial_broadcast_rounds(std::int64_t n) {
  BRUCK_REQUIRE(n >= 1);
  const int d = n == 1 ? 0 : ceil_log(n, 2);
  std::vector<std::vector<RoundEdge>> rounds;
  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    std::vector<RoundEdge> edges;
    for (std::int64_t r = 0; r + stride < n; r += 2 * stride) {
      edges.push_back(RoundEdge{r, r + stride});
    }
    rounds.push_back(std::move(edges));
  }
  // Rounds at the top of a truncated tree can be empty for small n (e.g.
  // n = 3 has no round where stride = 2 sends exist? it does: 0 -> 2).
  // Remove genuinely empty rounds so C1 is not overcounted.
  rounds.erase(std::remove_if(rounds.begin(), rounds.end(),
                              [](const auto& e) { return e.empty(); }),
               rounds.end());
  return rounds;
}

std::int64_t binomial_gather_segment(std::int64_t n, std::int64_t rank,
                                     int round) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  BRUCK_REQUIRE(round >= 0);
  // Before round i, rank r owns [r, min(r + 2^i, next sibling, n)).
  // Because sends so far merged [r, r + 2^i): the segment is capped by n.
  const std::int64_t stride = ipow(2, round);
  return std::max<std::int64_t>(
      0, std::min(rank + stride, n) - rank);
}

}  // namespace bruck::topo
