#include "topo/circulant.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::topo {

CirculantGraph::CirculantGraph(std::int64_t n, std::vector<std::int64_t> offsets)
    : n_(n), offsets_(std::move(offsets)) {
  BRUCK_REQUIRE(n >= 1);
  for (std::int64_t s : offsets_) BRUCK_REQUIRE(s >= 1 && s < n);
  std::sort(offsets_.begin(), offsets_.end());
  offsets_.erase(std::unique(offsets_.begin(), offsets_.end()), offsets_.end());
}

bool CirculantGraph::has_edge(std::int64_t u, std::int64_t v) const {
  BRUCK_REQUIRE(u >= 0 && u < n_);
  BRUCK_REQUIRE(v >= 0 && v < n_);
  if (u == v) return false;
  for (std::int64_t s : offsets_) {
    if (pos_mod(u + s, n_) == v || pos_mod(u - s, n_) == v) return true;
  }
  return false;
}

std::vector<std::int64_t> CirculantGraph::neighbors(std::int64_t u) const {
  BRUCK_REQUIRE(u >= 0 && u < n_);
  std::set<std::int64_t> out;
  for (std::int64_t s : offsets_) {
    out.insert(pos_mod(u + s, n_));
    out.insert(pos_mod(u - s, n_));
  }
  out.erase(u);
  return {out.begin(), out.end()};
}

std::vector<std::int64_t> concat_round_offsets(int k, int round) {
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(round >= 0);
  const std::int64_t base = ipow(k + 1, round);
  std::vector<std::int64_t> s;
  s.reserve(static_cast<std::size_t>(k));
  for (int j = 1; j <= k; ++j) s.push_back(j * base);
  return s;
}

std::vector<std::int64_t> concat_offset_set(std::int64_t n, int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  const int d = ceil_log(n, k + 1);
  std::vector<std::int64_t> all;
  for (int i = 0; i + 1 < d; ++i) {
    const std::vector<std::int64_t> si = concat_round_offsets(k, i);
    all.insert(all.end(), si.begin(), si.end());
  }
  return all;
}

namespace {

/// Shared construction: rounds 0..rounds−1 of T_root in relative
/// coordinates.  After round i the tree is exactly the interval
/// [0, (k+1)^{i+1}): a node u < (k+1)^i adds children u + j·(k+1)^i for
/// j = 1..k; every child is new because its digit i in base (k+1) is j ≠ 0
/// while all of u's digits ≥ i are 0.
std::vector<TreeEdge> build_tree_rounds(std::int64_t n, int k,
                                        std::int64_t root, int rounds) {
  std::vector<TreeEdge> edges;
  for (int i = 0; i < rounds; ++i) {
    const std::int64_t base = ipow(k + 1, i);
    for (std::int64_t u = 0; u < base; ++u) {
      for (int j = 1; j <= k; ++j) {
        const std::int64_t child = u + j * base;
        edges.push_back(
            TreeEdge{pos_mod(root + u, n), pos_mod(root + child, n), i});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const TreeEdge& a, const TreeEdge& b) {
              return std::tie(a.round, a.parent, a.child) <
                     std::tie(b.round, b.parent, b.child);
            });
  return edges;
}

}  // namespace

std::vector<TreeEdge> concat_spanning_tree(std::int64_t n, int k,
                                           std::int64_t root) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(root >= 0 && root < n);
  const int d = ceil_log(n, k + 1);
  return build_tree_rounds(n, k, root, d - 1);
}

std::vector<TreeEdge> concat_full_spanning_tree(std::int64_t n, int k,
                                                std::int64_t root) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(root >= 0 && root < n);
  const int d = ceil_log(n, k + 1);
  BRUCK_REQUIRE_MSG(ipow(k + 1, d) == n,
                    "the full uniform tree exists only for n = (k+1)^d");
  return build_tree_rounds(n, k, root, d);
}

}  // namespace bruck::topo
