// Aligned-column ASCII tables for the benchmark harness output.  The figure
// and table benches print the same rows/series the paper reports; this
// printer keeps them readable in a terminal and in the captured
// bench_output.txt.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bruck {

class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format arithmetic cells with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with a header rule and per-column alignment (numbers right).
  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

namespace detail {
std::string cell_to_string(const std::string& v);
std::string cell_to_string(const char* v);
std::string cell_to_string(double v);
std::string cell_to_string(std::int64_t v);
std::string cell_to_string(int v);
std::string cell_to_string(std::size_t v);
}  // namespace detail

template <typename... Ts>
void TextTable::add(const Ts&... cells) {
  add_row({detail::cell_to_string(cells)...});
}

}  // namespace bruck
