// Summary statistics for wall-clock benchmark samples.
#pragma once

#include <cstddef>
#include <span>

namespace bruck {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample standard deviation (n−1 denominator)
};

/// Compute summary statistics of a non-empty sample.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Linear-interpolated percentile p ∈ [0, 100] of a non-empty sample.
[[nodiscard]] double percentile(std::span<const double> samples, double p);

}  // namespace bruck
