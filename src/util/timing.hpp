// Minimal wall-clock probe for examples and tools: best-of-N milliseconds
// of a callable — the usual defense against scheduler noise when printing
// a single comparison line.  (Benchmarks proper use google-benchmark.)
#pragma once

#include <algorithm>
#include <chrono>

namespace bruck {

template <typename F>
double best_of_ms(int reps, F&& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace bruck
