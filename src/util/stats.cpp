#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace bruck {

Summary summarize(std::span<const double> samples) {
  BRUCK_REQUIRE(!samples.empty());
  Summary s;
  s.count = samples.size();
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  s.median = percentile(sorted, 50.0);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double percentile(std::span<const double> samples, double p) {
  BRUCK_REQUIRE(!samples.empty());
  BRUCK_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace bruck
