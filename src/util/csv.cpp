#include "util/csv.hpp"

#include <ostream>

#include "util/assert.hpp"

namespace bruck {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), ncols_(headers.size()) {
  BRUCK_REQUIRE(ncols_ > 0);
  row(headers);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  BRUCK_REQUIRE(cells.size() == ncols_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace bruck
