// Contract-checking macros (C++ Core Guidelines I.6/I.8 style Expects/Ensures).
//
// BRUCK_REQUIRE checks a precondition, BRUCK_ENSURE a postcondition or
// internal invariant.  Both are always on: the library's correctness story
// rests on cross-checking three independent derivations of each algorithm
// (executed trace, built schedule, closed-form cost), and silently disabled
// checks would defeat that.  Violations throw `bruck::ContractViolation` so
// tests can assert on misuse, rather than aborting the whole test binary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bruck {

/// Thrown when a BRUCK_REQUIRE/BRUCK_ENSURE contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace bruck

#define BRUCK_REQUIRE(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::bruck::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__, std::string{});               \
  } while (false)

#define BRUCK_REQUIRE_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond))                                                             \
      ::bruck::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__, (msg));                       \
  } while (false)

#define BRUCK_ENSURE(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::bruck::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                     std::string{});                         \
  } while (false)

#define BRUCK_ENSURE_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond))                                                             \
      ::bruck::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, \
                                     (msg));                                 \
  } while (false)
