#include "util/radix.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck {

int radix_digit_count(std::int64_t n, std::int64_t r) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(r >= 2);
  return ceil_log(n, r);
}

std::int64_t radix_digit(std::int64_t v, std::int64_t r, int x) {
  BRUCK_REQUIRE(v >= 0);
  BRUCK_REQUIRE(r >= 2);
  BRUCK_REQUIRE(x >= 0);
  return (v / ipow(r, x)) % r;
}

std::vector<std::int64_t> radix_digits(std::int64_t v, std::int64_t r, int w) {
  BRUCK_REQUIRE(v >= 0);
  BRUCK_REQUIRE(r >= 2);
  BRUCK_REQUIRE(w >= 0);
  std::vector<std::int64_t> digits(static_cast<std::size_t>(w));
  for (int x = 0; x < w; ++x) {
    digits[static_cast<std::size_t>(x)] = v % r;
    v /= r;
  }
  BRUCK_ENSURE_MSG(v == 0, "value does not fit in w radix-r digits");
  return digits;
}

std::int64_t radix_compose(const std::vector<std::int64_t>& digits,
                           std::int64_t r) {
  BRUCK_REQUIRE(r >= 2);
  std::int64_t v = 0;
  for (std::size_t i = digits.size(); i-- > 0;) {
    BRUCK_REQUIRE(digits[i] >= 0 && digits[i] < r);
    v = v * r + digits[i];
  }
  return v;
}

std::int64_t radix_subphase_height(std::int64_t n, std::int64_t r, int x) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(r >= 2);
  BRUCK_REQUIRE(x >= 0);
  const std::int64_t dist = ipow(r, x);
  const std::int64_t h = ceil_div(n, dist);
  return h < r ? h : r;
}

std::int64_t radix_digit_census(std::int64_t n, std::int64_t r, int x,
                                std::int64_t z) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(r >= 2);
  BRUCK_REQUIRE(x >= 0);
  BRUCK_REQUIRE(z >= 0 && z < r);
  // Values j ∈ [0, n) with ⌊j / r^x⌋ mod r == z.  Writing j = q·r^{x+1} +
  // z·r^x + t with t ∈ [0, r^x): count the j below n directly.
  const std::int64_t lo = ipow(r, x);
  std::int64_t count = 0;
  const std::int64_t period = lo * r;
  const std::int64_t full_periods = n / period;
  count = full_periods * lo;
  const std::int64_t rem = n % period;  // partial period [0, rem)
  const std::int64_t band_lo = z * lo;  // digit==z band within the period
  if (rem > band_lo) {
    const std::int64_t in_band = rem - band_lo;
    count += in_band < lo ? in_band : lo;
  }
  return count;
}

std::int64_t radix_max_census(std::int64_t n, std::int64_t r) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(r >= 2);
  const int w = radix_digit_count(n, r);
  std::int64_t best = 0;
  for (int x = 0; x < w; ++x) {
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z = 1; z < h; ++z) {
      const std::int64_t c = radix_digit_census(n, r, x, z);
      best = best < c ? c : best;
    }
  }
  return best;
}

std::vector<std::int64_t> radix_digit_members(std::int64_t n, std::int64_t r,
                                              int x, std::int64_t z) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(r >= 2);
  BRUCK_REQUIRE(x >= 0);
  BRUCK_REQUIRE(z >= 0 && z < r);
  std::vector<std::int64_t> members;
  members.reserve(static_cast<std::size_t>(radix_digit_census(n, r, x, z)));
  for (std::int64_t j = 0; j < n; ++j) {
    if (radix_digit(j, r, x) == z) members.push_back(j);
  }
  BRUCK_ENSURE(static_cast<std::int64_t>(members.size()) ==
               radix_digit_census(n, r, x, z));
  return members;
}

}  // namespace bruck
