// Minimal CSV emission for figure series so bench output can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bruck {

class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  /// Append a data row; must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Quote-and-escape a single cell per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
  std::size_t ncols_;
};

}  // namespace bruck
