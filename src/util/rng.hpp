// Deterministic pseudo-random generator for test payloads and workload
// generators.  SplitMix64: tiny, fast, passes BigCrush for this use, and —
// crucially for the cross-rank content checks in tests — every rank can
// regenerate any other rank's payload from (seed, rank, block) alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bruck {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound); bound ≥ 1.
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::uint64_t state_;
};

/// Fill `out` with bytes derived deterministically from `seed`.
void fill_random_bytes(std::span<std::byte> out, std::uint64_t seed);

/// The canonical payload byte for (seed, source rank, block id, offset).
/// Tests use this to verify *content* of delivered blocks, not just sizes,
/// without holding all n² blocks in one place.
[[nodiscard]] std::byte payload_byte(std::uint64_t seed, std::int64_t src,
                                     std::int64_t block, std::size_t offset);

/// Fill a block's payload with payload_byte values.
void fill_payload(std::span<std::byte> out, std::uint64_t seed,
                  std::int64_t src, std::int64_t block);

}  // namespace bruck
