// Small integer helpers shared by the cost formulas, the schedule builders
// and the collective implementations.  All functions are total over their
// stated preconditions and check them via BRUCK_REQUIRE.
#pragma once

#include <cstdint>

namespace bruck {

/// ⌈a / b⌉ for non-negative a, positive b.
[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// base^exp with overflow detection (throws ContractViolation on overflow).
/// exp ≥ 0, base ≥ 0.
[[nodiscard]] std::int64_t ipow(std::int64_t base, int exp);

/// ⌈log_base(x)⌉ for x ≥ 1, base ≥ 2: the least w with base^w ≥ x.
/// This is the paper's ⌈log_r n⌉ (number of radix-r digits needed for
/// values 0..x−1, except that x = 1 yields 0 digits).
[[nodiscard]] int ceil_log(std::int64_t x, std::int64_t base);

/// ⌊log_base(x)⌋ for x ≥ 1, base ≥ 2: the greatest w with base^w ≤ x.
[[nodiscard]] int floor_log(std::int64_t x, std::int64_t base);

/// True iff x is a power of two (x ≥ 1).
[[nodiscard]] bool is_pow2(std::int64_t x);

/// x mod m mapped into [0, m), correct for negative x (the paper's `mod`).
[[nodiscard]] std::int64_t pos_mod(std::int64_t x, std::int64_t m);

}  // namespace bruck
