// Radix-r digit arithmetic for the index algorithm (Section 3.2 of the paper).
//
// The index algorithm encodes each block-id j ∈ [0, n) in radix-r using
// w = ⌈log_r n⌉ digits.  Subphase x of Phase 2 handles digit x: every block
// whose digit x equals z is rotated z·r^x positions.  These helpers are the
// single source of truth for that decomposition; the collective
// implementation, the schedule builder and the cost formulas all call them,
// so the three derivations cannot drift apart on digit conventions.
#pragma once

#include <cstdint>
#include <vector>

namespace bruck {

/// Number of radix-r digits used by the index algorithm for n blocks:
/// w = ⌈log_r n⌉ (0 when n == 1: a single block needs no rotation).
[[nodiscard]] int radix_digit_count(std::int64_t n, std::int64_t r);

/// Digit x (0 = least significant) of value v in radix r.
[[nodiscard]] std::int64_t radix_digit(std::int64_t v, std::int64_t r, int x);

/// All w digits of v in radix r, least significant first.
[[nodiscard]] std::vector<std::int64_t> radix_digits(std::int64_t v,
                                                     std::int64_t r, int w);

/// Reassemble a value from its radix-r digits (inverse of radix_digits).
[[nodiscard]] std::int64_t radix_compose(const std::vector<std::int64_t>& digits,
                                         std::int64_t r);

/// Number of digit values that actually occur in subphase x for n blocks:
/// h = min(r, ⌈n / r^x⌉).  Step z of subphase x exists for 1 ≤ z ≤ h−1.
/// This is the `h` of Appendix A lines 7–11, generalized to every subphase
/// (for non-final subphases ⌈n / r^x⌉ ≥ r so h = r).
[[nodiscard]] std::int64_t radix_subphase_height(std::int64_t n, std::int64_t r,
                                                 int x);

/// Count of block-ids j ∈ [0, n) whose digit x in radix r equals z.
/// This is the number of blocks packed into one message in step (x, z) of
/// Phase 2, hence the message size in that communication round is
/// b · radix_digit_census(n, r, x, z).
[[nodiscard]] std::int64_t radix_digit_census(std::int64_t n, std::int64_t r,
                                              int x, std::int64_t z);

/// The block-ids counted by radix_digit_census, in increasing order.
/// The pack/unpack routines and the schedule builder both iterate this.
[[nodiscard]] std::vector<std::int64_t> radix_digit_members(std::int64_t n,
                                                            std::int64_t r,
                                                            int x,
                                                            std::int64_t z);

/// The largest census over all (subphase, step) pairs — the exact maximum
/// number of blocks any single Phase-2 message carries.
///
/// Note: Section 3.2 states the bound ⌈n/r⌉, which is exact whenever n is a
/// power of r but can be exceeded by the truncated top digit otherwise
/// (e.g. n = 16, r = 3: the top subphase moves the 7 blocks 9..15 at once,
/// while ⌈16/3⌉ = 6).  Buffer sizing and the benches use this exact value;
/// see EXPERIMENTS.md for the discussion.
[[nodiscard]] std::int64_t radix_max_census(std::int64_t n, std::int64_t r);

}  // namespace bruck
