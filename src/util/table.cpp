#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace bruck {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BRUCK_REQUIRE(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  BRUCK_REQUIRE_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool any_digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != 'x') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  std::vector<bool> numeric(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < ncols; ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < ncols; ++c) {
      os << "| ";
      const bool right = align_numeric && numeric[c];
      os << (right ? std::right : std::left) << std::setw(static_cast<int>(width[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  emit(headers_, /*align_numeric=*/false);
  rule();
  for (const auto& row : rows_) emit(row, /*align_numeric=*/true);
  rule();
}

std::string TextTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

namespace detail {

std::string cell_to_string(const std::string& v) { return v; }
std::string cell_to_string(const char* v) { return std::string(v); }

std::string cell_to_string(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

std::string cell_to_string(std::int64_t v) { return std::to_string(v); }
std::string cell_to_string(int v) { return std::to_string(v); }
std::string cell_to_string(std::size_t v) { return std::to_string(v); }

}  // namespace detail

}  // namespace bruck
