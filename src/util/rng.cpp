#include "util/rng.hpp"

#include "util/assert.hpp"

namespace bruck {

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  BRUCK_REQUIRE(bound >= 1);
  // Rejection sampling to avoid modulo bias; the loop is expected to run
  // just over once on average.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

void fill_random_bytes(std::span<std::byte> out, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t word = rng.next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::byte>(word & 0xff);
      word >>= 8;
    }
  }
}

std::byte payload_byte(std::uint64_t seed, std::int64_t src, std::int64_t block,
                       std::size_t offset) {
  // One SplitMix64 step keyed by all four coordinates: cheap and collision-
  // resistant enough that a misrouted block is virtually certain to differ.
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(src) * 0x100000001b3ULL) ^
                 (static_cast<std::uint64_t>(block) << 20) ^
                 (static_cast<std::uint64_t>(offset) << 42));
  return static_cast<std::byte>(rng.next() & 0xff);
}

void fill_payload(std::span<std::byte> out, std::uint64_t seed, std::int64_t src,
                  std::int64_t block) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = payload_byte(seed, src, block, i);
  }
}

}  // namespace bruck
