#include "util/math.hpp"

#include <limits>

#include "util/assert.hpp"

namespace bruck {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  BRUCK_REQUIRE(a >= 0);
  BRUCK_REQUIRE(b > 0);
  return (a + b - 1) / b;
}

std::int64_t ipow(std::int64_t base, int exp) {
  BRUCK_REQUIRE(base >= 0);
  BRUCK_REQUIRE(exp >= 0);
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) {
    BRUCK_ENSURE_MSG(base == 0 ||
                         result <= std::numeric_limits<std::int64_t>::max() / (base == 0 ? 1 : base),
                     "ipow overflow");
    result *= base;
  }
  return result;
}

int ceil_log(std::int64_t x, std::int64_t base) {
  BRUCK_REQUIRE(x >= 1);
  BRUCK_REQUIRE(base >= 2);
  int w = 0;
  std::int64_t p = 1;
  while (p < x) {
    // p grows geometrically, so this terminates in O(log x) steps; guard the
    // multiply so pathological (x near INT64_MAX) inputs fail loudly.
    BRUCK_ENSURE_MSG(p <= std::numeric_limits<std::int64_t>::max() / base,
                     "ceil_log overflow");
    p *= base;
    ++w;
  }
  return w;
}

int floor_log(std::int64_t x, std::int64_t base) {
  BRUCK_REQUIRE(x >= 1);
  BRUCK_REQUIRE(base >= 2);
  int w = 0;
  std::int64_t p = base;
  while (p <= x) {
    if (p > std::numeric_limits<std::int64_t>::max() / base) return w + 1;
    p *= base;
    ++w;
  }
  return w;
}

bool is_pow2(std::int64_t x) {
  BRUCK_REQUIRE(x >= 1);
  return (x & (x - 1)) == 0;
}

std::int64_t pos_mod(std::int64_t x, std::int64_t m) {
  BRUCK_REQUIRE(m > 0);
  std::int64_t r = x % m;
  return r < 0 ? r + m : r;
}

}  // namespace bruck
