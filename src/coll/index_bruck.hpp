// The index operation (all-to-all personalized communication /
// MPI_Alltoall) — the class of algorithms of Section 3 of the paper.
//
// Among n processors, processor i starts with n blocks B[i,0..n) of b bytes
// and ends with blocks B[0..n, i].  The algorithm is parameterized by a
// radix r ∈ [2, n]:
//
//   Phase 1 (local):  rotate the n blocks i positions upwards, so the block
//                     destined for rank (i + s) mod n sits in slot s.
//   Phase 2 (comm):   w = ⌈log_r n⌉ subphases, one per radix-r digit of the
//                     remaining rotation distance.  In subphase x, step z
//                     sends every block whose digit x equals z a distance of
//                     z·r^x: all such blocks are packed into one message to
//                     rank (i + z·r^x) mod n.  With k ports, up to k steps
//                     of a subphase run in one round (Section 3.4).
//   Phase 3 (local):  re-index slot s (which traveled distance s from rank
//                     (i − s) mod n) into output block (i − s) mod n.
//
// Measures: C1 = Σ_x ⌈(h_x−1)/k⌉ ≤ ⌈(r−1)/k⌉·⌈log_r n⌉ rounds and
// C2 ≤ (b/k')·… — exactly the values computed by model::index_bruck_cost,
// which tests assert against the executed trace of this implementation.
//
// r = 2 gives the C1-optimal special case (⌈log2 n⌉ rounds at k = 1);
// r = n gives the C2-optimal special case (b(n−1) bytes, n−1 rounds).
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct IndexBruckOptions {
  /// Radix r ∈ [2, max(2, n)].
  std::int64_t radix = 2;
  /// First global round index to use (for composing collectives).
  int start_round = 0;
};

/// Run the index operation.  `send` holds n blocks of block_bytes (block j
/// destined for rank j); `recv` receives n blocks (block i originating at
/// rank i).  Buffers must not alias.  Returns the next free round index.
///
/// Blocking: returns once all of this rank's receives have landed (each
/// round runs through Communicator::exchange).  Thread safety: SPMD — call
/// once per rank thread with rank-local buffers.  Trace: one send event
/// per nonzero message, at its declared round.
int index_bruck(mps::Communicator& comm, std::span<const std::byte> send,
                std::span<std::byte> recv, std::int64_t block_bytes,
                const IndexBruckOptions& options = {});

}  // namespace bruck::coll
