#include "coll/concat_ring.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

int concat_ring(mps::Communicator& comm, std::span<const std::byte> send,
                std::span<std::byte> recv, std::int64_t block_bytes,
                const ConcatRingOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);

  int round = options.start_round;
  if (b > 0) {
    std::memcpy(recv.data() + rank * b, send.data(),
                static_cast<std::size_t>(b));
  }
  if (n == 1 || b == 0) return round;

  const std::int64_t succ = pos_mod(rank + 1, n);
  const std::int64_t pred = pos_mod(rank - 1, n);
  for (std::int64_t t = 0; t < n - 1; ++t) {
    const std::int64_t out_block = pos_mod(rank - t, n);
    const std::int64_t in_block = pos_mod(rank - t - 1, n);
    comm.send_and_recv(round++,
                       std::span<const std::byte>(
                           recv.data() + out_block * b,
                           static_cast<std::size_t>(b)),
                       succ,
                       std::span<std::byte>(recv.data() + in_block * b,
                                            static_cast<std::size_t>(b)),
                       pred);
  }
  return round;
}

}  // namespace bruck::coll
