#include "coll/blocks.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

BlockSpan::BlockSpan(std::span<std::byte> bytes, std::int64_t count,
                     std::int64_t block_bytes)
    : bytes_(bytes), count_(count), block_bytes_(block_bytes) {
  BRUCK_REQUIRE(count >= 0);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(bytes.size()) == count * block_bytes,
      "buffer size must be exactly count * block_bytes");
}

std::span<std::byte> BlockSpan::block(std::int64_t i) const {
  BRUCK_REQUIRE(i >= 0 && i < count_);
  return bytes_.subspan(static_cast<std::size_t>(i * block_bytes_),
                        static_cast<std::size_t>(block_bytes_));
}

std::span<std::byte> BlockSpan::blocks(std::int64_t first,
                                       std::int64_t n) const {
  BRUCK_REQUIRE(first >= 0 && n >= 0 && first + n <= count_);
  return bytes_.subspan(static_cast<std::size_t>(first * block_bytes_),
                        static_cast<std::size_t>(n * block_bytes_));
}

ConstBlockSpan::ConstBlockSpan(std::span<const std::byte> bytes,
                               std::int64_t count, std::int64_t block_bytes)
    : bytes_(bytes), count_(count), block_bytes_(block_bytes) {
  BRUCK_REQUIRE(count >= 0);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(bytes.size()) == count * block_bytes,
      "buffer size must be exactly count * block_bytes");
}

std::span<const std::byte> ConstBlockSpan::block(std::int64_t i) const {
  BRUCK_REQUIRE(i >= 0 && i < count_);
  return bytes_.subspan(static_cast<std::size_t>(i * block_bytes_),
                        static_cast<std::size_t>(block_bytes_));
}

namespace {

void copy_block(std::span<const std::byte> from, std::span<std::byte> to) {
  BRUCK_REQUIRE(from.size() == to.size());
  if (!from.empty()) std::memcpy(to.data(), from.data(), from.size());
}

}  // namespace

void rotate_blocks_up(ConstBlockSpan src, BlockSpan dst, std::int64_t steps) {
  const std::int64_t n = src.count();
  BRUCK_REQUIRE(dst.count() == n);
  BRUCK_REQUIRE(dst.block_bytes() == src.block_bytes());
  if (n == 0 || src.block_bytes() == 0) return;
  // Appendix A lines 3–4 realize this rotation as exactly two bulk copies;
  // do the same (it is the whole local cost of Phase 1).
  const std::int64_t s = pos_mod(steps, n);
  const std::int64_t b = src.block_bytes();
  std::memcpy(dst.bytes().data(), src.bytes().data() + s * b,
              static_cast<std::size_t>((n - s) * b));
  if (s > 0) {
    std::memcpy(dst.bytes().data() + (n - s) * b, src.bytes().data(),
                static_cast<std::size_t>(s * b));
  }
}

void unrotate_by_rank(ConstBlockSpan src, BlockSpan dst, std::int64_t rank) {
  const std::int64_t n = src.count();
  BRUCK_REQUIRE(dst.count() == n);
  BRUCK_REQUIRE(dst.block_bytes() == src.block_bytes());
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  for (std::int64_t i = 0; i < n; ++i) {
    copy_block(src.block(pos_mod(rank - i, n)), dst.block(i));
  }
}

void rotate_window_to_origin(ConstBlockSpan src, BlockSpan dst,
                             std::int64_t rank) {
  const std::int64_t n = src.count();
  BRUCK_REQUIRE(dst.count() == n);
  BRUCK_REQUIRE(dst.block_bytes() == src.block_bytes());
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  for (std::int64_t t = 0; t < n; ++t) {
    copy_block(src.block(t), dst.block(pos_mod(rank + t, n)));
  }
}

}  // namespace bruck::coll
