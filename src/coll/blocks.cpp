#include "coll/blocks.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

BlockSpan::BlockSpan(std::span<std::byte> bytes, std::int64_t count,
                     std::int64_t block_bytes)
    : bytes_(bytes), count_(count), block_bytes_(block_bytes) {
  BRUCK_REQUIRE(count >= 0);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(bytes.size()) == count * block_bytes,
      "buffer size must be exactly count * block_bytes");
}

std::span<std::byte> BlockSpan::block(std::int64_t i) const {
  BRUCK_REQUIRE(i >= 0 && i < count_);
  return bytes_.subspan(static_cast<std::size_t>(i * block_bytes_),
                        static_cast<std::size_t>(block_bytes_));
}

std::span<std::byte> BlockSpan::blocks(std::int64_t first,
                                       std::int64_t n) const {
  BRUCK_REQUIRE(first >= 0 && n >= 0 && first + n <= count_);
  return bytes_.subspan(static_cast<std::size_t>(first * block_bytes_),
                        static_cast<std::size_t>(n * block_bytes_));
}

ConstBlockSpan::ConstBlockSpan(std::span<const std::byte> bytes,
                               std::int64_t count, std::int64_t block_bytes)
    : bytes_(bytes), count_(count), block_bytes_(block_bytes) {
  BRUCK_REQUIRE(count >= 0);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(bytes.size()) == count * block_bytes,
      "buffer size must be exactly count * block_bytes");
}

std::span<const std::byte> ConstBlockSpan::block(std::int64_t i) const {
  BRUCK_REQUIRE(i >= 0 && i < count_);
  return bytes_.subspan(static_cast<std::size_t>(i * block_bytes_),
                        static_cast<std::size_t>(block_bytes_));
}

namespace {

void copy_block(std::span<const std::byte> from, std::span<std::byte> to) {
  BRUCK_REQUIRE(from.size() == to.size());
  if (!from.empty()) std::memcpy(to.data(), from.data(), from.size());
}

}  // namespace

void rotate_blocks_up(ConstBlockSpan src, BlockSpan dst, std::int64_t steps) {
  const std::int64_t n = src.count();
  BRUCK_REQUIRE(dst.count() == n);
  BRUCK_REQUIRE(dst.block_bytes() == src.block_bytes());
  if (n == 0 || src.block_bytes() == 0) return;
  // Appendix A lines 3–4 realize this rotation as exactly two bulk copies;
  // do the same (it is the whole local cost of Phase 1).
  const std::int64_t s = pos_mod(steps, n);
  const std::int64_t b = src.block_bytes();
  std::memcpy(dst.bytes().data(), src.bytes().data() + s * b,
              static_cast<std::size_t>((n - s) * b));
  if (s > 0) {
    std::memcpy(dst.bytes().data() + (n - s) * b, src.bytes().data(),
                static_cast<std::size_t>(s * b));
  }
}

void unrotate_by_rank(ConstBlockSpan src, BlockSpan dst, std::int64_t rank) {
  const std::int64_t n = src.count();
  BRUCK_REQUIRE(dst.count() == n);
  BRUCK_REQUIRE(dst.block_bytes() == src.block_bytes());
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  for (std::int64_t i = 0; i < n; ++i) {
    copy_block(src.block(pos_mod(rank - i, n)), dst.block(i));
  }
}

void rotate_window_to_origin(ConstBlockSpan src, BlockSpan dst,
                             std::int64_t rank) {
  const std::int64_t n = src.count();
  BRUCK_REQUIRE(dst.count() == n);
  BRUCK_REQUIRE(dst.block_bytes() == src.block_bytes());
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  for (std::int64_t t = 0; t < n; ++t) {
    copy_block(src.block(t), dst.block(pos_mod(rank + t, n)));
  }
}

namespace {

void copy_var(const std::byte* from, std::byte* to, std::int64_t bytes) {
  if (bytes > 0) std::memcpy(to, from, static_cast<std::size_t>(bytes));
}

}  // namespace

void rotate_varblocks_to_padded(std::span<const std::byte> src,
                                std::span<const std::int64_t> displs,
                                std::span<const std::int64_t> sizes,
                                std::span<std::byte> padded,
                                std::int64_t pad_bytes, std::int64_t steps) {
  const std::int64_t n = static_cast<std::int64_t>(displs.size());
  BRUCK_REQUIRE(static_cast<std::int64_t>(sizes.size()) == n);
  BRUCK_REQUIRE(pad_bytes >= 0);
  if (n == 0) return;
  BRUCK_REQUIRE(static_cast<std::int64_t>(padded.size()) >= n * pad_bytes);
  for (std::int64_t s = 0; s < n; ++s) {
    const std::int64_t j = pos_mod(s + steps, n);
    BRUCK_REQUIRE(sizes[j] <= pad_bytes);
    BRUCK_REQUIRE(static_cast<std::int64_t>(src.size()) >=
                  displs[j] + sizes[j]);
    copy_var(src.data() + displs[j], padded.data() + s * pad_bytes, sizes[j]);
  }
}

void unrotate_padded_by_rank(std::span<const std::byte> padded,
                             std::int64_t pad_bytes, std::span<std::byte> dst,
                             std::span<const std::int64_t> displs,
                             std::span<const std::int64_t> sizes,
                             std::int64_t rank) {
  const std::int64_t n = static_cast<std::int64_t>(displs.size());
  BRUCK_REQUIRE(static_cast<std::int64_t>(sizes.size()) == n);
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(padded.size()) >= n * pad_bytes);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t s = pos_mod(rank - i, n);
    BRUCK_REQUIRE(sizes[i] <= pad_bytes);
    BRUCK_REQUIRE(static_cast<std::int64_t>(dst.size()) >=
                  displs[i] + sizes[i]);
    copy_var(padded.data() + s * pad_bytes, dst.data() + displs[i], sizes[i]);
  }
}

void rotate_padded_window_to_origin(std::span<const std::byte> padded,
                                    std::int64_t pad_bytes,
                                    std::span<std::byte> dst,
                                    std::span<const std::int64_t> displs,
                                    std::span<const std::int64_t> sizes,
                                    std::int64_t rank) {
  const std::int64_t n = static_cast<std::int64_t>(displs.size());
  BRUCK_REQUIRE(static_cast<std::int64_t>(sizes.size()) == n);
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(padded.size()) >= n * pad_bytes);
  for (std::int64_t t = 0; t < n; ++t) {
    const std::int64_t i = pos_mod(rank + t, n);
    BRUCK_REQUIRE(sizes[i] <= pad_bytes);
    BRUCK_REQUIRE(static_cast<std::int64_t>(dst.size()) >=
                  displs[i] + sizes[i]);
    copy_var(padded.data() + t * pad_bytes, dst.data() + displs[i], sizes[i]);
  }
}

}  // namespace bruck::coll
