#include "coll/concat_bruck.hpp"

#include <cstring>
#include <vector>

#include "coll/blocks.hpp"
#include "topo/partition.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

namespace {

/// Ship one partition (one communication round) of the last phase: every
/// area rides its own port with offset n1 + L_m.  `window` is the rank's
/// n-block window buffer (slot t = B[rank + t]); slots [0, n1) are filled,
/// the areas fill slots [n1, n1 + n2).
void exchange_partition(mps::Communicator& comm, int round,
                        std::span<std::byte> window, std::int64_t block_bytes,
                        std::int64_t n1, const topo::TablePartition& part) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const std::int64_t b = block_bytes;
  const std::size_t areas = part.areas.size();
  std::vector<std::vector<std::byte>> out(areas);
  std::vector<std::vector<std::byte>> in(areas);
  std::vector<mps::SendSpec> sends;
  std::vector<mps::RecvSpec> recvs;
  for (std::size_t m = 0; m < areas; ++m) {
    const topo::Area& area = part.areas[m];
    const std::int64_t offset = n1 + area.left_col();
    // Gather the area's bytes from this rank's window in cell order.
    out[m].reserve(static_cast<std::size_t>(area.size()));
    for (const topo::AreaCell& cell : area.cells) {
      const std::int64_t slot = cell.col - area.left_col();
      BRUCK_ENSURE_MSG(slot >= 0 && slot < n1,
                       "area references a block outside the sender's window "
                       "(span constraint violated)");
      const std::byte* base = window.data() + slot * b;
      out[m].insert(out[m].end(), base + cell.row_begin, base + cell.row_end);
    }
    in[m].resize(out[m].size());
    sends.push_back(mps::SendSpec{pos_mod(rank - offset, n), out[m]});
    recvs.push_back(mps::RecvSpec{pos_mod(rank + offset, n), in[m]});
  }
  comm.exchange(round, sends, recvs);
  // Scatter: the message from rank + offset carries, per cell, the bytes of
  // B[rank + n1 + c]; they land in window slot n1 + c.
  for (std::size_t m = 0; m < areas; ++m) {
    const topo::Area& area = part.areas[m];
    std::size_t pos = 0;
    for (const topo::AreaCell& cell : area.cells) {
      std::byte* base = window.data() + (n1 + cell.col) * b;
      const std::size_t len = static_cast<std::size_t>(cell.size());
      std::memcpy(base + cell.row_begin, in[m].data() + pos, len);
      pos += len;
    }
    BRUCK_ENSURE(pos == in[m].size());
  }
}

}  // namespace

int concat_bruck(mps::Communicator& comm, std::span<const std::byte> send,
                 std::span<std::byte> recv, std::int64_t block_bytes,
                 const ConcatBruckOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const int k = comm.ports();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);

  int round = options.start_round;
  if (n == 1) {
    if (b > 0) std::memcpy(recv.data(), send.data(), send.size());
    return round;
  }
  if (b == 0) return round;  // nothing to move; pattern is vacuous

  const model::ConcatLastRound strategy =
      model::resolve_concat_last_round(n, k, b, options.strategy);

  // Window buffer: slot t holds B[rank + t mod n] once filled.
  std::vector<std::byte> window(static_cast<std::size_t>(n * b));
  std::memcpy(window.data(), send.data(), static_cast<std::size_t>(b));

  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;

  // Full rounds: window of cur blocks goes to the k nodes at −j·cur.
  std::int64_t cur = 1;
  for (int i = 0; i + 1 < d; ++i) {
    std::vector<mps::SendSpec> sends;
    std::vector<mps::RecvSpec> recvs;
    const std::span<const std::byte> out(window.data(),
                                         static_cast<std::size_t>(cur * b));
    for (int j = 1; j <= k; ++j) {
      sends.push_back(mps::SendSpec{pos_mod(rank - j * cur, n), out});
      recvs.push_back(mps::RecvSpec{
          pos_mod(rank + j * cur, n),
          std::span<std::byte>(window.data() + j * cur * b,
                               static_cast<std::size_t>(cur * b))});
    }
    comm.exchange(round++, sends, recvs);
    cur *= (k + 1);
  }
  BRUCK_ENSURE(cur == n1);

  if (n2 > 0) {
    switch (strategy) {
      case model::ConcatLastRound::kByteSplit: {
        const topo::TablePartition part =
            topo::byte_split_partition(n1, n2, b, k);
        BRUCK_REQUIRE_MSG(
            part.feasible(),
            "byte-split partition infeasible for this (n, k, b); use "
            "kColumnGranular, kTwoRound or kAuto");
        exchange_partition(comm, round++, window, b, n1, part);
        break;
      }
      case model::ConcatLastRound::kColumnGranular: {
        const topo::TablePartition part =
            topo::column_granular_partition(n1, n2, b, k);
        // The Remark's relaxed guarantee: spans within n1, sizes within
        // α + (b−1).
        BRUCK_ENSURE(part.max_span() <= n1);
        BRUCK_ENSURE(part.max_size() <= part.alpha() + b - 1);
        exchange_partition(comm, round++, window, b, n1, part);
        break;
      }
      case model::ConcatLastRound::kTwoRound: {
        if (n2 <= k) {
          // One whole column per port: a single round suffices.
          const topo::TablePartition part =
              topo::column_granular_partition(n1, n2, b, k);
          BRUCK_ENSURE(part.max_span() <= n1);
          BRUCK_ENSURE(part.max_size() <= b);
          exchange_partition(comm, round++, window, b, n1, part);
        } else {
          // Round A: byte-split over columns [0, n2−k) — always feasible
          // because its α ≤ b(n1−1) keeps every span within n1.
          const topo::TablePartition part_a =
              topo::byte_split_partition(n1, n2 - k, b, k);
          BRUCK_ENSURE_MSG(part_a.feasible(),
                           "two-round round A must always be feasible");
          exchange_partition(comm, round++, window, b, n1, part_a);
          // Round B: the remaining k whole columns, one per port.  Build a
          // single-column area per remaining column, shifted to the tail.
          topo::TablePartition part_b{n1, n2, b, k, {}};
          for (std::int64_t c = n2 - k; c < n2; ++c) {
            topo::Area area;
            area.cells.push_back(topo::AreaCell{c, 0, b});
            part_b.areas.push_back(std::move(area));
          }
          exchange_partition(comm, round++, window, b, n1, part_b);
        }
        break;
      }
      case model::ConcatLastRound::kAuto:
        BRUCK_ENSURE_MSG(false, "kAuto resolved above");
    }
  }

  rotate_window_to_origin(ConstBlockSpan(window, n, b), BlockSpan(recv, n, b),
                          rank);
  return round;
}

}  // namespace bruck::coll
