// Block-granular views over byte buffers, and the local data rearrangements
// of the index algorithm (Phases 1 and 3 of Section 3.1).
//
// Everything here is pure local memory movement: never blocking, no
// fabric or trace side effects, safe to call concurrently on disjoint
// buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bruck::coll {

/// A span of `count` equally sized blocks living contiguously in memory.
/// Width-zero blocks are legal (the collectives accept b = 0 and degenerate
/// to pure bookkeeping).
class BlockSpan {
 public:
  BlockSpan(std::span<std::byte> bytes, std::int64_t count,
            std::int64_t block_bytes);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] std::span<std::byte> block(std::int64_t i) const;
  [[nodiscard]] std::span<std::byte> blocks(std::int64_t first,
                                            std::int64_t n) const;
  [[nodiscard]] std::span<std::byte> bytes() const { return bytes_; }

 private:
  std::span<std::byte> bytes_;
  std::int64_t count_;
  std::int64_t block_bytes_;
};

/// Read-only counterpart of BlockSpan.
class ConstBlockSpan {
 public:
  ConstBlockSpan(std::span<const std::byte> bytes, std::int64_t count,
                 std::int64_t block_bytes);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] std::span<const std::byte> block(std::int64_t i) const;
  [[nodiscard]] std::span<const std::byte> bytes() const { return bytes_; }

 private:
  std::span<const std::byte> bytes_;
  std::int64_t count_;
  std::int64_t block_bytes_;
};

/// Phase 1 of the index algorithm: dst block x := src block (x + steps) mod n
/// — a cyclic rotation of the n blocks `steps` positions upwards.
/// src and dst must not alias.
void rotate_blocks_up(ConstBlockSpan src, BlockSpan dst, std::int64_t steps);

/// Phase 3 of the index algorithm (Appendix A lines 21–23):
/// dst block i := src block (rank − i) mod n.  This simultaneously undoes the
/// Phase-1 rotation and re-indexes blocks by source rank.  No aliasing.
void unrotate_by_rank(ConstBlockSpan src, BlockSpan dst, std::int64_t rank);

/// Final step of the concatenation (Appendix B lines 17–18): the window
/// buffer starts with B[rank]; dst block (rank + t) mod n := src block t.
/// No aliasing.
void rotate_window_to_origin(ConstBlockSpan src, BlockSpan dst,
                             std::int64_t rank);

// ---------------------------------------------------------------------------
// Variable-extent counterparts for the irregular (vector) collectives.
// These move between a caller buffer laid out by per-block displacements
// (block j at displs[j], sizes[j] bytes) and a *max-padded* scratch whose
// slots all have stride pad_bytes.  All are pure local memory movement:
// never blocking, no fabric or trace side effects, no aliasing allowed.

/// Irregular Phase 1 of the index algorithm: padded scratch slot s :=
/// caller block (s + steps) mod n.  `displs`/`sizes` describe the caller's
/// n blocks; each copied block occupies the first sizes[j] bytes of its
/// pad_bytes-wide slot.
void rotate_varblocks_to_padded(std::span<const std::byte> src,
                                std::span<const std::int64_t> displs,
                                std::span<const std::int64_t> sizes,
                                std::span<std::byte> padded,
                                std::int64_t pad_bytes, std::int64_t steps);

/// Irregular Phase 3 of the index algorithm: caller block i (at displs[i],
/// sizes[i] bytes) := padded slot (rank − i) mod n.
void unrotate_padded_by_rank(std::span<const std::byte> padded,
                             std::int64_t pad_bytes, std::span<std::byte> dst,
                             std::span<const std::int64_t> displs,
                             std::span<const std::int64_t> sizes,
                             std::int64_t rank);

/// Irregular final concat re-indexing: caller block (rank + t) mod n :=
/// padded slot t, for all t.
void rotate_padded_window_to_origin(std::span<const std::byte> padded,
                                    std::int64_t pad_bytes,
                                    std::span<std::byte> dst,
                                    std::span<const std::int64_t> displs,
                                    std::span<const std::int64_t> sizes,
                                    std::int64_t rank);

}  // namespace bruck::coll
