// Gather and scatter — the remaining one-to-all/all-to-one primitives the
// paper's introduction enumerates.  Both run over the truncated binomial
// tree rooted at `root` (translated by relative rank), one port, in
// ⌈log2 n⌉ rounds with b(n−1)-ish volume on the root's port — the same
// machinery the folklore concatenation baseline is assembled from.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct GatherScatterOptions {
  int start_round = 0;
};

/// Gather: every rank contributes `send` (block_bytes bytes); afterwards,
/// `recv` on the ROOT holds the n blocks in rank order (recv is ignored on
/// other ranks but must still be n·block_bytes long — uniform SPMD buffers
/// keep the call sites simple).  Returns the next free round index.
/// Blocking: returns once this rank's part of the tree traffic completed.
/// Thread safety: SPMD, one call per rank thread.  Trace: one send event
/// per tree edge at its round.
int gather_binomial(mps::Communicator& comm, std::int64_t root,
                    std::span<const std::byte> send, std::span<std::byte> recv,
                    std::int64_t block_bytes,
                    const GatherScatterOptions& options = {});

/// Scatter: the ROOT's `send` holds n blocks in rank order; afterwards
/// every rank's `recv` holds its own block.  `send` is ignored on non-root
/// ranks.  Returns the next free round index.  Blocking/thread-safety/
/// trace behavior as gather_binomial.
int scatter_binomial(mps::Communicator& comm, std::int64_t root,
                     std::span<const std::byte> send, std::span<std::byte> recv,
                     std::int64_t block_bytes,
                     const GatherScatterOptions& options = {});

}  // namespace bruck::coll
