#include "coll/plan_cache.hpp"

#include <bit>

#include "util/assert.hpp"

namespace bruck::coll {

std::size_t PlanKeyHash::operator()(const PlanKey& key) const {
  // FNV-1a over the key fields; cheap and stable.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(key.collective));
  mix(key.algorithm);
  mix(static_cast<std::uint64_t>(key.n));
  mix(static_cast<std::uint64_t>(key.k));
  mix(static_cast<std::uint64_t>(key.radix));
  mix(key.strategy);
  mix(static_cast<std::uint64_t>(key.block_class));
  mix(static_cast<std::uint64_t>(key.segments));
  mix(key.shape_digest);
  mix(key.reduce_tag);
  mix(key.layout_digest);
  return static_cast<std::size_t>(h);
}

std::uint64_t shape_digest(std::span<const std::int64_t> counts) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(counts.size());
  for (const std::int64_t c : counts) {
    // log2 size-class bucketing: 0 is its own bucket, otherwise the bit
    // width.  Counts that only jitter within a size class digest equal.
    mix(c == 0 ? 0
               : static_cast<std::uint64_t>(
                     std::bit_width(static_cast<std::uint64_t>(c))));
  }
  // Never return the uniform-plan sentinel: an unlucky shape whose hash
  // lands on 0 must not alias a regular plan's key.
  return reserve_shape_digest_sentinel(h);
}

PlanKey index_plan_key(IndexAlgorithm algorithm, std::int64_t n, int k,
                       std::int64_t radix, int segments,
                       std::uint64_t layout) {
  BRUCK_REQUIRE_MSG(algorithm != IndexAlgorithm::kAuto,
                    "resolve kAuto before keying");
  BRUCK_REQUIRE_MSG(segments >= 1, "resolve the segment count before keying");
  PlanKey key;
  key.collective = PlanCollective::kIndex;
  key.algorithm = static_cast<std::uint8_t>(algorithm);
  key.n = n;
  key.k = k;
  key.radix = algorithm == IndexAlgorithm::kBruck ? radix : 0;
  key.strategy = 0;
  key.block_class = 0;  // index plans serve every block size
  key.segments = segments;
  key.layout_digest = layout;
  return key;
}

PlanKey concat_plan_key(ConcatAlgorithm algorithm, std::int64_t n, int k,
                        model::ConcatLastRound strategy,
                        std::int64_t block_bytes, int segments,
                        std::uint64_t layout) {
  BRUCK_REQUIRE_MSG(algorithm != ConcatAlgorithm::kAuto,
                    "resolve kAuto before keying");
  BRUCK_REQUIRE_MSG(algorithm != ConcatAlgorithm::kBruck ||
                        strategy != model::ConcatLastRound::kAuto,
                    "resolve the last-round strategy before keying");
  BRUCK_REQUIRE_MSG(segments >= 1, "resolve the segment count before keying");
  PlanKey key;
  key.collective = PlanCollective::kConcat;
  key.algorithm = static_cast<std::uint8_t>(algorithm);
  key.n = n;
  key.k = k;
  key.radix = 0;
  key.strategy = algorithm == ConcatAlgorithm::kBruck
                     ? static_cast<std::uint8_t>(strategy)
                     : 0;
  key.block_class = block_bytes;
  key.segments = segments;
  key.layout_digest = layout;
  return key;
}

PlanKey reduce_plan_key(ReduceAlgorithm algorithm, std::int64_t n, int k,
                        std::int64_t radix, const ReduceOp& op,
                        int segments, std::uint64_t layout) {
  BRUCK_REQUIRE_MSG(algorithm != ReduceAlgorithm::kAuto,
                    "resolve kAuto before keying");
  BRUCK_REQUIRE_MSG(segments >= 1, "resolve the segment count before keying");
  PlanKey key;
  key.collective = PlanCollective::kReduce;
  key.algorithm = static_cast<std::uint8_t>(algorithm);
  key.n = n;
  key.k = k;
  key.radix = algorithm == ReduceAlgorithm::kBruck ? radix : 0;
  key.strategy = 0;
  key.block_class = 0;  // reduction plans serve every block size
  key.segments = segments;
  key.reduce_tag = op.cache_tag();
  key.layout_digest = layout;
  return key;
}

PlanKey indexv_plan_key(IndexAlgorithm algorithm, std::int64_t n, int k,
                        std::int64_t radix, std::uint64_t digest,
                        int segments, std::uint64_t layout) {
  PlanKey key = index_plan_key(algorithm, n, k, radix, segments, layout);
  BRUCK_REQUIRE_MSG(digest != 0, "vector keys need a nonzero shape digest");
  key.shape_digest = digest;
  return key;
}

PlanKey concatv_plan_key(ConcatAlgorithm algorithm, std::int64_t n, int k,
                         std::uint64_t digest, int segments) {
  // Strategy never enters vector keys: irregular concat Bruck is always
  // column-granular.
  PlanKey key = concat_plan_key(algorithm, n, k,
                                model::ConcatLastRound::kColumnGranular,
                                /*block_bytes=*/0, segments);
  BRUCK_REQUIRE_MSG(digest != 0, "vector keys need a nonzero shape digest");
  key.strategy = 0;
  key.shape_digest = digest;
  return key;
}

PlanKey rooted_plan_key(PlanCollective collective, std::int64_t n, int k,
                        int segments) {
  BRUCK_REQUIRE_MSG(collective == PlanCollective::kGather ||
                        collective == PlanCollective::kScatter ||
                        collective == PlanCollective::kBcast,
                    "rooted keys cover gather/scatter/bcast only");
  BRUCK_REQUIRE_MSG(segments >= 1, "resolve the segment count before keying");
  PlanKey key;
  key.collective = collective;
  key.algorithm = 0;  // one algorithm per rooted kind
  key.n = n;
  key.k = k;
  key.segments = segments;
  return key;
}

namespace {

std::shared_ptr<const Plan> lower_from_key(const PlanKey& key) {
  switch (key.collective) {
    case PlanCollective::kGather:
      return Plan::lower_gather_binomial(key.n, key.k, key.segments);
    case PlanCollective::kScatter:
      return Plan::lower_scatter_binomial(key.n, key.k, key.segments);
    case PlanCollective::kBcast:
      return Plan::lower_bcast_circulant(key.n, key.k, key.segments);
    default:
      break;
  }
  if (key.collective == PlanCollective::kReduce) {
    switch (static_cast<ReduceAlgorithm>(key.algorithm)) {
      case ReduceAlgorithm::kBruck:
        return Plan::lower_reduce_bruck(key.n, key.k, key.radix,
                                        key.segments);
      case ReduceAlgorithm::kDirect:
        return Plan::lower_reduce_direct(key.n, key.k, key.segments);
      case ReduceAlgorithm::kPairwise:
        return Plan::lower_reduce_pairwise(key.n, key.k, key.segments);
      case ReduceAlgorithm::kAuto:
        break;
    }
    BRUCK_ENSURE_MSG(false, "unloweable reduce plan key");
    return nullptr;
  }
  if (key.shape_digest != 0) {
    // Irregular plans are shape-free: the digest splits cache entries but
    // never changes the lowering inputs.
    if (key.collective == PlanCollective::kIndex) {
      switch (static_cast<IndexAlgorithm>(key.algorithm)) {
        case IndexAlgorithm::kBruck:
          return Plan::lower_indexv_bruck(key.n, key.k, key.radix,
                                          key.segments);
        case IndexAlgorithm::kDirect:
          return Plan::lower_indexv_direct(key.n, key.k, key.segments);
        case IndexAlgorithm::kPairwise:
          return Plan::lower_indexv_pairwise(key.n, key.k, key.segments);
        case IndexAlgorithm::kAuto:
          break;
      }
    } else {
      switch (static_cast<ConcatAlgorithm>(key.algorithm)) {
        case ConcatAlgorithm::kBruck:
          return Plan::lower_concatv_bruck(key.n, key.k, key.segments);
        case ConcatAlgorithm::kFolklore:
          return Plan::lower_concatv_folklore(key.n, key.k, key.segments);
        case ConcatAlgorithm::kRing:
          return Plan::lower_concatv_ring(key.n, key.k, key.segments);
        case ConcatAlgorithm::kAuto:
          break;
      }
    }
    BRUCK_ENSURE_MSG(false, "unloweable vector plan key");
    return nullptr;
  }
  if (key.collective == PlanCollective::kIndex) {
    switch (static_cast<IndexAlgorithm>(key.algorithm)) {
      case IndexAlgorithm::kBruck:
        return Plan::lower_index_bruck(key.n, key.k, key.radix, key.segments);
      case IndexAlgorithm::kDirect:
        return Plan::lower_index_direct(key.n, key.k, key.segments);
      case IndexAlgorithm::kPairwise:
        return Plan::lower_index_pairwise(key.n, key.k, key.segments);
      case IndexAlgorithm::kAuto:
        break;
    }
  } else {
    switch (static_cast<ConcatAlgorithm>(key.algorithm)) {
      case ConcatAlgorithm::kBruck:
        return Plan::lower_concat_bruck(
            key.n, key.k, key.block_class,
            static_cast<model::ConcatLastRound>(key.strategy), key.segments);
      case ConcatAlgorithm::kFolklore:
        return Plan::lower_concat_folklore(key.n, key.k, key.block_class,
                                           key.segments);
      case ConcatAlgorithm::kRing:
        return Plan::lower_concat_ring(key.n, key.k, key.block_class,
                                       key.segments);
      case ConcatAlgorithm::kAuto:
        break;
    }
  }
  BRUCK_ENSURE_MSG(false, "unloweable plan key");
  return nullptr;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  BRUCK_REQUIRE(capacity >= 1);
}

PlanCache::Lookup PlanCache::get_or_lower(const PlanKey& key) {
  // Lowering is O(n²·rounds) cell construction plus a full k-port
  // validation — far too much work to hold the cache mutex through.  The
  // first caller of a key installs an in-flight future and lowers outside
  // the lock; concurrent same-key callers wait on the future (and report a
  // hit — they did no planning work); lookups for other keys pass straight
  // through.
  std::shared_future<std::shared_ptr<const Plan>> in_flight;
  std::promise<std::shared_ptr<const Plan>> promise;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return Lookup{it->second.plan, true};
    }
    const auto pending = pending_.find(key);
    if (pending != pending_.end()) {
      in_flight = pending->second;
    } else {
      creator = true;
      ++misses_;
      in_flight = promise.get_future().share();
      pending_.emplace(key, in_flight);
    }
  }

  if (!creator) {
    // Another thread is lowering this key: wait for its result (rethrows
    // its lowering failure, if any) and report a hit — no planning work
    // happened here.
    std::shared_ptr<const Plan> plan = in_flight.get();
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
    return Lookup{std::move(plan), true};
  }

  std::shared_ptr<const Plan> plan;
  try {
    plan = lower_from_key(key);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(key);
    if (!plans_.contains(key)) {  // idempotent vs a clear() racing a lowering
      lru_.push_front(key);
      plans_.emplace(key, Entry{plan, lru_.begin()});
      if (plans_.size() > capacity_) {
        plans_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
      }
    }
  }
  promise.set_value(plan);
  return Lookup{plan, false};
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PlanCacheStats{hits_, misses_, evictions_, plans_.size()};
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  lru_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

}  // namespace bruck::coll
