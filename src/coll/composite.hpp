// Composite multi-stage plans: several single-schedule Plans executed
// back-to-back under one trace, with declarative *splice maps* describing
// how stage k's output feeds stage k+1's input.
//
// A CompositePlan is a per-rank stage list.  Each stage names the plan it
// runs (null = this rank is idle that stage), the member set it runs over
// (a GroupComm sub-communicator of the parent; empty = the whole
// communicator), its block size in units of the composite's base block, and
// the splice ops that move (or ⊕-combine) base-block runs from its output
// staging into the next stage's input staging.  Stage round numbering is
// *uniform*: every rank advances its base round by the stage's
// `round_stride` — the round count of the nominal-size group's plan —
// whether or not it participated, so ranks of differently-sized groups
// agree on every wire round number and the composite returns one
// fabric-wide next_round.
//
// Two drivers walk a composite.  run() is the blocking driver: per stage,
// construct the sub-communicator, execute the stage plan with the blocking
// (or pipelined) executor, record the stage's PlanEvent, apply the splices.
// CompositeCursor is the incremental driver for the progress engine: the
// PlanCursor state machine lifted one level, advancing through world-scope
// stages as their cursors drain (it subsumes the engine's former hard-coded
// allreduce reduce-scatter→allgather chaining).
//
// The hierarchical (two-level leader-model) lowerings live here too:
// lower_index_hier / lower_concat_hier / lower_reduce_hier build the
// 3-stage leader-model composites — intra-group gather to the leader →
// inter-leader exchange over the partition's leader set → intra-group
// scatter/broadcast — whose stage plans come from the PlanCache and whose
// splice maps are derived from a topo::GroupGeometry.  Groups are
// contiguous rank ranges; the last group may be smaller than the nominal
// size g, and every inter-leader super-block is zero-padded to the nominal
// size so all leaders exchange uniform blocks (the padding never reaches a
// user buffer: splices only move occupied runs, and combine splices never
// fold padding into live slots).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coll/plan.hpp"
#include "coll/plan_cache.hpp"
#include "coll/reduction.hpp"
#include "model/costs.hpp"
#include "mps/communicator.hpp"
#include "topo/partition.hpp"

namespace bruck::coll {

/// One inter-stage data movement: `len` base blocks from base-block `src`
/// of the finished stage's output to base-block `dst` of the next stage's
/// input.  `combine` ⊕-folds instead of copying (hierarchical reduce: the
/// leader accumulates its members' contributions while splicing; the first
/// member's run is always a plain copy so padding zeros are never combined
/// into live data).
struct SpliceOp {
  std::int64_t src = 0;
  std::int64_t dst = 0;
  std::int64_t len = 0;
  bool combine = false;
};

/// One stage of one rank's composite program.
struct CompositeStage {
  /// The schedule this rank executes, or null when this rank sits the stage
  /// out (a non-leader during the inter-leader stage).  Idle ranks still
  /// advance their base round by `round_stride`.
  std::shared_ptr<const Plan> plan;
  /// Whether `plan` came out of the PlanCache warm (the stage PlanEvent's
  /// cache_hit field).
  bool cache_hit = false;
  /// Parent ranks forming the stage's sub-communicator, in group-rank
  /// order (index 0 is the stage root).  Empty = run on the parent
  /// communicator itself.
  std::vector<std::int64_t> members;
  /// The stage plan's block size, in base blocks.
  std::int64_t block_units = 1;
  /// Input/output staging sizes in base blocks.  0 with the corresponding
  /// user_* flag set means the user buffer is used directly.
  std::int64_t in_units = 0;
  std::int64_t out_units = 0;
  bool user_send_in = false;   ///< stage input is the composite's send buffer
  bool user_recv_out = false;  ///< stage output is the composite's recv buffer
  /// Run the stage plan with the composite's ReduceOp (reducing stages).
  bool reducing = false;
  /// Uniform base-round advance of this stage across ALL ranks: the round
  /// count of the nominal-size group's plan (≥ this rank's own rounds).
  int round_stride = 0;
  /// Inter-stage map from this stage's output to the next stage's input.
  /// Applied after the stage completes; the next stage's input staging is
  /// zero-initialized first, so unspliced slots are deterministic zeros.
  std::vector<SpliceOp> splices;
  std::string label;
};

/// The hierarchy shape one rank's hierarchical composite is lowered for
/// (the tuner's pick, or the forced env/option knobs).
struct HierShape {
  std::int64_t group = 1;        ///< nominal group size g
  std::int64_t inter_radix = 2;  ///< inter-leader Bruck radix (index/reduce)
  /// Inter-leader concat last-round strategy, resolved against the
  /// super-block size g·b inside the lowering (concat only).
  model::ConcatLastRound strategy = model::ConcatLastRound::kAuto;
  int segments = 1;  ///< wire segments of every stage plan
};

class CompositePlan {
 public:
  /// The leader-model alltoall of `rank`: intra-group binomial gather of
  /// whole alltoall vectors (stage block n·b) → inter-leader index Bruck
  /// over g²-block super-blocks at shape.inter_radix → intra-group binomial
  /// scatter of result vectors.  Splices transpose member payloads into
  /// destination-group super-blocks and received super-blocks back into
  /// per-member result vectors.
  static CompositePlan lower_index_hier(std::int64_t n, int k,
                                        std::int64_t rank,
                                        std::int64_t block_bytes,
                                        const HierShape& shape);

  /// The leader-model allgather of `rank`: intra-group gather of single
  /// blocks → inter-leader concat over g-block super-blocks (strategy
  /// resolved at that size) → intra-group circulant broadcast of the
  /// assembled n-block result.
  static CompositePlan lower_concat_hier(std::int64_t n, int k,
                                         std::int64_t rank,
                                         std::int64_t block_bytes,
                                         const HierShape& shape);

  /// The leader-model reduce-scatter of `rank`: intra-group gather of whole
  /// contribution vectors → leader-local combine splices (one copy + g−1
  /// ⊕-folds per destination run) → inter-leader reduce Bruck over g-block
  /// super-blocks → intra-group scatter of single result blocks.
  static CompositePlan lower_reduce_hier(std::int64_t n, int k,
                                         std::int64_t rank,
                                         std::int64_t block_bytes,
                                         const ReduceOp& op,
                                         const HierShape& shape);

  /// The allreduce chain (both stages world-scope): the reduce-scatter plan
  /// of `reduce_key` feeding the allgather plan of `concat_key` through an
  /// identity splice.  Input = the n·b padded contribution vector, output =
  /// the n·b gathered result.  Replaces the progress engine's former
  /// bespoke cursor swap.
  static CompositePlan allreduce_chain(const PlanKey& reduce_key,
                                       const PlanKey& concat_key,
                                       std::int64_t n,
                                       std::int64_t block_bytes);

  /// Execute every stage back to back with the blocking driver (pipelined =
  /// false: Plan::run per stage; true: Plan::run_pipelined).  `op` is
  /// required iff any stage reduces or any splice combines.  Records one
  /// PlanEvent per executed (non-idle) stage.  Returns the aggregate
  /// execution: next_round = start_round + round_count(), bytes summed over
  /// executed stages.
  PlanExecution run(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, const ReduceOp* op,
                    int start_round = 0, bool pipelined = false) const;

  [[nodiscard]] const std::vector<CompositeStage>& stages() const {
    return stages_;
  }
  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] std::int64_t block_bytes() const { return block_bytes_; }
  /// Σ round_stride — the uniform fabric-wide round advance.
  [[nodiscard]] int round_count() const { return total_stride_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Per-stage anatomy (the `bruckcl_plan compile --hier` rendering).
  [[nodiscard]] std::string describe() const;

 private:
  friend class CompositeCursor;

  CompositePlan(std::string name, std::int64_t n, std::int64_t block_bytes);

  void add_stage(CompositeStage stage);
  /// Copy/⊕-combine `st`'s splices from its output staging into the next
  /// stage's (zero-initialized) input staging.
  void apply_splices(const CompositeStage& st,
                     std::span<const std::byte> out,
                     std::span<std::byte> next_in, const ReduceOp* op) const;
  /// Buffer-contract checks shared by run() and CompositeCursor.
  void check_contract(std::span<const std::byte> send,
                      std::span<std::byte> recv, const ReduceOp* op) const;

  std::string name_;
  std::int64_t n_ = 1;            ///< parent communicator size
  std::int64_t block_bytes_ = 0;  ///< base block size b
  int total_stride_ = 0;
  bool needs_op_ = false;
  std::vector<CompositeStage> stages_;
};

/// Incremental execution of one composite on one rank: the progress
/// engine's chain driver.  Restricted to world-scope composites (every
/// stage's members empty and plan non-null) — sub-communicator stages need
/// the blocking driver.  Same never-blocking post_ready()/on_complete()
/// discipline as PlanCursor; each stage's PlanEvent is recorded (with this
/// cursor's tag) as the stage drains, so the owner must NOT record another
/// event at retirement.  The communicator, buffers, and op must outlive the
/// cursor; the composite is owned by value.
class CompositeCursor {
 public:
  CompositeCursor(CompositePlan plan, mps::Communicator& comm,
                  std::span<const std::byte> send, std::span<std::byte> recv,
                  const ReduceOp* op, int start_round = 0, int tag = 0);

  CompositeCursor(const CompositeCursor&) = delete;
  CompositeCursor& operator=(const CompositeCursor&) = delete;

  /// Post everything postable, advancing through stage boundaries (finish
  /// a drained stage, splice, open the next) as far as possible without
  /// blocking.  Returns the receive handles posted by this call.
  std::vector<mps::PortHandle> post_ready();

  /// Deliver one completed receive handle of the current stage's cursor.
  void on_complete(mps::PortHandle h);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] int outstanding() const {
    return cursor_ ? cursor_->outstanding() : 0;
  }
  [[nodiscard]] int tag() const { return tag_; }
  /// Aggregate totals (bytes summed over stages, next_round = start +
  /// round_count()); valid once done().
  [[nodiscard]] const PlanExecution& result() const;

 private:
  /// Construct the stage_ cursor over the spliced staging buffers.
  void open_stage();
  /// Record the drained stage's event, accumulate totals, splice forward.
  void finish_stage();

  CompositePlan plan_;
  mps::Communicator* comm_;
  std::span<const std::byte> send_;
  std::span<std::byte> recv_;
  const ReduceOp* op_;
  int tag_ = 0;
  int base_round_ = 0;
  std::size_t stage_ = 0;
  std::vector<std::byte> stage_in_;   ///< current stage's owned input
  std::vector<std::byte> stage_out_;  ///< current stage's owned output
  std::unique_ptr<PlanCursor> cursor_;
  PlanExecution out_;
  bool done_ = false;
};

}  // namespace bruck::coll
