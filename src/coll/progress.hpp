// The multi-tenant progress engine behind the nonblocking collectives.
//
// One engine exists per communicator (per rank thread).  The i* entry
// points of api.hpp resolve an execution recipe — exactly the blocking
// facade's tuner/radix/segment resolution — and submit() it here; the
// engine owns every outstanding operation and multiplexes them over the
// communicator's single port-engine completion stream: each operation runs
// as a resumable PlanCursor in its own port-namespace tag, completed
// receive handles are routed back to their cursor through a handle→cursor
// map, and test()/wait() drive whichever cursors have work regardless of
// which request the caller is holding.
//
// Lazy start and batching: a submitted operation does not touch the wire
// until the first test()/wait() on any of the communicator's requests.
// At that point the whole pending batch is started at once, and pending
// operations with the *same fuse signature* (same family, algorithm,
// radix, geometry, block size, start round, segment knob, and machine
// profile) are considered for fusion: G members become one wire exchange
// over blocks of G·b — the per-message start-up β is paid once instead of
// G times — when model::pick_fusion says the fused exchange plus its local
// gather/scatter passes beats G serial executions.  Only block-size
// independent plans fuse (alltoall and reduce-scatter); members' payloads
// are interleaved per block slot ([member0 blockj | member1 blockj | …])
// and scattered back on completion, bitwise-identical to serial execution.
//
// Because the batch boundary is "everything submitted since the last
// start", fusion grouping is SPMD-deterministic: every rank submits and
// tests in the same order, so every rank forms the same groups and
// allocates the same tags.
//
// Communicators without a native port engine (wrappers that only override
// exchange) cannot express tags; the engine degrades to a serial FIFO at
// tag 0 — each wait() runs every older operation to completion first, and
// test() degrades to wait().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coll/layout.hpp"
#include "coll/plan_cache.hpp"
#include "coll/reduction.hpp"
#include "coll/request.hpp"
#include "model/linear_model.hpp"
#include "model/metrics.hpp"
#include "mps/communicator.hpp"

namespace bruck::coll {

/// One resolved nonblocking operation, as handed to ProgressEngine::submit
/// by the i* facade (api.cpp).  Everything the tuner decides is already
/// resolved; the engine only schedules and executes.
struct OpSpec {
  /// Which i* entry point produced this spec.
  enum class Family {
    kAlltoall,       ///< uniform index operation
    kAllgather,      ///< uniform concatenation
    kAlltoallv,      ///< irregular index operation
    kReduceScatter,  ///< uniform reduce-scatter
    kAllreduce,      ///< two-stage: reduce-scatter then allgather
  };

  Family family = Family::kAlltoall;
  /// User payload buffers; must outlive the request.
  std::span<const std::byte> send;
  std::span<std::byte> recv;
  /// Uniform block size (allreduce: the padded stage block size).
  std::int64_t block_bytes = 0;
  /// Resolved plan key of the (primary-stage) execution.
  PlanKey key;
  /// Modeled measures behind `key` — the fusion decision's per-member input.
  model::CostMetrics predicted;
  /// Machine profile the recipe was tuned under.
  model::LinearModel machine;
  /// The raw user segment knob (0 = tune): a fused execution re-resolves
  /// it against the fused block size.
  int requested_segments = 0;
  int start_round = 0;
  /// Combine operator (reduction families; copied, not referenced).
  ReduceOp op;
  /// Allreduce only: resolved key and measures of the allgather stage.
  PlanKey concat_key;
  /// Irregular shapes (alltoallv): owned copies — the engine outlives the
  /// caller's tables.
  std::vector<std::int64_t> counts;
  std::vector<std::int64_t> send_displs;
  std::vector<std::int64_t> recv_displs;
  /// Irregular scratch stride (max pair bytes over `counts`).
  std::int64_t pad_bytes = 0;
  /// Strided user-buffer layouts (value-stored: the engine outlives the
  /// caller's stack; the Op never moves, so cursors can point into these).
  /// has_layout marks a layout-overload submission — the facade only sets
  /// it for genuinely non-contiguous layouts, and it disables fusion
  /// (fusion interleaves contiguous blocks).
  Layout send_layout;
  Layout recv_layout;
  bool has_layout = false;
};

/// Counters of one communicator's progress engine since construction.
struct ProgressStats {
  std::uint64_t submitted = 0;        ///< operations submitted
  std::uint64_t completed = 0;        ///< operations retired
  std::uint64_t fused_groups = 0;     ///< fused wire exchanges executed
  std::uint64_t fused_members = 0;    ///< operations that rode in one
  std::uint64_t serial_fallback = 0;  ///< operations run through the tag-0 FIFO
  std::uint64_t tags_used = 0;        ///< port-namespace tags allocated

  friend bool operator==(const ProgressStats&, const ProgressStats&) = default;
};

/// Per-communicator scheduler of nonblocking collectives (see the file
/// comment).  Obtain via for_comm(); all calls must come from the
/// communicator's own rank thread.  The engine lives in the communicator's
/// extension slot and is destroyed with it; every request must be completed
/// before its communicator is destroyed.
class ProgressEngine {
 public:
  /// The engine of `comm`, created on first use (same single-thread
  /// contract as the communicator itself).
  static ProgressEngine& for_comm(mps::Communicator& comm);

  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;
  ~ProgressEngine();

  /// Queue one operation; returns its request handle.  The operation
  /// starts at the next test()/wait() on any of this engine's requests.
  [[nodiscard]] Request submit(OpSpec&& spec);

  /// Operations submitted but not yet retired through wait().
  [[nodiscard]] std::size_t outstanding() const;

  [[nodiscard]] const ProgressStats& stats() const { return stats_; }

  // -- Request plumbing (called through the Request API; not meant to be
  //    used directly) ------------------------------------------------------

  /// Nonblocking completion poll of operation `id` (Request::test).
  bool test(std::uint64_t id);
  /// Complete operation `id`, retire it, and return its next free round
  /// index (Request::wait).
  int wait(std::uint64_t id);
  /// Start anything pending and block until one more receive completes
  /// somewhere (the wait_any building block).  Precondition: at least one
  /// operation is incomplete.
  void step_blocking();

 private:
  struct Op;
  struct Exec;
  struct FuseSig;

  explicit ProgressEngine(mps::Communicator& comm);

  [[nodiscard]] Op* find_op(std::uint64_t id);
  /// Start every pending operation (fusion grouping happens here).
  void seal();
  void start_solo(Op* op);
  void start_fused(const std::vector<Op*>& members);
  /// Post all newly postable rounds of `exec`, routing the returned
  /// handles; retires the exec when its cursor completes.
  void pump_posts(Exec& exec);
  /// Route one completed receive handle to its cursor.
  void deliver(mps::PortHandle h);
  /// Finish one exec: scatter fused payloads back, record plan events
  /// (composite chains record their own per-stage events), release the
  /// tag, mark members done.
  void retire(Exec& exec);
  /// Serial FIFO fallback: run queued operations (oldest first) to
  /// completion, through `id` inclusive.
  void run_serial_until(std::uint64_t id);
  void run_serial_op(Op& op);
  /// Drive one cursor to completion, blocking (the fallback executor).
  PlanExecution drive_blocking(PlanCursor& cursor);

  mps::Communicator* comm_;
  bool native_ = false;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Op>> ops_;
  std::vector<std::uint64_t> pending_;  ///< submitted, unstarted (FIFO)
  std::vector<std::unique_ptr<Exec>> live_;
  std::unordered_map<mps::PortHandle, Exec*> route_;
  int serial_next_round_ = 0;  ///< fallback round chaining (shared tag 0)
  ProgressStats stats_;
};

}  // namespace bruck::coll
