// ProgressEngine implementation, plus the Request methods (kept here so
// request.hpp stays dependency-free).
//
// Execution model: every started operation is an `Exec` — one live cursor
// plus the bookkeeping to retire it.  A solo exec serves one operation; a
// fused exec serves G same-signature operations through one cursor over
// interleaved staging buffers; a multi-stage operation (allreduce) drives a
// CompositeCursor, which chains its stages inside the same tag namespace
// and records the per-stage PlanEvents itself.  `route_` maps every
// in-flight receive handle to its exec, so one wait_any_recv() loop drives
// all tenants regardless of which request the caller holds.
#include "coll/progress.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

#include "coll/composite.hpp"
#include "coll/plan.hpp"
#include "util/assert.hpp"

namespace bruck::coll {

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Largest fused wire block (G·b bytes) the engine will build.  Fusion trades
/// message count for message size, and the linear C1/C2 model always likes
/// that trade — but past a few KiB per block the substrate's large-message
/// costs (staging copies, segmentation) outgrow the per-message savings, so
/// oversized groups fall back to per-op execution instead.  Override with
/// BRUCK_FUSE_MAX_BLOCK (bytes, positive integer).
std::int64_t fuse_max_block_bytes() {
  constexpr std::int64_t kDefault = 4096;
  const char* env = std::getenv("BRUCK_FUSE_MAX_BLOCK");
  if (env == nullptr || *env == '\0') return kDefault;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v <= 0) return kDefault;
  return static_cast<std::int64_t>(v);
}

}  // namespace

/// One submitted operation: the resolved spec plus completion state and
/// any engine-owned staging the family needs.
struct ProgressEngine::Op {
  std::uint64_t id = 0;
  OpSpec spec;
  bool started = false;
  bool done = false;
  int tag = 0;
  PlanExecution result;
  /// Irregular runs: spans into spec's owned count/displacement storage.
  VectorView view;
  /// Allreduce staging: zero-padded input and the gathered result (copied
  /// back to the user buffer at retirement); the inter-stage block lives
  /// inside the CompositeCursor.
  std::vector<std::byte> padded;
  std::vector<std::byte> gathered;
};

/// One live cursor and how to retire it (see the file comment).  Exactly
/// one of `cursor` (single-schedule) and `chain` (multi-stage composite)
/// is set.
struct ProgressEngine::Exec {
  std::vector<Op*> members;
  std::shared_ptr<const Plan> plan;
  std::unique_ptr<PlanCursor> cursor;
  std::unique_ptr<CompositeCursor> chain;
  int tag = 0;
  bool fused = false;
  bool cache_hit = false;
  std::int64_t member_block = 0;  ///< fused: one member's block size
  std::vector<std::byte> fused_send;
  std::vector<std::byte> fused_recv;
};

/// Everything that must agree for two pending operations to share one
/// fused wire exchange.  The machine profile is part of the signature (two
/// ops tuned under different profiles resolved their recipes differently).
struct ProgressEngine::FuseSig {
  int family = 0;
  std::uint8_t algorithm = 0;
  std::int64_t n = 0;
  int k = 0;
  std::int64_t radix = 0;
  std::uint32_t reduce_tag = 0;
  std::int64_t block_bytes = 0;
  int start_round = 0;
  int requested_segments = 0;
  std::uint64_t beta_bits = 0;
  std::uint64_t tau_bits = 0;
  std::uint64_t gamma_bits = 0;

  friend bool operator==(const FuseSig&, const FuseSig&) = default;
};

namespace {

/// Only block-size-independent plans fuse: a fused execution reuses the
/// member plan structure at block G·b, which concat (per-exact-b lowering,
/// last-round strategy re-resolution) and irregular plans cannot do.
/// Layout operations never fuse either — the fused staging interleaves
/// members' blocks contiguously.
bool fusable(const OpSpec& spec) {
  return (spec.family == OpSpec::Family::kAlltoall ||
          spec.family == OpSpec::Family::kReduceScatter) &&
         !spec.has_layout;
}

/// The cursor-facing view of a spec's layouts.  Points into the Op's own
/// spec storage (heap-allocated, never moves), so it outlives the cursor.
LayoutPair spec_layouts(const OpSpec& spec) {
  return spec.has_layout ? LayoutPair{&spec.send_layout, &spec.recv_layout}
                         : LayoutPair{};
}

/// Modeled measures of the fused exchange: every cost we lower is linear
/// in the block size with zero intercept, so block G·b scales the byte
/// measures by G and keeps the round count.
model::CostMetrics scale_metrics(const model::CostMetrics& per_op, int group) {
  model::CostMetrics out = per_op;
  out.c2 *= group;
  out.total_bytes *= group;
  out.max_rank_sent *= group;
  out.max_rank_recv *= group;
  return out;
}

}  // namespace

ProgressEngine::ProgressEngine(mps::Communicator& comm)
    : comm_(&comm), native_(comm.native_port_engine()) {}

ProgressEngine::~ProgressEngine() = default;

ProgressEngine& ProgressEngine::for_comm(mps::Communicator& comm) {
  // The engine lives in the communicator's extension slot, so its lifetime
  // tracks the communicator's exactly — no global registry that a reused
  // heap address could resurrect stale state from.
  std::shared_ptr<void>& slot = comm.extension_slot();
  if (!slot) slot = std::shared_ptr<ProgressEngine>(new ProgressEngine(comm));
  return *static_cast<ProgressEngine*>(slot.get());
}

Request ProgressEngine::submit(OpSpec&& spec) {
  const std::uint64_t id = next_id_++;
  auto op = std::make_unique<Op>();
  op->id = id;
  op->spec = std::move(spec);
  if (op->spec.family == OpSpec::Family::kAlltoallv) {
    // The spans point into the Op's own storage; the Op is heap-allocated
    // and never moves, so the view stays valid for its whole life.
    op->view = VectorView{op->spec.counts, op->spec.send_displs,
                          op->spec.recv_displs, op->spec.pad_bytes};
  }
  ops_.emplace(id, std::move(op));
  pending_.push_back(id);
  ++stats_.submitted;
  return Request(this, id);
}

std::size_t ProgressEngine::outstanding() const { return ops_.size(); }

ProgressEngine::Op* ProgressEngine::find_op(std::uint64_t id) {
  const auto it = ops_.find(id);
  return it == ops_.end() ? nullptr : it->second.get();
}

void ProgressEngine::seal() {
  // The serial fallback starts operations inside run_serial_until instead
  // (pending_ doubles as its FIFO).
  if (!native_ || pending_.empty()) return;
  const std::vector<std::uint64_t> batch = std::move(pending_);
  pending_.clear();

  // Group the batch by fuse signature, preserving submission order.
  struct Group {
    bool fusable = false;
    FuseSig sig;
    std::vector<Op*> members;
  };
  std::vector<Group> groups;
  for (const std::uint64_t id : batch) {
    Op* op = find_op(id);
    BRUCK_ENSURE(op != nullptr);
    const OpSpec& spec = op->spec;
    if (fusable(spec)) {
      const FuseSig sig{static_cast<int>(spec.family),
                        spec.key.algorithm,
                        spec.key.n,
                        spec.key.k,
                        spec.key.radix,
                        spec.key.reduce_tag,
                        spec.block_bytes,
                        spec.start_round,
                        spec.requested_segments,
                        double_bits(spec.machine.beta_us),
                        double_bits(spec.machine.tau_us_per_byte),
                        double_bits(spec.machine.gamma_us_per_byte)};
      bool joined = false;
      for (Group& g : groups) {
        if (g.fusable && g.sig == sig) {
          g.members.push_back(op);
          joined = true;
          break;
        }
      }
      if (!joined) groups.push_back(Group{true, sig, {op}});
    } else {
      groups.push_back(Group{false, {}, {op}});
    }
  }

  for (const Group& g : groups) {
    if (g.members.size() > 1) {
      const OpSpec& lead = g.members.front()->spec;
      const int group_size = static_cast<int>(g.members.size());
      const std::int64_t fused_block =
          lead.block_bytes * static_cast<std::int64_t>(group_size);
      if (fused_block <= fuse_max_block_bytes()) {
        const std::int64_t user_bytes = static_cast<std::int64_t>(
            (lead.send.size() + lead.recv.size()) / 2);
        const model::FusionChoice choice = model::pick_fusion(
            group_size, lead.machine, lead.predicted,
            scale_metrics(lead.predicted, group_size), user_bytes);
        if (choice.fuse) {
          start_fused(g.members);
          continue;
        }
      }
    }
    for (Op* op : g.members) start_solo(op);
  }
}

void ProgressEngine::start_solo(Op* op) {
  OpSpec& spec = op->spec;
  op->tag = comm_->allocate_collective_tag();
  ++stats_.tags_used;
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(spec.key);
  auto exec = std::make_unique<Exec>();
  exec->members = {op};
  exec->plan = lookup.plan;
  exec->cache_hit = lookup.cache_hit;
  exec->tag = op->tag;
  switch (spec.family) {
    case OpSpec::Family::kAlltoall:
    case OpSpec::Family::kAllgather:
      exec->cursor = std::make_unique<PlanCursor>(
          lookup.plan, *comm_, spec.send, spec.recv, spec.block_bytes,
          spec.start_round, op->tag, spec_layouts(spec));
      break;
    case OpSpec::Family::kAlltoallv:
      exec->cursor = std::make_unique<PlanCursor>(
          lookup.plan, *comm_, spec.send, spec.recv, op->view,
          spec.start_round, op->tag, spec_layouts(spec));
      break;
    case OpSpec::Family::kReduceScatter:
      exec->cursor = std::make_unique<PlanCursor>(
          lookup.plan, *comm_, spec.send, spec.recv, spec.block_bytes,
          spec.op, spec.start_round, op->tag, spec_layouts(spec));
      break;
    case OpSpec::Family::kAllreduce: {
      const std::int64_t n = spec.key.n;
      const std::int64_t b = spec.block_bytes;
      op->padded.assign(static_cast<std::size_t>(n * b), std::byte{0});
      if (spec.has_layout) {
        // The layouts replace the staging copies: gather the strided user
        // payload straight into the padded scratch (the wire stages run
        // contiguous).
        const std::int64_t logical = spec.send_layout.block_bytes();
        layout_gather(spec.send, spec.send_layout, 0, 0, logical,
                      std::span<std::byte>(op->padded).first(
                          static_cast<std::size_t>(logical)));
      } else if (!spec.send.empty()) {
        std::memcpy(op->padded.data(), spec.send.data(), spec.send.size());
      }
      op->gathered.resize(static_cast<std::size_t>(n * b));
      // The generic stage chain: reduce-scatter feeding allgather through
      // an identity splice, one tag namespace, per-stage events recorded by
      // the composite cursor itself.
      exec->chain = std::make_unique<CompositeCursor>(
          CompositePlan::allreduce_chain(spec.key, spec.concat_key, n, b),
          *comm_, op->padded, op->gathered, &spec.op, spec.start_round,
          op->tag);
      break;
    }
  }
  op->started = true;
  Exec* raw = exec.get();
  live_.push_back(std::move(exec));
  pump_posts(*raw);
}

void ProgressEngine::start_fused(const std::vector<Op*>& members) {
  const OpSpec& lead = members.front()->spec;
  const int group_size = static_cast<int>(members.size());
  const std::int64_t n = lead.key.n;
  const std::int64_t b = lead.block_bytes;
  const std::int64_t bf = group_size * b;
  const bool reduce = lead.family == OpSpec::Family::kReduceScatter;
  const std::int64_t send_blocks = n;
  const std::int64_t recv_blocks = reduce ? 1 : n;
  for (const Op* member : members) {
    BRUCK_REQUIRE_MSG(
        static_cast<std::int64_t>(member->spec.send.size()) ==
                send_blocks * b &&
            static_cast<std::int64_t>(member->spec.recv.size()) ==
                recv_blocks * b,
        "fusion member buffers do not match the collective's block layout");
  }

  // The member plan structure at block G·b, keeping the members' resolved
  // wire segmentation.  Batching exists to amortize the per-message count
  // across tenants; re-tuning segments against the G× fused message sizes
  // would split each fused message G ways and hand the amortized messages
  // straight back.
  PlanKey fused_key = lead.key;
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(fused_key);

  const int tag = comm_->allocate_collective_tag();
  ++stats_.tags_used;
  auto exec = std::make_unique<Exec>();
  exec->members = members;
  exec->plan = lookup.plan;
  exec->cache_hit = lookup.cache_hit;
  exec->tag = tag;
  exec->fused = true;
  exec->member_block = b;
  exec->fused_send.resize(static_cast<std::size_t>(send_blocks * bf));
  exec->fused_recv.resize(static_cast<std::size_t>(recv_blocks * bf));
  // Interleave per block slot: fused block j = [m0 blockj | m1 blockj | …],
  // so the fused exchange routes every member's block j exactly like the
  // solo exchange routes block j.
  if (b > 0) {
    for (std::int64_t j = 0; j < send_blocks; ++j) {
      for (int m = 0; m < group_size; ++m) {
        std::memcpy(exec->fused_send.data() + j * bf + m * b,
                    members[static_cast<std::size_t>(m)]->spec.send.data() +
                        j * b,
                    static_cast<std::size_t>(b));
      }
    }
  }
  if (reduce) {
    exec->cursor = std::make_unique<PlanCursor>(
        lookup.plan, *comm_, exec->fused_send, exec->fused_recv, bf, lead.op,
        lead.start_round, tag);
  } else {
    exec->cursor = std::make_unique<PlanCursor>(lookup.plan, *comm_,
                                                exec->fused_send,
                                                exec->fused_recv, bf,
                                                lead.start_round, tag);
  }
  for (Op* member : members) {
    member->tag = tag;
    member->started = true;
  }
  ++stats_.fused_groups;
  stats_.fused_members += static_cast<std::uint64_t>(group_size);
  Exec* raw = exec.get();
  live_.push_back(std::move(exec));
  pump_posts(*raw);
}

void ProgressEngine::pump_posts(Exec& exec) {
  const std::vector<mps::PortHandle> handles =
      exec.chain ? exec.chain->post_ready() : exec.cursor->post_ready();
  for (const mps::PortHandle h : handles) {
    route_.emplace(h, &exec);
  }
  if (exec.chain ? exec.chain->done() : exec.cursor->done()) retire(exec);
}

void ProgressEngine::deliver(mps::PortHandle h) {
  const auto it = route_.find(h);
  BRUCK_REQUIRE_MSG(it != route_.end(),
                    "progress engine received a foreign completion — "
                    "blocking collectives and raw port operations are not "
                    "allowed while nonblocking requests are outstanding");
  Exec& exec = *it->second;
  route_.erase(it);
  if (exec.chain) {
    exec.chain->on_complete(h);
  } else {
    exec.cursor->on_complete(h);
  }
  pump_posts(exec);
}

void ProgressEngine::retire(Exec& exec) {
  Op* lead = exec.members.front();
  PlanExecution r;
  if (exec.chain) {
    // The composite cursor recorded one PlanEvent per stage as it drained;
    // its result already aggregates the stages.
    r = exec.chain->result();
  } else {
    r = exec.cursor->result();
    comm_->record_plan_event(mps::PlanEvent{exec.cache_hit,
                                            exec.plan->round_count(),
                                            r.bytes_sent, r.bytes_reduced,
                                            exec.tag});
  }

  if (exec.fused) {
    // Scatter the interleaved result back and split the totals evenly
    // (members are byte-identical in shape).
    const int group_size = static_cast<int>(exec.members.size());
    const std::int64_t b = exec.member_block;
    const std::int64_t bf = group_size * b;
    const bool reduce =
        lead->spec.family == OpSpec::Family::kReduceScatter;
    const std::int64_t recv_blocks = reduce ? 1 : lead->spec.key.n;
    if (b > 0) {
      for (std::int64_t i = 0; i < recv_blocks; ++i) {
        for (int m = 0; m < group_size; ++m) {
          std::memcpy(
              exec.members[static_cast<std::size_t>(m)]->spec.recv.data() +
                  i * b,
              exec.fused_recv.data() + i * bf + m * b,
              static_cast<std::size_t>(b));
        }
      }
    }
    for (Op* member : exec.members) {
      member->result = PlanExecution{r.next_round, r.bytes_sent / group_size,
                                     r.bytes_reduced / group_size};
    }
  } else if (lead->spec.family == OpSpec::Family::kAllreduce) {
    if (lead->spec.has_layout) {
      const std::int64_t logical = lead->spec.recv_layout.block_bytes();
      layout_scatter(lead->spec.recv, lead->spec.recv_layout, 0, 0, logical,
                     std::span<const std::byte>(lead->gathered).first(
                         static_cast<std::size_t>(logical)));
    } else if (!lead->spec.recv.empty()) {
      std::memcpy(lead->spec.recv.data(), lead->gathered.data(),
                  lead->spec.recv.size());
    }
    lead->result = r;
  } else {
    lead->result = r;
  }

  for (Op* member : exec.members) member->done = true;
  stats_.completed += static_cast<std::uint64_t>(exec.members.size());
  const int tag = exec.tag;
  const auto it = std::find_if(
      live_.begin(), live_.end(),
      [&exec](const std::unique_ptr<Exec>& e) { return e.get() == &exec; });
  BRUCK_ENSURE(it != live_.end());
  live_.erase(it);  // `exec` is destroyed here
  if (tag > 0) comm_->release_tag(tag);
}

bool ProgressEngine::test(std::uint64_t id) {
  Op* op = find_op(id);
  BRUCK_REQUIRE_MSG(op != nullptr,
                    "test on an unknown or already-waited request");
  if (op->done) return true;
  if (!native_) {
    // The exchange-backed fallback cannot make progress without blocking:
    // test degrades to wait (mirrors Communicator::test_recv's fallback).
    run_serial_until(id);
    return true;
  }
  seal();
  while (!op->done) {
    const std::optional<mps::PortHandle> h = comm_->poll_any_recv();
    if (!h.has_value()) break;
    deliver(*h);
  }
  return op->done;
}

int ProgressEngine::wait(std::uint64_t id) {
  Op* op = find_op(id);
  BRUCK_REQUIRE_MSG(op != nullptr,
                    "wait on an unknown or already-waited request");
  if (!op->done) {
    if (!native_) {
      run_serial_until(id);
    } else {
      seal();
      // One drain budget for the whole completion loop: waiting out a
      // multi-round collective must not reset the receive timeout per
      // arriving message (the mps::DrainDeadline rule — on a real fabric a
      // trickling peer could otherwise stretch one wait() to rounds ×
      // budget before a stall is diagnosed).
      const mps::DrainDeadline deadline(comm_->recv_timeout());
      while (!op->done) {
        BRUCK_ENSURE_MSG(!route_.empty(),
                         "progress engine stalled: operation incomplete "
                         "with no receive in flight");
        deliver(comm_->wait_any_recv_within(deadline));
      }
    }
  }
  const int next = op->result.next_round;
  ops_.erase(id);
  return next;
}

void ProgressEngine::step_blocking() {
  if (!native_) {
    BRUCK_REQUIRE_MSG(!pending_.empty(),
                      "progress step with nothing outstanding");
    run_serial_until(pending_.front());
    return;
  }
  seal();
  if (route_.empty()) return;  // everything completed at start
  deliver(comm_->wait_any_recv());
}

void ProgressEngine::run_serial_until(std::uint64_t id) {
  while (true) {
    BRUCK_REQUIRE_MSG(!pending_.empty(),
                      "request missing from the serial fallback queue");
    const std::uint64_t front = pending_.front();
    pending_.erase(pending_.begin());
    Op* op = find_op(front);
    BRUCK_ENSURE(op != nullptr);
    run_serial_op(*op);
    if (front == id) return;
  }
}

void ProgressEngine::run_serial_op(Op& op) {
  OpSpec& spec = op.spec;
  // One exchange-backed round space is shared by everything on the comm:
  // chain each operation after the previous one's rounds.
  const int start = std::max(spec.start_round, serial_next_round_);
  op.tag = 0;
  op.started = true;
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(spec.key);
  switch (spec.family) {
    case OpSpec::Family::kAlltoall:
    case OpSpec::Family::kAllgather: {
      PlanCursor cursor(lookup.plan, *comm_, spec.send, spec.recv,
                        spec.block_bytes, start, /*tag=*/0,
                        spec_layouts(spec));
      op.result = drive_blocking(cursor);
      comm_->record_plan_event(mps::PlanEvent{lookup.cache_hit,
                                              lookup.plan->round_count(),
                                              op.result.bytes_sent});
      break;
    }
    case OpSpec::Family::kAlltoallv: {
      PlanCursor cursor(lookup.plan, *comm_, spec.send, spec.recv, op.view,
                        start, /*tag=*/0, spec_layouts(spec));
      op.result = drive_blocking(cursor);
      comm_->record_plan_event(mps::PlanEvent{lookup.cache_hit,
                                              lookup.plan->round_count(),
                                              op.result.bytes_sent});
      break;
    }
    case OpSpec::Family::kReduceScatter: {
      PlanCursor cursor(lookup.plan, *comm_, spec.send, spec.recv,
                        spec.block_bytes, spec.op, start, /*tag=*/0,
                        spec_layouts(spec));
      op.result = drive_blocking(cursor);
      comm_->record_plan_event(
          mps::PlanEvent{lookup.cache_hit, lookup.plan->round_count(),
                         op.result.bytes_sent, op.result.bytes_reduced});
      break;
    }
    case OpSpec::Family::kAllreduce: {
      // Same generic stage chain as the native path, driven by the
      // blocking composite runner (which records the per-stage events).
      const std::int64_t n = spec.key.n;
      const std::int64_t b = spec.block_bytes;
      op.padded.assign(static_cast<std::size_t>(n * b), std::byte{0});
      if (spec.has_layout) {
        const std::int64_t logical = spec.send_layout.block_bytes();
        layout_gather(spec.send, spec.send_layout, 0, 0, logical,
                      std::span<std::byte>(op.padded).first(
                          static_cast<std::size_t>(logical)));
      } else if (!spec.send.empty()) {
        std::memcpy(op.padded.data(), spec.send.data(), spec.send.size());
      }
      op.gathered.resize(static_cast<std::size_t>(n * b));
      const CompositePlan chain =
          CompositePlan::allreduce_chain(spec.key, spec.concat_key, n, b);
      op.result = chain.run(*comm_, op.padded, op.gathered, &spec.op, start);
      if (spec.has_layout) {
        const std::int64_t logical = spec.recv_layout.block_bytes();
        layout_scatter(spec.recv, spec.recv_layout, 0, 0, logical,
                       std::span<const std::byte>(op.gathered).first(
                           static_cast<std::size_t>(logical)));
      } else if (!spec.recv.empty()) {
        std::memcpy(spec.recv.data(), op.gathered.data(), spec.recv.size());
      }
      break;
    }
  }
  serial_next_round_ = std::max(serial_next_round_, op.result.next_round);
  op.done = true;
  ++stats_.serial_fallback;
  ++stats_.completed;
}

PlanExecution ProgressEngine::drive_blocking(PlanCursor& cursor) {
  // Same one-budget-per-drive rule as ProgressEngine::wait.
  const mps::DrainDeadline deadline(comm_->recv_timeout());
  while (!cursor.done()) {
    (void)cursor.post_ready();
    if (cursor.done()) break;
    BRUCK_ENSURE_MSG(cursor.outstanding() > 0,
                     "fallback cursor stalled with nothing in flight");
    cursor.on_complete(comm_->wait_any_recv_within(deadline));
  }
  // Flush receive-less trailing rounds the deferred engine still queues.
  comm_->wait_all_recvs();
  return cursor.result();
}

// -- Request ---------------------------------------------------------------

Request::~Request() {
  if (engine_ == nullptr) return;
  try {
    engine_->wait(id_);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "bruck: coll::Request dropped before wait(); completing it "
                 "failed: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr,
                 "bruck: coll::Request dropped before wait(); completing it "
                 "failed\n");
  }
}

Request::Request(Request&& other) noexcept
    : engine_(other.engine_), id_(other.id_) {
  other.engine_ = nullptr;
  other.id_ = 0;
}

Request& Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    {
      // Completes (and error-reports) any operation this handle still owns.
      Request doomed(std::move(*this));
    }
    engine_ = other.engine_;
    id_ = other.id_;
    other.engine_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

bool Request::test() {
  if (engine_ == nullptr) return true;
  return engine_->test(id_);
}

int Request::wait() {
  if (engine_ == nullptr) return 0;
  ProgressEngine* engine = engine_;
  engine_ = nullptr;
  return engine->wait(id_);
}

void wait_all(std::span<Request> requests) {
  for (Request& r : requests) {
    if (r.valid()) r.wait();
  }
}

std::size_t wait_any(std::span<Request> requests) {
  ProgressEngine* engine = nullptr;
  for (const Request& r : requests) {
    if (r.valid()) {
      engine = r.engine_;
      break;
    }
  }
  BRUCK_REQUIRE_MSG(engine != nullptr,
                    "wait_any needs at least one active request");
  for (const Request& r : requests) {
    BRUCK_REQUIRE_MSG(!r.valid() || r.engine_ == engine,
                      "wait_any requests must share one communicator");
  }
  while (true) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      Request& r = requests[i];
      if (r.valid() && r.test()) {
        r.wait();
        return i;
      }
    }
    engine->step_blocking();
  }
}

}  // namespace bruck::coll
