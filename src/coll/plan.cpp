#include "coll/plan.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "coll/blocks.hpp"
#include "topo/binomial.hpp"
#include "topo/partition.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::coll {

namespace {

/// Cells covering whole consecutive blocks [first, first + count).
std::vector<PlanCell> whole_blocks(std::int64_t first, std::int64_t count) {
  std::vector<PlanCell> cells;
  cells.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    cells.push_back(PlanCell{first + i, 0, PlanCell::kWholeBlock});
  }
  return cells;
}

std::vector<PlanCell> one_block(std::int64_t slot) {
  return {PlanCell{slot, 0, PlanCell::kWholeBlock}};
}

}  // namespace

Plan::Plan(PlanCollective collective, std::string algorithm, std::int64_t n,
           int k, std::int64_t block_bytes)
    : collective_(collective),
      algorithm_(std::move(algorithm)),
      n_(n),
      k_(k),
      block_bytes_(block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  programs_.resize(static_cast<std::size_t>(n));
}

void Plan::begin_round() {
  for (RankProgram& p : programs_) {
    PlanRound r;
    r.sends_begin = static_cast<std::uint32_t>(p.sends.size());
    r.recvs_begin = static_cast<std::uint32_t>(p.recvs.size());
    p.rounds.push_back(r);
  }
}

void Plan::end_round() {
  for (RankProgram& p : programs_) {
    PlanRound& r = p.rounds.back();
    r.sends_end = static_cast<std::uint32_t>(p.sends.size());
    r.recvs_end = static_cast<std::uint32_t>(p.recvs.size());
  }
  ++round_count_;
}

void Plan::add_message(std::int64_t rank, bool is_send, std::int64_t peer,
                       PlanBuffer buffer, const std::vector<PlanCell>& cells) {
  BRUCK_REQUIRE(!cells.empty());
  BRUCK_REQUIRE(peer >= 0 && peer < n_ && peer != rank);
  PlanMessage m;
  m.peer = peer;
  m.buffer = buffer;
  m.cells_begin = static_cast<std::uint32_t>(cells_.size());
  cells_.insert(cells_.end(), cells.begin(), cells.end());
  m.cells_end = static_cast<std::uint32_t>(cells_.size());
  m.contiguous = cells_contiguous(m.cells_begin, m.cells_end);
  RankProgram& p = programs_[static_cast<std::size_t>(rank)];
  (is_send ? p.sends : p.recvs).push_back(m);
}

bool Plan::cells_contiguous(std::uint32_t begin, std::uint32_t end) const {
  if (block_bytes_ == PlanCell::kWholeBlock) {
    // Block-size-independent plan: a run of whole consecutive blocks is
    // contiguous under every block size.
    for (std::uint32_t i = begin; i < end; ++i) {
      const PlanCell& c = cells_[i];
      if (c.lo != 0 || c.hi != PlanCell::kWholeBlock) return false;
      if (i > begin && c.slot != cells_[i - 1].slot + 1) return false;
    }
    return true;
  }
  const std::int64_t b = block_bytes_;
  for (std::uint32_t i = begin + 1; i < end; ++i) {
    const PlanCell& prev = cells_[i - 1];
    const PlanCell& cur = cells_[i];
    const std::int64_t prev_end =
        prev.slot * b + (prev.hi == PlanCell::kWholeBlock ? b : prev.hi);
    const std::int64_t cur_begin = cur.slot * b + cur.lo;
    if (prev_end != cur_begin) return false;
  }
  return true;
}

std::int64_t Plan::message_bytes(const PlanMessage& m, std::int64_t b) const {
  std::int64_t total = 0;
  for (std::uint32_t i = m.cells_begin; i < m.cells_end; ++i) {
    const PlanCell& c = cells_[i];
    total += c.hi == PlanCell::kWholeBlock ? b : c.hi - c.lo;
  }
  return total;
}

void Plan::finalize() {
  needs_scratch_ = prologue_ == PlanPrologue::kRotateSendToScratch ||
                   prologue_ == PlanPrologue::kCopySendToScratch0;
  for (const RankProgram& p : programs_) {
    BRUCK_ENSURE(static_cast<int>(p.rounds.size()) == round_count_);
    for (const PlanMessage& m : p.sends) {
      if (m.buffer == PlanBuffer::kScratch) needs_scratch_ = true;
    }
    for (const PlanMessage& m : p.recvs) {
      if (m.buffer == PlanBuffer::kScratch) needs_scratch_ = true;
      BRUCK_ENSURE_MSG(m.buffer != PlanBuffer::kUserSend,
                       "a receive cannot land in the caller's send buffer");
    }
  }
  // Validate the pattern under the k-port model using a reference block
  // size (index plans are block-size independent; 1 byte/block suffices).
  const sched::Schedule view = to_schedule(1);
  const std::string err = view.validate();
  BRUCK_ENSURE_MSG(err.empty(), "lowered plan violates the k-port model: " + err);
}

sched::Schedule Plan::to_schedule(std::int64_t block_bytes) const {
  const std::int64_t b =
      block_bytes_ == PlanCell::kWholeBlock ? block_bytes : block_bytes_;
  sched::Schedule schedule(n_, k_);
  for (int i = 0; i < round_count_; ++i) schedule.add_round();
  for (std::int64_t rank = 0; rank < n_; ++rank) {
    const RankProgram& p = programs_[static_cast<std::size_t>(rank)];
    for (int i = 0; i < round_count_; ++i) {
      const PlanRound& r = p.rounds[static_cast<std::size_t>(i)];
      for (std::uint32_t s = r.sends_begin; s < r.sends_end; ++s) {
        const std::int64_t bytes = message_bytes(p.sends[s], b);
        if (bytes == 0) continue;
        schedule.add_transfer(
            static_cast<std::size_t>(i),
            sched::Transfer{rank, p.sends[s].peer, bytes});
      }
    }
  }
  schedule.normalize();
  return schedule;
}

// ---------------------------------------------------------------------------
// Execution.

PlanExecution Plan::run(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, std::int64_t block_bytes,
                        int start_round) const {
  const std::int64_t n = n_;
  const std::int64_t rank = comm.rank();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE_MSG(comm.size() == n, "plan lowered for a different n");
  BRUCK_REQUIRE_MSG(comm.ports() == k_, "plan lowered for a different k");
  BRUCK_REQUIRE(b >= 0);
  if (collective_ == PlanCollective::kIndex) {
    BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == n * b);
  } else {
    BRUCK_REQUIRE_MSG(b == block_bytes_,
                      "concat plans are lowered per block size");
    BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == b);
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);

  std::vector<std::byte> scratch(
      needs_scratch_ ? static_cast<std::size_t>(n * b) : 0);

  switch (prologue_) {
    case PlanPrologue::kNone:
      break;
    case PlanPrologue::kRotateSendToScratch:
      rotate_blocks_up(ConstBlockSpan(send, n, b), BlockSpan(scratch, n, b),
                       rank);
      break;
    case PlanPrologue::kCopyOwnBlock:
      if (b > 0) {
        std::memcpy(recv.data() + rank * b, send.data() + rank * b,
                    static_cast<std::size_t>(b));
      }
      break;
    case PlanPrologue::kCopySendToScratch0:
      if (b > 0) {
        std::memcpy(scratch.data(), send.data(), static_cast<std::size_t>(b));
      }
      break;
    case PlanPrologue::kCopySendToRecvOwnSlot:
      if (b > 0) {
        std::memcpy(recv.data() + rank * b, send.data(),
                    static_cast<std::size_t>(b));
      }
      break;
  }

  const auto readable = [&](PlanBuffer buf) -> std::span<const std::byte> {
    switch (buf) {
      case PlanBuffer::kUserSend: return send;
      case PlanBuffer::kUserRecv: return recv;
      case PlanBuffer::kScratch: return scratch;
    }
    return {};
  };
  const auto writable = [&](PlanBuffer buf) -> std::span<std::byte> {
    return buf == PlanBuffer::kScratch ? std::span<std::byte>(scratch) : recv;
  };

  const RankProgram& prog = programs_[static_cast<std::size_t>(rank)];
  PlanExecution out;
  std::vector<std::vector<std::byte>> out_stage(
      static_cast<std::size_t>(k_));
  std::vector<std::vector<std::byte>> in_stage(static_cast<std::size_t>(k_));
  std::vector<mps::SendSpec> sends;
  std::vector<mps::RecvSpec> recvs;
  // Non-contiguous receives pending scatter after the exchange.
  std::vector<std::pair<const PlanMessage*, const std::byte*>> scatters;

  for (int i = 0; i < round_count_; ++i) {
    const PlanRound& round = prog.rounds[static_cast<std::size_t>(i)];
    sends.clear();
    recvs.clear();
    scatters.clear();

    for (std::uint32_t s = round.sends_begin; s < round.sends_end; ++s) {
      const PlanMessage& m = prog.sends[s];
      const std::int64_t bytes = message_bytes(m, b);
      if (bytes == 0) continue;  // b = 0: pure round counting, off the fabric
      std::span<const std::byte> payload;
      if (m.contiguous) {
        // Zero-copy: the message is one byte run of the source buffer.
        const PlanCell& first = cells_[m.cells_begin];
        payload = readable(m.buffer)
                      .subspan(static_cast<std::size_t>(first.slot * b +
                                                        first.lo),
                               static_cast<std::size_t>(bytes));
      } else {
        std::vector<std::byte>& stage = out_stage[s - round.sends_begin];
        stage.resize(static_cast<std::size_t>(bytes));
        const std::span<const std::byte> src = readable(m.buffer);
        std::size_t pos = 0;
        for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
          const PlanCell& cell = cells_[c];
          const std::int64_t len =
              cell.hi == PlanCell::kWholeBlock ? b : cell.hi - cell.lo;
          std::memcpy(stage.data() + pos,
                      src.data() + cell.slot * b + cell.lo,
                      static_cast<std::size_t>(len));
          pos += static_cast<std::size_t>(len);
        }
        payload = stage;
      }
      sends.push_back(mps::SendSpec{m.peer, payload});
      out.bytes_sent += bytes;
    }

    for (std::uint32_t r = round.recvs_begin; r < round.recvs_end; ++r) {
      const PlanMessage& m = prog.recvs[r];
      const std::int64_t bytes = message_bytes(m, b);
      if (bytes == 0) continue;
      std::span<std::byte> landing;
      if (m.contiguous) {
        const PlanCell& first = cells_[m.cells_begin];
        landing = writable(m.buffer)
                      .subspan(static_cast<std::size_t>(first.slot * b +
                                                        first.lo),
                               static_cast<std::size_t>(bytes));
      } else {
        std::vector<std::byte>& stage = in_stage[r - round.recvs_begin];
        stage.resize(static_cast<std::size_t>(bytes));
        landing = stage;
        scatters.emplace_back(&m, stage.data());
      }
      recvs.push_back(mps::RecvSpec{m.peer, landing});
    }

    if (!sends.empty() || !recvs.empty()) {
      comm.exchange(start_round + i, sends, recvs);
    }

    for (const auto& [m, data] : scatters) {
      std::span<std::byte> dst = writable(m->buffer);
      std::size_t pos = 0;
      for (std::uint32_t c = m->cells_begin; c < m->cells_end; ++c) {
        const PlanCell& cell = cells_[c];
        const std::int64_t len =
            cell.hi == PlanCell::kWholeBlock ? b : cell.hi - cell.lo;
        std::memcpy(dst.data() + cell.slot * b + cell.lo, data + pos,
                    static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
      }
    }
  }

  switch (epilogue_) {
    case PlanEpilogue::kNone:
      break;
    case PlanEpilogue::kUnrotateByRank:
      unrotate_by_rank(ConstBlockSpan(scratch, n, b), BlockSpan(recv, n, b),
                       rank);
      break;
    case PlanEpilogue::kRotateWindowToOrigin:
      rotate_window_to_origin(ConstBlockSpan(scratch, n, b),
                              BlockSpan(recv, n, b), rank);
      break;
    case PlanEpilogue::kScratchToRecvAtRoot:
      if (rank == 0 && b > 0) {
        std::memcpy(recv.data(), scratch.data(), recv.size());
      }
      break;
  }

  out.next_round = start_round + round_count_;
  return out;
}

// ---------------------------------------------------------------------------
// Lowering: the compiled counterparts of the coll/ implementations.  Each
// mirrors its oracle's loop structure exactly (same rounds, same peers, same
// pack order), so plan-executed and directly-executed results — and traces —
// are bit-identical.

std::shared_ptr<const Plan> Plan::lower_index_bruck(std::int64_t n, int k,
                                                    std::int64_t radix) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(radix >= 2 && radix <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kIndex, "bruck(r=" + std::to_string(radix) + ")", n, k,
      PlanCell::kWholeBlock));
  plan->prologue_ = PlanPrologue::kRotateSendToScratch;
  plan->epilogue_ = PlanEpilogue::kUnrotateByRank;

  const std::int64_t r = radix;
  const int w = radix_digit_count(n, r);
  for (int x = 0; x < w; ++x) {
    const std::int64_t dist = ipow(r, x);
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      plan->begin_round();
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::vector<std::int64_t> members =
            radix_digit_members(n, r, x, z);
        std::vector<PlanCell> cells;
        cells.reserve(members.size());
        for (const std::int64_t slot : members) {
          cells.push_back(PlanCell{slot, 0, PlanCell::kWholeBlock});
        }
        for (std::int64_t rank = 0; rank < n; ++rank) {
          const std::int64_t dst = pos_mod(rank + z * dist, n);
          const std::int64_t src = pos_mod(rank - z * dist, n);
          plan->add_message(rank, /*is_send=*/true, dst, PlanBuffer::kScratch,
                            cells);
          plan->add_message(rank, /*is_send=*/false, src, PlanBuffer::kScratch,
                            cells);
        }
      }
      plan->end_round();
    }
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_index_direct(std::int64_t n, int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kIndex, "direct", n, k, PlanCell::kWholeBlock));
  plan->prologue_ = PlanPrologue::kCopyOwnBlock;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t dst = pos_mod(rank + j, n);
        const std::int64_t src = pos_mod(rank - j, n);
        plan->add_message(rank, true, dst, PlanBuffer::kUserSend,
                          one_block(dst));
        plan->add_message(rank, false, src, PlanBuffer::kUserRecv,
                          one_block(src));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_index_pairwise(std::int64_t n, int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(is_pow2(n), "pairwise exchange requires a power-of-two n");
  auto plan = std::shared_ptr<Plan>(new Plan(PlanCollective::kIndex, "pairwise",
                                             n, k, PlanCell::kWholeBlock));
  plan->prologue_ = PlanPrologue::kCopyOwnBlock;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t peer = rank ^ j;
        plan->add_message(rank, true, peer, PlanBuffer::kUserSend,
                          one_block(peer));
        plan->add_message(rank, false, peer, PlanBuffer::kUserRecv,
                          one_block(peer));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concat_bruck(
    std::int64_t n, int k, std::int64_t block_bytes,
    model::ConcatLastRound strategy) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(strategy != model::ConcatLastRound::kAuto,
                    "resolve kAuto before lowering (plan keys are canonical)");
  const std::int64_t b = block_bytes;
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kConcat, "bruck", n, k, b));
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kRotateWindowToOrigin;
  if (n == 1 || b == 0) {
    // Pattern is vacuous; prologue + epilogue alone realize the copy.
    plan->finalize();
    return plan;
  }

  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;

  // Full rounds: the window of cur blocks goes to the k nodes at −j·cur.
  std::int64_t cur = 1;
  for (int i = 0; i + 1 < d; ++i) {
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      for (int j = 1; j <= k; ++j) {
        plan->add_message(rank, true, pos_mod(rank - j * cur, n),
                          PlanBuffer::kScratch, whole_blocks(0, cur));
        plan->add_message(rank, false, pos_mod(rank + j * cur, n),
                          PlanBuffer::kScratch, whole_blocks(j * cur, cur));
      }
    }
    plan->end_round();
    cur *= (k + 1);
  }
  BRUCK_ENSURE(cur == n1);

  // Last round(s): a table partition ships the remaining n2 block-columns,
  // one area per port (Section 4.2); cells are byte-granular.
  const auto emit_partition = [&](const topo::TablePartition& part) {
    plan->begin_round();
    for (std::size_t m = 0; m < part.areas.size(); ++m) {
      const topo::Area& area = part.areas[m];
      const std::int64_t offset = n1 + area.left_col();
      std::vector<PlanCell> send_cells;
      std::vector<PlanCell> recv_cells;
      send_cells.reserve(area.cells.size());
      recv_cells.reserve(area.cells.size());
      for (const topo::AreaCell& cell : area.cells) {
        const std::int64_t slot = cell.col - area.left_col();
        BRUCK_ENSURE_MSG(slot >= 0 && slot < n1,
                         "area references a block outside the sender's window "
                         "(span constraint violated)");
        send_cells.push_back(PlanCell{slot, cell.row_begin, cell.row_end});
        recv_cells.push_back(
            PlanCell{n1 + cell.col, cell.row_begin, cell.row_end});
      }
      for (std::int64_t rank = 0; rank < n; ++rank) {
        plan->add_message(rank, true, pos_mod(rank - offset, n),
                          PlanBuffer::kScratch, send_cells);
        plan->add_message(rank, false, pos_mod(rank + offset, n),
                          PlanBuffer::kScratch, recv_cells);
      }
    }
    plan->end_round();
  };

  if (n2 > 0) {
    switch (strategy) {
      case model::ConcatLastRound::kByteSplit: {
        const topo::TablePartition part =
            topo::byte_split_partition(n1, n2, b, k);
        BRUCK_REQUIRE_MSG(
            part.feasible(),
            "byte-split partition infeasible for this (n, k, b); use "
            "kColumnGranular, kTwoRound or kAuto");
        emit_partition(part);
        break;
      }
      case model::ConcatLastRound::kColumnGranular: {
        const topo::TablePartition part =
            topo::column_granular_partition(n1, n2, b, k);
        BRUCK_ENSURE(part.max_span() <= n1);
        BRUCK_ENSURE(part.max_size() <= part.alpha() + b - 1);
        emit_partition(part);
        break;
      }
      case model::ConcatLastRound::kTwoRound: {
        if (n2 <= k) {
          const topo::TablePartition part =
              topo::column_granular_partition(n1, n2, b, k);
          BRUCK_ENSURE(part.max_span() <= n1);
          BRUCK_ENSURE(part.max_size() <= b);
          emit_partition(part);
        } else {
          const topo::TablePartition part_a =
              topo::byte_split_partition(n1, n2 - k, b, k);
          BRUCK_ENSURE_MSG(part_a.feasible(),
                           "two-round round A must always be feasible");
          emit_partition(part_a);
          topo::TablePartition part_b{n1, n2, b, k, {}};
          for (std::int64_t c = n2 - k; c < n2; ++c) {
            topo::Area area;
            area.cells.push_back(topo::AreaCell{c, 0, b});
            part_b.areas.push_back(std::move(area));
          }
          emit_partition(part_b);
        }
        break;
      }
      case model::ConcatLastRound::kAuto:
        BRUCK_ENSURE_MSG(false, "unreachable: kAuto rejected above");
    }
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concat_folklore(
    std::int64_t n, int k, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  // One-port algorithm on a k-port fabric: one message per round per rank.
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kConcat, "folklore", n, k, block_bytes));
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kScratchToRecvAtRoot;
  if (n == 1 || block_bytes == 0) {
    plan->finalize();
    return plan;
  }
  const int d = ceil_log(n, 2);

  // Gather phase: rank r accumulates the linear segment [r, r + seg).
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == stride) {
        const std::int64_t seg = topo::binomial_gather_segment(n, rank, i);
        plan->add_message(rank, true, rank - stride, PlanBuffer::kScratch,
                          whole_blocks(0, seg));
      } else if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        const std::int64_t seg =
            topo::binomial_gather_segment(n, rank + stride, i);
        plan->add_message(rank, false, rank + stride, PlanBuffer::kScratch,
                          whole_blocks(stride, seg));
      }
    }
    plan->end_round();
  }

  // Broadcast phase: rank 0 pushes the full concatenation down the reversed
  // tree.  Rank 0 sends from its gather staging; every other rank receives
  // into (and forwards from) the user recv buffer.
  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        plan->add_message(
            rank, true, rank + stride,
            rank == 0 ? PlanBuffer::kScratch : PlanBuffer::kUserRecv,
            whole_blocks(0, n));
      } else if (pos_mod(rank, 2 * stride) == stride) {
        plan->add_message(rank, false, rank - stride, PlanBuffer::kUserRecv,
                          whole_blocks(0, n));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concat_ring(std::int64_t n, int k,
                                                    std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kConcat, "ring", n, k, block_bytes));
  plan->prologue_ = PlanPrologue::kCopySendToRecvOwnSlot;
  if (n == 1 || block_bytes == 0) {
    plan->finalize();
    return plan;
  }

  for (std::int64_t t = 0; t < n - 1; ++t) {
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      const std::int64_t succ = pos_mod(rank + 1, n);
      const std::int64_t pred = pos_mod(rank - 1, n);
      plan->add_message(rank, true, succ, PlanBuffer::kUserRecv,
                        one_block(pos_mod(rank - t, n)));
      plan->add_message(rank, false, pred, PlanBuffer::kUserRecv,
                        one_block(pos_mod(rank - t - 1, n)));
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

// ---------------------------------------------------------------------------

std::string Plan::describe() const {
  std::ostringstream os;
  os << "plan " << (collective_ == PlanCollective::kIndex ? "index" : "concat")
     << "/" << algorithm_ << ": n=" << n_ << " k=" << k_;
  if (block_bytes_ == PlanCell::kWholeBlock) {
    os << " (block-size independent)";
  } else {
    os << " b=" << block_bytes_;
  }
  os << ", " << round_count_ << " rounds\n";
  const std::int64_t b_view =
      block_bytes_ == PlanCell::kWholeBlock ? 1 : block_bytes_;
  if (round_count_ > 0) {
    const model::CostMetrics m = to_schedule(b_view).metrics();
    os << "  C1=" << m.c1 << " C2=" << m.c2
       << (block_bytes_ == PlanCell::kWholeBlock ? " blocks" : " bytes")
       << " total=" << m.total_bytes << "\n";
  }
  os << "  rank 0 program:\n";
  const RankProgram& p = programs_[0];
  for (int i = 0; i < round_count_; ++i) {
    const PlanRound& r = p.rounds[static_cast<std::size_t>(i)];
    os << "    round " << i << ":";
    if (r.sends_begin == r.sends_end && r.recvs_begin == r.recvs_end) {
      os << " idle";
    }
    for (std::uint32_t s = r.sends_begin; s < r.sends_end; ++s) {
      const PlanMessage& m = p.sends[s];
      os << "  ->" << m.peer << " " << message_bytes(m, b_view)
         << (block_bytes_ == PlanCell::kWholeBlock ? "blk" : "B")
         << (m.contiguous ? " (zero-copy)" : " (packed)");
    }
    for (std::uint32_t r2 = r.recvs_begin; r2 < r.recvs_end; ++r2) {
      const PlanMessage& m = p.recvs[r2];
      os << "  <-" << m.peer << " " << message_bytes(m, b_view)
         << (block_bytes_ == PlanCell::kWholeBlock ? "blk" : "B");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bruck::coll
