#include "coll/plan.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "coll/blocks.hpp"
#include "coll/pack.hpp"
#include "model/tuner.hpp"
#include "topo/binomial.hpp"
#include "topo/partition.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::coll {

namespace {

/// Cells covering whole consecutive blocks [first, first + count).
std::vector<PlanCell> whole_blocks(std::int64_t first, std::int64_t count) {
  std::vector<PlanCell> cells;
  cells.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    cells.push_back(PlanCell{first + i, 0, PlanCell::kWholeBlock});
  }
  return cells;
}

std::vector<PlanCell> one_block(std::int64_t slot) {
  return {PlanCell{slot, 0, PlanCell::kWholeBlock}};
}

}  // namespace

Plan::Plan(PlanCollective collective, std::string algorithm, std::int64_t n,
           int k, std::int64_t block_bytes)
    : collective_(collective),
      algorithm_(std::move(algorithm)),
      n_(n),
      k_(k),
      block_bytes_(block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  programs_.resize(static_cast<std::size_t>(n));
}

void Plan::begin_round() {
  for (RankProgram& p : programs_) {
    PlanRound r;
    r.sends_begin = static_cast<std::uint32_t>(p.sends.size());
    r.recvs_begin = static_cast<std::uint32_t>(p.recvs.size());
    p.rounds.push_back(r);
  }
}

void Plan::end_round() {
  for (RankProgram& p : programs_) {
    PlanRound& r = p.rounds.back();
    r.sends_end = static_cast<std::uint32_t>(p.sends.size());
    r.recvs_end = static_cast<std::uint32_t>(p.recvs.size());
  }
  ++round_count_;
}

void Plan::add_message(std::int64_t rank, bool is_send, std::int64_t peer,
                       PlanBuffer buffer, const std::vector<PlanCell>& cells,
                       const std::vector<std::int64_t>& blocks, bool combine) {
  BRUCK_REQUIRE(!cells.empty());
  BRUCK_REQUIRE(peer >= 0 && peer < n_ && peer != rank);
  BRUCK_REQUIRE_MSG(irregular_ == !blocks.empty(),
                    "irregular plans record one occupant-block id per cell; "
                    "uniform plans record none");
  BRUCK_REQUIRE(blocks.empty() || blocks.size() == cells.size());
  BRUCK_REQUIRE_MSG(!combine || !is_send, "only receives may combine");
  BRUCK_REQUIRE_MSG(!combine || collective_ == PlanCollective::kReduce,
                    "combine cells belong to reduction plans");
  PlanMessage m;
  m.peer = peer;
  m.buffer = buffer;
  m.combine = combine;
  m.cells_begin = static_cast<std::uint32_t>(cells_.size());
  cells_.insert(cells_.end(), cells.begin(), cells.end());
  cell_block_.insert(cell_block_.end(), blocks.begin(), blocks.end());
  m.cells_end = static_cast<std::uint32_t>(cells_.size());
  m.contiguous = cells_contiguous(m.cells_begin, m.cells_end);
  RankProgram& p = programs_[static_cast<std::size_t>(rank)];
  (is_send ? p.sends : p.recvs).push_back(m);
}

bool Plan::cells_contiguous(std::uint32_t begin, std::uint32_t end) const {
  if (irregular_) {
    // Sizes and user-buffer displacements resolve at run time; only a
    // single cell is provably one byte run under every shape.
    return end - begin == 1;
  }
  if (block_bytes_ == PlanCell::kWholeBlock) {
    // Block-size-independent plan: a run of whole consecutive blocks is
    // contiguous under every block size.
    for (std::uint32_t i = begin; i < end; ++i) {
      const PlanCell& c = cells_[i];
      if (c.lo != 0 || c.hi != PlanCell::kWholeBlock) return false;
      if (i > begin && c.slot != cells_[i - 1].slot + 1) return false;
    }
    return true;
  }
  const std::int64_t b = block_bytes_;
  for (std::uint32_t i = begin + 1; i < end; ++i) {
    const PlanCell& prev = cells_[i - 1];
    const PlanCell& cur = cells_[i];
    const std::int64_t prev_end =
        prev.slot * b + (prev.hi == PlanCell::kWholeBlock ? b : prev.hi);
    const std::int64_t cur_begin = cur.slot * b + cur.lo;
    if (prev_end != cur_begin) return false;
  }
  return true;
}

std::int64_t Plan::message_bytes(const PlanMessage& m, std::int64_t b) const {
  std::int64_t total = 0;
  for (std::uint32_t i = m.cells_begin; i < m.cells_end; ++i) {
    const PlanCell& c = cells_[i];
    total += c.hi == PlanCell::kWholeBlock ? b : c.hi - c.lo;
  }
  return total;
}

std::int64_t Plan::cell_len(std::uint32_t ci, const Extents& ex) const {
  const PlanCell& c = cells_[ci];
  if (ex.view == nullptr) {
    return c.hi == PlanCell::kWholeBlock ? ex.b : c.hi - c.lo;
  }
  // On-the-wire trimming: the cell's byte range, intersected with the
  // occupant block's true size.
  const std::int64_t size = ex.view->counts[static_cast<std::size_t>(
      cell_block_[ci])];
  const std::int64_t hi =
      c.hi == PlanCell::kWholeBlock ? size : std::min(c.hi, size);
  return std::max<std::int64_t>(0, hi - c.lo);
}

std::int64_t Plan::cell_offset(std::uint32_t ci, PlanBuffer buffer,
                               const Extents& ex) const {
  const PlanCell& c = cells_[ci];
  if (ex.view == nullptr || buffer == PlanBuffer::kScratch) {
    // Uniform stride: the block size, or the padded slot stride.
    return c.slot * ex.b + c.lo;
  }
  const std::span<const std::int64_t> displs =
      buffer == PlanBuffer::kUserSend ? ex.view->send_displs
                                      : ex.view->recv_displs;
  if (displs.empty()) {
    // Concat plans: the user send buffer is this rank's single block.
    return c.slot * ex.b + c.lo;
  }
  return displs[static_cast<std::size_t>(c.slot)] + c.lo;
}

std::int64_t Plan::resolved_message_bytes(const PlanMessage& m,
                                          const Extents& ex) const {
  std::int64_t total = 0;
  for (std::uint32_t i = m.cells_begin; i < m.cells_end; ++i) {
    total += cell_len(i, ex);
  }
  return total;
}

const Layout* Plan::active_layout(PlanBuffer buffer, const Extents& ex) {
  const Layout* lay = nullptr;
  switch (buffer) {
    case PlanBuffer::kUserSend: lay = ex.send_layout; break;
    case PlanBuffer::kUserRecv: lay = ex.recv_layout; break;
    case PlanBuffer::kScratch: return nullptr;
  }
  // A dense layout degenerates to null: the executors then take exactly the
  // pre-layout code paths (zero-copy subspans, bulk memcpy walks).
  return lay != nullptr && !lay->is_contiguous() ? lay : nullptr;
}

void Plan::append_cell_extents(std::uint32_t ci, PlanBuffer buffer,
                               const Extents& ex,
                               std::vector<ByteExtent>& out) const {
  const std::int64_t len = cell_len(ci, ex);
  const Layout* lay = active_layout(buffer, ex);
  if (lay == nullptr) {
    out.push_back(ByteExtent{cell_offset(ci, buffer, ex), len});
    return;
  }
  const PlanCell& c = cells_[ci];
  // The block's origin byte in the caller buffer: displacement-table for
  // irregular plans, layout-strided for uniform ones.  Cell [lo, hi) byte
  // ranges are *logical* and map through the layout's piece walk.
  std::int64_t origin = 0;
  if (ex.view != nullptr) {
    const std::span<const std::int64_t> displs =
        buffer == PlanBuffer::kUserSend ? ex.view->send_displs
                                        : ex.view->recv_displs;
    origin = displs.empty() ? c.slot * lay->block_stride()
                            : displs[static_cast<std::size_t>(c.slot)];
  } else {
    origin = c.slot * lay->block_stride();
  }
  lay->append_extents(origin, c.lo, c.lo + len, out);
}

void Plan::finalize() {
  BRUCK_REQUIRE_MSG(segments_ >= 1, "segment count must be at least 1");
  needs_scratch_ = prologue_ == PlanPrologue::kRotateSendToScratch ||
                   prologue_ == PlanPrologue::kCopySendToScratch0;
  for (const RankProgram& p : programs_) {
    BRUCK_ENSURE(static_cast<int>(p.rounds.size()) == round_count_);
    for (const PlanMessage& m : p.sends) {
      if (m.buffer == PlanBuffer::kScratch) needs_scratch_ = true;
    }
    for (const PlanMessage& m : p.recvs) {
      if (m.buffer == PlanBuffer::kScratch) needs_scratch_ = true;
      BRUCK_ENSURE_MSG(m.buffer != PlanBuffer::kUserSend,
                       "a receive cannot land in the caller's send buffer");
    }
  }
  compute_pipeline_safety();
  // Validate the pattern under the k-port model using a reference block
  // size (index plans are block-size independent; 1 byte/block suffices).
  const sched::Schedule view = to_schedule(1);
  const std::string err = view.validate();
  BRUCK_ENSURE_MSG(err.empty(), "lowered plan violates the k-port model: " + err);
}

namespace {

/// One cell as a byte interval for the round-dependence analysis.  A
/// kWholeBlock upper bound becomes "rest of the slot", which overlaps any
/// range of the same slot under every block size — exactly the conservative
/// reading a block-size-independent plan needs.  `combine` marks a
/// read-modify-write cell (a reducing receive): two combine-writes commute
/// under the (commutative, associative) operator contract, so they do not
/// conflict with each other — but they conflict with every plain read or
/// write, because a combine both reads and replaces the accumulated value.
struct CellInterval {
  std::uint8_t buf = 0;
  std::int64_t slot = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool combine = false;

  [[nodiscard]] auto key() const { return std::tie(buf, slot, lo); }
};

bool intervals_conflict(const std::vector<CellInterval>& a,
                        const std::vector<CellInterval>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const auto ka = std::tie(a[i].buf, a[i].slot);
    const auto kb = std::tie(b[j].buf, b[j].slot);
    if (ka < kb) {
      ++i;
    } else if (kb < ka) {
      ++j;
    } else if (a[i].hi <= b[j].lo) {
      ++i;
    } else if (b[j].hi <= a[i].lo) {
      ++j;
    } else if (a[i].combine && b[j].combine) {
      // Overlapping combine-combine pair: commutes.  Advance whichever
      // interval ends first so each can still meet later ones.
      if (a[i].hi <= b[j].hi) {
        ++i;
      } else {
        ++j;
      }
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

void Plan::compute_pipeline_safety() {
  const auto collect = [&](const RankProgram& p, std::uint32_t begin,
                           std::uint32_t end, bool sends_side) {
    std::vector<CellInterval> out;
    for (std::uint32_t m = begin; m < end; ++m) {
      const PlanMessage& msg = sends_side ? p.sends[m] : p.recvs[m];
      for (std::uint32_t c = msg.cells_begin; c < msg.cells_end; ++c) {
        const PlanCell& cell = cells_[c];
        out.push_back(CellInterval{
            static_cast<std::uint8_t>(msg.buffer), cell.slot, cell.lo,
            cell.hi == PlanCell::kWholeBlock
                ? std::numeric_limits<std::int64_t>::max()
                : cell.hi,
            msg.combine});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const CellInterval& x, const CellInterval& y) {
                return x.key() < y.key();
              });
    return out;
  };
  for (RankProgram& p : programs_) {
    p.pipeline_safe.assign(static_cast<std::size_t>(round_count_), 0);
    std::vector<CellInterval> prev_writes;
    for (int i = 0; i < round_count_; ++i) {
      const PlanRound& r = p.rounds[static_cast<std::size_t>(i)];
      const std::vector<CellInterval> reads =
          collect(p, r.sends_begin, r.sends_end, /*sends_side=*/true);
      std::vector<CellInterval> writes =
          collect(p, r.recvs_begin, r.recvs_end, /*sends_side=*/false);
      if (i > 0) {
        p.pipeline_safe[static_cast<std::size_t>(i)] =
            !intervals_conflict(prev_writes, reads) &&
            !intervals_conflict(prev_writes, writes);
      }
      prev_writes = std::move(writes);
    }
  }
}

sched::Schedule Plan::to_schedule(std::int64_t block_bytes) const {
  const std::int64_t b =
      block_bytes_ == PlanCell::kWholeBlock ? block_bytes : block_bytes_;
  sched::Schedule schedule(n_, k_);
  for (int i = 0; i < round_count_; ++i) schedule.add_round();
  for (std::int64_t rank = 0; rank < n_; ++rank) {
    const RankProgram& p = programs_[static_cast<std::size_t>(rank)];
    for (int i = 0; i < round_count_; ++i) {
      const PlanRound& r = p.rounds[static_cast<std::size_t>(i)];
      for (std::uint32_t s = r.sends_begin; s < r.sends_end; ++s) {
        const std::int64_t bytes = message_bytes(p.sends[s], b);
        if (bytes == 0) continue;
        schedule.add_transfer(
            static_cast<std::size_t>(i),
            sched::Transfer{rank, p.sends[s].peer, bytes});
      }
    }
  }
  schedule.normalize();
  return schedule;
}

// ---------------------------------------------------------------------------
// Execution.

namespace {

/// Layout-side buffer check: a buffer holding `nblocks` layout-mapped
/// blocks of logical size `b` must cover the layout's physical span (≥, not
/// ==: strided layouts legitimately live inside larger arrays), and the
/// layout's logical size must match the plan's block size exactly.
void check_layout_buffer(const Layout* lay, std::int64_t buffer_size,
                         std::int64_t nblocks, std::int64_t b) {
  if (lay == nullptr) return;
  BRUCK_REQUIRE_MSG(lay->block_bytes() == b,
                    "layout logical size must equal the block size");
  BRUCK_REQUIRE_MSG(buffer_size >= lay->span_bytes(nblocks),
                    "buffer too small for the layout's physical span");
}

}  // namespace

void Plan::check_run_contract(const mps::Communicator& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv, std::int64_t b,
                              const LayoutPair& layouts) const {
  BRUCK_REQUIRE_MSG(!irregular_,
                    "irregular plans execute through the VectorView overloads");
  BRUCK_REQUIRE_MSG(collective_ != PlanCollective::kReduce,
                    "reduction plans execute through the ReduceOp overloads");
  BRUCK_REQUIRE_MSG(comm.size() == n_, "plan lowered for a different n");
  BRUCK_REQUIRE_MSG(comm.ports() == k_, "plan lowered for a different k");
  BRUCK_REQUIRE(b >= 0);
  const std::int64_t send_blocks = collective_ == PlanCollective::kIndex ||
                                           collective_ == PlanCollective::kScatter
                                       ? n_
                                       : 1;
  const std::int64_t recv_blocks = collective_ == PlanCollective::kScatter ||
                                           collective_ == PlanCollective::kBcast
                                       ? 1
                                       : n_;
  BRUCK_REQUIRE_MSG(!layouts.active() ||
                        collective_ == PlanCollective::kIndex ||
                        collective_ == PlanCollective::kConcat,
                    "layouts are supported for index and concat plans only");
  if (layouts.send != nullptr) {
    check_layout_buffer(layouts.send, static_cast<std::int64_t>(send.size()),
                        send_blocks, b);
  } else {
    BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == send_blocks * b);
  }
  if (collective_ == PlanCollective::kConcat) {
    BRUCK_REQUIRE_MSG(b == block_bytes_,
                      "concat plans are lowered per block size");
  }
  if (layouts.recv != nullptr) {
    check_layout_buffer(layouts.recv, static_cast<std::int64_t>(recv.size()),
                        recv_blocks, b);
  } else {
    BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == recv_blocks * b);
  }
}

void Plan::check_reduce_contract(const mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, std::int64_t b,
                                 const ReduceOp& op,
                                 const LayoutPair& layouts) const {
  BRUCK_REQUIRE_MSG(collective_ == PlanCollective::kReduce,
                    "only reduction plans take a ReduceOp");
  BRUCK_REQUIRE_MSG(comm.size() == n_, "plan lowered for a different n");
  BRUCK_REQUIRE_MSG(comm.ports() == k_, "plan lowered for a different k");
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE_MSG(op.elem_bytes() >= 1 && b % op.elem_bytes() == 0,
                    "block size must be a whole number of op elements");
  if (layouts.send != nullptr) {
    check_layout_buffer(layouts.send, static_cast<std::int64_t>(send.size()),
                        n_, b);
  } else {
    BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == n_ * b);
  }
  if (layouts.recv != nullptr) {
    check_layout_buffer(layouts.recv, static_cast<std::int64_t>(recv.size()),
                        1, b);
    // Combines trim at layout piece edges; every piece must be a whole
    // number of op elements so the ⊕ never splits an element.
    BRUCK_REQUIRE_MSG(layouts.recv->elem_aligned(op.elem_bytes()),
                      "recv layout blocklen must be a multiple of the op's "
                      "element size");
  } else {
    BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == b);
  }
}

void Plan::check_vector_contract(const mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv,
                                 const VectorView& view,
                                 const LayoutPair& layouts) const {
  BRUCK_REQUIRE_MSG(irregular_,
                    "uniform plans execute through the block_bytes overloads");
  BRUCK_REQUIRE_MSG(comm.size() == n_, "plan lowered for a different n");
  BRUCK_REQUIRE_MSG(comm.ports() == k_, "plan lowered for a different k");
  BRUCK_REQUIRE(view.pad_bytes >= 0);
  BRUCK_REQUIRE_MSG(
      !layouts.active() || collective_ == PlanCollective::kIndex,
      "layouts on irregular plans are supported for index (alltoallv) only");
  if (layouts.send != nullptr) {
    BRUCK_REQUIRE_MSG(layouts.send->block_bytes() >= view.pad_bytes,
                      "send layout must cover the largest block count");
  }
  if (layouts.recv != nullptr) {
    BRUCK_REQUIRE_MSG(layouts.recv->block_bytes() >= view.pad_bytes,
                      "recv layout must cover the largest block count");
  }
  const std::int64_t rank = comm.rank();
  // Under a (non-degenerate) layout a block's displacement is its *origin*
  // and its `len` logical bytes physically end at origin + span_of(len).
  const auto fits = [&](std::span<const std::byte> buf, std::int64_t off,
                        std::int64_t len, const Layout* lay) {
    if (lay != nullptr && !lay->is_contiguous()) {
      return off >= 0 && len >= 0 &&
             off + lay->span_of(len) <=
                 static_cast<std::int64_t>(buf.size());
    }
    return off >= 0 && len >= 0 &&
           off + len <= static_cast<std::int64_t>(buf.size());
  };
  if (collective_ == PlanCollective::kIndex) {
    BRUCK_REQUIRE_MSG(
        static_cast<std::int64_t>(view.counts.size()) == n_ * n_,
        "index plans need the full n*n count matrix");
    BRUCK_REQUIRE(static_cast<std::int64_t>(view.send_displs.size()) == n_);
    BRUCK_REQUIRE(static_cast<std::int64_t>(view.recv_displs.size()) == n_);
    for (std::int64_t j = 0; j < n_; ++j) {
      const std::int64_t out = view.counts[static_cast<std::size_t>(
          rank * n_ + j)];
      const std::int64_t in = view.counts[static_cast<std::size_t>(
          j * n_ + rank)];
      BRUCK_REQUIRE(out >= 0 && out <= view.pad_bytes);
      BRUCK_REQUIRE(in >= 0 && in <= view.pad_bytes);
      BRUCK_REQUIRE_MSG(fits(send, view.send_displs[
                                 static_cast<std::size_t>(j)], out,
                             layouts.send),
                        "send block exceeds the send buffer");
      BRUCK_REQUIRE_MSG(fits(recv, view.recv_displs[
                                 static_cast<std::size_t>(j)], in,
                             layouts.recv),
                        "recv block exceeds the recv buffer");
    }
  } else {
    BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(view.counts.size()) == n_,
                      "concat plans need one count per rank");
    BRUCK_REQUIRE(static_cast<std::int64_t>(view.recv_displs.size()) == n_);
    BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) ==
                  view.counts[static_cast<std::size_t>(rank)]);
    for (std::int64_t i = 0; i < n_; ++i) {
      const std::int64_t len = view.counts[static_cast<std::size_t>(i)];
      BRUCK_REQUIRE(len >= 0 && len <= view.pad_bytes);
      BRUCK_REQUIRE_MSG(fits(recv, view.recv_displs[
                                 static_cast<std::size_t>(i)], len,
                             layouts.recv),
                        "recv block exceeds the recv buffer");
    }
  }
}

void Plan::apply_prologue(std::span<const std::byte> send,
                          std::span<std::byte> recv,
                          std::span<std::byte> scratch, std::int64_t rank,
                          const Extents& ex) const {
  const std::int64_t b = ex.b;
  const VectorView* v = ex.view;
  const Layout* sl = active_layout(PlanBuffer::kUserSend, ex);
  const Layout* rl = active_layout(PlanBuffer::kUserRecv, ex);
  // Block-granular copy through the layouts: gather `len` logical bytes of
  // send block at src_off and land them at recv block at dst_off, strided
  // on whichever sides carry a layout.  The null/null case is the plain
  // memcpy every pre-layout prologue compiled to.
  const auto copy_block = [&](std::int64_t src_off, std::int64_t dst_off,
                              std::int64_t len) {
    if (len <= 0) return;
    if (sl == nullptr && rl == nullptr) {
      std::memcpy(recv.data() + dst_off, send.data() + src_off,
                  static_cast<std::size_t>(len));
    } else if (sl != nullptr && rl == nullptr) {
      layout_gather(send, *sl, src_off, 0, len,
                    recv.subspan(static_cast<std::size_t>(dst_off),
                                 static_cast<std::size_t>(len)));
    } else if (sl == nullptr) {
      layout_scatter(recv, *rl, dst_off, 0, len,
                     send.subspan(static_cast<std::size_t>(src_off),
                                  static_cast<std::size_t>(len)));
    } else {
      std::vector<std::byte> tmp(static_cast<std::size_t>(len));
      layout_gather(send, *sl, src_off, 0, len, tmp);
      layout_scatter(recv, *rl, dst_off, 0, len, tmp);
    }
  };
  switch (prologue_) {
    case PlanPrologue::kNone:
      break;
    case PlanPrologue::kRotateSendToScratch:
      if (sl != nullptr) {
        // Phase 1 through the layout: gather each rotated send block
        // straight from its strided home into its packed scratch slot —
        // this is where transpose-style geometries shed the staging copy.
        for (std::int64_t s = 0; s < n_; ++s) {
          const std::int64_t j = pos_mod(s + rank, n_);
          const std::int64_t len =
              v != nullptr ? v->counts[static_cast<std::size_t>(rank * n_ + j)]
                           : b;
          const std::int64_t origin =
              v != nullptr ? v->send_displs[static_cast<std::size_t>(j)]
                           : j * sl->block_stride();
          if (len > 0) {
            layout_gather(send, *sl, origin, 0, len,
                          scratch.subspan(static_cast<std::size_t>(s * b),
                                          static_cast<std::size_t>(len)));
          }
        }
      } else if (v != nullptr) {
        // Irregular Phase 1: variable send blocks into max-padded slots.
        std::vector<std::int64_t> row(
            v->counts.begin() + static_cast<std::ptrdiff_t>(rank * n_),
            v->counts.begin() + static_cast<std::ptrdiff_t>((rank + 1) * n_));
        rotate_varblocks_to_padded(send, v->send_displs, row, scratch, b,
                                   rank);
      } else {
        rotate_blocks_up(ConstBlockSpan(send, n_, b),
                         BlockSpan(scratch, n_, b), rank);
      }
      break;
    case PlanPrologue::kCopyOwnBlock: {
      std::int64_t len = b;
      std::int64_t src_off = sl != nullptr ? rank * sl->block_stride()
                                           : rank * b;
      std::int64_t dst_off = rl != nullptr ? rank * rl->block_stride()
                                           : rank * b;
      if (v != nullptr) {
        len = v->counts[static_cast<std::size_t>(rank * n_ + rank)];
        src_off = v->send_displs[static_cast<std::size_t>(rank)];
        dst_off = v->recv_displs[static_cast<std::size_t>(rank)];
      }
      copy_block(src_off, dst_off, len);
      break;
    }
    case PlanPrologue::kCopySendToScratch0: {
      const std::int64_t len =
          v != nullptr ? v->counts[static_cast<std::size_t>(rank)] : b;
      if (len > 0) {
        if (sl != nullptr) {
          layout_gather(send, *sl, 0, 0, len,
                        scratch.subspan(0, static_cast<std::size_t>(len)));
        } else {
          std::memcpy(scratch.data(), send.data(),
                      static_cast<std::size_t>(len));
        }
      }
      break;
    }
    case PlanPrologue::kCopySendToRecvOwnSlot: {
      std::int64_t len = b;
      std::int64_t dst_off = rl != nullptr ? rank * rl->block_stride()
                                           : rank * b;
      if (v != nullptr) {
        len = v->counts[static_cast<std::size_t>(rank)];
        dst_off = v->recv_displs[static_cast<std::size_t>(rank)];
      }
      // The send buffer is this rank's single block at origin 0.
      copy_block(0, dst_off, len);
      break;
    }
    case PlanPrologue::kCopyOwnBlockToRecv0:
      // Reduce: this rank's own contribution seeds the accumulator block.
      copy_block(sl != nullptr ? rank * sl->block_stride() : rank * b,
                 /*dst_off=*/0, b);
      break;
    case PlanPrologue::kCopySendToRecv0AtRoot:
      // Bcast: the root's payload seeds its recv buffer; everyone else
      // receives theirs over the wire.
      if (rank == 0) copy_block(/*src_off=*/0, /*dst_off=*/0, b);
      break;
  }
}

void Plan::apply_epilogue(std::span<std::byte> recv,
                          std::span<const std::byte> scratch,
                          std::int64_t rank, const Extents& ex) const {
  const std::int64_t b = ex.b;
  const VectorView* v = ex.view;
  const Layout* rl = active_layout(PlanBuffer::kUserRecv, ex);
  // Scatter `len` bytes of packed scratch slot `slot` into the recv block
  // at `dst_off` through the recv layout (the layout-path counterpart of
  // the block copies below).
  const auto slot_to_recv = [&](std::int64_t slot, std::int64_t dst_off,
                                std::int64_t len) {
    if (len <= 0) return;
    layout_scatter(recv, *rl, dst_off, 0, len,
                   scratch.subspan(static_cast<std::size_t>(slot * b),
                                   static_cast<std::size_t>(len)));
  };
  switch (epilogue_) {
    case PlanEpilogue::kNone:
      break;
    case PlanEpilogue::kUnrotateByRank:
      if (rl != nullptr) {
        // Phase 3 through the layout: recv block i = scratch slot
        // (rank − i) mod n, landing strided — the inverse of the Phase 1
        // gather, again with no staging copy.
        for (std::int64_t i = 0; i < n_; ++i) {
          const std::int64_t len =
              v != nullptr ? v->counts[static_cast<std::size_t>(i * n_ + rank)]
                           : b;
          const std::int64_t dst_off =
              v != nullptr ? v->recv_displs[static_cast<std::size_t>(i)]
                           : i * rl->block_stride();
          slot_to_recv(pos_mod(rank - i, n_), dst_off, len);
        }
      } else if (v != nullptr) {
        // sizes[i] = bytes rank i sent to this rank (the matrix column).
        std::vector<std::int64_t> col(static_cast<std::size_t>(n_));
        for (std::int64_t i = 0; i < n_; ++i) {
          col[static_cast<std::size_t>(i)] =
              v->counts[static_cast<std::size_t>(i * n_ + rank)];
        }
        unrotate_padded_by_rank(scratch, b, recv, v->recv_displs, col, rank);
      } else {
        unrotate_by_rank(ConstBlockSpan(scratch, n_, b),
                         BlockSpan(recv, n_, b), rank);
      }
      break;
    case PlanEpilogue::kRotateWindowToOrigin:
      if (rl != nullptr) {
        for (std::int64_t t = 0; t < n_; ++t) {
          const std::int64_t i = pos_mod(rank + t, n_);
          slot_to_recv(t, i * rl->block_stride(), b);
        }
      } else if (v != nullptr) {
        rotate_padded_window_to_origin(scratch, b, recv, v->recv_displs,
                                       v->counts, rank);
      } else {
        rotate_window_to_origin(ConstBlockSpan(scratch, n_, b),
                                BlockSpan(recv, n_, b), rank);
      }
      break;
    case PlanEpilogue::kScratchToRecvAtRoot:
      if (rank != 0) break;
      if (rl != nullptr) {
        // Rank 0's gather window is the identity: slot t holds block t.
        for (std::int64_t t = 0; t < n_; ++t) {
          slot_to_recv(t, t * rl->block_stride(), b);
        }
      } else if (v != nullptr) {
        rotate_padded_window_to_origin(scratch, b, recv, v->recv_displs,
                                       v->counts, /*rank=*/0);
      } else if (b > 0) {
        std::memcpy(recv.data(), scratch.data(), recv.size());
      }
      break;
    case PlanEpilogue::kScratch0ToRecv:
      // Reduce Bruck: slot 0 holds the full ⊕-combination for this rank.
      if (rl != nullptr) {
        slot_to_recv(/*slot=*/0, /*dst_off=*/0, b);
      } else if (b > 0) {
        std::memcpy(recv.data(), scratch.data(),
                    static_cast<std::size_t>(b));
      }
      break;
  }
}

namespace {

/// The three run-time buffers of one plan execution, with the
/// PlanBuffer → span mapping both executors share.
struct ExecBuffers {
  std::span<const std::byte> send;
  std::span<std::byte> recv;
  std::span<std::byte> scratch;

  [[nodiscard]] std::span<const std::byte> readable(PlanBuffer buf) const {
    switch (buf) {
      case PlanBuffer::kUserSend: return send;
      case PlanBuffer::kUserRecv: return recv;
      case PlanBuffer::kScratch: return scratch;
    }
    return {};
  }
  [[nodiscard]] std::span<std::byte> writable(PlanBuffer buf) const {
    return buf == PlanBuffer::kScratch ? scratch : recv;
  }
};

}  // namespace

std::vector<std::byte> Plan::pack_message(const PlanMessage& m,
                                          std::span<const std::byte> src,
                                          const Extents& ex) const {
  if (ex.view != nullptr || active_layout(m.buffer, ex) != nullptr) {
    // Irregular and/or layout-mapped: materialize the variable-extent cell
    // map and gather through pack.hpp — its bounds checks guard the
    // run-time-resolved offsets and trimmed lengths.  Layout cells expand
    // to the layout's piece walk, so the strided user buffer feeds the
    // wire directly with no staging copy.  Only these messages pay for the
    // extent list; the uniform-contiguous hot path is below.
    std::vector<ByteExtent> extents;
    extents.reserve(m.cells_end - m.cells_begin);
    std::int64_t total = 0;
    for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
      total += cell_len(c, ex);
      append_cell_extents(c, m.buffer, ex, extents);
    }
    std::vector<std::byte> out(static_cast<std::size_t>(total));
    gather_extents(src, extents, out);
    return out;
  }
  // Uniform: allocation-free direct walk (the PR 1/2 hot path).
  const std::int64_t b = ex.b;
  std::vector<std::byte> out(static_cast<std::size_t>(message_bytes(m, b)));
  std::size_t pos = 0;
  for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
    const PlanCell& cell = cells_[c];
    const std::int64_t len =
        cell.hi == PlanCell::kWholeBlock ? b : cell.hi - cell.lo;
    std::memcpy(out.data() + pos, src.data() + cell.slot * b + cell.lo,
                static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
  }
  return out;
}

void Plan::scatter_message(const PlanMessage& m, std::span<std::byte> dst,
                           const std::byte* data, const Extents& ex) const {
  if (m.combine) {
    // Reduce-on-receive: ⊕-combine the payload into the cells instead of
    // overwriting.  Runs on the receiving rank's thread only, so the
    // read-modify-write needs no synchronization.
    BRUCK_ENSURE_MSG(ex.op != nullptr,
                     "reduction plans execute with a ReduceOp");
    if (active_layout(m.buffer, ex) != nullptr) {
      // Combine straight into the strided accumulator, one layout piece at
      // a time (each a whole number of op elements per the reduce
      // contract) — no contiguous shadow accumulator.
      std::vector<ByteExtent> extents;
      for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
        append_cell_extents(c, m.buffer, ex, extents);
      }
      std::int64_t pos = 0;
      for (const ByteExtent& e : extents) {
        ex.op->combine(dst.data() + e.offset, data + pos, e.bytes);
        pos += e.bytes;
      }
      return;
    }
    const std::int64_t b = ex.b;
    std::size_t pos = 0;
    for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
      const PlanCell& cell = cells_[c];
      const std::int64_t len =
          cell.hi == PlanCell::kWholeBlock ? b : cell.hi - cell.lo;
      ex.op->combine(dst.data() + cell.slot * b + cell.lo, data + pos, len);
      pos += static_cast<std::size_t>(len);
    }
    return;
  }
  if (ex.view != nullptr || active_layout(m.buffer, ex) != nullptr) {
    std::vector<ByteExtent> extents;
    extents.reserve(m.cells_end - m.cells_begin);
    std::int64_t total = 0;
    for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
      total += cell_len(c, ex);
      append_cell_extents(c, m.buffer, ex, extents);
    }
    scatter_extents(dst, extents,
                    std::span<const std::byte>(
                        data, static_cast<std::size_t>(total)));
    return;
  }
  const std::int64_t b = ex.b;
  std::size_t pos = 0;
  for (std::uint32_t c = m.cells_begin; c < m.cells_end; ++c) {
    const PlanCell& cell = cells_[c];
    const std::int64_t len =
        cell.hi == PlanCell::kWholeBlock ? b : cell.hi - cell.lo;
    std::memcpy(dst.data() + cell.slot * b + cell.lo, data + pos,
                static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
  }
}

PlanExecution Plan::run(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, std::int64_t block_bytes,
                        int start_round, const LayoutPair& layouts) const {
  check_run_contract(comm, send, recv, block_bytes, layouts);
  return run_blocking_impl(comm, send, recv,
                           Extents{block_bytes, nullptr, nullptr,
                                   layouts.send, layouts.recv},
                           start_round);
}

PlanExecution Plan::run(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, const VectorView& view,
                        int start_round, const LayoutPair& layouts) const {
  check_vector_contract(comm, send, recv, view, layouts);
  return run_blocking_impl(comm, send, recv,
                           Extents{view.pad_bytes, &view, nullptr,
                                   layouts.send, layouts.recv},
                           start_round);
}

PlanExecution Plan::run_pipelined(mps::Communicator& comm,
                                  std::span<const std::byte> send,
                                  std::span<std::byte> recv,
                                  std::int64_t block_bytes, int start_round,
                                  const LayoutPair& layouts) const {
  check_run_contract(comm, send, recv, block_bytes, layouts);
  return run_pipelined_impl(comm, send, recv,
                            Extents{block_bytes, nullptr, nullptr,
                                    layouts.send, layouts.recv},
                            start_round);
}

PlanExecution Plan::run_pipelined(mps::Communicator& comm,
                                  std::span<const std::byte> send,
                                  std::span<std::byte> recv,
                                  const VectorView& view, int start_round,
                                  const LayoutPair& layouts) const {
  check_vector_contract(comm, send, recv, view, layouts);
  return run_pipelined_impl(comm, send, recv,
                            Extents{view.pad_bytes, &view, nullptr,
                                    layouts.send, layouts.recv},
                            start_round);
}

PlanExecution Plan::run(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, std::int64_t block_bytes,
                        const ReduceOp& op, int start_round,
                        const LayoutPair& layouts) const {
  check_reduce_contract(comm, send, recv, block_bytes, op, layouts);
  return run_blocking_impl(comm, send, recv,
                           Extents{block_bytes, nullptr, &op, layouts.send,
                                   layouts.recv},
                           start_round);
}

PlanExecution Plan::run_pipelined(mps::Communicator& comm,
                                  std::span<const std::byte> send,
                                  std::span<std::byte> recv,
                                  std::int64_t block_bytes, const ReduceOp& op,
                                  int start_round,
                                  const LayoutPair& layouts) const {
  check_reduce_contract(comm, send, recv, block_bytes, op, layouts);
  return run_pipelined_impl(comm, send, recv,
                            Extents{block_bytes, nullptr, &op, layouts.send,
                                    layouts.recv},
                            start_round);
}

PlanExecution Plan::run_blocking_impl(mps::Communicator& comm,
                                      std::span<const std::byte> send,
                                      std::span<std::byte> recv,
                                      const Extents& ex,
                                      int start_round) const {
  const std::int64_t n = n_;
  const std::int64_t rank = comm.rank();

  std::vector<std::byte> scratch(
      needs_scratch_ ? static_cast<std::size_t>(n * ex.b) : 0);
  apply_prologue(send, recv, scratch, rank, ex);
  const ExecBuffers buffers{send, recv, scratch};

  const RankProgram& prog = programs_[static_cast<std::size_t>(rank)];
  PlanExecution out;
  std::vector<std::vector<std::byte>> out_stage(
      static_cast<std::size_t>(k_));
  std::vector<std::vector<std::byte>> in_stage(static_cast<std::size_t>(k_));
  std::vector<mps::SendSpec> sends;
  std::vector<mps::RecvSpec> recvs;
  // Non-contiguous receives pending scatter after the exchange.
  std::vector<std::pair<const PlanMessage*, const std::byte*>> scatters;

  for (int i = 0; i < round_count_; ++i) {
    const PlanRound& round = prog.rounds[static_cast<std::size_t>(i)];
    sends.clear();
    recvs.clear();
    scatters.clear();

    for (std::uint32_t s = round.sends_begin; s < round.sends_end; ++s) {
      const PlanMessage& m = prog.sends[s];
      const std::int64_t bytes = resolved_message_bytes(m, ex);
      if (bytes == 0) continue;  // zero-size: pure round counting, off the fabric
      std::span<const std::byte> payload;
      if (m.contiguous && active_layout(m.buffer, ex) == nullptr) {
        // Zero-copy: the message is one byte run of the source buffer.
        payload = buffers.readable(m.buffer)
                      .subspan(static_cast<std::size_t>(
                                   cell_offset(m.cells_begin, m.buffer, ex)),
                               static_cast<std::size_t>(bytes));
      } else {
        std::vector<std::byte>& stage = out_stage[s - round.sends_begin];
        stage = pack_message(m, buffers.readable(m.buffer), ex);
        payload = stage;
      }
      sends.push_back(mps::SendSpec{m.peer, payload});
      out.bytes_sent += bytes;
    }

    for (std::uint32_t r = round.recvs_begin; r < round.recvs_end; ++r) {
      const PlanMessage& m = prog.recvs[r];
      const std::int64_t bytes = resolved_message_bytes(m, ex);
      if (bytes == 0) continue;
      std::span<std::byte> landing;
      if (m.contiguous && !m.combine &&
          active_layout(m.buffer, ex) == nullptr) {
        landing = buffers.writable(m.buffer)
                      .subspan(static_cast<std::size_t>(
                                   cell_offset(m.cells_begin, m.buffer, ex)),
                               static_cast<std::size_t>(bytes));
      } else {
        // Staged: non-contiguous cells, or a combine receive (which must
        // never land in the accumulator directly).
        std::vector<std::byte>& stage = in_stage[r - round.recvs_begin];
        stage.resize(static_cast<std::size_t>(bytes));
        landing = stage;
        scatters.emplace_back(&m, stage.data());
        if (m.combine) out.bytes_reduced += bytes;
      }
      recvs.push_back(mps::RecvSpec{m.peer, landing});
    }

    if (!sends.empty() || !recvs.empty()) {
      comm.exchange(start_round + i, sends, recvs);
    }

    for (const auto& [m, data] : scatters) {
      scatter_message(*m, buffers.writable(m->buffer), data, ex);
    }
  }

  apply_epilogue(recv, scratch, rank, ex);
  out.next_round = start_round + round_count_;
  return out;
}

PlanExecution Plan::run_pipelined_impl(mps::Communicator& comm,
                                       std::span<const std::byte> send,
                                       std::span<std::byte> recv,
                                       const Extents& ex,
                                       int start_round) const {
  // The blocking pipelined executor is the single-tenant driving loop of
  // the resumable cursor: post what's postable, block on the engine's
  // completion stream, feed completions back, repeat.
  PlanCursor cursor(shared_from_this(), comm, send, recv, ex, start_round,
                    /*tag=*/0);
  std::unordered_set<mps::PortHandle> mine;
  while (!cursor.done()) {
    for (const mps::PortHandle h : cursor.post_ready()) mine.insert(h);
    if (cursor.done()) break;
    BRUCK_ENSURE_MSG(cursor.outstanding() > 0,
                     "pipelined cursor stalled with nothing in flight");
    const mps::PortHandle h = comm.wait_any_recv();
    BRUCK_ENSURE_MSG(mine.erase(h) == 1, "engine reported a foreign handle");
    cursor.on_complete(h);
  }
  // Native engines are fully drained here; the deferred fallback may still
  // hold posted sends of receive-less rounds — flush them.
  comm.wait_all_recvs();
  return cursor.result();
}

// ---------------------------------------------------------------------------
// PlanCursor: the pipelined executor's state machine, resumable.

PlanCursor::PlanCursor(std::shared_ptr<const Plan> plan,
                       mps::Communicator& comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv, const Plan::Extents& ex,
                       int start_round, int tag)
    : plan_(std::move(plan)),
      comm_(&comm),
      send_(send),
      recv_(recv),
      ex_(ex),
      start_round_(start_round),
      tag_(tag),
      rounds_(plan_->round_count_) {
  BRUCK_REQUIRE(tag >= 0);
  scratch_.resize(plan_->needs_scratch_
                      ? static_cast<std::size_t>(plan_->n_ * ex_.b)
                      : 0);
  plan_->apply_prologue(send_, recv_, scratch_, comm_->rank(), ex_);
  open_.assign(static_cast<std::size_t>(rounds_), 0);
  out_.next_round = start_round_ + rounds_;
  advance_frontier();  // zero-round plans complete immediately
}

PlanCursor::PlanCursor(std::shared_ptr<const Plan> plan,
                       mps::Communicator& comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv, std::int64_t block_bytes,
                       int start_round, int tag, const LayoutPair& layouts)
    : PlanCursor(
          (plan->check_run_contract(comm, send, recv, block_bytes, layouts),
           std::move(plan)),
          comm, send, recv,
          Plan::Extents{block_bytes, nullptr, nullptr, layouts.send,
                        layouts.recv},
          start_round, tag) {}

PlanCursor::PlanCursor(std::shared_ptr<const Plan> plan,
                       mps::Communicator& comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv, std::int64_t block_bytes,
                       const ReduceOp& op, int start_round, int tag,
                       const LayoutPair& layouts)
    : PlanCursor((plan->check_reduce_contract(comm, send, recv, block_bytes,
                                              op, layouts),
                  std::move(plan)),
                 comm, send, recv,
                 Plan::Extents{block_bytes, nullptr, &op, layouts.send,
                               layouts.recv},
                 start_round, tag) {}

PlanCursor::PlanCursor(std::shared_ptr<const Plan> plan,
                       mps::Communicator& comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv, const VectorView& view,
                       int start_round, int tag, const LayoutPair& layouts)
    : PlanCursor((plan->check_vector_contract(comm, send, recv, view,
                                              layouts),
                  std::move(plan)),
                 comm, send, recv,
                 Plan::Extents{view.pad_bytes, &view, nullptr, layouts.send,
                               layouts.recv},
                 start_round, tag) {}

bool PlanCursor::postable(int i) const {
  // The double-buffered discipline of the blocking pipelined executor:
  // round i may overlap round i−1 only when the lowering proved them
  // independent; otherwise the pipeline drains first (true data dependence
  // — e.g. concat Bruck re-sends what it just received).  At most two
  // rounds are ever in flight.
  if (i == 0) return true;
  const Plan::RankProgram& prog =
      plan_->programs_[static_cast<std::size_t>(comm_->rank())];
  return prog.pipeline_safe[static_cast<std::size_t>(i)] ? drained_ >= i - 1
                                                         : drained_ >= i;
}

void PlanCursor::post_round(int i) {
  const Plan& plan = *plan_;
  const ExecBuffers buffers{send_, recv_, scratch_};
  const Plan::RankProgram& prog =
      plan.programs_[static_cast<std::size_t>(comm_->rank())];
  const PlanRound& round = prog.rounds[static_cast<std::size_t>(i)];
  // Per-message wire segmentation: the plan-wide knob, floored so no
  // segment drops under model::kMinSegmentBytes (the small early-round
  // messages of a geometrically growing pattern ship whole).  Sender and
  // receiver derive the same count from the same plan and byte size.
  const auto segments_for = [&](std::int64_t bytes) {
    return static_cast<int>(std::min<std::int64_t>(
        plan.segments_,
        std::max<std::int64_t>(1, bytes / model::kMinSegmentBytes)));
  };
  // Pack and post sends first (reference semantics: a round's sends read
  // the state before its receives land).  Payloads are captured at post
  // time — packed messages move their staging buffer onto the wire — so
  // the source buffers are free for later writes immediately.
  for (std::uint32_t s = round.sends_begin; s < round.sends_end; ++s) {
    const PlanMessage& m = prog.sends[s];
    const std::int64_t bytes = plan.resolved_message_bytes(m, ex_);
    if (bytes == 0) continue;
    if (m.contiguous && Plan::active_layout(m.buffer, ex_) == nullptr) {
      comm_->post_send(start_round_ + i, m.peer,
                       buffers.readable(m.buffer)
                           .subspan(static_cast<std::size_t>(plan.cell_offset(
                                        m.cells_begin, m.buffer, ex_)),
                                    static_cast<std::size_t>(bytes)),
                       segments_for(bytes), tag_);
    } else {
      comm_->post_send(start_round_ + i, m.peer,
                       plan.pack_message(m, buffers.readable(m.buffer), ex_),
                       segments_for(bytes), tag_);
    }
    out_.bytes_sent += bytes;
  }
  for (std::uint32_t r = round.recvs_begin; r < round.recvs_end; ++r) {
    const PlanMessage& m = prog.recvs[r];
    const std::int64_t bytes = plan.resolved_message_bytes(m, ex_);
    if (bytes == 0) continue;
    mps::PortHandle h = 0;
    bool take_buffer = false;
    if (m.contiguous && !m.combine &&
        Plan::active_layout(m.buffer, ex_) == nullptr) {
      // Land in place: segments stream straight into the target buffer.
      h = comm_->post_recv(start_round_ + i, m.peer,
                           buffers.writable(m.buffer)
                               .subspan(static_cast<std::size_t>(
                                            plan.cell_offset(m.cells_begin,
                                                             m.buffer, ex_)),
                                        static_cast<std::size_t>(bytes)),
                           segments_for(bytes), tag_);
    } else {
      // Scatter (or combine) target: consume the wire buffer itself on
      // completion instead of staging a copy.  Combine receives must be
      // buffered — the ⊕ into the accumulator happens at completion, on
      // this rank's thread, fused into the eager out-of-order path.
      h = comm_->post_recv_buffer(start_round_ + i, m.peer, bytes,
                                  segments_for(bytes), tag_);
      take_buffer = true;
      if (m.combine) out_.bytes_reduced += bytes;
    }
    posted_.emplace(h, Posted{&m, i, take_buffer});
    ++open_[static_cast<std::size_t>(i)];
    new_handles_.push_back(h);
  }
}

void PlanCursor::advance_frontier() {
  while (drained_ < next_post_ &&
         open_[static_cast<std::size_t>(drained_)] == 0) {
    ++drained_;
  }
  if (!done_ && drained_ == rounds_ && next_post_ == rounds_) {
    plan_->apply_epilogue(recv_, scratch_, comm_->rank(), ex_);
    done_ = true;
  }
}

std::vector<mps::PortHandle> PlanCursor::post_ready() {
  new_handles_.clear();
  while (next_post_ < rounds_ && postable(next_post_)) {
    post_round(next_post_);
    ++next_post_;
    advance_frontier();  // receive-less rounds drain at post
  }
  return std::move(new_handles_);
}

void PlanCursor::on_complete(mps::PortHandle h) {
  const auto it = posted_.find(h);
  BRUCK_REQUIRE_MSG(it != posted_.end(),
                    "completion handed to a cursor that does not own it");
  const Posted rec = it->second;
  posted_.erase(it);
  if (rec.take_buffer) {
    const ExecBuffers buffers{send_, recv_, scratch_};
    const std::vector<std::byte> payload = comm_->take_payload(h);
    plan_->scatter_message(*rec.message,
                           buffers.writable(rec.message->buffer),
                           payload.data(), ex_);
  }
  --open_[static_cast<std::size_t>(rec.round)];
  advance_frontier();
}

const PlanExecution& PlanCursor::result() const {
  BRUCK_REQUIRE_MSG(done_, "cursor result read before completion");
  return out_;
}

// ---------------------------------------------------------------------------
// Lowering: the compiled counterparts of the coll/ implementations.  Each
// mirrors its oracle's loop structure exactly (same rounds, same peers, same
// pack order), so plan-executed and directly-executed results — and traces —
// are bit-identical.

std::shared_ptr<const Plan> Plan::lower_index_bruck(std::int64_t n, int k,
                                                    std::int64_t radix,
                                                    int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(radix >= 2 && radix <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kIndex, "bruck(r=" + std::to_string(radix) + ")", n, k,
      PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kRotateSendToScratch;
  plan->epilogue_ = PlanEpilogue::kUnrotateByRank;

  const std::int64_t r = radix;
  const int w = radix_digit_count(n, r);
  for (int x = 0; x < w; ++x) {
    const std::int64_t dist = ipow(r, x);
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      plan->begin_round();
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::vector<std::int64_t> members =
            radix_digit_members(n, r, x, z);
        std::vector<PlanCell> cells;
        cells.reserve(members.size());
        for (const std::int64_t slot : members) {
          cells.push_back(PlanCell{slot, 0, PlanCell::kWholeBlock});
        }
        for (std::int64_t rank = 0; rank < n; ++rank) {
          const std::int64_t dst = pos_mod(rank + z * dist, n);
          const std::int64_t src = pos_mod(rank - z * dist, n);
          plan->add_message(rank, /*is_send=*/true, dst, PlanBuffer::kScratch,
                            cells);
          plan->add_message(rank, /*is_send=*/false, src, PlanBuffer::kScratch,
                            cells);
        }
      }
      plan->end_round();
    }
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_index_direct(std::int64_t n, int k,
                                                     int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kIndex, "direct", n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopyOwnBlock;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t dst = pos_mod(rank + j, n);
        const std::int64_t src = pos_mod(rank - j, n);
        plan->add_message(rank, true, dst, PlanBuffer::kUserSend,
                          one_block(dst));
        plan->add_message(rank, false, src, PlanBuffer::kUserRecv,
                          one_block(src));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_index_pairwise(std::int64_t n, int k,
                                                       int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(is_pow2(n), "pairwise exchange requires a power-of-two n");
  auto plan = std::shared_ptr<Plan>(new Plan(PlanCollective::kIndex, "pairwise",
                                             n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopyOwnBlock;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t peer = rank ^ j;
        plan->add_message(rank, true, peer, PlanBuffer::kUserSend,
                          one_block(peer));
        plan->add_message(rank, false, peer, PlanBuffer::kUserRecv,
                          one_block(peer));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

// ---------------------------------------------------------------------------
// Reduction lowering.  Reduce-scatter's communication skeleton is the index
// pattern with combining: every receive carries the combine flag and the
// executors ⊕ its payload into the cells instead of overwriting.  Plans are
// block-size and op independent (cells are whole blocks; the operator
// arrives at run time through the ReduceOp overloads).

std::shared_ptr<const Plan> Plan::lower_reduce_direct(std::int64_t n, int k,
                                                      int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kReduce, "direct", n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopyOwnBlockToRecv0;

  // Ring-distance steps grouped k per round; every receive combines into
  // the single accumulator block (recv slot 0).  All rounds are mutually
  // pipeline-safe: sends read the untouched user send buffer and the
  // combine-writes commute.
  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t dst = pos_mod(rank + j, n);
        const std::int64_t src = pos_mod(rank - j, n);
        plan->add_message(rank, true, dst, PlanBuffer::kUserSend,
                          one_block(dst));
        plan->add_message(rank, false, src, PlanBuffer::kUserRecv,
                          one_block(0), {}, /*combine=*/true);
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_reduce_pairwise(std::int64_t n, int k,
                                                        int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(is_pow2(n), "pairwise exchange requires a power-of-two n");
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kReduce, "pairwise", n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopyOwnBlockToRecv0;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t peer = rank ^ j;
        plan->add_message(rank, true, peer, PlanBuffer::kUserSend,
                          one_block(peer));
        plan->add_message(rank, false, peer, PlanBuffer::kUserRecv,
                          one_block(0), {}, /*combine=*/true);
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_reduce_bruck(std::int64_t n, int k,
                                                     std::int64_t radix,
                                                     int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(radix >= 2 && radix <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kReduce, "bruck(r=" + std::to_string(radix) + ")", n, k,
      PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kRotateSendToScratch;
  plan->epilogue_ = PlanEpilogue::kScratch0ToRecv;

  // The index Bruck skeleton run in reverse with combining.  After the
  // rotation prologue, scratch slot s at rank ρ holds the partial sum of
  // contributions destined to rank (ρ + s) mod n — the slot index is the
  // remaining ring distance.  Digits are processed high → low: the digit-x
  // step z ships the live slots {z·r^x + t : t < min(r^x, n − z·r^x)} to
  // rank ρ + z·r^x, which combines them into slots {t} (distance shrunk by
  // z·r^x).  Once every digit is cleared, slot 0 holds the full reduction.
  // Per-rank volume is exactly n−1 blocks; the round structure (C1) equals
  // the forward index algorithm's.  Within a subphase the z-steps only
  // combine-write the shared {t} prefix, so they pipeline; across subphases
  // the sends read what the previous subphase combined, so the pipeline
  // drains — mirroring compute_pipeline_safety's verdict.
  const std::int64_t r = radix;
  const int w = radix_digit_count(n, r);
  for (int x = w - 1; x >= 0; --x) {
    const std::int64_t dist = ipow(r, x);
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      plan->begin_round();
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::int64_t count =
            std::min<std::int64_t>(dist, n - z * dist);
        BRUCK_ENSURE(count >= 1);
        const std::vector<PlanCell> send_cells =
            whole_blocks(z * dist, count);
        const std::vector<PlanCell> recv_cells = whole_blocks(0, count);
        for (std::int64_t rank = 0; rank < n; ++rank) {
          const std::int64_t dst = pos_mod(rank + z * dist, n);
          const std::int64_t src = pos_mod(rank - z * dist, n);
          plan->add_message(rank, /*is_send=*/true, dst, PlanBuffer::kScratch,
                            send_cells);
          plan->add_message(rank, /*is_send=*/false, src,
                            PlanBuffer::kScratch, recv_cells, {},
                            /*combine=*/true);
        }
      }
      plan->end_round();
    }
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concat_bruck(
    std::int64_t n, int k, std::int64_t block_bytes,
    model::ConcatLastRound strategy, int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(strategy != model::ConcatLastRound::kAuto,
                    "resolve kAuto before lowering (plan keys are canonical)");
  const std::int64_t b = block_bytes;
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kConcat, "bruck", n, k, b));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kRotateWindowToOrigin;
  if (n == 1 || b == 0) {
    // Pattern is vacuous; prologue + epilogue alone realize the copy.
    plan->finalize();
    return plan;
  }

  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;

  // Full rounds: the window of cur blocks goes to the k nodes at −j·cur.
  std::int64_t cur = 1;
  for (int i = 0; i + 1 < d; ++i) {
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      for (int j = 1; j <= k; ++j) {
        plan->add_message(rank, true, pos_mod(rank - j * cur, n),
                          PlanBuffer::kScratch, whole_blocks(0, cur));
        plan->add_message(rank, false, pos_mod(rank + j * cur, n),
                          PlanBuffer::kScratch, whole_blocks(j * cur, cur));
      }
    }
    plan->end_round();
    cur *= (k + 1);
  }
  BRUCK_ENSURE(cur == n1);

  // Last round(s): a table partition ships the remaining n2 block-columns,
  // one area per port (Section 4.2); cells are byte-granular.
  const auto emit_partition = [&](const topo::TablePartition& part) {
    plan->begin_round();
    for (std::size_t m = 0; m < part.areas.size(); ++m) {
      const topo::Area& area = part.areas[m];
      const std::int64_t offset = n1 + area.left_col();
      std::vector<PlanCell> send_cells;
      std::vector<PlanCell> recv_cells;
      send_cells.reserve(area.cells.size());
      recv_cells.reserve(area.cells.size());
      for (const topo::AreaCell& cell : area.cells) {
        const std::int64_t slot = cell.col - area.left_col();
        BRUCK_ENSURE_MSG(slot >= 0 && slot < n1,
                         "area references a block outside the sender's window "
                         "(span constraint violated)");
        send_cells.push_back(PlanCell{slot, cell.row_begin, cell.row_end});
        recv_cells.push_back(
            PlanCell{n1 + cell.col, cell.row_begin, cell.row_end});
      }
      for (std::int64_t rank = 0; rank < n; ++rank) {
        plan->add_message(rank, true, pos_mod(rank - offset, n),
                          PlanBuffer::kScratch, send_cells);
        plan->add_message(rank, false, pos_mod(rank + offset, n),
                          PlanBuffer::kScratch, recv_cells);
      }
    }
    plan->end_round();
  };

  if (n2 > 0) {
    switch (strategy) {
      case model::ConcatLastRound::kByteSplit: {
        const topo::TablePartition part =
            topo::byte_split_partition(n1, n2, b, k);
        BRUCK_REQUIRE_MSG(
            part.feasible(),
            "byte-split partition infeasible for this (n, k, b); use "
            "kColumnGranular, kTwoRound or kAuto");
        emit_partition(part);
        break;
      }
      case model::ConcatLastRound::kColumnGranular: {
        const topo::TablePartition part =
            topo::column_granular_partition(n1, n2, b, k);
        BRUCK_ENSURE(part.max_span() <= n1);
        BRUCK_ENSURE(part.max_size() <= part.alpha() + b - 1);
        emit_partition(part);
        break;
      }
      case model::ConcatLastRound::kTwoRound: {
        if (n2 <= k) {
          const topo::TablePartition part =
              topo::column_granular_partition(n1, n2, b, k);
          BRUCK_ENSURE(part.max_span() <= n1);
          BRUCK_ENSURE(part.max_size() <= b);
          emit_partition(part);
        } else {
          const topo::TablePartition part_a =
              topo::byte_split_partition(n1, n2 - k, b, k);
          BRUCK_ENSURE_MSG(part_a.feasible(),
                           "two-round round A must always be feasible");
          emit_partition(part_a);
          topo::TablePartition part_b{n1, n2, b, k, {}};
          for (std::int64_t c = n2 - k; c < n2; ++c) {
            topo::Area area;
            area.cells.push_back(topo::AreaCell{c, 0, b});
            part_b.areas.push_back(std::move(area));
          }
          emit_partition(part_b);
        }
        break;
      }
      case model::ConcatLastRound::kAuto:
        BRUCK_ENSURE_MSG(false, "unreachable: kAuto rejected above");
    }
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concat_folklore(
    std::int64_t n, int k, std::int64_t block_bytes, int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  // One-port algorithm on a k-port fabric: one message per round per rank.
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kConcat, "folklore", n, k, block_bytes));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kScratchToRecvAtRoot;
  if (n == 1 || block_bytes == 0) {
    plan->finalize();
    return plan;
  }
  const int d = ceil_log(n, 2);

  // Gather phase: rank r accumulates the linear segment [r, r + seg).
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == stride) {
        const std::int64_t seg = topo::binomial_gather_segment(n, rank, i);
        plan->add_message(rank, true, rank - stride, PlanBuffer::kScratch,
                          whole_blocks(0, seg));
      } else if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        const std::int64_t seg =
            topo::binomial_gather_segment(n, rank + stride, i);
        plan->add_message(rank, false, rank + stride, PlanBuffer::kScratch,
                          whole_blocks(stride, seg));
      }
    }
    plan->end_round();
  }

  // Broadcast phase: rank 0 pushes the full concatenation down the reversed
  // tree.  Rank 0 sends from its gather staging; every other rank receives
  // into (and forwards from) the user recv buffer.
  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        plan->add_message(
            rank, true, rank + stride,
            rank == 0 ? PlanBuffer::kScratch : PlanBuffer::kUserRecv,
            whole_blocks(0, n));
      } else if (pos_mod(rank, 2 * stride) == stride) {
        plan->add_message(rank, false, rank - stride, PlanBuffer::kUserRecv,
                          whole_blocks(0, n));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concat_ring(std::int64_t n, int k,
                                                    std::int64_t block_bytes,
                                                    int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  auto plan = std::shared_ptr<Plan>(
      new Plan(PlanCollective::kConcat, "ring", n, k, block_bytes));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToRecvOwnSlot;
  if (n == 1 || block_bytes == 0) {
    plan->finalize();
    return plan;
  }

  for (std::int64_t t = 0; t < n - 1; ++t) {
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      const std::int64_t succ = pos_mod(rank + 1, n);
      const std::int64_t pred = pos_mod(rank - 1, n);
      plan->add_message(rank, true, succ, PlanBuffer::kUserRecv,
                        one_block(pos_mod(rank - t, n)));
      plan->add_message(rank, false, pred, PlanBuffer::kUserRecv,
                        one_block(pos_mod(rank - t - 1, n)));
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

// ---------------------------------------------------------------------------
// Rooted lowering.  The intra-group stages of the hierarchical composite
// plans.  Root is always rank 0 (group leaders sit at sub-communicator rank
// 0), so none of the relative-rank rotations of the inline primitives
// (gather_scatter.cpp, bcast.cpp) are needed — but the round/peer/segment
// structure mirrors them exactly, so the existing cost formulas price these
// plans without change.

std::shared_ptr<const Plan> Plan::lower_gather_binomial(std::int64_t n, int k,
                                                        int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kGather, "binomial", n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kScratchToRecvAtRoot;
  if (n == 1) {
    plan->finalize();
    return plan;
  }
  // The folklore concat's gather phase verbatim: scratch at rank v
  // accumulates the contiguous segment [v, v + have).
  const int d = ceil_log(n, 2);
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == stride) {
        const std::int64_t seg = topo::binomial_gather_segment(n, rank, i);
        plan->add_message(rank, true, rank - stride, PlanBuffer::kScratch,
                          whole_blocks(0, seg));
      } else if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        const std::int64_t seg =
            topo::binomial_gather_segment(n, rank + stride, i);
        plan->add_message(rank, false, rank + stride, PlanBuffer::kScratch,
                          whole_blocks(stride, seg));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_scatter_binomial(std::int64_t n, int k,
                                                         int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kScatter, "binomial", n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  // The rotation is the identity at rank 0 — the only rank whose prologue
  // output is ever read: every other rank overwrites its scratch prefix
  // from the wire before sending any of it onward.
  plan->prologue_ = PlanPrologue::kRotateSendToScratch;
  plan->epilogue_ = PlanEpilogue::kScratch0ToRecv;
  if (n == 1) {
    plan->finalize();
    return plan;
  }
  // The reversed binomial gather: in round j (strides halving) the holder
  // of segment [v, v + len) ships its upper half [v + stride, v + len).
  const int d = ceil_log(n, 2);
  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        const std::int64_t len = std::min<std::int64_t>(2 * stride, n - rank);
        plan->add_message(rank, true, rank + stride, PlanBuffer::kScratch,
                          whole_blocks(stride, len - stride));
      } else if (pos_mod(rank, 2 * stride) == stride) {
        const std::int64_t mine = std::min<std::int64_t>(stride, n - rank);
        plan->add_message(rank, false, rank - stride, PlanBuffer::kScratch,
                          whole_blocks(0, mine));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_bcast_circulant(std::int64_t n, int k,
                                                        int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kBcast, "circulant", n, k, PlanCell::kWholeBlock));
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToRecv0AtRoot;
  if (n == 1) {
    plan->finalize();
    return plan;
  }
  // The circulant (k+1)-ary broadcast tree of bcast.cpp with root 0: node v
  // joins in the round of its most significant nonzero base-(k+1) digit
  // (partial-layer nodes v ≥ n1 join in the final round), then fans out to
  // up to k children per round, forwarding from its recv buffer.
  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;
  const auto join_round = [&](std::int64_t v) {
    if (v == 0) return -1;  // the root has the data from the start
    if (v >= n1) return d - 1;
    return floor_log(v, k + 1);
  };
  for (int i = 0; i < d; ++i) {
    plan->begin_round();
    for (std::int64_t v = 0; v < n; ++v) {
      const int joined = join_round(v);
      const PlanBuffer src =
          v == 0 ? PlanBuffer::kUserSend : PlanBuffer::kUserRecv;
      if (joined == i) {
        const std::int64_t parent =
            v >= n1 ? pos_mod(v - n1, n1) : v % ipow(k + 1, i);
        plan->add_message(v, false, parent, PlanBuffer::kUserRecv,
                          one_block(0));
      } else if (joined < i) {
        if (i < d - 1) {
          const std::int64_t base = ipow(k + 1, i);
          if (v < base) {
            for (int j = 1; j <= k; ++j) {
              plan->add_message(v, true, v + j * base, src, one_block(0));
            }
          }
        } else if (v < n1) {
          for (std::int64_t c = v; c < n2; c += n1) {
            plan->add_message(v, true, n1 + c, src, one_block(0));
          }
        }
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

// ---------------------------------------------------------------------------
// Irregular (vector) lowering.  All irregular plans are shape-free: the
// round/peer/slot structure depends only on (algorithm, n, k, radix), and
// every cell records its occupant block's identity so the executors can
// resolve true sizes — and trim the wire messages — from the VectorView.

std::shared_ptr<const Plan> Plan::lower_indexv_direct(std::int64_t n, int k,
                                                      int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kIndex, "directv", n, k, PlanCell::kWholeBlock));
  plan->irregular_ = true;
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopyOwnBlock;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t dst = pos_mod(rank + j, n);
        const std::int64_t src = pos_mod(rank - j, n);
        plan->add_message(rank, true, dst, PlanBuffer::kUserSend,
                          one_block(dst), {rank * n + dst});
        plan->add_message(rank, false, src, PlanBuffer::kUserRecv,
                          one_block(src), {src * n + rank});
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_indexv_pairwise(std::int64_t n, int k,
                                                        int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(is_pow2(n), "pairwise exchange requires a power-of-two n");
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kIndex, "pairwisev", n, k, PlanCell::kWholeBlock));
  plan->irregular_ = true;
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopyOwnBlock;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    plan->begin_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t rank = 0; rank < n; ++rank) {
        const std::int64_t peer = rank ^ j;
        plan->add_message(rank, true, peer, PlanBuffer::kUserSend,
                          one_block(peer), {rank * n + peer});
        plan->add_message(rank, false, peer, PlanBuffer::kUserRecv,
                          one_block(peer), {peer * n + rank});
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_indexv_bruck(std::int64_t n, int k,
                                                     std::int64_t radix,
                                                     int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE_MSG(radix >= 2 && radix <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kIndex, "bruckv(r=" + std::to_string(radix) + ")", n, k,
      PlanCell::kWholeBlock));
  plan->irregular_ = true;
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kRotateSendToScratch;
  plan->epilogue_ = PlanEpilogue::kUnrotateByRank;

  // Identical round structure to the uniform lowering; scratch slots are
  // pad_bytes wide at run time.  The occupant of slot s at rank ρ just
  // before subphase x has travelled the partial digit sum s mod r^x, so its
  // origin is ρ − (s mod r^x) and its destination origin + s — that lookup
  // is what lets every wire message trim to the occupant's true bytes.
  const std::int64_t r = radix;
  const int w = radix_digit_count(n, r);
  for (int x = 0; x < w; ++x) {
    const std::int64_t dist = ipow(r, x);
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      plan->begin_round();
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::vector<std::int64_t> members =
            radix_digit_members(n, r, x, z);
        std::vector<PlanCell> cells;
        cells.reserve(members.size());
        for (const std::int64_t slot : members) {
          cells.push_back(PlanCell{slot, 0, PlanCell::kWholeBlock});
        }
        for (std::int64_t rank = 0; rank < n; ++rank) {
          const std::int64_t dst = pos_mod(rank + z * dist, n);
          const std::int64_t src = pos_mod(rank - z * dist, n);
          std::vector<std::int64_t> send_ids;
          std::vector<std::int64_t> recv_ids;
          send_ids.reserve(members.size());
          recv_ids.reserve(members.size());
          for (const std::int64_t slot : members) {
            const std::int64_t travelled = pos_mod(slot, dist);
            const std::int64_t send_origin = pos_mod(rank - travelled, n);
            const std::int64_t recv_origin = pos_mod(src - travelled, n);
            send_ids.push_back(send_origin * n +
                               pos_mod(send_origin + slot, n));
            recv_ids.push_back(recv_origin * n +
                               pos_mod(recv_origin + slot, n));
          }
          plan->add_message(rank, /*is_send=*/true, dst, PlanBuffer::kScratch,
                            cells, send_ids);
          plan->add_message(rank, /*is_send=*/false, src,
                            PlanBuffer::kScratch, cells, recv_ids);
        }
      }
      plan->end_round();
    }
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concatv_bruck(std::int64_t n, int k,
                                                      int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kConcat, "bruckv", n, k, PlanCell::kWholeBlock));
  plan->irregular_ = true;
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kRotateWindowToOrigin;
  if (n == 1) {
    plan->finalize();
    return plan;
  }

  // Scratch slot t at rank ρ holds rank (ρ + t) mod n's block throughout —
  // that is each cell's occupant identity.  Same full rounds as the uniform
  // lowering; the last round is always column-granular (the byte-split
  // partition needs one concrete uniform b, which an irregular shape does
  // not have).
  const auto block_of = [n](std::int64_t rank, std::int64_t slot) {
    return pos_mod(rank + slot, n);
  };
  const auto window_ids = [&](std::int64_t rank, std::int64_t first,
                              std::int64_t count) {
    std::vector<std::int64_t> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (std::int64_t t = 0; t < count; ++t) {
      ids.push_back(block_of(rank, first + t));
    }
    return ids;
  };

  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;

  std::int64_t cur = 1;
  for (int i = 0; i + 1 < d; ++i) {
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      for (int j = 1; j <= k; ++j) {
        plan->add_message(rank, true, pos_mod(rank - j * cur, n),
                          PlanBuffer::kScratch, whole_blocks(0, cur),
                          window_ids(rank, 0, cur));
        plan->add_message(rank, false, pos_mod(rank + j * cur, n),
                          PlanBuffer::kScratch, whole_blocks(j * cur, cur),
                          window_ids(rank, j * cur, cur));
      }
    }
    plan->end_round();
    cur *= (k + 1);
  }
  BRUCK_ENSURE(cur == n1);

  if (n2 > 0) {
    // Column-granular final round: the n2 remaining block-columns travel as
    // whole blocks, at most n1 per port (chunk m covers columns
    // [m·n1, (m+1)·n1), offset (m+1)·n1) — the span constraint of
    // Proposition 4.2 holds because each chunk fits the sender's window.
    plan->begin_round();
    for (std::int64_t m = 0; m * n1 < n2; ++m) {
      const std::int64_t first = m * n1;
      const std::int64_t count = std::min<std::int64_t>(n1, n2 - first);
      const std::int64_t offset = n1 + first;
      for (std::int64_t rank = 0; rank < n; ++rank) {
        plan->add_message(rank, true, pos_mod(rank - offset, n),
                          PlanBuffer::kScratch, whole_blocks(0, count),
                          window_ids(rank, 0, count));
        plan->add_message(rank, false, pos_mod(rank + offset, n),
                          PlanBuffer::kScratch, whole_blocks(offset, count),
                          window_ids(rank, offset, count));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concatv_folklore(std::int64_t n, int k,
                                                         int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kConcat, "folklorev", n, k, PlanCell::kWholeBlock));
  plan->irregular_ = true;
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToScratch0;
  plan->epilogue_ = PlanEpilogue::kScratchToRecvAtRoot;
  if (n == 1) {
    plan->finalize();
    return plan;
  }
  const int d = ceil_log(n, 2);

  // Gather-phase scratch at rank ρ is the *linear* window [ρ, ρ + seg):
  // slot t holds rank ρ + t's block (no wraparound — segments never cross
  // n).  Broadcast-phase traffic is the full concatenation in rank order.
  const auto linear_ids = [](std::int64_t rank, std::int64_t first,
                             std::int64_t count) {
    std::vector<std::int64_t> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (std::int64_t t = 0; t < count; ++t) {
      ids.push_back(rank + first + t);
    }
    return ids;
  };
  const auto identity_ids = [](std::int64_t count) {
    std::vector<std::int64_t> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (std::int64_t t = 0; t < count; ++t) ids.push_back(t);
    return ids;
  };

  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == stride) {
        const std::int64_t seg = topo::binomial_gather_segment(n, rank, i);
        plan->add_message(rank, true, rank - stride, PlanBuffer::kScratch,
                          whole_blocks(0, seg), linear_ids(rank, 0, seg));
      } else if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        const std::int64_t seg =
            topo::binomial_gather_segment(n, rank + stride, i);
        plan->add_message(rank, false, rank + stride, PlanBuffer::kScratch,
                          whole_blocks(stride, seg),
                          linear_ids(rank, stride, seg));
      }
    }
    plan->end_round();
  }

  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
        plan->add_message(
            rank, true, rank + stride,
            rank == 0 ? PlanBuffer::kScratch : PlanBuffer::kUserRecv,
            whole_blocks(0, n), identity_ids(n));
      } else if (pos_mod(rank, 2 * stride) == stride) {
        plan->add_message(rank, false, rank - stride, PlanBuffer::kUserRecv,
                          whole_blocks(0, n), identity_ids(n));
      }
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

std::shared_ptr<const Plan> Plan::lower_concatv_ring(std::int64_t n, int k,
                                                     int segments) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  auto plan = std::shared_ptr<Plan>(new Plan(
      PlanCollective::kConcat, "ringv", n, k, PlanCell::kWholeBlock));
  plan->irregular_ = true;
  plan->segments_ = segments;
  plan->prologue_ = PlanPrologue::kCopySendToRecvOwnSlot;
  if (n == 1) {
    plan->finalize();
    return plan;
  }

  // Recv-buffer slot i always holds rank i's block, so identity == slot.
  for (std::int64_t t = 0; t < n - 1; ++t) {
    plan->begin_round();
    for (std::int64_t rank = 0; rank < n; ++rank) {
      const std::int64_t succ = pos_mod(rank + 1, n);
      const std::int64_t pred = pos_mod(rank - 1, n);
      const std::int64_t fwd = pos_mod(rank - t, n);
      const std::int64_t got = pos_mod(rank - t - 1, n);
      plan->add_message(rank, true, succ, PlanBuffer::kUserRecv,
                        one_block(fwd), {fwd});
      plan->add_message(rank, false, pred, PlanBuffer::kUserRecv,
                        one_block(got), {got});
    }
    plan->end_round();
  }
  plan->finalize();
  return plan;
}

// ---------------------------------------------------------------------------

std::string Plan::describe() const {
  std::ostringstream os;
  const char* family = "?";
  switch (collective_) {
    case PlanCollective::kIndex: family = "index"; break;
    case PlanCollective::kConcat: family = "concat"; break;
    case PlanCollective::kReduce: family = "reduce"; break;
    case PlanCollective::kGather: family = "gather"; break;
    case PlanCollective::kScatter: family = "scatter"; break;
    case PlanCollective::kBcast: family = "bcast"; break;
  }
  os << "plan " << family << "/" << algorithm_ << ": n=" << n_
     << " k=" << k_;
  if (irregular_) {
    os << " (irregular: sizes resolve per shape; per-message figures below "
          "count whole block slots)";
  } else if (block_bytes_ == PlanCell::kWholeBlock) {
    os << " (block-size independent)";
  } else {
    os << " b=" << block_bytes_;
  }
  os << ", " << round_count_ << " rounds";
  if (segments_ > 1) os << ", " << segments_ << " wire segments/message";
  os << "\n";
  const std::int64_t b_view =
      block_bytes_ == PlanCell::kWholeBlock ? 1 : block_bytes_;
  if (round_count_ > 0) {
    const model::CostMetrics m = to_schedule(b_view).metrics();
    os << "  C1=" << m.c1 << " C2=" << m.c2
       << (block_bytes_ == PlanCell::kWholeBlock ? " blocks" : " bytes")
       << " total=" << m.total_bytes << "\n";
  }
  os << "  rank 0 program:\n";
  const RankProgram& p = programs_[0];
  for (int i = 0; i < round_count_; ++i) {
    const PlanRound& r = p.rounds[static_cast<std::size_t>(i)];
    os << "    round " << i << ":";
    if (r.sends_begin == r.sends_end && r.recvs_begin == r.recvs_end) {
      os << " idle";
    }
    for (std::uint32_t s = r.sends_begin; s < r.sends_end; ++s) {
      const PlanMessage& m = p.sends[s];
      os << "  ->" << m.peer << " " << message_bytes(m, b_view)
         << (block_bytes_ == PlanCell::kWholeBlock ? "blk" : "B")
         << (m.contiguous ? " (zero-copy)" : " (packed)");
    }
    for (std::uint32_t r2 = r.recvs_begin; r2 < r.recvs_end; ++r2) {
      const PlanMessage& m = p.recvs[r2];
      os << "  <-" << m.peer << " " << message_bytes(m, b_view)
         << (block_bytes_ == PlanCell::kWholeBlock ? "blk" : "B")
         << (m.combine ? " (combine)" : "");
    }
    os << "\n";
  }
  return os.str();
}

std::string Plan::describe_cursor() const {
  std::ostringstream os;
  os << describe();
  os << "  cursor anatomy (rank 0, nonblocking execution):\n";
  os << "    posting discipline: round i posts once rounds [0, i-1) have "
        "drained when pipeline-safe, else once rounds [0, i) have; at most "
        "two rounds in flight\n";
  const RankProgram& p = programs_[0];
  for (int i = 0; i < round_count_; ++i) {
    const PlanRound& r = p.rounds[static_cast<std::size_t>(i)];
    const int sends = static_cast<int>(r.sends_end - r.sends_begin);
    const int recvs = static_cast<int>(r.recvs_end - r.recvs_begin);
    os << "    round " << i << ": ";
    if (i == 0) {
      os << "posts immediately";
    } else if (p.pipeline_safe[static_cast<std::size_t>(i)]) {
      os << "overlaps round " << i - 1 << " (pipeline-safe)";
    } else {
      os << "waits for round " << i - 1 << " (data dependence)";
    }
    os << "; " << sends << " send(s), " << recvs << " recv(s)";
    if (recvs == 0) os << " — drains at post";
    os << "\n";
  }
  if (segments_ > 1) {
    os << "    wire segmentation: up to " << segments_
       << " segments/message (floored at " << model::kMinSegmentBytes
       << " B/segment)\n";
  }
  return os.str();
}

}  // namespace bruck::coll
