// Compiled-schedule execution engine.
//
// Every collective in this library has a fixed communication pattern once
// (algorithm, n, k, radix/strategy, block size) are known: the rounds, the
// peer of every message, and exactly which byte ranges of which buffer each
// message carries.  The hot path re-derived all of that on every call.  A
// `Plan` derives it once — lowering an algorithm into a per-rank program of
// rounds whose messages are lists of *cells* (byte ranges of block slots)
// over one of three buffers (user send, user recv, scratch) — and then
// `run()` just walks the program: gather cells into a staging buffer (or
// point straight into the source buffer when the cells are contiguous —
// the zero-copy fast path), exchange, scatter.
//
// Plans are immutable after lowering and shared by all rank threads of a
// fabric; `PlanCache` (plan_cache.hpp) memoizes them per geometry so a
// repeated collective on the same communicator shape does no planning work
// at all.
//
// Index plans are *block-size independent*: their cells are whole blocks,
// so one plan serves every block_bytes (sizes are resolved at run time).
// Concat plans are lowered for one exact block size, because the last
// round's byte-split table partition (Section 4.2) depends on b.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/costs.hpp"
#include "mps/communicator.hpp"
#include "sched/schedule.hpp"

namespace bruck::coll {

/// Which collective a plan realizes; drives the run-time buffer contracts
/// (index: send = n blocks, recv = n blocks; concat: send = 1 block,
/// recv = n blocks).
enum class PlanCollective { kIndex, kConcat };

/// The buffer a message's cells live in.
enum class PlanBuffer : std::uint8_t {
  kUserSend,  ///< the caller's send buffer
  kUserRecv,  ///< the caller's recv buffer
  kScratch,   ///< the plan's n-block scratch (rotation window / staging)
};

/// One byte range of one block slot: bytes [lo, hi) of block `slot`, with
/// hi == kWholeBlock meaning [0, block_bytes) resolved at run time.
struct PlanCell {
  static constexpr std::int64_t kWholeBlock = -1;
  std::int64_t slot = 0;
  std::int64_t lo = 0;
  std::int64_t hi = kWholeBlock;
};

/// One message of one round on one port: the peer it travels to/from and
/// the cells it carries, as a [begin, end) range into the plan's cell pool.
struct PlanMessage {
  std::int64_t peer = 0;
  PlanBuffer buffer = PlanBuffer::kScratch;
  std::uint32_t cells_begin = 0;
  std::uint32_t cells_end = 0;
  /// Cells form one contiguous byte run in `buffer` (whole consecutive
  /// blocks): the executor skips the pack/unpack staging entirely.
  bool contiguous = false;
};

/// One round of one rank's program: index ranges into the rank's message
/// vectors.  Empty ranges mean the rank is idle that round (tree-based
/// algorithms); the round is still counted.
struct PlanRound {
  std::uint32_t sends_begin = 0;
  std::uint32_t sends_end = 0;
  std::uint32_t recvs_begin = 0;
  std::uint32_t recvs_end = 0;
};

/// Local data movement before the communication rounds.
enum class PlanPrologue : std::uint8_t {
  kNone,
  kRotateSendToScratch,   ///< index Bruck Phase 1: scratch[s] = send[(s+rank)%n]
  kCopyOwnBlock,          ///< direct/pairwise: recv[rank] = send[rank]
  kCopySendToScratch0,    ///< concat Bruck/folklore: scratch[0] = send
  kCopySendToRecvOwnSlot, ///< ring: recv[rank] = send
};

/// Local data movement after the communication rounds.
enum class PlanEpilogue : std::uint8_t {
  kNone,
  kUnrotateByRank,         ///< index Bruck Phase 3
  kRotateWindowToOrigin,   ///< concat Bruck final re-indexing
  kScratchToRecvAtRoot,    ///< folklore: rank 0's gather result → recv
};

/// Result of one plan execution on one rank.
struct PlanExecution {
  int next_round = 0;            ///< next free round index
  std::int64_t bytes_sent = 0;   ///< this rank's total payload bytes
};

class Plan {
 public:
  [[nodiscard]] PlanCollective collective() const { return collective_; }
  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  /// Block size the plan was lowered for; PlanCell::kWholeBlock (−1) for
  /// block-size-independent index plans.
  [[nodiscard]] std::int64_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] int round_count() const { return round_count_; }
  [[nodiscard]] const std::string& algorithm() const { return algorithm_; }

  /// Execute this rank's program.  For index plans `send`/`recv` hold n
  /// blocks of `block_bytes` each; for concat plans `send` is one block and
  /// `block_bytes` must equal the plan's.  Returns the next free round and
  /// the bytes this rank put on the wire.
  PlanExecution run(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, std::int64_t block_bytes,
                    int start_round = 0) const;

  /// Data-free view of the whole pattern (all ranks), for cross-checking
  /// against sched/ builders and for cost metrics.  Index plans render with
  /// the given block size (default 1: byte counts equal block counts).
  [[nodiscard]] sched::Schedule to_schedule(std::int64_t block_bytes = 1) const;

  /// Human-readable anatomy: per-round message counts, peers and sizes of
  /// rank 0, plus totals (the `bruckcl_plan compile` rendering).
  [[nodiscard]] std::string describe() const;

  // -- Lowering entry points (the compiled counterparts of coll/) ----------

  static std::shared_ptr<const Plan> lower_index_bruck(std::int64_t n, int k,
                                                       std::int64_t radix);
  static std::shared_ptr<const Plan> lower_index_direct(std::int64_t n, int k);
  static std::shared_ptr<const Plan> lower_index_pairwise(std::int64_t n,
                                                          int k);
  static std::shared_ptr<const Plan> lower_concat_bruck(
      std::int64_t n, int k, std::int64_t block_bytes,
      model::ConcatLastRound strategy);
  /// Folklore and ring are one-port algorithms; `k` is the fabric's port
  /// count they will run on (they use one port per round regardless).
  static std::shared_ptr<const Plan> lower_concat_folklore(
      std::int64_t n, int k, std::int64_t block_bytes);
  static std::shared_ptr<const Plan> lower_concat_ring(
      std::int64_t n, int k, std::int64_t block_bytes);

 private:
  struct RankProgram {
    std::vector<PlanMessage> sends;
    std::vector<PlanMessage> recvs;
    std::vector<PlanRound> rounds;
  };

  Plan(PlanCollective collective, std::string algorithm, std::int64_t n, int k,
       std::int64_t block_bytes);

  /// Open/close one round across all ranks; messages added in between
  /// belong to it.  end_round advances the plan's round counter.
  void begin_round();
  void end_round();

  /// Append a message to `rank`'s program, computing `contiguous` from the
  /// cells.
  void add_message(std::int64_t rank, bool is_send, std::int64_t peer,
                   PlanBuffer buffer, const std::vector<PlanCell>& cells);

  /// Validate the lowered pattern against the k-port model and precompute
  /// run-time flags.
  void finalize();

  [[nodiscard]] bool cells_contiguous(std::uint32_t begin,
                                      std::uint32_t end) const;
  [[nodiscard]] std::int64_t message_bytes(const PlanMessage& m,
                                           std::int64_t b) const;

  PlanCollective collective_;
  std::string algorithm_;
  std::int64_t n_;
  int k_;
  std::int64_t block_bytes_;  // kWholeBlock for index plans
  int round_count_ = 0;
  bool needs_scratch_ = false;
  PlanPrologue prologue_ = PlanPrologue::kNone;
  PlanEpilogue epilogue_ = PlanEpilogue::kNone;
  std::vector<PlanCell> cells_;
  std::vector<RankProgram> programs_;  // one per rank
};

}  // namespace bruck::coll
