// Compiled-schedule execution engine.
//
// Every collective in this library has a fixed communication pattern once
// (algorithm, n, k, radix/strategy, block size) are known: the rounds, the
// peer of every message, and exactly which byte ranges of which buffer each
// message carries.  The hot path re-derived all of that on every call.  A
// `Plan` derives it once — lowering an algorithm into a per-rank program of
// rounds whose messages are lists of *cells* (byte ranges of block slots)
// over one of three buffers (user send, user recv, scratch) — and then
// `run()` just walks the program: gather cells into a staging buffer (or
// point straight into the source buffer when the cells are contiguous —
// the zero-copy fast path), exchange, scatter.
//
// Plans are immutable after lowering and shared by all rank threads of a
// fabric; `PlanCache` (plan_cache.hpp) memoizes them per geometry so a
// repeated collective on the same communicator shape does no planning work
// at all.
//
// Two executors walk a plan.  `run()` is the blocking (PR 1) executor:
// pack, exchange, scatter, strictly round by round.  `run_pipelined()`
// drives the nonblocking port engine instead: sends are packed straight
// into wire buffers and posted without waiting, receives complete eagerly
// in *arrival* order (scatter happens per message, not per round), and
// round r+1 is posted while round r's receives are still in flight
// whenever the lowering proved the rounds independent (`pipeline_safe`,
// computed in finalize() from the cells each round reads and writes).
// Large payloads can additionally be split into `segments()` wire segments
// per message — the plan-lowering pipelining knob (tuned through
// model::pick_segment_count) — so a receiver consumes segment i while
// segment i+1 is still being produced.  Both executors produce
// byte-identical results and identical C1/C2 trace accounting.
//
// Index plans are *block-size independent*: their cells are whole blocks,
// so one plan serves every block_bytes (sizes are resolved at run time).
// Concat plans are lowered for one exact block size, because the last
// round's byte-split table partition (Section 4.2) depends on b.
//
// Irregular (vector) collectives — alltoallv / allgatherv — lower through
// the same machinery.  An irregular plan is *shape-free*: its cells still
// reference whole block slots, but each cell additionally records the
// *identity* of its occupant block (which (source, destination) pair for
// index plans, which source rank for concat plans), and the actual byte
// counts, the caller's buffer displacements, and the scratch padding
// stride all resolve at run time from a `VectorView`.  Bruck-style
// algorithms run over a max-padded scratch (every slot is pad_bytes wide)
// with on-the-wire trimming: each message ships only the occupant's true
// bytes, looked up through the cell's recorded identity.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "coll/layout.hpp"
#include "coll/reduction.hpp"
#include "model/costs.hpp"
#include "mps/communicator.hpp"
#include "sched/schedule.hpp"

namespace bruck::coll {

/// Which collective a plan realizes; drives the run-time buffer contracts
/// (index: send = n blocks, recv = n blocks; concat: send = 1 block,
/// recv = n blocks; reduce: send = n blocks, recv = 1 block — the
/// ⊕-combination of every rank's contribution to this rank).
///
/// The rooted kinds (root is always rank 0; the hierarchical composite
/// stages put the group leader at sub-communicator rank 0) are SPMD like
/// everything else — every rank passes full-size buffers:
/// gather: send = 1 block, recv = n blocks (meaningful at the root only);
/// scatter: send = n blocks (read at the root only), recv = 1 block;
/// bcast: send = 1 block (read at the root only), recv = 1 block.
enum class PlanCollective { kIndex, kConcat, kReduce, kGather, kScatter,
                            kBcast };

/// The buffer a message's cells live in.
enum class PlanBuffer : std::uint8_t {
  kUserSend,  ///< the caller's send buffer
  kUserRecv,  ///< the caller's recv buffer
  kScratch,   ///< the plan's n-block scratch (rotation window / staging)
};

/// One byte range of one block slot: bytes [lo, hi) of block `slot`, with
/// hi == kWholeBlock meaning [0, block_bytes) resolved at run time.
struct PlanCell {
  static constexpr std::int64_t kWholeBlock = -1;
  std::int64_t slot = 0;
  std::int64_t lo = 0;
  std::int64_t hi = kWholeBlock;
};

/// One message of one round on one port: the peer it travels to/from and
/// the cells it carries, as a [begin, end) range into the plan's cell pool.
struct PlanMessage {
  std::int64_t peer = 0;
  PlanBuffer buffer = PlanBuffer::kScratch;
  std::uint32_t cells_begin = 0;
  std::uint32_t cells_end = 0;
  /// Cells form one contiguous byte run in `buffer` (whole consecutive
  /// blocks): the executor skips the pack/unpack staging entirely.
  bool contiguous = false;
  /// Receive messages only: the payload is ⊕-combined into the cells
  /// (read-modify-write) instead of overwriting them.  Combine receives
  /// always land in a staging buffer first — never in place — so partial
  /// segments can't be observed mid-combine.
  bool combine = false;
};

/// One round of one rank's program: index ranges into the rank's message
/// vectors.  Empty ranges mean the rank is idle that round (tree-based
/// algorithms); the round is still counted.
struct PlanRound {
  std::uint32_t sends_begin = 0;
  std::uint32_t sends_end = 0;
  std::uint32_t recvs_begin = 0;
  std::uint32_t recvs_end = 0;
};

/// Local data movement before the communication rounds.
enum class PlanPrologue : std::uint8_t {
  kNone,
  kRotateSendToScratch,   ///< index Bruck Phase 1: scratch[s] = send[(s+rank)%n]
  kCopyOwnBlock,          ///< direct/pairwise: recv[rank] = send[rank]
  kCopySendToScratch0,    ///< concat Bruck/folklore: scratch[0] = send
  kCopySendToRecvOwnSlot, ///< ring: recv[rank] = send
  kCopyOwnBlockToRecv0,   ///< reduce direct/pairwise: recv = send[rank]
  kCopySendToRecv0AtRoot, ///< bcast: rank 0 seeds recv = send
};

/// Local data movement after the communication rounds.
enum class PlanEpilogue : std::uint8_t {
  kNone,
  kUnrotateByRank,         ///< index Bruck Phase 3
  kRotateWindowToOrigin,   ///< concat Bruck final re-indexing
  kScratchToRecvAtRoot,    ///< folklore: rank 0's gather result → recv
  kScratch0ToRecv,         ///< reduce Bruck: recv = scratch[0] (the full ⊕)
};

/// Result of one plan execution on one rank.
struct PlanExecution {
  int next_round = 0;            ///< next free round index
  std::int64_t bytes_sent = 0;   ///< this rank's total payload bytes
  /// Received bytes combined into accumulators (reduction plans; 0 else).
  std::int64_t bytes_reduced = 0;
};

/// Run-time shape of one irregular (vector) plan execution.  Irregular
/// plans are lowered shape-free; the view supplies the actual byte counts
/// and the caller's buffer layouts.  Every rank of one collective call must
/// pass the same `counts` and `pad_bytes` (the usual "the count matrix was
/// allgathered first" situation); displacements are per-rank local.
/// Blocks addressed by the displacements must not overlap.
struct VectorView {
  /// Byte counts.  Index plans read counts[src * n + dst] — the full n×n
  /// matrix; concat plans read counts[src] — n entries.
  std::span<const std::int64_t> counts;
  /// Byte offset of block slot j in the caller's send buffer (index plans
  /// only; concat plans send a single block and ignore this).
  std::span<const std::int64_t> send_displs;
  /// Byte offset of block slot i in the caller's recv buffer.
  std::span<const std::int64_t> recv_displs;
  /// Scratch slot stride: the maximum count over the whole shape.  All
  /// ranks share one plan and one padded scratch layout, so this must be
  /// globally agreed (the facade computes it from `counts`).
  std::int64_t pad_bytes = 0;
};

class PlanCursor;

class Plan : public std::enable_shared_from_this<Plan> {
 public:
  [[nodiscard]] PlanCollective collective() const { return collective_; }
  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  /// Block size the plan was lowered for; PlanCell::kWholeBlock (−1) for
  /// block-size-independent index plans.
  [[nodiscard]] std::int64_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] int round_count() const { return round_count_; }
  [[nodiscard]] const std::string& algorithm() const { return algorithm_; }
  /// Wire segments per message under the pipelined executor (1 = off).
  [[nodiscard]] int segments() const { return segments_; }
  /// True for irregular (vector) plans: sizes and buffer layouts resolve at
  /// run time from a VectorView instead of a uniform block size.
  [[nodiscard]] bool irregular() const { return irregular_; }

  /// Execute this rank's program with the blocking round-by-round executor.
  /// For index plans `send`/`recv` hold n blocks of `block_bytes` each; for
  /// concat plans `send` is one block and `block_bytes` must equal the
  /// plan's.  Returns the next free round and the bytes this rank put on
  /// the wire.
  ///
  /// Blocking: returns once all of this rank's receives have landed.
  /// Thread safety: Plan is immutable after lowering — any number of rank
  /// threads may execute one shared plan concurrently.  Trace: one send
  /// event per nonzero message at its round (segmentation invisible).
  ///
  /// `layouts` (all run flavors) optionally describes how each block of the
  /// user buffers is laid out (layout.hpp): cells gather from / scatter to
  /// the strided layout directly — no staging copy.  Null or contiguous
  /// layouts reproduce today's behavior bit for bit, including the
  /// zero-copy contiguous-run fast path.  The layouts must outlive the
  /// call; wire bytes and trace accounting are layout-independent.
  PlanExecution run(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, std::int64_t block_bytes,
                    int start_round = 0,
                    const LayoutPair& layouts = {}) const;

  /// Execute this rank's program with the pipelined executor: nonblocking
  /// posts, eager out-of-order receive completion, cross-round overlap
  /// where proven safe, and segments() wire segments per message.  Same
  /// contract, results, and trace accounting as run().
  PlanExecution run_pipelined(mps::Communicator& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv,
                              std::int64_t block_bytes, int start_round = 0,
                              const LayoutPair& layouts = {}) const;

  /// Execute a reduction plan with the blocking executor: `send` holds n
  /// blocks (block j = this rank's contribution to rank j), `recv` one
  /// block that ends up ⊕-combined over every rank's contribution to this
  /// rank.  `block_bytes` must be a multiple of op.elem_bytes(); the op
  /// must be commutative and associative (reduction.hpp).  Reduction plans
  /// are block-size independent like index plans.
  PlanExecution run(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, std::int64_t block_bytes,
                    const ReduceOp& op, int start_round = 0,
                    const LayoutPair& layouts = {}) const;

  /// Execute a reduction plan with the pipelined executor: the combine is
  /// fused into the eager out-of-order completion path, so arithmetic
  /// overlaps in-flight rounds.  Same contract and results as the blocking
  /// overload.  A recv layout's blocklen must be a multiple of
  /// op.elem_bytes() (combines trim at piece edges).
  PlanExecution run_pipelined(mps::Communicator& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv,
                              std::int64_t block_bytes, const ReduceOp& op,
                              int start_round = 0,
                              const LayoutPair& layouts = {}) const;

  /// Execute an irregular plan with the blocking executor.  For index plans
  /// `send`/`recv` are laid out by view.send_displs/view.recv_displs; for
  /// concat plans `send` is this rank's single block (view.counts[rank]
  /// bytes) and `recv` is laid out by view.recv_displs.  Blocks with a zero
  /// count never touch the fabric (the round is still counted).
  PlanExecution run(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, const VectorView& view,
                    int start_round = 0, const LayoutPair& layouts = {}) const;

  /// Execute an irregular plan with the pipelined executor.  Same contract,
  /// results, and trace accounting as the blocking overload.  With layouts,
  /// each block's displacement is the block *origin* and the layout maps
  /// its counts[·] logical bytes from there.
  PlanExecution run_pipelined(mps::Communicator& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv,
                              const VectorView& view, int start_round = 0,
                              const LayoutPair& layouts = {}) const;

  /// Data-free view of the whole pattern (all ranks), for cross-checking
  /// against sched/ builders and for cost metrics.  Index plans render with
  /// the given block size (default 1: byte counts equal block counts).
  [[nodiscard]] sched::Schedule to_schedule(std::int64_t block_bytes = 1) const;

  /// Human-readable anatomy: per-round message counts, peers and sizes of
  /// rank 0, plus totals (the `bruckcl_plan compile` rendering).
  [[nodiscard]] std::string describe() const;

  /// Human-readable anatomy of the *cursor* state machine this plan drives
  /// under nonblocking execution (the `bruckcl_plan compile --nonblocking`
  /// rendering): per round, when it becomes postable relative to earlier
  /// rounds' completions, and what it posts.
  [[nodiscard]] std::string describe_cursor() const;

  // -- Lowering entry points (the compiled counterparts of coll/) ----------
  //
  // `segments` is the pipelined executor's wire-segmentation knob (≥ 1; it
  // does not change the round/cell structure, only how run_pipelined ships
  // each message).

  static std::shared_ptr<const Plan> lower_index_bruck(std::int64_t n, int k,
                                                       std::int64_t radix,
                                                       int segments = 1);
  static std::shared_ptr<const Plan> lower_index_direct(std::int64_t n, int k,
                                                        int segments = 1);
  static std::shared_ptr<const Plan> lower_index_pairwise(std::int64_t n,
                                                          int k,
                                                          int segments = 1);
  static std::shared_ptr<const Plan> lower_concat_bruck(
      std::int64_t n, int k, std::int64_t block_bytes,
      model::ConcatLastRound strategy, int segments = 1);
  /// Folklore and ring are one-port algorithms; `k` is the fabric's port
  /// count they will run on (they use one port per round regardless).
  static std::shared_ptr<const Plan> lower_concat_folklore(
      std::int64_t n, int k, std::int64_t block_bytes, int segments = 1);
  static std::shared_ptr<const Plan> lower_concat_ring(
      std::int64_t n, int k, std::int64_t block_bytes, int segments = 1);

  // -- Rooted lowering entry points ----------------------------------------
  //
  // The intra-group stages of the hierarchical two-level collectives: a
  // binomial gather to rank 0, a reversed binomial scatter from rank 0, and
  // the paper's circulant (k+1)-ary broadcast tree from rank 0.  All three
  // are block-size independent and mirror the inline primitives in
  // gather_scatter.cpp / bcast.cpp round for round, so the existing
  // gather_binomial_cost / scatter_binomial_cost / bcast_circulant_cost
  // formulas price them exactly.

  /// Binomial gather to rank 0: ⌈log2 n⌉ rounds; rank v with
  /// v mod 2^{i+1} = 2^i ships its accumulated segment in round i.
  static std::shared_ptr<const Plan> lower_gather_binomial(std::int64_t n,
                                                           int k,
                                                           int segments = 1);
  /// Reversed binomial scatter from rank 0: strides halve, a segment
  /// holder ships its upper half each round.
  static std::shared_ptr<const Plan> lower_scatter_binomial(std::int64_t n,
                                                            int k,
                                                            int segments = 1);
  /// Circulant (k+1)-ary broadcast tree from rank 0 (Section 2's optimal
  /// ⌈log_{k+1} n⌉-round broadcast); non-roots forward from the recv
  /// buffer once joined.
  static std::shared_ptr<const Plan> lower_bcast_circulant(std::int64_t n,
                                                           int k,
                                                           int segments = 1);

  // -- Reduction lowering entry points -------------------------------------
  //
  // Reduction plans are block-size *and* op independent: the combine
  // operator is supplied at run time, so one lowering serves every
  // (block_bytes, ReduceOp) of a geometry.  All receive messages carry the
  // combine flag; the pipeline-safety analysis treats their cells as
  // read-modify-write (two combine-writes commute, everything else
  // conflicts).

  /// The radix-r Bruck skeleton run in reverse with combining: digits
  /// processed high → low, the digit-x step z ships the live partial sums
  /// {z·r^x + t} to rank + z·r^x, which combines them into slots {t}.
  /// Per-rank wire volume is exactly (n−1) blocks (C2-optimal); C1 equals
  /// the index Bruck round count.
  static std::shared_ptr<const Plan> lower_reduce_bruck(std::int64_t n, int k,
                                                        std::int64_t radix,
                                                        int segments = 1);
  /// Direct per-pair exchange with combining: n−1 single-block messages, k
  /// per round, fully pipeline-safe (all receives combine into the one
  /// accumulator block).
  static std::shared_ptr<const Plan> lower_reduce_direct(std::int64_t n, int k,
                                                         int segments = 1);
  /// XOR pairwise exchange with combining (power-of-two n only).
  static std::shared_ptr<const Plan> lower_reduce_pairwise(std::int64_t n,
                                                           int k,
                                                           int segments = 1);

  // -- Irregular (vector) lowering entry points ----------------------------
  //
  // All irregular plans are shape-free (see the file comment): one lowering
  // serves every shape of the same (algorithm, n, k, radix) structure.  The
  // Bruck variants route through a max-padded scratch and trim every wire
  // message to the occupant block's true size.

  static std::shared_ptr<const Plan> lower_indexv_bruck(std::int64_t n, int k,
                                                        std::int64_t radix,
                                                        int segments = 1);
  static std::shared_ptr<const Plan> lower_indexv_direct(std::int64_t n, int k,
                                                         int segments = 1);
  static std::shared_ptr<const Plan> lower_indexv_pairwise(std::int64_t n,
                                                           int k,
                                                           int segments = 1);
  /// Irregular concat Bruck always uses the column-granular last round (the
  /// byte-split partition of Section 4.2 needs one concrete uniform b).
  static std::shared_ptr<const Plan> lower_concatv_bruck(std::int64_t n, int k,
                                                         int segments = 1);
  static std::shared_ptr<const Plan> lower_concatv_folklore(std::int64_t n,
                                                            int k,
                                                            int segments = 1);
  static std::shared_ptr<const Plan> lower_concatv_ring(std::int64_t n, int k,
                                                        int segments = 1);

 private:
  struct RankProgram {
    std::vector<PlanMessage> sends;
    std::vector<PlanMessage> recvs;
    std::vector<PlanRound> rounds;
    /// pipeline_safe[i]: round i's send reads and recv writes are disjoint
    /// from round i−1's recv writes, so the pipelined executor may post
    /// round i before round i−1's receives complete.  Computed in
    /// finalize(); [0] is always false (nothing precedes round 0).
    std::vector<std::uint8_t> pipeline_safe;
  };

  Plan(PlanCollective collective, std::string algorithm, std::int64_t n, int k,
       std::int64_t block_bytes);

  /// One execution's resolved size/layout context, shared by both
  /// executors: uniform runs carry the block size; irregular runs carry the
  /// VectorView (and use `b` as the padded scratch stride); reduction runs
  /// carry the combine operator.
  struct Extents {
    std::int64_t b = 0;
    const VectorView* view = nullptr;  // null for uniform plans
    const ReduceOp* op = nullptr;      // null for non-reduction plans
    /// User-buffer datatype layouts (layout.hpp); null = contiguous.
    /// Resolved per buffer through active_layout() — scratch is always
    /// contiguous, and a contiguous layout degenerates to null.
    const Layout* send_layout = nullptr;
    const Layout* recv_layout = nullptr;
  };

  /// Open/close one round across all ranks; messages added in between
  /// belong to it.  end_round advances the plan's round counter.
  void begin_round();
  void end_round();

  /// Append a message to `rank`'s program, computing `contiguous` from the
  /// cells.  Irregular plans must pass `blocks` — one occupant-block id per
  /// cell (index plans: src·n + dst into the count matrix; concat plans:
  /// the source rank) — so run time can resolve each cell's true size.
  /// `combine` marks a receive whose payload is ⊕-combined into its cells
  /// (reduction plans only; never valid on sends).
  void add_message(std::int64_t rank, bool is_send, std::int64_t peer,
                   PlanBuffer buffer, const std::vector<PlanCell>& cells,
                   const std::vector<std::int64_t>& blocks = {},
                   bool combine = false);

  /// Validate the lowered pattern against the k-port model and precompute
  /// run-time flags.
  void finalize();

  [[nodiscard]] bool cells_contiguous(std::uint32_t begin,
                                      std::uint32_t end) const;
  [[nodiscard]] std::int64_t message_bytes(const PlanMessage& m,
                                           std::int64_t b) const;

  // Run-time resolution of one cell under an execution's Extents: its byte
  // length (the occupant's true size for irregular plans, trimmed against
  // the cell's [lo, hi) byte range) and its byte offset in its buffer
  // (slot-strided for uniform plans and scratch; displacement-table for the
  // user buffers of irregular plans).
  [[nodiscard]] std::int64_t cell_len(std::uint32_t ci,
                                      const Extents& ex) const;
  [[nodiscard]] std::int64_t cell_offset(std::uint32_t ci, PlanBuffer buffer,
                                         const Extents& ex) const;
  [[nodiscard]] std::int64_t resolved_message_bytes(const PlanMessage& m,
                                                    const Extents& ex) const;

  /// The layout governing `buffer` under `ex`, or null when the buffer is
  /// plain contiguous — scratch always, user buffers when no layout (or a
  /// degenerate contiguous one) was supplied.  Null ⇒ the executors take
  /// exactly the pre-layout code paths, including zero-copy.
  [[nodiscard]] static const Layout* active_layout(PlanBuffer buffer,
                                                   const Extents& ex);

  /// Append cell `ci`'s byte extents in `buffer` under `ex` — one extent on
  /// the contiguous path, the layout's piece walk otherwise.  The unit both
  /// pack_message and scatter_message address user buffers through.
  void append_cell_extents(std::uint32_t ci, PlanBuffer buffer,
                           const Extents& ex,
                           std::vector<ByteExtent>& out) const;

  /// Compute every rank's pipeline_safe vector (part of finalize()).
  void compute_pipeline_safety();

  // Shared pieces of the two executors.
  void check_run_contract(const mps::Communicator& comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv, std::int64_t b,
                          const LayoutPair& layouts) const;
  void check_vector_contract(const mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv, const VectorView& view,
                             const LayoutPair& layouts) const;
  void check_reduce_contract(const mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv, std::int64_t b,
                             const ReduceOp& op,
                             const LayoutPair& layouts) const;
  void apply_prologue(std::span<const std::byte> send,
                      std::span<std::byte> recv, std::span<std::byte> scratch,
                      std::int64_t rank, const Extents& ex) const;
  void apply_epilogue(std::span<std::byte> recv,
                      std::span<const std::byte> scratch, std::int64_t rank,
                      const Extents& ex) const;
  /// Gather a non-contiguous message's cells into a fresh wire buffer.
  [[nodiscard]] std::vector<std::byte> pack_message(
      const PlanMessage& m, std::span<const std::byte> src,
      const Extents& ex) const;
  /// Scatter a received message's bytes into its cells — overwriting, or
  /// ⊕-combining through ex.op when the message carries the combine flag.
  void scatter_message(const PlanMessage& m, std::span<std::byte> dst,
                       const std::byte* data, const Extents& ex) const;

  // The executor bodies both public run flavors funnel into.
  PlanExecution run_blocking_impl(mps::Communicator& comm,
                                  std::span<const std::byte> send,
                                  std::span<std::byte> recv, const Extents& ex,
                                  int start_round) const;
  PlanExecution run_pipelined_impl(mps::Communicator& comm,
                                   std::span<const std::byte> send,
                                   std::span<std::byte> recv,
                                   const Extents& ex, int start_round) const;

  friend class PlanCursor;

  PlanCollective collective_;
  std::string algorithm_;
  std::int64_t n_;
  int k_;
  std::int64_t block_bytes_;  // kWholeBlock for index plans
  int segments_ = 1;
  int round_count_ = 0;
  bool irregular_ = false;
  bool needs_scratch_ = false;
  PlanPrologue prologue_ = PlanPrologue::kNone;
  PlanEpilogue epilogue_ = PlanEpilogue::kNone;
  std::vector<PlanCell> cells_;
  /// Irregular plans only: cells_[i]'s occupant-block id (index plans:
  /// src·n + dst; concat plans: source rank), parallel to cells_.  Empty
  /// for uniform plans.
  std::vector<std::int64_t> cell_block_;
  std::vector<RankProgram> programs_;  // one per rank
};

/// Resumable pipelined execution of one plan on one rank: the state machine
/// of run_pipelined(), exposed incrementally so several collectives can
/// share one communicator's completion stream.
///
/// The cursor never blocks.  post_ready() posts every round whose
/// dependence is satisfied — round i is postable once rounds [0, i−1) have
/// fully drained if the lowering proved it independent of round i−1
/// (`pipeline_safe`), else once rounds [0, i) have — exactly the
/// double-buffered posting discipline of the blocking pipelined executor
/// (at most two rounds in flight).  The owner routes each completed receive
/// handle back through on_complete(); when the last round drains, the
/// cursor applies the plan epilogue and becomes done().
///
/// All posts go to the cursor's port-namespace `tag`, so concurrent cursors
/// on one communicator (the coll:: progress engine) can never alias wire
/// segments.  The referenced plan, communicator, buffers, ReduceOp, and
/// VectorView must outlive the cursor; construction runs the same buffer
/// contract checks as the corresponding run_pipelined overload and applies
/// the prologue.
class PlanCursor {
 public:
  /// Uniform (index/concat) execution; see Plan::run_pipelined.  `layouts`
  /// (all flavors; optional) are the user-buffer datatype layouts and must
  /// outlive the cursor, like the plan and buffers.
  PlanCursor(std::shared_ptr<const Plan> plan, mps::Communicator& comm,
             std::span<const std::byte> send, std::span<std::byte> recv,
             std::int64_t block_bytes, int start_round = 0, int tag = 0,
             const LayoutPair& layouts = {});
  /// Reduction execution; `op` must outlive the cursor.
  PlanCursor(std::shared_ptr<const Plan> plan, mps::Communicator& comm,
             std::span<const std::byte> send, std::span<std::byte> recv,
             std::int64_t block_bytes, const ReduceOp& op, int start_round = 0,
             int tag = 0, const LayoutPair& layouts = {});
  /// Irregular (vector) execution; `view` (and the spans inside it) must
  /// outlive the cursor.
  PlanCursor(std::shared_ptr<const Plan> plan, mps::Communicator& comm,
             std::span<const std::byte> send, std::span<std::byte> recv,
             const VectorView& view, int start_round = 0, int tag = 0,
             const LayoutPair& layouts = {});

  PlanCursor(const PlanCursor&) = delete;
  PlanCursor& operator=(const PlanCursor&) = delete;

  /// Post every round that has become postable (never blocks).  Returns the
  /// handles of the receives posted by this call; the owner must feed each
  /// of them back through on_complete() when the engine reports it.  May
  /// complete the cursor outright (rounds without receives, empty plans).
  std::vector<mps::PortHandle> post_ready();

  /// Deliver one completed receive handle previously returned by
  /// post_ready(): consumes the payload (scatter/⊕-combine) and advances
  /// the drain frontier.  Precondition: `h` belongs to this cursor and was
  /// not delivered before.
  void on_complete(mps::PortHandle h);

  /// True once every round has been posted.
  [[nodiscard]] bool all_posted() const { return next_post_ == rounds_; }
  /// True once every receive has drained and the epilogue has run.
  [[nodiscard]] bool done() const { return done_; }
  /// Receives posted but not yet delivered back through on_complete().
  [[nodiscard]] int outstanding() const {
    return static_cast<int>(posted_.size());
  }
  [[nodiscard]] int tag() const { return tag_; }
  /// Execution totals; valid once done().
  [[nodiscard]] const PlanExecution& result() const;

 private:
  friend class Plan;

  /// One record per posted receive: the plan message it lands in and the
  /// round to credit its completion to.
  struct Posted {
    const PlanMessage* message = nullptr;
    int round = 0;
    bool take_buffer = false;
  };

  PlanCursor(std::shared_ptr<const Plan> plan, mps::Communicator& comm,
             std::span<const std::byte> send, std::span<std::byte> recv,
             const Plan::Extents& ex, int start_round, int tag);

  [[nodiscard]] bool postable(int i) const;
  void post_round(int i);
  /// Advance the drained-rounds frontier; apply the epilogue when the last
  /// round drains.
  void advance_frontier();

  std::shared_ptr<const Plan> plan_;
  mps::Communicator* comm_;
  std::span<const std::byte> send_;
  std::span<std::byte> recv_;
  std::vector<std::byte> scratch_;
  Plan::Extents ex_;
  int start_round_ = 0;
  int tag_ = 0;
  int rounds_ = 0;     ///< plan_->round_count()
  int next_post_ = 0;  ///< rounds [0, next_post_) have been posted
  int drained_ = 0;    ///< rounds [0, drained_) have fully completed
  std::vector<int> open_;  ///< per-round receives still in flight
  std::unordered_map<mps::PortHandle, Posted> posted_;
  std::vector<mps::PortHandle> new_handles_;  ///< post_ready() scratch
  PlanExecution out_;
  bool done_ = false;
};

}  // namespace bruck::coll
