// Nonblocking-collective handles.
//
// A `Request` is the move-only completion handle returned by the coll::
// i* entry points (api.hpp).  It refers to one operation owned by the
// communicator's ProgressEngine (progress.hpp); completing it — through
// test()/wait() here or wait_all()/wait_any() below — drives that engine,
// which multiplexes every outstanding collective of the communicator over
// one port-engine completion stream.
//
// Thread safety: a Request belongs to the rank thread that created it
// (same single-thread contract as the communicator itself).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bruck::coll {

class ProgressEngine;

/// Completion handle of one nonblocking collective.
///
/// Lifecycle: a Request is *active* from creation until wait() returns (or
/// until it is moved from).  Destroying an active Request waits for the
/// operation first — dropping a handle must not leak an operation whose
/// buffers are about to go out of scope — and, because destructors must not
/// throw, reports any completion error to stderr instead of propagating it.
/// Call wait() explicitly to observe errors.
class Request {
 public:
  /// An empty (non-active) handle; test() returns true, wait() returns 0.
  Request() = default;
  ~Request();

  Request(Request&& other) noexcept;
  Request& operator=(Request&& other) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True while this handle refers to an operation not yet waited.
  [[nodiscard]] bool valid() const { return engine_ != nullptr; }

  /// Poll for completion without blocking (on communicators with a native
  /// port engine; on exchange-backed wrappers this degrades to wait() and
  /// always returns true).  Starts the operation — and every operation
  /// submitted before it — if not yet started.  A true result is sticky:
  /// the handle stays valid until wait() collects the result.
  [[nodiscard]] bool test();

  /// Block until the operation completes; returns the next free round
  /// index of its port namespace (the nonblocking analogue of the blocking
  /// calls' return value) and invalidates the handle.
  int wait();

 private:
  friend class ProgressEngine;
  friend std::size_t wait_any(std::span<Request> requests);

  Request(ProgressEngine* engine, std::uint64_t id)
      : engine_(engine), id_(id) {}

  ProgressEngine* engine_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Complete every valid request (in index order).  Equivalent to calling
/// wait() on each, but reads as the MPI_Waitall it mirrors.
void wait_all(std::span<Request> requests);

/// Block until some valid request completes; waits it and returns its
/// index.  All valid requests must belong to one communicator.  Completion
/// order is arrival order, not submission order — a later-submitted
/// operation whose rounds drain first is returned first.
std::size_t wait_any(std::span<Request> requests);

}  // namespace bruck::coll
