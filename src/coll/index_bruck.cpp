#include "coll/index_bruck.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "coll/blocks.hpp"
#include "coll/pack.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::coll {

int index_bruck(mps::Communicator& comm, std::span<const std::byte> send,
                std::span<std::byte> recv, std::int64_t block_bytes,
                const IndexBruckOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const int k = comm.ports();
  const std::int64_t b = block_bytes;
  const std::int64_t r = options.radix;
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == n * b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);
  BRUCK_REQUIRE_MSG(r >= 2 && r <= std::max<std::int64_t>(2, n),
                    "radix must be in [2, max(2, n)]");

  if (n == 1) {
    if (b > 0) std::memcpy(recv.data(), send.data(), send.size());
    return options.start_round;
  }

  // Phase 1: tmp slot s := send block (s + rank) mod n.
  std::vector<std::byte> tmp(static_cast<std::size_t>(n * b));
  rotate_blocks_up(ConstBlockSpan(send, n, b), BlockSpan(tmp, n, b), rank);

  // Phase 2: w subphases of up to ⌈(h−1)/k⌉ rounds each.
  const int w = radix_digit_count(n, r);
  // Largest message in blocks.  Section 3.2 quotes ⌈n/r⌉, but the truncated
  // top digit can exceed that when n is not a power of r; use the exact
  // maximum (see radix_max_census).
  const std::int64_t max_blocks = radix_max_census(n, r);
  // Staging buffers, one send + one receive per port.
  std::vector<std::vector<std::byte>> out_buf(static_cast<std::size_t>(k));
  std::vector<std::vector<std::byte>> in_buf(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    out_buf[static_cast<std::size_t>(p)].resize(
        static_cast<std::size_t>(max_blocks * b));
    in_buf[static_cast<std::size_t>(p)].resize(
        static_cast<std::size_t>(max_blocks * b));
  }

  int round = options.start_round;
  for (int x = 0; x < w; ++x) {
    const std::int64_t dist = ipow(r, x);
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      std::vector<mps::SendSpec> sends;
      std::vector<mps::RecvSpec> recvs;
      for (std::int64_t z = z0; z < z1; ++z) {
        const auto port = static_cast<std::size_t>(z - z0);
        const std::int64_t nblocks = radix_digit_census(n, r, x, z);
        const std::int64_t packed =
            pack_by_digit(tmp, out_buf[port], n, b, r, x, z);
        BRUCK_ENSURE(packed == nblocks);
        const std::int64_t dst = pos_mod(rank + z * dist, n);
        const std::int64_t src = pos_mod(rank - z * dist, n);
        // The paper's model has no zero-byte messages; with b = 0 the
        // communication phase degenerates to pure round counting, which we
        // keep out of the fabric entirely.
        if (nblocks * b == 0) continue;
        sends.push_back(mps::SendSpec{
            dst, std::span<const std::byte>(out_buf[port])
                     .first(static_cast<std::size_t>(nblocks * b))});
        recvs.push_back(mps::RecvSpec{
            src, std::span<std::byte>(in_buf[port])
                     .first(static_cast<std::size_t>(nblocks * b))});
      }
      if (!sends.empty()) {
        comm.exchange(round, sends, recvs);
      }
      ++round;
      for (std::int64_t z = z0; z < z1; ++z) {
        const auto port = static_cast<std::size_t>(z - z0);
        unpack_by_digit(tmp, in_buf[port], n, b, r, x, z);
      }
    }
  }

  // Phase 3: recv block i := tmp slot (rank − i) mod n.
  unrotate_by_rank(ConstBlockSpan(tmp, n, b), BlockSpan(recv, n, b), rank);
  return round;
}

}  // namespace bruck::coll
