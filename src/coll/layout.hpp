// User-visible strided datatype descriptors — the library's MPI-vector
// analogue (Träff, "Effective MPI: User-defined Datatypes … Zero-copy
// All-to-all").
//
// A `Layout` describes how one logical *block* of a collective maps onto a
// caller buffer: a single contiguous run, a strided vector of equal pieces
// ({count, blocklen, stride}), or one level of nesting for 2-D tiles (the
// vector pattern repeated `tiles` times at `tile_stride`).  Consecutive
// blocks start `block_stride()` bytes apart (defaults to the block's
// physical span, i.e. non-overlapping back-to-back blocks; transpose-style
// interleaved blocks override it).
//
// Layouts flow from the api.hpp overloads into the plan executors'
// pack/unpack cell maps, which walk the layout's byte extents directly
// between the caller buffer and the wire — no user-side staging copy in
// either direction.  A layout whose pieces are dense (`is_contiguous()`)
// is indistinguishable from today's contiguous calls: same plans, same
// cache keys, same zero-copy contiguous-run fast path.
//
// Everything here is pure local bookkeeping/memory movement: never
// blocking, no fabric or trace side effects.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "coll/pack.hpp"

namespace bruck::coll {

class Layout {
 public:
  /// The descriptor's shape class.  Factories normalize all three kinds
  /// onto one piece walk (kContiguous = one piece, kVector = one tile).
  enum class Kind : std::uint8_t { kContiguous = 0, kVector, kTiled };

  /// An empty contiguous layout — contiguous(0).  A usable value-type
  /// default (OpSpec stores layouts by value); build real descriptors with
  /// the factories below.
  Layout() = default;

  /// One contiguous run of `bytes` bytes per block.
  [[nodiscard]] static Layout contiguous(std::int64_t bytes);

  /// `count` pieces of `blocklen` bytes whose starts are `stride` bytes
  /// apart (stride ≥ blocklen; stride == blocklen degenerates to
  /// contiguous).  Logical block payload is count·blocklen bytes.
  [[nodiscard]] static Layout vector(std::int64_t count, std::int64_t blocklen,
                                     std::int64_t stride);

  /// The vector pattern repeated `tiles` times, repetition origins
  /// `tile_stride` bytes apart (one level of nesting — enough for 2-D
  /// tiles of a 3-D volume).  Logical payload is tiles·count·blocklen.
  [[nodiscard]] static Layout tiled(std::int64_t tiles,
                                    std::int64_t tile_stride,
                                    std::int64_t count, std::int64_t blocklen,
                                    std::int64_t stride);

  /// Same pattern with consecutive block origins `bytes` apart instead of
  /// the default physical span.  Blocks may interleave (bytes < span) on
  /// the send side; receive blocks must not overlap.
  [[nodiscard]] Layout with_block_stride(std::int64_t bytes) const;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t blocklen() const { return blocklen_; }
  [[nodiscard]] std::int64_t stride() const { return stride_; }
  [[nodiscard]] std::int64_t tiles() const { return tiles_; }
  [[nodiscard]] std::int64_t tile_stride() const { return tile_stride_; }

  /// Logical payload bytes of one block (what travels on the wire).
  [[nodiscard]] std::int64_t block_bytes() const {
    return tiles_ * count_ * blocklen_;
  }

  /// Physical bytes one block touches in the caller buffer, first to last.
  [[nodiscard]] std::int64_t block_span() const;

  /// Byte distance between consecutive block origins (the explicit
  /// override, else block_span()).
  [[nodiscard]] std::int64_t block_stride() const;

  /// Physical end offset (relative to a block's origin) of its first
  /// `logical_bytes` logical bytes; 0 for an empty prefix.
  [[nodiscard]] std::int64_t span_of(std::int64_t logical_bytes) const;

  /// Minimum caller-buffer bytes for `nblocks` blocks starting at offset 0.
  [[nodiscard]] std::int64_t span_bytes(std::int64_t nblocks) const;

  /// True when every block is one dense byte run and blocks are packed
  /// back-to-back — the degenerate case the executors treat exactly like a
  /// plain contiguous call (zero-copy fast path, unchanged cache key).
  [[nodiscard]] bool is_contiguous() const;

  /// True when every piece boundary is a multiple of `elem_bytes` (a
  /// reduction layout requirement: combine trims at piece edges).
  [[nodiscard]] bool elem_aligned(std::int64_t elem_bytes) const;

  /// Plan-cache digest of the layout's *contiguity class*: 0 for
  /// is_contiguous() layouts (they key identically to no layout at all),
  /// else a hash of the kind and the log2 buckets of count/blocklen/tiles —
  /// deliberately *not* of the exact strides, so jittered strides of one
  /// shape class keep hitting one cached plan (plans are layout-free; the
  /// digest is pure cache policy).  Never 0 for non-contiguous layouts.
  [[nodiscard]] std::uint64_t digest() const;

  /// Append the byte extents of logical bytes [lo, hi) of the block whose
  /// origin byte is `origin`, in logical order, merging physically adjacent
  /// runs.  This is the walk the plan executors pack/scatter through.
  void append_extents(std::int64_t origin, std::int64_t lo, std::int64_t hi,
                      std::vector<ByteExtent>& out) const;

  /// "contig(4096)" / "vector{count,blocklen,stride}" / … for tooling.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Layout&, const Layout&) = default;

 private:
  Kind kind_ = Kind::kContiguous;
  std::int64_t count_ = 1;        // pieces per tile
  std::int64_t blocklen_ = 0;     // bytes per piece
  std::int64_t stride_ = 0;       // bytes between piece starts
  std::int64_t tiles_ = 1;        // tile repetitions
  std::int64_t tile_stride_ = 0;  // bytes between tile origins
  std::int64_t block_stride_ = 0;  // 0 = block_span()
};

/// The send/recv layouts of one collective call.  Null means contiguous
/// (today's behavior); the pair is passed through the facade to the
/// executors by pointer — the layouts must outlive the call.
struct LayoutPair {
  const Layout* send = nullptr;
  const Layout* recv = nullptr;

  [[nodiscard]] bool active() const {
    return send != nullptr || recv != nullptr;
  }
};

/// Gather logical bytes [lo, hi) of the block at `origin` of `src` (as laid
/// out by `layout`) into `dst`, back-to-back.  Bounds-checked through
/// gather_extents.  This is the user-side staging helper the examples and
/// tests compare the in-engine zero-copy path against.
void layout_gather(std::span<const std::byte> src, const Layout& layout,
                   std::int64_t origin, std::int64_t lo, std::int64_t hi,
                   std::span<std::byte> dst);

/// Inverse of layout_gather: scatter `src` into logical bytes [lo, hi) of
/// the block at `origin` of `dst`.
void layout_scatter(std::span<std::byte> dst, const Layout& layout,
                    std::int64_t origin, std::int64_t lo, std::int64_t hi,
                    std::span<const std::byte> src);

/// Pack blocks [0, nblocks) of a layout-mapped buffer into `packed`
/// back-to-back (block j's block_bytes() land at j·block_bytes()) — the
/// whole user-side staging pass the layout collectives replace, as one
/// call.  `layout_scatter_all` is the inverse.  Used by the kReference
/// facade paths and the examples' staged-vs-zero-copy comparisons.
void layout_gather_all(std::span<const std::byte> src, const Layout& layout,
                       std::int64_t nblocks, std::span<std::byte> packed);
void layout_scatter_all(std::span<std::byte> dst, const Layout& layout,
                        std::int64_t nblocks,
                        std::span<const std::byte> packed);

/// Combined plan-cache digest of a call's layout pair: 0 when both sides
/// are absent-or-contiguous (the key is then byte-identical to today's),
/// else a position-aware mix of the two digests, never 0.
[[nodiscard]] std::uint64_t layout_digest(const Layout* send,
                                          const Layout* recv);

}  // namespace bruck::coll
