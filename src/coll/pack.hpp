// Appendix A's pack/unpack routines: gather the blocks whose block-id has
// radix-r digit x equal to z into a contiguous message, and scatter a
// received message back into the same slots — plus the variable-extent
// generalization the irregular (vector) plan executor packs through and
// the strided `coll::Layout` datatypes resolve their cells into (a
// layout-mapped cell is just a ByteExtent walk over user memory).
//
// All routines here are pure local memory movement: they never block, never
// touch the fabric, and record nothing in the trace.  They are safe to call
// concurrently on disjoint buffers.
#pragma once

#include <cstdint>
#include <span>

namespace bruck::coll {

/// One byte run of a variable-extent cell map: `bytes` bytes at byte
/// `offset` of some buffer.  Zero-length extents are legal and skipped.
struct ByteExtent {
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
};

/// Gather the extents of `src` back-to-back into `out` (which must hold at
/// least the summed extent bytes).  Returns the bytes packed.  Never
/// blocks; no trace side effects.
std::int64_t gather_extents(std::span<const std::byte> src,
                            std::span<const ByteExtent> extents,
                            std::span<std::byte> out);

/// Inverse of gather_extents: scatter `in` back-to-back into the extents of
/// `dst`.  Returns the bytes scattered.  Never blocks; no trace side
/// effects.
std::int64_t scatter_extents(std::span<std::byte> dst,
                             std::span<const ByteExtent> extents,
                             std::span<const std::byte> in);

/// Pack the blocks of `buffer` (n blocks of block_bytes) whose slot index
/// has digit x (radix r) equal to z into `packed`, in ascending slot order.
/// Returns the number of blocks packed; `packed` must hold at least that
/// many blocks (use radix_digit_census to size it).
std::int64_t pack_by_digit(std::span<const std::byte> buffer,
                           std::span<std::byte> packed, std::int64_t n,
                           std::int64_t block_bytes, std::int64_t r, int x,
                           std::int64_t z);

/// Inverse of pack_by_digit: scatter `packed` back into the matching slots
/// of `buffer`, ascending.  Returns the number of blocks unpacked.
std::int64_t unpack_by_digit(std::span<std::byte> buffer,
                             std::span<const std::byte> packed, std::int64_t n,
                             std::int64_t block_bytes, std::int64_t r, int x,
                             std::int64_t z);

}  // namespace bruck::coll
