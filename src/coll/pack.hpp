// Appendix A's pack/unpack routines: gather the blocks whose block-id has
// radix-r digit x equal to z into a contiguous message, and scatter a
// received message back into the same slots.
#pragma once

#include <cstdint>
#include <span>

namespace bruck::coll {

/// Pack the blocks of `buffer` (n blocks of block_bytes) whose slot index
/// has digit x (radix r) equal to z into `packed`, in ascending slot order.
/// Returns the number of blocks packed; `packed` must hold at least that
/// many blocks (use radix_digit_census to size it).
std::int64_t pack_by_digit(std::span<const std::byte> buffer,
                           std::span<std::byte> packed, std::int64_t n,
                           std::int64_t block_bytes, std::int64_t r, int x,
                           std::int64_t z);

/// Inverse of pack_by_digit: scatter `packed` back into the matching slots
/// of `buffer`, ascending.  Returns the number of blocks unpacked.
std::int64_t unpack_by_digit(std::span<std::byte> buffer,
                             std::span<const std::byte> packed, std::int64_t n,
                             std::int64_t block_bytes, std::int64_t r, int x,
                             std::int64_t z);

}  // namespace bruck::coll
