#include "coll/verify.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bruck::coll {

void fill_index_send(std::span<std::byte> buf, std::int64_t n,
                     std::int64_t rank, std::int64_t block_bytes,
                     std::uint64_t seed) {
  BRUCK_REQUIRE(static_cast<std::int64_t>(buf.size()) == n * block_bytes);
  for (std::int64_t j = 0; j < n; ++j) {
    fill_payload(buf.subspan(static_cast<std::size_t>(j * block_bytes),
                             static_cast<std::size_t>(block_bytes)),
                 seed, rank, j);
  }
}

std::string check_index_recv(std::span<const std::byte> buf, std::int64_t n,
                             std::int64_t rank, std::int64_t block_bytes,
                             std::uint64_t seed) {
  BRUCK_REQUIRE(static_cast<std::int64_t>(buf.size()) == n * block_bytes);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t off = 0; off < block_bytes; ++off) {
      const std::byte expected =
          payload_byte(seed, i, rank, static_cast<std::size_t>(off));
      const std::byte got = buf[static_cast<std::size_t>(i * block_bytes + off)];
      if (got != expected) {
        std::ostringstream os;
        os << "rank " << rank << ": recv block " << i << " byte " << off
           << " = 0x" << std::hex << static_cast<int>(got) << ", expected 0x"
           << static_cast<int>(expected) << " (block B[" << std::dec << i
           << ", " << rank << "])";
        return os.str();
      }
    }
  }
  return {};
}

void fill_concat_send(std::span<std::byte> buf, std::int64_t rank,
                      std::int64_t block_bytes, std::uint64_t seed) {
  BRUCK_REQUIRE(static_cast<std::int64_t>(buf.size()) == block_bytes);
  fill_payload(buf, seed, rank, 0);
}

std::string check_concat_recv(std::span<const std::byte> buf, std::int64_t n,
                              std::int64_t block_bytes, std::uint64_t seed) {
  BRUCK_REQUIRE(static_cast<std::int64_t>(buf.size()) == n * block_bytes);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t off = 0; off < block_bytes; ++off) {
      const std::byte expected =
          payload_byte(seed, i, 0, static_cast<std::size_t>(off));
      const std::byte got = buf[static_cast<std::size_t>(i * block_bytes + off)];
      if (got != expected) {
        std::ostringstream os;
        os << "concat recv block " << i << " byte " << off << " = 0x"
           << std::hex << static_cast<int>(got) << ", expected 0x"
           << static_cast<int>(expected);
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace bruck::coll
