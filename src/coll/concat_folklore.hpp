// The folklore concatenation baseline of the Section 4 introduction: gather
// the n blocks to rank 0 along a binomial tree, then broadcast the
// concatenated result back down the same tree.  Suboptimal in both measures
// (C1 = 2⌈log2 n⌉ rounds; the broadcast phase moves the full b·n result on
// every round-max, see EXPERIMENTS.md).  One port is used regardless of k.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct ConcatFolkloreOptions {
  int start_round = 0;
};

/// Same buffer contract as concat_bruck.  Returns the next free round index.
/// Blocking: returns once this rank's receives have landed.  Thread
/// safety: SPMD, one call per rank thread.  Trace: one send event per
/// nonzero message at its round.
int concat_folklore(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, std::int64_t block_bytes,
                    const ConcatFolkloreOptions& options = {});

}  // namespace bruck::coll
