#include "coll/vector_reference.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

int alltoallv_reference(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv,
                        std::span<const std::int64_t> counts,
                        std::span<const std::int64_t> send_displs,
                        std::span<const std::int64_t> recv_displs,
                        const VectorReferenceOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const int k = comm.ports();
  BRUCK_REQUIRE(static_cast<std::int64_t>(counts.size()) == n * n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send_displs.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);
  const auto out_bytes = [&](std::int64_t dst) {
    return counts[static_cast<std::size_t>(rank * n + dst)];
  };
  const auto in_bytes = [&](std::int64_t src) {
    return counts[static_cast<std::size_t>(src * n + rank)];
  };

  // Own block never touches the network.
  if (out_bytes(rank) > 0) {
    std::memcpy(recv.data() + recv_displs[static_cast<std::size_t>(rank)],
                send.data() + send_displs[static_cast<std::size_t>(rank)],
                static_cast<std::size_t>(out_bytes(rank)));
  }
  int round = options.start_round;
  if (n == 1) return round;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    std::vector<mps::SendSpec> sends;
    std::vector<mps::RecvSpec> recvs;
    for (std::int64_t j = j0; j < j1; ++j) {
      const std::int64_t dst = pos_mod(rank + j, n);
      const std::int64_t src = pos_mod(rank - j, n);
      if (out_bytes(dst) > 0) {
        sends.push_back(mps::SendSpec{
            dst, send.subspan(
                     static_cast<std::size_t>(
                         send_displs[static_cast<std::size_t>(dst)]),
                     static_cast<std::size_t>(out_bytes(dst)))});
      }
      if (in_bytes(src) > 0) {
        recvs.push_back(mps::RecvSpec{
            src, recv.subspan(
                     static_cast<std::size_t>(
                         recv_displs[static_cast<std::size_t>(src)]),
                     static_cast<std::size_t>(in_bytes(src)))});
      }
    }
    if (!sends.empty() || !recvs.empty()) comm.exchange(round, sends, recvs);
    ++round;
  }
  return round;
}

int allgatherv_reference(mps::Communicator& comm,
                         std::span<const std::byte> send,
                         std::span<std::byte> recv,
                         std::span<const std::int64_t> counts,
                         std::span<const std::int64_t> recv_displs,
                         const VectorReferenceOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const int k = comm.ports();
  BRUCK_REQUIRE(static_cast<std::int64_t>(counts.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);
  const std::int64_t own = counts[static_cast<std::size_t>(rank)];
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == own);

  if (own > 0) {
    std::memcpy(recv.data() + recv_displs[static_cast<std::size_t>(rank)],
                send.data(), static_cast<std::size_t>(own));
  }
  int round = options.start_round;
  if (n == 1) return round;

  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    std::vector<mps::SendSpec> sends;
    std::vector<mps::RecvSpec> recvs;
    for (std::int64_t j = j0; j < j1; ++j) {
      const std::int64_t dst = pos_mod(rank + j, n);
      const std::int64_t src = pos_mod(rank - j, n);
      if (own > 0) {
        sends.push_back(
            mps::SendSpec{dst, send.subspan(0, static_cast<std::size_t>(own))});
      }
      const std::int64_t in = counts[static_cast<std::size_t>(src)];
      if (in > 0) {
        recvs.push_back(mps::RecvSpec{
            src, recv.subspan(
                     static_cast<std::size_t>(
                         recv_displs[static_cast<std::size_t>(src)]),
                     static_cast<std::size_t>(in))});
      }
    }
    if (!sends.empty() || !recvs.empty()) comm.exchange(round, sends, recvs);
    ++round;
  }
  return round;
}

}  // namespace bruck::coll
