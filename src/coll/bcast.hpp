// One-to-all broadcast — the first collective the paper's introduction
// lists, and the primitive whose spanning-tree growth argument drives the
// Proposition 2.1 lower bound (data can reach at most (k+1)^d processors in
// d rounds).
//
// Two algorithms:
//  * bcast_circulant — the k-port tree of Section 4.1: growth rounds add
//    children at offsets j·(k+1)^i; a final partial round covers the
//    remaining n2 = n − (k+1)^{d−1} nodes (child n1+c hangs off parent
//    c mod n1, at most ⌈n2/n1⌉ ≤ k per parent).  C1 = ⌈log_{k+1} n⌉ —
//    meeting Proposition 2.1's bound with equality for every n and k.
//  * bcast_binomial — the classic one-port binomial tree (the broadcast
//    phase of the folklore concatenation), for comparison.
//
// Both forward the whole payload on every edge: C2 = b·C1 under the
// Σ-max-message measure.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct BcastOptions {
  int start_round = 0;
};

/// k-port circulant-tree broadcast of `data` from `root`.  On the root,
/// `data` is the payload; on every other rank it is the landing buffer
/// (same size everywhere).  Returns the next free round index.
/// Blocking: returns once this rank received (and, for interior tree
/// nodes, forwarded) the payload; idle rounds do not block.  Thread
/// safety: SPMD, one call per rank thread.  Trace: one send event per
/// tree edge at its round.
int bcast_circulant(mps::Communicator& comm, std::int64_t root,
                    std::span<std::byte> data, const BcastOptions& options = {});

/// One-port binomial-tree broadcast; same contract.
int bcast_binomial(mps::Communicator& comm, std::int64_t root,
                   std::span<std::byte> data, const BcastOptions& options = {});

}  // namespace bruck::coll
