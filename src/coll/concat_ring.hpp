// Ring-allgather concatenation baseline: in round t every rank forwards the
// block it received in round t−1 to its successor.  C2-optimal at k = 1
// (b(n−1) bytes per port) with the worst possible C1 = n−1 — the opposite
// end of the spectrum from the folklore baseline, bracketing the paper's
// algorithm from both sides.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct ConcatRingOptions {
  int start_round = 0;
};

/// Same buffer contract as concat_bruck.  Returns the next free round index.
/// Blocking: returns once this rank's receives have landed.  Thread
/// safety: SPMD, one call per rank thread.  Trace: one send event per
/// nonzero message at its round.
int concat_ring(mps::Communicator& comm, std::span<const std::byte> send,
                std::span<std::byte> recv, std::int64_t block_bytes,
                const ConcatRingOptions& options = {});

}  // namespace bruck::coll
