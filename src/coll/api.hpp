// The CCL-style entry points: one call per collective with algorithm and
// radix selection, including model-driven auto-tuning (the paper's central
// practical point — Section 3.3/3.5: pick r from β, τ, b, n, k).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "coll/layout.hpp"
#include "coll/reduction.hpp"
#include "coll/request.hpp"
#include "model/costs.hpp"
#include "model/linear_model.hpp"
#include "model/tuner.hpp"
#include "mps/communicator.hpp"

namespace bruck::coll {

enum class IndexAlgorithm {
  kBruck,     ///< Section 3 algorithm with the options' radix
  kDirect,    ///< direct exchange (C2-optimal end)
  kPairwise,  ///< XOR pairwise exchange (power-of-two n only)
  kAuto,      ///< Bruck with the model-tuned radix
};

enum class ConcatAlgorithm {
  kBruck,     ///< Section 4 circulant algorithm
  kFolklore,  ///< binomial gather + broadcast baseline
  kRing,      ///< ring allgather baseline
  kAuto,      ///< Bruck (optimal in both measures for most n)
};

/// How the facade executes a collective.
enum class ExecutionPath {
  /// Lower (or fetch from the PlanCache) a compiled plan and run it with
  /// the blocking round-by-round executor: zero planning work on repeated
  /// same-geometry calls, zero-copy wire paths where the pattern allows.
  kCompiled,
  /// The original inline implementations that re-derive the pattern per
  /// call.  Kept as the cross-check oracle: tests assert the compiled
  /// paths and kReference produce identical results and traces.
  kReference,
  /// Compiled plan + the pipelined executor over the nonblocking port
  /// engine: round overlap where proven safe, eager out-of-order receive
  /// completion, optional wire segmentation.  The default hot path.
  kPipelined,
};

/// Whether a collective may run the hierarchical (two-level leader-model)
/// lowering: intra-group gather to a leader → inter-leader exchange →
/// intra-group scatter/broadcast (coll/composite.hpp).  Honored by the
/// plain contiguous blocking overloads of alltoall/allgather/reduce_scatter
/// with n > 1 and block_bytes > 0 when the algorithm resolves to Bruck;
/// kReference (the flat oracle), strided layouts, and the i* twins always
/// run flat.
enum class HierMode {
  kDefault,  ///< follow the BRUCK_HIER environment knob (unset = kOff)
  kOff,      ///< always flat
  kOn,       ///< force the best modeled hierarchical shape, even if flat wins
  kAuto,     ///< hierarchical iff the two-level model prices it under flat
};

[[nodiscard]] std::string to_string(IndexAlgorithm a);
[[nodiscard]] std::string to_string(ConcatAlgorithm a);
[[nodiscard]] std::string to_string(ExecutionPath p);
[[nodiscard]] std::string to_string(HierMode m);

/// Strict parse seams of the hierarchy env knobs (the mps::parse_* idiom:
/// pure functions over the raw text, the whole string must parse, anything
/// else is std::nullopt).  BRUCK_HIER wants off|on|auto;
/// BRUCK_HIER_GROUP_SIZE wants an integer in [0, 1048576] (0 = tuner pick).
[[nodiscard]] std::optional<HierMode> parse_hier_mode(const char* text);
[[nodiscard]] std::optional<std::int64_t> parse_hier_group(const char* text);

/// BRUCK_HIER resolved: unset = kOff; invalid text warns once to stderr and
/// falls back to kOff.  Re-reads the environment on every call (cheap), so
/// tests may flip the variable between calls.
[[nodiscard]] HierMode default_hier_mode();
/// BRUCK_HIER_GROUP_SIZE resolved: unset = 0 (tuner's group-size sweep);
/// invalid text warns once and falls back to 0.
[[nodiscard]] std::int64_t default_hier_group();

struct AlltoallOptions {
  IndexAlgorithm algorithm = IndexAlgorithm::kAuto;
  /// Radix for kBruck; 0 means "tune under `machine`".
  std::int64_t radix = 0;
  /// Machine profile used by radix tuning.
  model::LinearModel machine = model::ibm_sp1();
  /// Candidate set for tuning (the paper's SP-1 library tunes over
  /// powers of two; kAll finds the true model optimum).
  model::RadixSet radix_set = model::RadixSet::kAll;
  int start_round = 0;
  ExecutionPath path = ExecutionPath::kPipelined;
  /// Wire segments per message under kPipelined: 0 tunes under `machine`
  /// (model::pick_segment_count), 1 disables segmentation, S > 1 forces S.
  /// Ignored by the other paths.
  int segments = 0;
  /// Hierarchical (two-level leader-model) execution; see HierMode.
  HierMode hier = HierMode::kDefault;
  /// Forced nominal group size for hierarchical execution; 0 defers to
  /// BRUCK_HIER_GROUP_SIZE, then the tuner's group-size sweep.
  std::int64_t hier_group = 0;
  /// Two-level machine profile (intra-group vs inter-group links) driving
  /// the flat-vs-hierarchical decision and the shape sweep.
  model::TwoLevelModel hier_machine =
      model::uniform_two_level(model::ibm_sp1());
};

struct AllgatherOptions {
  ConcatAlgorithm algorithm = ConcatAlgorithm::kAuto;
  model::ConcatLastRound last_round = model::ConcatLastRound::kAuto;
  /// Machine profile for segment-count tuning under kPipelined.
  model::LinearModel machine = model::ibm_sp1();
  int start_round = 0;
  ExecutionPath path = ExecutionPath::kPipelined;
  /// Same contract as AlltoallOptions::segments.
  int segments = 0;
  /// Same contract as AlltoallOptions::hier / hier_group / hier_machine.
  HierMode hier = HierMode::kDefault;
  std::int64_t hier_group = 0;
  model::TwoLevelModel hier_machine =
      model::uniform_two_level(model::ibm_sp1());
};

/// The decision kAuto (or radix = 0) would make, without running anything.
struct AlltoallPlan {
  IndexAlgorithm algorithm = IndexAlgorithm::kBruck;
  std::int64_t radix = 2;
  model::CostMetrics predicted;
  double predicted_us = 0.0;
  /// Learned wire-segment force carried by a tuner override (0 = none);
  /// resolved through the segment knob like a user-requested count.
  int segments_hint = 0;
};

[[nodiscard]] AlltoallPlan plan_alltoall(std::int64_t n, int k,
                                         std::int64_t block_bytes,
                                         const AlltoallOptions& options = {});

/// Index operation (MPI_Alltoall).  `send`: n blocks of block_bytes, block j
/// destined for rank j.  `recv`: n blocks, block i from rank i.
/// Returns the next free round index.
///
/// Blocking: returns once all of this rank's receives have landed (under
/// kPipelined, posts overlap internally but the call itself is
/// synchronous).  Thread safety: SPMD — one call per rank thread with
/// rank-local buffers; the PlanCache and tuner memos behind it are
/// process-global and thread-safe.  Trace: one send event per nonzero
/// message at its round, plus one PlanEvent per compiled execution.
int alltoall(mps::Communicator& comm, std::span<const std::byte> send,
             std::span<std::byte> recv, std::int64_t block_bytes,
             const AlltoallOptions& options = {});

/// Strided-datatype alltoall.  Each logical block (block size =
/// send_layout.block_bytes(), which must equal recv_layout's) maps onto the
/// caller buffer through its layout; block j's origin is
/// j · layout.block_stride().  The compiled executors walk the layout's
/// byte extents directly between the user buffers and the wire — no
/// staging copy in either direction — and an is_contiguous() layout
/// behaves (and caches) exactly like the plain overload.  Buffers must
/// cover layout.span_bytes(n); bytes outside the layout's extents are
/// never read or written.  The layouts are read during the call only.
/// Under kReference the facade stages through packed copies (the inline
/// oracles predate layouts), so it remains the bitwise cross-check.
int alltoall(mps::Communicator& comm, std::span<const std::byte> send,
             std::span<std::byte> recv, const Layout& send_layout,
             const Layout& recv_layout, const AlltoallOptions& options = {});

/// The user-side staging idiom the layout overload replaces, as one call:
/// layout_gather_all → plain alltoall → layout_scatter_all.  Bitwise
/// identical to the zero-copy overload; kept as the measuring-stick
/// baseline of the staged-vs-zero-copy comparisons in the examples and
/// bench_wallclock.
int alltoall_staged(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, const Layout& send_layout,
                    const Layout& recv_layout,
                    const AlltoallOptions& options = {});

/// Concatenation operation (MPI_Allgather).  `send`: this rank's block.
/// `recv`: n blocks in rank order.  Returns the next free round index.
/// Blocking, thread-safety, and trace behavior as alltoall.
int allgather(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, std::int64_t block_bytes,
              const AllgatherOptions& options = {});

/// Strided-datatype allgather: `send` holds this rank's one layout-mapped
/// block (must cover send_layout.span_bytes(1)), `recv` n layout-mapped
/// blocks in rank order (recv_layout.span_bytes(n)).  Same layout
/// semantics and zero-copy behavior as the alltoall layout overload.
int allgather(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, const Layout& send_layout,
              const Layout& recv_layout, const AllgatherOptions& options = {});

// ---------------------------------------------------------------------------
// Irregular (vector) collectives: per-rank byte counts and displacements,
// lowered through the same plan engine (see docs/ARCHITECTURE.md).

struct AlltoallvOptions {
  /// kAuto picks between direct exchange and Bruck via
  /// model::pick_indexv_cached (total + heaviest-pair bytes).  kBruck runs
  /// the Section 3 algorithm over a max-padded scratch with on-the-wire
  /// trimming; kPairwise requires a power-of-two n.
  IndexAlgorithm algorithm = IndexAlgorithm::kAuto;
  /// Radix for kBruck; 0 means "tune under `machine`".
  std::int64_t radix = 0;
  model::LinearModel machine = model::ibm_sp1();
  model::RadixSet radix_set = model::RadixSet::kAll;
  int start_round = 0;
  /// kReference runs the direct per-pair oracle (vector_reference.hpp)
  /// regardless of `algorithm` — there is exactly one irregular oracle.
  ExecutionPath path = ExecutionPath::kPipelined;
  /// Same contract as AlltoallOptions::segments.
  int segments = 0;
};

/// Irregular index operation (MPI_Alltoallv).  `counts` is the full n×n
/// matrix — counts[i*n + j] = bytes rank i sends to rank j — and must be
/// identical on every rank (the usual "counts were allgathered first"
/// situation).  `send_displs`/`recv_displs` give each block's byte offset
/// in this rank's buffers; empty spans mean the packed canonical layout
/// (prefix sums of this rank's matrix row / column).  Blocks must not
/// overlap; zero-count pairs never touch the fabric.  Blocks until this
/// rank's receives have landed; records one trace send event per nonzero
/// message plus one PlanEvent on the compiled paths.  Returns the next
/// free round index.
int alltoallv(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv,
              std::span<const std::int64_t> counts,
              std::span<const std::int64_t> send_displs = {},
              std::span<const std::int64_t> recv_displs = {},
              const AlltoallvOptions& options = {});

/// Strided-datatype alltoallv.  Each block's displacement is its *origin*;
/// its counts[i·n+j] logical bytes walk the layout's piece pattern from
/// there (so they physically end at origin + layout.span_of(count)).
/// layout.block_bytes() must cover the largest pair count on both sides.
/// Empty displacements mean the packed canonical layout *in layout space*:
/// prefix sums of span_of(count) — identical to the plain overload for
/// contiguous layouts.  Blocks must not overlap.
int alltoallv(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv,
              std::span<const std::int64_t> counts,
              std::span<const std::int64_t> send_displs,
              std::span<const std::int64_t> recv_displs,
              const Layout& send_layout, const Layout& recv_layout,
              const AlltoallvOptions& options = {});

struct AllgathervOptions {
  /// kAuto resolves to Bruck.  Irregular Bruck always uses the
  /// column-granular last round (the byte-split partition needs one
  /// concrete uniform block size).
  ConcatAlgorithm algorithm = ConcatAlgorithm::kAuto;
  model::LinearModel machine = model::ibm_sp1();
  int start_round = 0;
  /// kReference runs the direct per-pair oracle (vector_reference.hpp).
  ExecutionPath path = ExecutionPath::kPipelined;
  int segments = 0;
};

/// Irregular concatenation (MPI_Allgatherv).  `send` is this rank's block
/// (counts[rank] bytes); `recv` holds rank i's block at recv_displs[i]
/// with counts[i] bytes (empty recv_displs = packed prefix-sum layout).
/// `counts` (n entries) must be identical on every rank.  Same blocking
/// and trace behavior as alltoallv.  Returns the next free round index.
int allgatherv(mps::Communicator& comm, std::span<const std::byte> send,
               std::span<std::byte> recv,
               std::span<const std::int64_t> counts,
               std::span<const std::int64_t> recv_displs = {},
               const AllgathervOptions& options = {});

// ---------------------------------------------------------------------------
// Reduction collectives: the index/concatenate schedules with combining
// (reduce-scatter is an index operation whose receives ⊕-combine;
// allreduce is reduce-scatter + concatenation).  Operators must be
// commutative and associative (reduction.hpp).

enum class ReduceAlgorithm {
  kBruck,     ///< the Section 3 skeleton run in reverse with combining
  kDirect,    ///< direct per-pair exchange with combining
  kPairwise,  ///< XOR pairwise exchange (power-of-two n only)
  kAuto,      ///< model-tuned via model::pick_reduce_scatter (γ-aware)
};

[[nodiscard]] std::string to_string(ReduceAlgorithm a);

struct ReduceScatterOptions {
  ReduceAlgorithm algorithm = ReduceAlgorithm::kAuto;
  /// Radix for kBruck; 0 means "tune under `machine`".
  std::int64_t radix = 0;
  /// Machine profile for algorithm/radix/segment tuning (its γ term prices
  /// the combine work).
  model::LinearModel machine = model::ibm_sp1();
  model::RadixSet radix_set = model::RadixSet::kAll;
  int start_round = 0;
  /// kReference runs the per-pair oracle (reduce_scatter_reference)
  /// regardless of `algorithm` — there is exactly one reduction oracle.
  ExecutionPath path = ExecutionPath::kPipelined;
  /// Same contract as AlltoallOptions::segments.
  int segments = 0;
  /// Same contract as AlltoallOptions::hier / hier_group / hier_machine.
  HierMode hier = HierMode::kDefault;
  std::int64_t hier_group = 0;
  model::TwoLevelModel hier_machine =
      model::uniform_two_level(model::ibm_sp1());
};

/// Reduce-scatter (MPI_Reduce_scatter_block).  `send`: n blocks of
/// block_bytes, block j this rank's contribution to rank j.  `recv`: one
/// block — op-combined over every rank's contribution to this rank.
/// block_bytes must be a multiple of op.elem_bytes().  Returns the next
/// free round index.
///
/// Blocking: returns once this rank's reduction is complete (under
/// kPipelined the combine is fused into the out-of-order completion path).
/// Thread safety: SPMD as alltoall.  Trace: one send event per nonzero
/// message at its round, plus one PlanEvent (with bytes_reduced) per
/// compiled execution.
int reduce_scatter(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, std::int64_t block_bytes,
                   const ReduceOp& op,
                   const ReduceScatterOptions& options = {});

/// Strided-datatype reduce-scatter: `send` holds n layout-mapped blocks,
/// `recv` one.  recv_layout's pieces must be whole multiples of
/// op.elem_bytes() (combines trim at piece edges and must never split an
/// element).  Same layout semantics and zero-copy behavior as the alltoall
/// layout overload — receive-side combining runs extent-by-extent straight
/// into the strided user buffer.
int reduce_scatter(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, const Layout& send_layout,
                   const Layout& recv_layout, const ReduceOp& op,
                   const ReduceScatterOptions& options = {});

struct AllreduceOptions {
  /// Reduce-scatter stage algorithm.
  ReduceAlgorithm algorithm = ReduceAlgorithm::kAuto;
  /// Concatenation (allgather) stage algorithm.
  ConcatAlgorithm concat = ConcatAlgorithm::kAuto;
  std::int64_t radix = 0;
  model::LinearModel machine = model::ibm_sp1();
  model::RadixSet radix_set = model::RadixSet::kAll;
  int start_round = 0;
  /// kReference runs allreduce_reference (ring + canonical local combine).
  ExecutionPath path = ExecutionPath::kPipelined;
  int segments = 0;
};

/// Allreduce: `recv` = ⊕ over all ranks of their `send` (equal byte length
/// everywhere, a multiple of op.elem_bytes()).  Lowered as reduce-scatter
/// over ⌈elems/n⌉-element blocks (zero-padded tail) followed by an
/// allgather of the reduced blocks.  Returns the next free round index.
/// Blocking, thread-safety, and trace behavior as reduce_scatter.
int allreduce(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, const ReduceOp& op,
              const AllreduceOptions& options = {});

/// Strided-datatype allreduce.  The layouts describe the *whole* payload
/// (block_bytes() = total logical bytes, a multiple of op.elem_bytes()).
/// Allreduce's padded block decomposition inherently stages the payload,
/// so here the layouts replace — not add to — the staging copies: the
/// gather into the padded scratch walks send_layout, the final scatter
/// walks recv_layout; the wire stages themselves run contiguous.
int allreduce(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, const Layout& send_layout,
              const Layout& recv_layout, const ReduceOp& op,
              const AllreduceOptions& options = {});

// ---------------------------------------------------------------------------
// The one-to-all / all-to-one primitives of the paper's introduction.

enum class BcastAlgorithm {
  kCirculant,  ///< k-port Section 4.1 tree; C1 = ⌈log_{k+1} n⌉ (optimal)
  kBinomial,   ///< classic one-port binomial tree
  kAuto,       ///< circulant (it degrades to binomial at k = 1 round-wise)
};

struct BcastApiOptions {
  BcastAlgorithm algorithm = BcastAlgorithm::kAuto;
  int start_round = 0;
};

/// One-to-all broadcast of `data` from `root` (in-place on non-roots).
/// Blocking, thread-safety, and trace behavior as bcast.hpp.
int broadcast(mps::Communicator& comm, std::int64_t root,
              std::span<std::byte> data, const BcastApiOptions& options = {});

struct RootedOptions {
  int start_round = 0;
};

/// All-to-one gather: root's `recv` gets the n blocks in rank order.
/// Blocking, thread-safety, and trace behavior as gather_scatter.hpp.
int gather(mps::Communicator& comm, std::int64_t root,
           std::span<const std::byte> send, std::span<std::byte> recv,
           std::int64_t block_bytes, const RootedOptions& options = {});

/// One-to-all scatter: each rank's `recv` gets its block of root's `send`.
int scatter(mps::Communicator& comm, std::int64_t root,
            std::span<const std::byte> send, std::span<std::byte> recv,
            std::int64_t block_bytes, const RootedOptions& options = {});

// ---------------------------------------------------------------------------
// Nonblocking collectives.  Each i* call resolves the same execution recipe
// as its blocking twin (tuner, radix, wire segments) but — instead of
// running it — submits the operation to the communicator's ProgressEngine
// (progress.hpp) and returns a Request handle immediately.  The operation
// starts lazily at the first test()/wait() on any request of the
// communicator, so several submitted-together same-shape operations can be
// batched into one fused wire exchange (a model::pick_fusion decision).
//
// Contracts shared by all i* entry points (see docs/API.md for the full
// reference):
//  - Buffers (and, for reductions, nothing else: the ReduceOp is copied)
//    must stay valid and untouched until the request completes.
//  - Execution always uses the compiled pipelined path; `options.path` is
//    ignored (there is no nonblocking reference oracle).
//  - Each operation runs in its own port-namespace tag on communicators
//    with a native port engine, so any number of requests may be in flight
//    concurrently.  On exchange-backed wrappers the engine degrades to a
//    serial FIFO at tag 0 (test() degrades to wait()).
//  - While requests are outstanding, do not issue blocking collectives or
//    raw port-engine operations on the same communicator.

/// Nonblocking alltoall; same buffer contract as alltoall().
[[nodiscard]] Request ialltoall(mps::Communicator& comm,
                                std::span<const std::byte> send,
                                std::span<std::byte> recv,
                                std::int64_t block_bytes,
                                const AlltoallOptions& options = {});

/// Nonblocking strided-datatype alltoall; layout semantics as the blocking
/// layout overload (the layouts are copied into the operation — only the
/// payload buffers must outlive the request).  Layout operations never
/// fuse: fusion interleaves contiguous blocks.
[[nodiscard]] Request ialltoall(mps::Communicator& comm,
                                std::span<const std::byte> send,
                                std::span<std::byte> recv,
                                const Layout& send_layout,
                                const Layout& recv_layout,
                                const AlltoallOptions& options = {});

/// Nonblocking allgather; same buffer contract as allgather().
[[nodiscard]] Request iallgather(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv,
                                 std::int64_t block_bytes,
                                 const AllgatherOptions& options = {});

/// Nonblocking strided-datatype allgather; layout and copy semantics as
/// ialltoall's layout overload.
[[nodiscard]] Request iallgather(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv,
                                 const Layout& send_layout,
                                 const Layout& recv_layout,
                                 const AllgatherOptions& options = {});

/// Nonblocking alltoallv; same buffer contract as alltoallv().  The counts
/// and displacement tables are copied — only the payload buffers must
/// outlive the request.
[[nodiscard]] Request ialltoallv(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv,
                                 std::span<const std::int64_t> counts,
                                 std::span<const std::int64_t> send_displs = {},
                                 std::span<const std::int64_t> recv_displs = {},
                                 const AlltoallvOptions& options = {});

/// Nonblocking strided-datatype alltoallv; layout semantics as the
/// blocking layout overload (layouts and shape tables are copied).
[[nodiscard]] Request ialltoallv(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv,
                                 std::span<const std::int64_t> counts,
                                 std::span<const std::int64_t> send_displs,
                                 std::span<const std::int64_t> recv_displs,
                                 const Layout& send_layout,
                                 const Layout& recv_layout,
                                 const AlltoallvOptions& options = {});

/// Nonblocking reduce-scatter; same buffer contract as reduce_scatter().
/// The ReduceOp is copied (user_fn/user_ctx of a kUser op must stay valid).
[[nodiscard]] Request ireduce_scatter(mps::Communicator& comm,
                                      std::span<const std::byte> send,
                                      std::span<std::byte> recv,
                                      std::int64_t block_bytes,
                                      const ReduceOp& op,
                                      const ReduceScatterOptions& options = {});

/// Nonblocking strided-datatype reduce-scatter; layout and copy semantics
/// as ialltoall's layout overload.
[[nodiscard]] Request ireduce_scatter(mps::Communicator& comm,
                                      std::span<const std::byte> send,
                                      std::span<std::byte> recv,
                                      const Layout& send_layout,
                                      const Layout& recv_layout,
                                      const ReduceOp& op,
                                      const ReduceScatterOptions& options = {});

/// Nonblocking allreduce; same buffer contract as allreduce().  Runs as a
/// two-stage chained operation (reduce-scatter then allgather) inside one
/// port-namespace tag.
[[nodiscard]] Request iallreduce(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, const ReduceOp& op,
                                 const AllreduceOptions& options = {});

/// Nonblocking strided-datatype allreduce; layout semantics as the
/// blocking layout overload (the staging copies walk the layouts).
[[nodiscard]] Request iallreduce(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv,
                                 const Layout& send_layout,
                                 const Layout& recv_layout,
                                 const ReduceOp& op,
                                 const AllreduceOptions& options = {});

namespace detail {

/// Resolved reduce-scatter execution recipe: algorithm, radix, and the
/// predicted metrics that drive segment tuning.  Shared by the blocking
/// facade and the progress engine's nonblocking submissions.
struct ReducePlanChoice {
  ReduceAlgorithm algorithm = ReduceAlgorithm::kBruck;
  std::int64_t radix = 2;
  model::CostMetrics predicted;
  /// Learned wire-segment force carried by a tuner override (0 = none).
  int segments_hint = 0;
};

[[nodiscard]] ReducePlanChoice resolve_reduce_algorithm(
    std::int64_t n, int k, std::int64_t block_bytes, ReduceAlgorithm algorithm,
    std::int64_t radix, const model::LinearModel& machine,
    model::RadixSet set);

}  // namespace detail

}  // namespace bruck::coll
