// The Proposition 2.3 reduction, executable: "Any concatenation operation
// on an array B[i] can be reduced to an index operation on B[i, j] by
// letting B[i, j] = B[i] for all i and j."
//
// This is how the paper transfers the concatenation lower bounds to the
// index operation.  Running the reduction forward gives a (deliberately
// inefficient) concatenation algorithm whose round count equals the index
// algorithm's — useful as a living proof of the reduction and as a stress
// case: it moves n× the volume the direct concatenation needs.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct ConcatViaIndexOptions {
  /// Radix handed to the underlying index algorithm.
  std::int64_t radix = 2;
  int start_round = 0;
};

/// Concatenation implemented by the Proposition 2.3 reduction: replicate
/// this rank's block n times, run the index operation, and the receive
/// buffer is the concatenation.  Same buffer contract as concat_bruck.
/// Blocking/thread-safety/trace behavior is the underlying index
/// algorithm's (index_bruck.hpp).
int concat_via_index(mps::Communicator& comm, std::span<const std::byte> send,
                     std::span<std::byte> recv, std::int64_t block_bytes,
                     const ConcatViaIndexOptions& options = {});

}  // namespace bruck::coll
