// Reduction machinery.
//
// Two things live here:
//
//  1. `ReduceOp` — the combine-operator table of the reduction collectives
//     (reduce_scatter / allreduce): sum, min, max, prod over i32/i64/f32/f64
//     plus a user-function escape hatch.  Operators must be commutative and
//     associative: both the Bruck-skeleton combining tree and the pipelined
//     executor's arrival-order completion combine contributions in an
//     unspecified order (all built-ins qualify; floating-point sum/prod are
//     order-exact only for data that is, e.g. small integers).
//
//  2. The per-pair reduction reference oracles (`reduce_scatter_reference`,
//     `allreduce_reference`) — direct exchanges that share no code with the
//     plan engine, the `ExecutionPath::kReference` substrate every compiled
//     reduction path is tested against.
//
//  3. The Proposition 2.3 reduction (`concat_via_index`), kept from the
//     seed: any concatenation reduces to an index operation.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "mps/communicator.hpp"

namespace bruck::coll {

/// The combining operator kind.
enum class ReduceKind : std::uint8_t {
  kSum = 0,
  kMin,
  kMax,
  kProd,
  kUser,  ///< caller-supplied elementwise function (ReduceOp::user)
};

/// Element type the built-in operators combine over.
enum class ReduceElem : std::uint8_t { kI32 = 0, kI64, kF32, kF64 };

[[nodiscard]] std::string to_string(ReduceKind kind);
[[nodiscard]] std::string to_string(ReduceElem elem);

/// One combining operator: a (kind, element-type) pair from the built-in
/// table, or a user function over opaque fixed-width elements.
///
/// The operator must be commutative and associative (see the file comment);
/// `combine` is called on the receiving rank's thread only, so the user
/// function needs no internal synchronization.  Buffers handed to `combine`
/// are byte buffers with no alignment guarantee — the built-ins memcpy each
/// element; user functions must do the same.
struct ReduceOp {
  ReduceKind kind = ReduceKind::kSum;
  ReduceElem elem = ReduceElem::kI32;

  /// User escape hatch: acc[i] ⊕= in[i] for `count` elements of
  /// `user_elem_bytes` bytes each.
  using UserFn = void (*)(std::byte* acc, const std::byte* in,
                          std::int64_t count, void* ctx);
  UserFn user_fn = nullptr;
  std::int64_t user_elem_bytes = 0;
  void* user_ctx = nullptr;

  [[nodiscard]] static ReduceOp sum(ReduceElem e);
  [[nodiscard]] static ReduceOp min(ReduceElem e);
  [[nodiscard]] static ReduceOp max(ReduceElem e);
  [[nodiscard]] static ReduceOp prod(ReduceElem e);
  [[nodiscard]] static ReduceOp user(UserFn fn, std::int64_t elem_bytes,
                                     void* ctx = nullptr);

  /// Width of one element in bytes (4/8 for the built-ins).
  [[nodiscard]] std::int64_t elem_bytes() const;

  /// acc[0..bytes) ⊕= in[0..bytes), elementwise.  `bytes` must be a
  /// multiple of elem_bytes().
  void combine(std::byte* acc, const std::byte* in, std::int64_t bytes) const;

  /// Cache-key tag: (kind << 16) | element width.  Reduction plans are
  /// structurally op-independent, but the tag keeps "one PlanCache key =
  /// one complete execution recipe"; distinct user functions of equal
  /// element width deliberately share a key (the lowered plan is
  /// identical — the function itself is supplied at run time).
  [[nodiscard]] std::uint32_t cache_tag() const;

  [[nodiscard]] std::string name() const;
};

/// Which kernel ReduceOp::combine dispatches to for a given buffer pair.
/// Built-in ops run a typed loop the compiler vectorizes: directly over the
/// buffers when both are element-aligned (`kAlignedVector` — the common
/// case: accumulator blocks and wire payloads are allocation-aligned), or
/// chunked through small aligned stack arrays otherwise
/// (`kChunkedVector` — unaligned-safe, still vectorized per chunk).  User
/// ops always take the escape hatch (`kUser`).
enum class CombinePath : std::uint8_t {
  kAlignedVector = 0,
  kChunkedVector,
  kUser,
};

/// The kernel `op.combine(acc, in, …)` would run for these pointers.
/// Exposed so tests can pin the dispatch and benches can label rows.
[[nodiscard]] CombinePath combine_path(const ReduceOp& op, const void* acc,
                                       const void* in);

/// The pre-SIMD per-element memcpy combine loop, kept verbatim as the
/// bitwise oracle the vectorized kernels are tested and benchmarked
/// against.  Same contract as ReduceOp::combine.
void combine_elementwise_reference(const ReduceOp& op, std::byte* acc,
                                   const std::byte* in, std::int64_t bytes);

struct ReduceReferenceOptions {
  int start_round = 0;
};

/// Per-pair reduce-scatter oracle: `send` holds n blocks (block j is this
/// rank's contribution to rank j), `recv` one block — the ⊕-combination of
/// every rank's contribution to this rank.  Direct ring-distance exchange,
/// k distances per round, combining in ascending distance order; returns
/// the next free round index (start_round + ⌈(n−1)/k⌉ for n > 1).
/// Blocking and trace behavior as index_direct.
int reduce_scatter_reference(mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv,
                             std::int64_t block_bytes, const ReduceOp& op,
                             const ReduceReferenceOptions& options = {});

/// Allreduce oracle: `recv` = ⊕ over all ranks of their `send` (same byte
/// length everywhere, a multiple of op.elem_bytes()).  Ring-circulates the
/// full vectors (n−1 one-port rounds) and combines locally in rank order,
/// so every rank applies the identical association order.
int allreduce_reference(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, const ReduceOp& op,
                        const ReduceReferenceOptions& options = {});

struct ConcatViaIndexOptions {
  /// Radix handed to the underlying index algorithm.
  std::int64_t radix = 2;
  int start_round = 0;
};

/// Concatenation implemented by the Proposition 2.3 reduction: replicate
/// this rank's block n times, run the index operation, and the receive
/// buffer is the concatenation.  Same buffer contract as concat_bruck.
/// Blocking/thread-safety/trace behavior is the underlying index
/// algorithm's (index_bruck.hpp).
int concat_via_index(mps::Communicator& comm, std::span<const std::byte> send,
                     std::span<std::byte> recv, std::int64_t block_bytes,
                     const ConcatViaIndexOptions& options = {});

}  // namespace bruck::coll
