// The concatenation operation (all-to-all broadcast / MPI_Allgather) —
// Section 4 of the paper.
//
// The algorithm runs on the circulant graph G(n, S) with
// S_i = {(k+1)^i·j : 1 ≤ j ≤ k}.  Writing d = ⌈log_{k+1} n⌉,
// n1 = (k+1)^{d−1} and n2 = n − n1:
//
//   Rounds 0 … d−2 ("full rounds", Section 4.1): each node sends its whole
//   current window of cur = (k+1)^i consecutive blocks to the k nodes at
//   offsets −j·cur, and receives the k windows that extend its own, growing
//   the window by a factor of k+1 per round.  Following Appendix B, the
//   implementation uses negative offsets (node u sends to u − s), so after
//   round i node u holds B[u], B[u+1], …, B[u + (k+1)^{i+1} − 1] (mod n).
//
//   Last round (Section 4.2): the remaining n2 blocks are scheduled by a
//   table partition (topo/partition.hpp).  Area A_m with leftmost column
//   L_m ships on its own port with offset s_m = n1 + L_m: node u sends to
//   u − s_m, for every cell (column c, byte rows [r0, r1)), the bytes
//   [r0, r1) of its window block c − L_m; the receiver scatters them into
//   window slot n1 + c.  The strategy enum picks between the paper's
//   byte-split partition (optimal C1 and C2 where feasible) and the two
//   fallbacks of the paper's Remark.
//
// Measures match model::concat_bruck_cost exactly; tests assert it.
#pragma once

#include <cstdint>
#include <span>

#include "model/costs.hpp"
#include "mps/communicator.hpp"

namespace bruck::coll {

struct ConcatBruckOptions {
  model::ConcatLastRound strategy = model::ConcatLastRound::kAuto;
  int start_round = 0;
};

/// Run the concatenation.  `send` is this rank's single block (block_bytes
/// bytes); `recv` receives the n blocks in rank order.  Buffers must not
/// alias.  Returns the next free round index.
///
/// Blocking: returns once all of this rank's receives have landed (each
/// round runs through Communicator::exchange).  Thread safety: SPMD — call
/// once per rank thread with rank-local buffers.  Trace: one send event
/// per nonzero message, at its declared round.
int concat_bruck(mps::Communicator& comm, std::span<const std::byte> send,
                 std::span<std::byte> recv, std::int64_t block_bytes,
                 const ConcatBruckOptions& options = {});

}  // namespace bruck::coll
