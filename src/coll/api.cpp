#include "coll/api.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/composite.hpp"
#include "coll/concat_bruck.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/index_bruck.hpp"
#include "coll/index_direct.hpp"
#include "coll/index_pairwise.hpp"
#include "coll/plan_cache.hpp"
#include "coll/progress.hpp"
#include "coll/vector_reference.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

std::string to_string(IndexAlgorithm a) {
  switch (a) {
    case IndexAlgorithm::kBruck: return "bruck";
    case IndexAlgorithm::kDirect: return "direct";
    case IndexAlgorithm::kPairwise: return "pairwise";
    case IndexAlgorithm::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(ConcatAlgorithm a) {
  switch (a) {
    case ConcatAlgorithm::kBruck: return "bruck";
    case ConcatAlgorithm::kFolklore: return "folklore";
    case ConcatAlgorithm::kRing: return "ring";
    case ConcatAlgorithm::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(ExecutionPath p) {
  switch (p) {
    case ExecutionPath::kCompiled: return "compiled";
    case ExecutionPath::kReference: return "reference";
    case ExecutionPath::kPipelined: return "pipelined";
  }
  return "?";
}

std::string to_string(ReduceAlgorithm a) {
  switch (a) {
    case ReduceAlgorithm::kBruck: return "bruck";
    case ReduceAlgorithm::kDirect: return "direct";
    case ReduceAlgorithm::kPairwise: return "pairwise";
    case ReduceAlgorithm::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(HierMode m) {
  switch (m) {
    case HierMode::kDefault: return "default";
    case HierMode::kOff: return "off";
    case HierMode::kOn: return "on";
    case HierMode::kAuto: return "auto";
  }
  return "?";
}

std::optional<HierMode> parse_hier_mode(const char* text) {
  if (text == nullptr) return std::nullopt;
  const std::string_view s(text);
  if (s == "off") return HierMode::kOff;
  if (s == "on") return HierMode::kOn;
  if (s == "auto") return HierMode::kAuto;
  return std::nullopt;
}

std::optional<std::int64_t> parse_hier_group(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;  // junk / trailing junk
  if (errno == ERANGE) return std::nullopt;
  if (v < 0 || v > (1 << 20)) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

HierMode default_hier_mode() {
  const char* env = std::getenv("BRUCK_HIER");
  if (env == nullptr) return HierMode::kOff;
  if (const auto parsed = parse_hier_mode(env)) return *parsed;
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid BRUCK_HIER=\"%s\" "
                 "(want off|on|auto); using off\n",
                 env);
  });
  return HierMode::kOff;
}

std::int64_t default_hier_group() {
  const char* env = std::getenv("BRUCK_HIER_GROUP_SIZE");
  if (env == nullptr) return 0;
  if (const auto parsed = parse_hier_group(env)) return *parsed;
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid BRUCK_HIER_GROUP_SIZE=\"%s\" "
                 "(want an integer in [0, 1048576]); using 0\n",
                 env);
  });
  return 0;
}

namespace {

/// Option-level hier knobs resolved against the environment: kDefault
/// defers to BRUCK_HIER, a zero group to BRUCK_HIER_GROUP_SIZE.
HierMode resolve_hier_mode(HierMode mode) {
  return mode == HierMode::kDefault ? default_hier_mode() : mode;
}

std::int64_t resolve_hier_group(std::int64_t group) {
  return group != 0 ? group : default_hier_group();
}

/// Whether the plain-overload compiled path should run the hierarchical
/// composite: the knob resolves past kOff, the geometry is non-degenerate,
/// and the caller didn't force a non-Bruck flat algorithm (`bruck_family`).
bool hier_eligible(HierMode resolved, std::int64_t n, std::int64_t block_bytes,
                   bool bruck_family) {
  return resolved != HierMode::kOff && n > 1 && block_bytes > 0 &&
         bruck_family;
}

/// Microseconds since `start` on the wall clock (the adaptive tuner's
/// feedback signal).
double wall_since_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The shared compiled tail of both collectives: fetch (or lower once) the
/// plan for `key`, execute it through the requested executor, and report
/// the cache/round/byte statistics.  `wall_out`, when given, receives the
/// measured execution wall time in microseconds (also carried on the
/// PlanEvent).
int run_compiled(mps::Communicator& comm, const PlanKey& key,
                 std::span<const std::byte> send, std::span<std::byte> recv,
                 std::int64_t block_bytes, int start_round, bool pipelined,
                 const LayoutPair& layouts = {},
                 double* wall_out = nullptr) {
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(key);
  const auto start = std::chrono::steady_clock::now();
  const PlanExecution ex =
      pipelined
          ? lookup.plan->run_pipelined(comm, send, recv, block_bytes,
                                       start_round, layouts)
          : lookup.plan->run(comm, send, recv, block_bytes, start_round,
                             layouts);
  const double wall_us = wall_since_us(start);
  mps::PlanEvent event{lookup.cache_hit, lookup.plan->round_count(),
                       ex.bytes_sent};
  event.wall_us = wall_us;
  comm.record_plan_event(event);
  if (wall_out != nullptr) *wall_out = wall_us;
  return ex.next_round;
}

/// run_compiled's irregular twin: fetch/lower the vector plan and execute
/// it against the VectorView.
int run_compiled_v(mps::Communicator& comm, const PlanKey& key,
                   std::span<const std::byte> send, std::span<std::byte> recv,
                   const VectorView& view, int start_round, bool pipelined,
                   const LayoutPair& layouts = {}) {
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(key);
  const auto start = std::chrono::steady_clock::now();
  const PlanExecution ex =
      pipelined
          ? lookup.plan->run_pipelined(comm, send, recv, view, start_round,
                                       layouts)
          : lookup.plan->run(comm, send, recv, view, start_round, layouts);
  mps::PlanEvent event{lookup.cache_hit, lookup.plan->round_count(),
                       ex.bytes_sent};
  event.wall_us = wall_since_us(start);
  comm.record_plan_event(event);
  return ex.next_round;
}

/// Packed canonical layout: block i at the prefix sum of sizes [0, i).
std::vector<std::int64_t> prefix_displs(std::span<const std::int64_t> sizes) {
  std::vector<std::int64_t> displs(sizes.size());
  std::int64_t pos = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    displs[i] = pos;
    pos += sizes[i];
  }
  return displs;
}

/// prefix_displs in layout space: block i's origin at the prefix sum of
/// the *physical* footprints span_of(count) — degenerates to prefix_displs
/// for contiguous layouts.
std::vector<std::int64_t> layout_prefix_displs(
    const Layout& layout, std::span<const std::int64_t> counts) {
  std::vector<std::int64_t> displs(counts.size());
  std::int64_t pos = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    displs[i] = pos;
    pos += layout.span_of(counts[i]);
  }
  return displs;
}

/// The resolved execution recipe of an allgather call (shared by the plain
/// and layout overloads): canonicalized algorithm and last-round strategy
/// (so equal geometries share a key) plus the resolved segment knob.
struct ConcatRecipe {
  ConcatAlgorithm algorithm = ConcatAlgorithm::kBruck;
  model::ConcatLastRound strategy = model::ConcatLastRound::kAuto;
  int segments = 1;
  /// Modeled measures behind the choice (zero unless pipelined — only the
  /// segment tuner and the progress engine read them).
  model::CostMetrics predicted;
};

ConcatRecipe resolve_concat_recipe(std::int64_t n, int k,
                                   std::int64_t block_bytes,
                                   const AllgatherOptions& options,
                                   bool pipelined) {
  ConcatRecipe recipe;
  recipe.algorithm = options.algorithm == ConcatAlgorithm::kAuto
                         ? ConcatAlgorithm::kBruck
                         : options.algorithm;
  recipe.strategy =
      recipe.algorithm == ConcatAlgorithm::kBruck
          ? model::resolve_concat_last_round(n, k, block_bytes,
                                             options.last_round)
          : options.last_round;
  if (pipelined) {
    // Needed for forced counts too: resolve_segment_knob clamps them against
    // the per-message floor derived from these metrics.
    switch (recipe.algorithm) {
      case ConcatAlgorithm::kBruck:
      case ConcatAlgorithm::kAuto:
        recipe.predicted =
            model::concat_bruck_cost(n, k, block_bytes, recipe.strategy);
        break;
      case ConcatAlgorithm::kFolklore:
        recipe.predicted = model::concat_folklore_cost(n, block_bytes);
        break;
      case ConcatAlgorithm::kRing:
        recipe.predicted = model::concat_ring_cost(n, block_bytes);
        break;
    }
  }
  recipe.segments = model::resolve_segment_knob(
      options.segments, pipelined, model::effective_machine(options.machine),
      recipe.predicted);
  return recipe;
}

/// The resolved algorithm/radix/measures of an alltoallv call's shape
/// statistics (shared by the blocking, layout, and nonblocking overloads).
struct IndexvRecipe {
  IndexAlgorithm algorithm = IndexAlgorithm::kBruck;
  std::int64_t radix = 2;
  model::CostMetrics predicted;
};

IndexvRecipe resolve_indexv_recipe(std::int64_t n, int k, std::int64_t total,
                                   std::int64_t max_pair,
                                   const AlltoallvOptions& options) {
  const std::int64_t mean =
      std::max<std::int64_t>(1, (total + n * n - 1) / (n * n));
  const model::LinearModel machine = model::effective_machine(options.machine);
  IndexvRecipe recipe;
  recipe.algorithm = options.algorithm;
  recipe.radix = std::max<std::int64_t>(2, n);
  switch (options.algorithm) {
    case IndexAlgorithm::kDirect:
      recipe.predicted = model::index_direct_cost(n, k, max_pair);
      break;
    case IndexAlgorithm::kPairwise:
      recipe.predicted = model::index_pairwise_cost(n, k, max_pair);
      break;
    case IndexAlgorithm::kBruck:
      recipe.radix = options.radix != 0
                         ? options.radix
                         : model::pick_index_radix_cached(
                               n, k, mean, machine, options.radix_set)
                               .radix;
      recipe.predicted = model::index_bruck_cost(n, recipe.radix, k, mean);
      break;
    case IndexAlgorithm::kAuto: {
      const model::VectorIndexChoice choice = model::pick_indexv_cached(
          n, k, total, max_pair, machine, options.radix_set);
      recipe.algorithm = choice.direct ? IndexAlgorithm::kDirect
                                       : IndexAlgorithm::kBruck;
      recipe.radix = choice.radix;
      recipe.predicted = choice.predicted;
      break;
    }
  }
  return recipe;
}

}  // namespace

AlltoallPlan plan_alltoall(std::int64_t n, int k, std::int64_t block_bytes,
                           const AlltoallOptions& options) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  // A default-machine caller gets the calibrated constants when a fabric
  // bootstrap published them (see model::effective_machine).
  const model::LinearModel machine = model::effective_machine(options.machine);
  AlltoallPlan plan;
  switch (options.algorithm) {
    case IndexAlgorithm::kDirect:
      plan.algorithm = IndexAlgorithm::kDirect;
      plan.radix = std::max<std::int64_t>(2, n);
      plan.predicted = model::index_direct_cost(n, k, block_bytes);
      break;
    case IndexAlgorithm::kPairwise:
      plan.algorithm = IndexAlgorithm::kPairwise;
      plan.radix = std::max<std::int64_t>(2, n);
      plan.predicted = model::index_pairwise_cost(n, k, block_bytes);
      break;
    case IndexAlgorithm::kBruck:
    case IndexAlgorithm::kAuto: {
      plan.algorithm = IndexAlgorithm::kBruck;
      if (options.radix != 0) {
        plan.radix = options.radix;
        plan.predicted =
            model::index_bruck_cost(n, plan.radix, k, block_bytes);
      } else {
        // Memoized: repeated kAuto calls on one geometry skip the sweep.
        const model::RadixChoice choice = model::pick_index_radix_cached(
            n, k, block_bytes, machine, options.radix_set);
        plan.radix = choice.radix;
        plan.predicted = choice.metrics;
        plan.segments_hint = choice.segments_hint;
      }
      break;
    }
  }
  plan.predicted_us = machine.predict_us(plan.predicted);
  return plan;
}

int alltoall(mps::Communicator& comm, std::span<const std::byte> send,
             std::span<std::byte> recv, std::int64_t block_bytes,
             const AlltoallOptions& options) {
  const AlltoallPlan plan =
      plan_alltoall(comm.size(), comm.ports(), block_bytes, options);

  if (options.path == ExecutionPath::kReference) {
    switch (plan.algorithm) {
      case IndexAlgorithm::kDirect:
        return index_direct(comm, send, recv, block_bytes,
                            IndexDirectOptions{options.start_round});
      case IndexAlgorithm::kPairwise:
        return index_pairwise(comm, send, recv, block_bytes,
                              IndexPairwiseOptions{options.start_round});
      case IndexAlgorithm::kBruck:
      case IndexAlgorithm::kAuto:
        return index_bruck(comm, send, recv, block_bytes,
                           IndexBruckOptions{plan.radix, options.start_round});
    }
    BRUCK_ENSURE_MSG(false, "unreachable");
    return options.start_round;
  }

  const bool pipelined = options.path == ExecutionPath::kPipelined;

  // Hierarchical dispatch: when the knob engages, lower this rank's
  // leader-model composite and run it stage by stage (the composite records
  // its own per-stage PlanEvents).
  const HierMode hmode = resolve_hier_mode(options.hier);
  if (hier_eligible(hmode, comm.size(), block_bytes,
                    options.algorithm == IndexAlgorithm::kAuto ||
                        options.algorithm == IndexAlgorithm::kBruck)) {
    const model::HierChoice choice = model::pick_index_plan_cached(
        comm.size(), comm.ports(), block_bytes,
        model::effective_two_level(options.hier_machine), options.radix_set,
        resolve_hier_group(options.hier_group));
    if (hmode == HierMode::kOn || choice.hier) {
      HierShape shape;
      shape.group = choice.group;
      shape.inter_radix = choice.inter_radix;
      const CompositePlan cp = CompositePlan::lower_index_hier(
          comm.size(), comm.ports(), comm.rank(), block_bytes, shape);
      return cp
          .run(comm, send, recv, /*op=*/nullptr, options.start_round,
               pipelined)
          .next_round;
    }
  }

  // Compiled hot path: the tuner's radix and segment choices are part of
  // the key.  A learned segment force rides the plan as a hint and goes
  // through the same clamp as a user-requested count.
  const model::LinearModel machine = model::effective_machine(options.machine);
  std::int64_t radix = plan.radix;
  int segments = model::resolve_segment_knob(
      options.segments == 0 && plan.segments_hint > 0 ? plan.segments_hint
                                                      : options.segments,
      pipelined, machine, plan.predicted);

  // Live adaptive exploration: only for fully tuner-driven calls (no forced
  // radix or segment count), and only when a tuner installed the hook.  The
  // decided config — not its clamped resolution — is echoed back with the
  // measured wall time so the learner can match the arm it scheduled.
  const bool tuner_driven = plan.algorithm == IndexAlgorithm::kBruck &&
                            options.radix == 0 && options.segments == 0;
  model::TunerQuery query{};
  model::TunerConfig decided{};
  bool adaptive = false;
  if (tuner_driven && model::adaptive_hook_installed()) {
    query = model::make_tuner_query(model::TunedFamily::kIndexRadix,
                                    comm.size(), comm.ports(), block_bytes,
                                    machine);
    model::TunerConfig base;
    base.radix = radix;
    base.segments = segments;
    decided = model::adaptive_decision(query, base);
    adaptive = true;
    if (decided.radix > 0) radix = decided.radix;
    if (decided.segments > 0) segments = decided.segments;
  }

  double wall_us = 0.0;
  const int next = run_compiled(
      comm,
      index_plan_key(plan.algorithm, comm.size(), comm.ports(), radix,
                     segments),
      send, recv, block_bytes, options.start_round, pipelined, {},
      adaptive ? &wall_us : nullptr);
  if (adaptive) {
    model::ExecutionSample sample;
    sample.query = query;
    sample.config = decided;
    sample.wall_us = wall_us;
    sample.predicted_us = machine.predict_us(plan.predicted);
    model::notify_execution(sample);
  }
  return next;
}

int alltoall_staged(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, const Layout& send_layout,
                    const Layout& recv_layout,
                    const AlltoallOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  std::vector<std::byte> s(static_cast<std::size_t>(n * b));
  std::vector<std::byte> r(s.size());
  layout_gather_all(send, send_layout, n, s);
  const int next = alltoall(comm, s, r, b, options);
  layout_scatter_all(recv, recv_layout, n, r);
  return next;
}

int alltoall(mps::Communicator& comm, std::span<const std::byte> send,
             std::span<std::byte> recv, const Layout& send_layout,
             const Layout& recv_layout, const AlltoallOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(n) &&
          static_cast<std::int64_t>(recv.size()) >= recv_layout.span_bytes(n),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    // The degenerate case is the plain call: same plan, same cache key,
    // same zero-copy fast path.
    return alltoall(comm, send.first(static_cast<std::size_t>(n * b)),
                    recv.first(static_cast<std::size_t>(n * b)), b, options);
  }
  if (options.path == ExecutionPath::kReference) {
    // The inline oracles predate layouts: stage through packed copies so
    // kReference stays the bitwise cross-check of the zero-copy paths.
    return alltoall_staged(comm, send, recv, send_layout, recv_layout,
                           options);
  }
  const AlltoallPlan plan = plan_alltoall(n, comm.ports(), b, options);
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const int segments = model::resolve_segment_knob(
      options.segments == 0 && plan.segments_hint > 0 ? plan.segments_hint
                                                      : options.segments,
      pipelined, model::effective_machine(options.machine), plan.predicted);
  return run_compiled(
      comm,
      index_plan_key(plan.algorithm, n, comm.ports(), plan.radix, segments,
                     layout_digest(&send_layout, &recv_layout)),
      send, recv, b, options.start_round, pipelined,
      LayoutPair{&send_layout, &recv_layout});
}

int allgather(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, std::int64_t block_bytes,
              const AllgatherOptions& options) {
  const ConcatAlgorithm algorithm =
      options.algorithm == ConcatAlgorithm::kAuto ? ConcatAlgorithm::kBruck
                                                  : options.algorithm;

  if (options.path == ExecutionPath::kReference) {
    switch (algorithm) {
      case ConcatAlgorithm::kFolklore:
        return concat_folklore(comm, send, recv, block_bytes,
                               ConcatFolkloreOptions{options.start_round});
      case ConcatAlgorithm::kRing:
        return concat_ring(comm, send, recv, block_bytes,
                           ConcatRingOptions{options.start_round});
      case ConcatAlgorithm::kBruck:
      case ConcatAlgorithm::kAuto:
        return concat_bruck(
            comm, send, recv, block_bytes,
            ConcatBruckOptions{options.last_round, options.start_round});
    }
    BRUCK_ENSURE_MSG(false, "unreachable");
    return options.start_round;
  }

  const bool pipelined = options.path == ExecutionPath::kPipelined;

  // Hierarchical dispatch (see alltoall).
  const HierMode hmode = resolve_hier_mode(options.hier);
  if (hier_eligible(hmode, comm.size(), block_bytes,
                    options.algorithm == ConcatAlgorithm::kAuto ||
                        options.algorithm == ConcatAlgorithm::kBruck)) {
    const model::HierChoice choice = model::pick_concat_plan_cached(
        comm.size(), comm.ports(), block_bytes,
        model::effective_two_level(options.hier_machine), options.last_round,
        resolve_hier_group(options.hier_group));
    if (hmode == HierMode::kOn || choice.hier) {
      HierShape shape;
      shape.group = choice.group;
      shape.strategy = options.last_round;
      const CompositePlan cp = CompositePlan::lower_concat_hier(
          comm.size(), comm.ports(), comm.rank(), block_bytes, shape);
      return cp
          .run(comm, send, recv, /*op=*/nullptr, options.start_round,
               pipelined)
          .next_round;
    }
  }

  // Canonicalize the last-round strategy so equal geometries share a key
  // (the same resolution concat_bruck performs internally).
  const ConcatRecipe recipe = resolve_concat_recipe(
      comm.size(), comm.ports(), block_bytes, options, pipelined);
  return run_compiled(comm,
                      concat_plan_key(recipe.algorithm, comm.size(),
                                      comm.ports(), recipe.strategy,
                                      block_bytes, recipe.segments),
                      send, recv, block_bytes, options.start_round, pipelined);
}

int allgather(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, const Layout& send_layout,
              const Layout& recv_layout, const AllgatherOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(1) &&
          static_cast<std::int64_t>(recv.size()) >= recv_layout.span_bytes(n),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return allgather(comm, send.first(static_cast<std::size_t>(b)),
                     recv.first(static_cast<std::size_t>(n * b)), b, options);
  }
  if (options.path == ExecutionPath::kReference) {
    std::vector<std::byte> s(static_cast<std::size_t>(b));
    std::vector<std::byte> r(static_cast<std::size_t>(n * b));
    layout_gather(send, send_layout, 0, 0, b, s);
    const int next = allgather(comm, s, r, b, options);
    layout_scatter_all(recv, recv_layout, n, r);
    return next;
  }
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const ConcatRecipe recipe =
      resolve_concat_recipe(n, comm.ports(), b, options, pipelined);
  return run_compiled(
      comm,
      concat_plan_key(recipe.algorithm, n, comm.ports(), recipe.strategy, b,
                      recipe.segments,
                      layout_digest(&send_layout, &recv_layout)),
      send, recv, b, options.start_round, pipelined,
      LayoutPair{&send_layout, &recv_layout});
}

int alltoallv(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv,
              std::span<const std::int64_t> counts,
              std::span<const std::int64_t> send_displs,
              std::span<const std::int64_t> recv_displs,
              const AlltoallvOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t rank = comm.rank();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n * n,
                    "alltoallv needs the full n*n count matrix");

  // Shape statistics: drive the tuner, the padding stride, and the digest.
  std::int64_t total = 0;
  std::int64_t max_pair = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_pair = std::max(max_pair, c);
  }

  // Empty displacements mean the packed canonical layout.
  std::vector<std::int64_t> sd_storage;
  std::vector<std::int64_t> rd_storage;
  if (send_displs.empty()) {
    sd_storage = prefix_displs(counts.subspan(
        static_cast<std::size_t>(rank * n), static_cast<std::size_t>(n)));
    send_displs = sd_storage;
  }
  if (recv_displs.empty()) {
    std::vector<std::int64_t> col(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      col[static_cast<std::size_t>(i)] =
          counts[static_cast<std::size_t>(i * n + rank)];
    }
    rd_storage = prefix_displs(col);
    recv_displs = rd_storage;
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(send_displs.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);

  if (options.path == ExecutionPath::kReference) {
    return alltoallv_reference(comm, send, recv, counts, send_displs,
                               recv_displs,
                               VectorReferenceOptions{options.start_round});
  }

  // Resolve the algorithm, radix, and predicted measures (the segment
  // tuner's input) from the shape statistics.
  const IndexvRecipe recipe =
      resolve_indexv_recipe(n, k, total, max_pair, options);
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const int segments = model::resolve_segment_knob(
      options.segments, pipelined, model::effective_machine(options.machine),
      recipe.predicted);
  const VectorView view{counts, send_displs, recv_displs, max_pair};
  return run_compiled_v(comm,
                        indexv_plan_key(recipe.algorithm, n, k, recipe.radix,
                                        shape_digest(counts), segments),
                        send, recv, view, options.start_round, pipelined);
}

int alltoallv(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv,
              std::span<const std::int64_t> counts,
              std::span<const std::int64_t> send_displs,
              std::span<const std::int64_t> recv_displs,
              const Layout& send_layout, const Layout& recv_layout,
              const AlltoallvOptions& options) {
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return alltoallv(comm, send, recv, counts, send_displs, recv_displs,
                     options);
  }
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t rank = comm.rank();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n * n,
                    "alltoallv needs the full n*n count matrix");

  std::int64_t total = 0;
  std::int64_t max_pair = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_pair = std::max(max_pair, c);
  }
  BRUCK_REQUIRE_MSG(send_layout.block_bytes() >= max_pair &&
                        recv_layout.block_bytes() >= max_pair,
                    "layouts must cover the largest pair count");

  // Empty displacements mean the packed canonical layout in layout space.
  std::vector<std::int64_t> sd_storage;
  std::vector<std::int64_t> rd_storage;
  if (send_displs.empty()) {
    sd_storage = layout_prefix_displs(
        send_layout,
        counts.subspan(static_cast<std::size_t>(rank * n),
                       static_cast<std::size_t>(n)));
    send_displs = sd_storage;
  }
  std::vector<std::int64_t> col(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    col[static_cast<std::size_t>(i)] =
        counts[static_cast<std::size_t>(i * n + rank)];
  }
  if (recv_displs.empty()) {
    rd_storage = layout_prefix_displs(recv_layout, col);
    recv_displs = rd_storage;
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(send_displs.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);

  if (options.path == ExecutionPath::kReference) {
    // Stage through packed copies around the per-pair oracle.
    const std::span<const std::int64_t> row = counts.subspan(
        static_cast<std::size_t>(rank * n), static_cast<std::size_t>(n));
    const std::vector<std::int64_t> packed_sd = prefix_displs(row);
    const std::vector<std::int64_t> packed_rd = prefix_displs(col);
    const std::int64_t row_total =
        packed_sd.back() + row[static_cast<std::size_t>(n - 1)];
    const std::int64_t col_total =
        packed_rd.back() + col[static_cast<std::size_t>(n - 1)];
    std::vector<std::byte> s(static_cast<std::size_t>(row_total));
    std::vector<std::byte> r(static_cast<std::size_t>(col_total));
    for (std::int64_t j = 0; j < n; ++j) {
      layout_gather(send, send_layout,
                    send_displs[static_cast<std::size_t>(j)], 0,
                    row[static_cast<std::size_t>(j)],
                    std::span<std::byte>(s).subspan(
                        static_cast<std::size_t>(
                            packed_sd[static_cast<std::size_t>(j)]),
                        static_cast<std::size_t>(
                            row[static_cast<std::size_t>(j)])));
    }
    const int next =
        alltoallv_reference(comm, s, r, counts, packed_sd, packed_rd,
                            VectorReferenceOptions{options.start_round});
    for (std::int64_t i = 0; i < n; ++i) {
      layout_scatter(recv, recv_layout,
                     recv_displs[static_cast<std::size_t>(i)], 0,
                     col[static_cast<std::size_t>(i)],
                     std::span<const std::byte>(r).subspan(
                         static_cast<std::size_t>(
                             packed_rd[static_cast<std::size_t>(i)]),
                         static_cast<std::size_t>(
                             col[static_cast<std::size_t>(i)])));
    }
    return next;
  }

  const IndexvRecipe recipe =
      resolve_indexv_recipe(n, k, total, max_pair, options);
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const int segments = model::resolve_segment_knob(
      options.segments, pipelined, model::effective_machine(options.machine),
      recipe.predicted);
  const VectorView view{counts, send_displs, recv_displs, max_pair};
  return run_compiled_v(comm,
                        indexv_plan_key(recipe.algorithm, n, k, recipe.radix,
                                        shape_digest(counts), segments,
                                        layout_digest(&send_layout,
                                                      &recv_layout)),
                        send, recv, view, options.start_round, pipelined,
                        LayoutPair{&send_layout, &recv_layout});
}

int allgatherv(mps::Communicator& comm, std::span<const std::byte> send,
               std::span<std::byte> recv,
               std::span<const std::int64_t> counts,
               std::span<const std::int64_t> recv_displs,
               const AllgathervOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n,
                    "allgatherv needs one count per rank");

  std::int64_t total = 0;
  std::int64_t max_block = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_block = std::max(max_block, c);
  }

  std::vector<std::int64_t> rd_storage;
  if (recv_displs.empty()) {
    rd_storage = prefix_displs(counts);
    recv_displs = rd_storage;
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);

  if (options.path == ExecutionPath::kReference) {
    return allgatherv_reference(comm, send, recv, counts, recv_displs,
                                VectorReferenceOptions{options.start_round});
  }

  const ConcatAlgorithm algorithm =
      options.algorithm == ConcatAlgorithm::kAuto ? ConcatAlgorithm::kBruck
                                                  : options.algorithm;
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  model::CostMetrics predicted;
  if (pipelined) {
    // Segment tuning sees the mean block (wire messages carry trimmed true
    // sizes, so the mean is the honest per-message estimate).  Computed for
    // forced counts too (resolve_segment_knob clamps them against the floor).
    const std::int64_t b_eff = n > 0 ? (total + n - 1) / std::max<std::int64_t>(
                                           1, n)
                                     : 0;
    switch (algorithm) {
      case ConcatAlgorithm::kBruck:
      case ConcatAlgorithm::kAuto:
        predicted = model::concat_bruck_cost(
            n, k, b_eff, model::ConcatLastRound::kColumnGranular);
        break;
      case ConcatAlgorithm::kFolklore:
        predicted = model::concat_folklore_cost(n, b_eff);
        break;
      case ConcatAlgorithm::kRing:
        predicted = model::concat_ring_cost(n, b_eff);
        break;
    }
  }
  const int segments = model::resolve_segment_knob(
      options.segments, pipelined, model::effective_machine(options.machine),
      predicted);
  const VectorView view{counts, {}, recv_displs, max_block};
  return run_compiled_v(
      comm, concatv_plan_key(algorithm, n, k, shape_digest(counts), segments),
      send, recv, view, options.start_round, pipelined);
}

namespace detail {

ReducePlanChoice resolve_reduce_algorithm(std::int64_t n, int k,
                                          std::int64_t block_bytes,
                                          ReduceAlgorithm algorithm,
                                          std::int64_t radix,
                                          const model::LinearModel& machine,
                                          model::RadixSet set) {
  const model::LinearModel m = model::effective_machine(machine);
  ReducePlanChoice out;
  switch (algorithm) {
    case ReduceAlgorithm::kDirect:
      out.algorithm = ReduceAlgorithm::kDirect;
      out.radix = std::max<std::int64_t>(2, n);
      out.predicted = model::reduce_direct_cost(n, k, block_bytes);
      break;
    case ReduceAlgorithm::kPairwise:
      out.algorithm = ReduceAlgorithm::kPairwise;
      out.radix = std::max<std::int64_t>(2, n);
      out.predicted = model::reduce_direct_cost(n, k, block_bytes);
      break;
    case ReduceAlgorithm::kBruck:
      out.algorithm = ReduceAlgorithm::kBruck;
      out.radix = radix != 0
                      ? radix
                      : model::pick_reduce_radix(n, k, block_bytes, m, set)
                            .radix;
      out.predicted = model::reduce_bruck_cost(n, out.radix, k, block_bytes);
      break;
    case ReduceAlgorithm::kAuto: {
      const model::ReduceScatterChoice choice =
          model::pick_reduce_scatter_cached(n, k, block_bytes, m, set);
      out.algorithm = choice.direct ? ReduceAlgorithm::kDirect
                                    : ReduceAlgorithm::kBruck;
      out.radix = choice.radix;
      out.predicted = choice.predicted;
      out.segments_hint = choice.segments_hint;
      break;
    }
  }
  return out;
}

}  // namespace detail

namespace {

/// run_compiled's reduction twin: fetch/lower the reduce plan and execute
/// it with the combine operator; the PlanEvent additionally reports the
/// bytes combined on receive.
int run_compiled_reduce(mps::Communicator& comm, const PlanKey& key,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, std::int64_t block_bytes,
                        const ReduceOp& op, int start_round, bool pipelined,
                        const LayoutPair& layouts = {},
                        double* wall_out = nullptr) {
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(key);
  const auto start = std::chrono::steady_clock::now();
  const PlanExecution ex =
      pipelined
          ? lookup.plan->run_pipelined(comm, send, recv, block_bytes, op,
                                       start_round, layouts)
          : lookup.plan->run(comm, send, recv, block_bytes, op, start_round,
                             layouts);
  const double wall_us = wall_since_us(start);
  mps::PlanEvent event{lookup.cache_hit, lookup.plan->round_count(),
                       ex.bytes_sent, ex.bytes_reduced};
  event.wall_us = wall_us;
  comm.record_plan_event(event);
  if (wall_out != nullptr) *wall_out = wall_us;
  return ex.next_round;
}

}  // namespace

int reduce_scatter(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, std::int64_t block_bytes,
                   const ReduceOp& op, const ReduceScatterOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(op.elem_bytes() >= 1 &&
                        block_bytes % op.elem_bytes() == 0,
                    "block size must be a whole number of op elements");

  if (options.path == ExecutionPath::kReference) {
    return reduce_scatter_reference(
        comm, send, recv, block_bytes, op,
        ReduceReferenceOptions{options.start_round});
  }

  const bool pipelined = options.path == ExecutionPath::kPipelined;

  // Hierarchical dispatch (see alltoall).
  const HierMode hmode = resolve_hier_mode(options.hier);
  if (hier_eligible(hmode, n, block_bytes,
                    options.algorithm == ReduceAlgorithm::kAuto ||
                        options.algorithm == ReduceAlgorithm::kBruck)) {
    const model::HierChoice hier_choice = model::pick_reduce_plan_cached(
        n, k, block_bytes, model::effective_two_level(options.hier_machine),
        options.radix_set, resolve_hier_group(options.hier_group));
    if (hmode == HierMode::kOn || hier_choice.hier) {
      HierShape shape;
      shape.group = hier_choice.group;
      shape.inter_radix = hier_choice.inter_radix;
      const CompositePlan cp = CompositePlan::lower_reduce_hier(
          n, k, comm.rank(), block_bytes, op, shape);
      return cp.run(comm, send, recv, &op, options.start_round, pipelined)
          .next_round;
    }
  }

  const detail::ReducePlanChoice choice = detail::resolve_reduce_algorithm(
      n, k, block_bytes, options.algorithm, options.radix, options.machine,
      options.radix_set);
  const model::LinearModel machine = model::effective_machine(options.machine);
  std::int64_t radix = choice.radix;
  int segments = model::resolve_segment_knob(
      options.segments == 0 && choice.segments_hint > 0 ? choice.segments_hint
                                                        : options.segments,
      pipelined, machine, choice.predicted);

  // Live adaptive exploration (see alltoall): tuner-driven Bruck calls only.
  const bool tuner_driven = choice.algorithm == ReduceAlgorithm::kBruck &&
                            (options.algorithm == ReduceAlgorithm::kAuto ||
                             options.algorithm == ReduceAlgorithm::kBruck) &&
                            options.radix == 0 && options.segments == 0;
  model::TunerQuery query{};
  model::TunerConfig decided{};
  bool adaptive = false;
  if (tuner_driven && model::adaptive_hook_installed()) {
    query = model::make_tuner_query(model::TunedFamily::kReduceScatter, n, k,
                                    block_bytes, machine);
    model::TunerConfig base;
    base.radix = radix;
    base.segments = segments;
    decided = model::adaptive_decision(query, base);
    adaptive = true;
    if (decided.radix > 0) radix = decided.radix;
    if (decided.segments > 0) segments = decided.segments;
  }

  double wall_us = 0.0;
  const int next = run_compiled_reduce(
      comm, reduce_plan_key(choice.algorithm, n, k, radix, op, segments),
      send, recv, block_bytes, op, options.start_round, pipelined, {},
      adaptive ? &wall_us : nullptr);
  if (adaptive) {
    model::ExecutionSample sample;
    sample.query = query;
    sample.config = decided;
    sample.wall_us = wall_us;
    sample.predicted_us = machine.predict_reduce_us(choice.predicted);
    model::notify_execution(sample);
  }
  return next;
}

int reduce_scatter(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, const Layout& send_layout,
                   const Layout& recv_layout, const ReduceOp& op,
                   const ReduceScatterOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  BRUCK_REQUIRE_MSG(op.elem_bytes() >= 1 && b % op.elem_bytes() == 0,
                    "block size must be a whole number of op elements");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(n) &&
          static_cast<std::int64_t>(recv.size()) >= recv_layout.span_bytes(1),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return reduce_scatter(comm, send.first(static_cast<std::size_t>(n * b)),
                          recv.first(static_cast<std::size_t>(b)), b, op,
                          options);
  }
  if (options.path == ExecutionPath::kReference) {
    std::vector<std::byte> s(static_cast<std::size_t>(n * b));
    std::vector<std::byte> r(static_cast<std::size_t>(b));
    layout_gather_all(send, send_layout, n, s);
    const int next = reduce_scatter(comm, s, r, b, op, options);
    layout_scatter(recv, recv_layout, 0, 0, b, r);
    return next;
  }
  const detail::ReducePlanChoice choice = detail::resolve_reduce_algorithm(
      n, k, b, options.algorithm, options.radix, options.machine,
      options.radix_set);
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const int segments = model::resolve_segment_knob(
      options.segments == 0 && choice.segments_hint > 0 ? choice.segments_hint
                                                        : options.segments,
      pipelined, model::effective_machine(options.machine), choice.predicted);
  return run_compiled_reduce(
      comm,
      reduce_plan_key(choice.algorithm, n, k, choice.radix, op, segments,
                      layout_digest(&send_layout, &recv_layout)),
      send, recv, b, op, options.start_round, pipelined,
      LayoutPair{&send_layout, &recv_layout});
}

int allreduce(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, const ReduceOp& op,
              const AllreduceOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t bytes = static_cast<std::int64_t>(send.size());
  const std::int64_t ew = op.elem_bytes();
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == bytes);
  BRUCK_REQUIRE_MSG(ew >= 1 && bytes % ew == 0,
                    "payload must be a whole number of op elements");

  if (options.path == ExecutionPath::kReference) {
    return allreduce_reference(comm, send, recv, op,
                               ReduceReferenceOptions{options.start_round});
  }

  // Reduce-scatter over ⌈elems/n⌉-element blocks, then allgather the
  // reduced blocks.  The tail block is zero-padded identically on every
  // rank; padded results are combined but never copied back.
  const std::int64_t elems = bytes / ew;
  const std::int64_t block_elems = n > 0 ? ceil_div(elems, n) : 0;
  const std::int64_t b = block_elems * ew;

  std::vector<std::byte> padded(static_cast<std::size_t>(n * b),
                                std::byte{0});
  if (bytes > 0) {
    std::memcpy(padded.data(), send.data(), static_cast<std::size_t>(bytes));
  }
  std::vector<std::byte> reduced(static_cast<std::size_t>(b));

  ReduceScatterOptions rs;
  rs.algorithm = options.algorithm;
  rs.radix = options.radix;
  rs.machine = options.machine;
  rs.radix_set = options.radix_set;
  rs.start_round = options.start_round;
  rs.path = options.path;
  rs.segments = options.segments;
  const int after_reduce = reduce_scatter(comm, padded, reduced, b, op, rs);

  std::vector<std::byte> gathered(static_cast<std::size_t>(n * b));
  AllgatherOptions ag;
  ag.algorithm = options.concat;
  ag.machine = options.machine;
  ag.start_round = after_reduce;
  ag.path = options.path;
  ag.segments = options.segments;
  const int next = allgather(comm, reduced, gathered, b, ag);

  if (bytes > 0) {
    std::memcpy(recv.data(), gathered.data(),
                static_cast<std::size_t>(bytes));
  }
  return next;
}

int allreduce(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, const Layout& send_layout,
              const Layout& recv_layout, const ReduceOp& op,
              const AllreduceOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t bytes = send_layout.block_bytes();
  const std::int64_t ew = op.elem_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == bytes,
                    "send and recv layouts must carry the same logical "
                    "payload size");
  BRUCK_REQUIRE_MSG(ew >= 1 && bytes % ew == 0,
                    "payload must be a whole number of op elements");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(1) &&
          static_cast<std::int64_t>(recv.size()) >=
              recv_layout.span_bytes(1),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return allreduce(comm, send.first(static_cast<std::size_t>(bytes)),
                     recv.first(static_cast<std::size_t>(bytes)), op,
                     options);
  }
  if (options.path == ExecutionPath::kReference) {
    std::vector<std::byte> s(static_cast<std::size_t>(bytes));
    std::vector<std::byte> r(static_cast<std::size_t>(bytes));
    layout_gather(send, send_layout, 0, 0, bytes, s);
    const int next = allreduce_reference(
        comm, s, r, op, ReduceReferenceOptions{options.start_round});
    layout_scatter(recv, recv_layout, 0, 0, bytes, r);
    return next;
  }

  // The padded block decomposition inherently stages the payload; the
  // layouts replace the staging memcpys rather than adding copies — the
  // gather into the padded scratch walks send_layout, the final scatter
  // walks recv_layout, and the wire stages run contiguous (no layout
  // digest in their keys).
  const std::int64_t elems = bytes / ew;
  const std::int64_t block_elems = n > 0 ? ceil_div(elems, n) : 0;
  const std::int64_t b = block_elems * ew;

  std::vector<std::byte> padded(static_cast<std::size_t>(n * b),
                                std::byte{0});
  layout_gather(send, send_layout, 0, 0, bytes,
                std::span<std::byte>(padded).first(
                    static_cast<std::size_t>(bytes)));
  std::vector<std::byte> reduced(static_cast<std::size_t>(b));

  ReduceScatterOptions rs;
  rs.algorithm = options.algorithm;
  rs.radix = options.radix;
  rs.machine = options.machine;
  rs.radix_set = options.radix_set;
  rs.start_round = options.start_round;
  rs.path = options.path;
  rs.segments = options.segments;
  const int after_reduce = reduce_scatter(comm, padded, reduced, b, op, rs);

  std::vector<std::byte> gathered(static_cast<std::size_t>(n * b));
  AllgatherOptions ag;
  ag.algorithm = options.concat;
  ag.machine = options.machine;
  ag.start_round = after_reduce;
  ag.path = options.path;
  ag.segments = options.segments;
  const int next = allgather(comm, reduced, gathered, b, ag);

  layout_scatter(recv, recv_layout, 0, 0, bytes,
                 std::span<const std::byte>(gathered).first(
                     static_cast<std::size_t>(bytes)));
  return next;
}

// -- Nonblocking entry points ----------------------------------------------
//
// Each i* twin runs exactly the blocking facade's resolution — tuner, radix,
// last-round strategy, segment knob — and hands the finished recipe to the
// communicator's progress engine instead of executing it.  The engine owns
// scheduling from there (lazy start, tag allocation, fusion); see
// progress.hpp.

Request ialltoall(mps::Communicator& comm, std::span<const std::byte> send,
                  std::span<std::byte> recv, std::int64_t block_bytes,
                  const AlltoallOptions& options) {
  const AlltoallPlan plan =
      plan_alltoall(comm.size(), comm.ports(), block_bytes, options);
  const model::LinearModel machine = model::effective_machine(options.machine);
  const int segments = model::resolve_segment_knob(
      options.segments == 0 && plan.segments_hint > 0 ? plan.segments_hint
                                                      : options.segments,
      /*pipelined=*/true, machine, plan.predicted);
  OpSpec spec;
  spec.family = OpSpec::Family::kAlltoall;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = block_bytes;
  spec.key = index_plan_key(plan.algorithm, comm.size(), comm.ports(),
                            plan.radix, segments);
  spec.predicted = plan.predicted;
  spec.machine = machine;
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request ialltoall(mps::Communicator& comm, std::span<const std::byte> send,
                  std::span<std::byte> recv, const Layout& send_layout,
                  const Layout& recv_layout,
                  const AlltoallOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(n) &&
          static_cast<std::int64_t>(recv.size()) >= recv_layout.span_bytes(n),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return ialltoall(comm, send.first(static_cast<std::size_t>(n * b)),
                     recv.first(static_cast<std::size_t>(n * b)), b, options);
  }
  const AlltoallPlan plan = plan_alltoall(n, comm.ports(), b, options);
  const model::LinearModel machine = model::effective_machine(options.machine);
  const int segments = model::resolve_segment_knob(
      options.segments == 0 && plan.segments_hint > 0 ? plan.segments_hint
                                                      : options.segments,
      /*pipelined=*/true, machine, plan.predicted);
  OpSpec spec;
  spec.family = OpSpec::Family::kAlltoall;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = b;
  spec.key = index_plan_key(plan.algorithm, n, comm.ports(), plan.radix,
                            segments,
                            layout_digest(&send_layout, &recv_layout));
  spec.predicted = plan.predicted;
  spec.machine = machine;
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.send_layout = send_layout;
  spec.recv_layout = recv_layout;
  spec.has_layout = true;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request iallgather(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, std::int64_t block_bytes,
                   const AllgatherOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const ConcatRecipe recipe =
      resolve_concat_recipe(n, k, block_bytes, options, /*pipelined=*/true);
  OpSpec spec;
  spec.family = OpSpec::Family::kAllgather;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = block_bytes;
  spec.key = concat_plan_key(recipe.algorithm, n, k, recipe.strategy,
                             block_bytes, recipe.segments);
  spec.predicted = recipe.predicted;
  spec.machine = model::effective_machine(options.machine);
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request iallgather(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, const Layout& send_layout,
                   const Layout& recv_layout,
                   const AllgatherOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(1) &&
          static_cast<std::int64_t>(recv.size()) >= recv_layout.span_bytes(n),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return iallgather(comm, send.first(static_cast<std::size_t>(b)),
                      recv.first(static_cast<std::size_t>(n * b)), b,
                      options);
  }
  const ConcatRecipe recipe =
      resolve_concat_recipe(n, comm.ports(), b, options, /*pipelined=*/true);
  OpSpec spec;
  spec.family = OpSpec::Family::kAllgather;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = b;
  spec.key = concat_plan_key(recipe.algorithm, n, comm.ports(),
                             recipe.strategy, b, recipe.segments,
                             layout_digest(&send_layout, &recv_layout));
  spec.predicted = recipe.predicted;
  spec.machine = model::effective_machine(options.machine);
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.send_layout = send_layout;
  spec.recv_layout = recv_layout;
  spec.has_layout = true;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request ialltoallv(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv,
                   std::span<const std::int64_t> counts,
                   std::span<const std::int64_t> send_displs,
                   std::span<const std::int64_t> recv_displs,
                   const AlltoallvOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t rank = comm.rank();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n * n,
                    "ialltoallv needs the full n*n count matrix");

  std::int64_t total = 0;
  std::int64_t max_pair = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_pair = std::max(max_pair, c);
  }

  // The engine outlives the caller's tables: own every shape vector
  // (empty displacements mean the packed canonical layout, as in the
  // blocking twin).
  OpSpec spec;
  spec.counts.assign(counts.begin(), counts.end());
  if (send_displs.empty()) {
    spec.send_displs = prefix_displs(counts.subspan(
        static_cast<std::size_t>(rank * n), static_cast<std::size_t>(n)));
  } else {
    spec.send_displs.assign(send_displs.begin(), send_displs.end());
  }
  if (recv_displs.empty()) {
    std::vector<std::int64_t> col(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      col[static_cast<std::size_t>(i)] =
          counts[static_cast<std::size_t>(i * n + rank)];
    }
    spec.recv_displs = prefix_displs(col);
  } else {
    spec.recv_displs.assign(recv_displs.begin(), recv_displs.end());
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(spec.send_displs.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(spec.recv_displs.size()) == n);

  const IndexvRecipe recipe =
      resolve_indexv_recipe(n, k, total, max_pair, options);
  const int segments = model::resolve_segment_knob(
      options.segments, /*pipelined=*/true,
      model::effective_machine(options.machine), recipe.predicted);
  spec.family = OpSpec::Family::kAlltoallv;
  spec.send = send;
  spec.recv = recv;
  spec.key = indexv_plan_key(recipe.algorithm, n, k, recipe.radix,
                             shape_digest(counts), segments);
  spec.predicted = recipe.predicted;
  spec.machine = model::effective_machine(options.machine);
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.pad_bytes = max_pair;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request ialltoallv(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv,
                   std::span<const std::int64_t> counts,
                   std::span<const std::int64_t> send_displs,
                   std::span<const std::int64_t> recv_displs,
                   const Layout& send_layout, const Layout& recv_layout,
                   const AlltoallvOptions& options) {
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return ialltoallv(comm, send, recv, counts, send_displs, recv_displs,
                      options);
  }
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t rank = comm.rank();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n * n,
                    "ialltoallv needs the full n*n count matrix");

  std::int64_t total = 0;
  std::int64_t max_pair = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_pair = std::max(max_pair, c);
  }
  BRUCK_REQUIRE_MSG(send_layout.block_bytes() >= max_pair &&
                        recv_layout.block_bytes() >= max_pair,
                    "layouts must cover the largest pair count");

  OpSpec spec;
  spec.counts.assign(counts.begin(), counts.end());
  if (send_displs.empty()) {
    spec.send_displs = layout_prefix_displs(
        send_layout,
        counts.subspan(static_cast<std::size_t>(rank * n),
                       static_cast<std::size_t>(n)));
  } else {
    spec.send_displs.assign(send_displs.begin(), send_displs.end());
  }
  if (recv_displs.empty()) {
    std::vector<std::int64_t> col(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      col[static_cast<std::size_t>(i)] =
          counts[static_cast<std::size_t>(i * n + rank)];
    }
    spec.recv_displs = layout_prefix_displs(recv_layout, col);
  } else {
    spec.recv_displs.assign(recv_displs.begin(), recv_displs.end());
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(spec.send_displs.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(spec.recv_displs.size()) == n);

  const IndexvRecipe recipe =
      resolve_indexv_recipe(n, k, total, max_pair, options);
  const int segments = model::resolve_segment_knob(
      options.segments, /*pipelined=*/true,
      model::effective_machine(options.machine), recipe.predicted);
  spec.family = OpSpec::Family::kAlltoallv;
  spec.send = send;
  spec.recv = recv;
  spec.key = indexv_plan_key(recipe.algorithm, n, k, recipe.radix,
                             shape_digest(counts), segments,
                             layout_digest(&send_layout, &recv_layout));
  spec.predicted = recipe.predicted;
  spec.machine = model::effective_machine(options.machine);
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.pad_bytes = max_pair;
  spec.send_layout = send_layout;
  spec.recv_layout = recv_layout;
  spec.has_layout = true;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request ireduce_scatter(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, std::int64_t block_bytes,
                        const ReduceOp& op,
                        const ReduceScatterOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE_MSG(op.elem_bytes() >= 1 && block_bytes % op.elem_bytes() == 0,
                    "block size must be a whole number of op elements");
  const detail::ReducePlanChoice choice = detail::resolve_reduce_algorithm(
      n, k, block_bytes, options.algorithm, options.radix, options.machine,
      options.radix_set);
  const model::LinearModel machine = model::effective_machine(options.machine);
  const int segments = model::resolve_segment_knob(
      options.segments == 0 && choice.segments_hint > 0 ? choice.segments_hint
                                                        : options.segments,
      /*pipelined=*/true, machine, choice.predicted);
  OpSpec spec;
  spec.family = OpSpec::Family::kReduceScatter;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = block_bytes;
  spec.key =
      reduce_plan_key(choice.algorithm, n, k, choice.radix, op, segments);
  spec.predicted = choice.predicted;
  spec.machine = machine;
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.op = op;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

Request ireduce_scatter(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, const Layout& send_layout,
                        const Layout& recv_layout, const ReduceOp& op,
                        const ReduceScatterOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t b = send_layout.block_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == b,
                    "send and recv layouts must carry the same logical "
                    "block size");
  BRUCK_REQUIRE_MSG(op.elem_bytes() >= 1 && b % op.elem_bytes() == 0,
                    "block size must be a whole number of op elements");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(n) &&
          static_cast<std::int64_t>(recv.size()) >= recv_layout.span_bytes(1),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return ireduce_scatter(comm, send.first(static_cast<std::size_t>(n * b)),
                           recv.first(static_cast<std::size_t>(b)), b, op,
                           options);
  }
  const detail::ReducePlanChoice choice = detail::resolve_reduce_algorithm(
      n, k, b, options.algorithm, options.radix, options.machine,
      options.radix_set);
  const model::LinearModel machine = model::effective_machine(options.machine);
  const int segments = model::resolve_segment_knob(
      options.segments == 0 && choice.segments_hint > 0 ? choice.segments_hint
                                                        : options.segments,
      /*pipelined=*/true, machine, choice.predicted);
  OpSpec spec;
  spec.family = OpSpec::Family::kReduceScatter;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = b;
  spec.key = reduce_plan_key(choice.algorithm, n, k, choice.radix, op,
                             segments,
                             layout_digest(&send_layout, &recv_layout));
  spec.predicted = choice.predicted;
  spec.machine = machine;
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.op = op;
  spec.send_layout = send_layout;
  spec.recv_layout = recv_layout;
  spec.has_layout = true;
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

namespace {

/// The shared tail of both iallreduce overloads: resolve the two-stage
/// recipe for a `bytes`-byte logical payload and submit the spec (layouts,
/// when present, only steer the engine's staging copies — the wire stages
/// run contiguous, so neither stage key carries a layout digest).
Request submit_iallreduce(mps::Communicator& comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv, std::int64_t bytes,
                          const ReduceOp& op, const AllreduceOptions& options,
                          const Layout* send_layout,
                          const Layout* recv_layout) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t ew = op.elem_bytes();

  // Same two-stage decomposition as the blocking twin, but both stages are
  // resolved up front: the engine chains the allgather after the
  // reduce-scatter inside one tag namespace.
  const std::int64_t elems = bytes / ew;
  const std::int64_t block_elems = n > 0 ? ceil_div(elems, n) : 0;
  const std::int64_t b = block_elems * ew;

  const detail::ReducePlanChoice choice = detail::resolve_reduce_algorithm(
      n, k, b, options.algorithm, options.radix, options.machine,
      options.radix_set);
  const model::LinearModel machine = model::effective_machine(options.machine);
  const int rs_segments = model::resolve_segment_knob(
      options.segments == 0 && choice.segments_hint > 0 ? choice.segments_hint
                                                        : options.segments,
      /*pipelined=*/true, machine, choice.predicted);

  const ConcatAlgorithm concat =
      options.concat == ConcatAlgorithm::kAuto ? ConcatAlgorithm::kBruck
                                               : options.concat;
  const model::ConcatLastRound strategy =
      concat == ConcatAlgorithm::kBruck
          ? model::resolve_concat_last_round(n, k, b,
                                             model::ConcatLastRound::kAuto)
          : model::ConcatLastRound::kAuto;
  model::CostMetrics concat_predicted;
  switch (concat) {
    case ConcatAlgorithm::kBruck:
    case ConcatAlgorithm::kAuto:
      concat_predicted = model::concat_bruck_cost(n, k, b, strategy);
      break;
    case ConcatAlgorithm::kFolklore:
      concat_predicted = model::concat_folklore_cost(n, b);
      break;
    case ConcatAlgorithm::kRing:
      concat_predicted = model::concat_ring_cost(n, b);
      break;
  }
  const int ag_segments = model::resolve_segment_knob(
      options.segments, /*pipelined=*/true, machine, concat_predicted);

  OpSpec spec;
  spec.family = OpSpec::Family::kAllreduce;
  spec.send = send;
  spec.recv = recv;
  spec.block_bytes = b;
  spec.key =
      reduce_plan_key(choice.algorithm, n, k, choice.radix, op, rs_segments);
  spec.concat_key = concat_plan_key(concat, n, k, strategy, b, ag_segments);
  spec.predicted = choice.predicted;
  spec.machine = machine;
  spec.requested_segments = options.segments;
  spec.start_round = options.start_round;
  spec.op = op;
  if (send_layout != nullptr) {
    spec.send_layout = *send_layout;
    spec.recv_layout = *recv_layout;
    spec.has_layout = true;
  }
  return ProgressEngine::for_comm(comm).submit(std::move(spec));
}

}  // namespace

Request iallreduce(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, const ReduceOp& op,
                   const AllreduceOptions& options) {
  const std::int64_t bytes = static_cast<std::int64_t>(send.size());
  const std::int64_t ew = op.elem_bytes();
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == bytes);
  BRUCK_REQUIRE_MSG(ew >= 1 && bytes % ew == 0,
                    "payload must be a whole number of op elements");
  return submit_iallreduce(comm, send, recv, bytes, op, options, nullptr,
                           nullptr);
}

Request iallreduce(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, const Layout& send_layout,
                   const Layout& recv_layout, const ReduceOp& op,
                   const AllreduceOptions& options) {
  const std::int64_t bytes = send_layout.block_bytes();
  const std::int64_t ew = op.elem_bytes();
  BRUCK_REQUIRE_MSG(recv_layout.block_bytes() == bytes,
                    "send and recv layouts must carry the same logical "
                    "payload size");
  BRUCK_REQUIRE_MSG(ew >= 1 && bytes % ew == 0,
                    "payload must be a whole number of op elements");
  BRUCK_REQUIRE_MSG(
      static_cast<std::int64_t>(send.size()) >= send_layout.span_bytes(1) &&
          static_cast<std::int64_t>(recv.size()) >=
              recv_layout.span_bytes(1),
      "buffers must cover the layouts' physical span");
  if (send_layout.is_contiguous() && recv_layout.is_contiguous()) {
    return iallreduce(comm, send.first(static_cast<std::size_t>(bytes)),
                      recv.first(static_cast<std::size_t>(bytes)), op,
                      options);
  }
  return submit_iallreduce(comm, send, recv, bytes, op, options,
                           &send_layout, &recv_layout);
}

int broadcast(mps::Communicator& comm, std::int64_t root,
              std::span<std::byte> data, const BcastApiOptions& options) {
  switch (options.algorithm) {
    case BcastAlgorithm::kBinomial:
      return bcast_binomial(comm, root, data,
                            BcastOptions{options.start_round});
    case BcastAlgorithm::kCirculant:
    case BcastAlgorithm::kAuto:
      return bcast_circulant(comm, root, data,
                             BcastOptions{options.start_round});
  }
  BRUCK_ENSURE_MSG(false, "unreachable");
  return options.start_round;
}

int gather(mps::Communicator& comm, std::int64_t root,
           std::span<const std::byte> send, std::span<std::byte> recv,
           std::int64_t block_bytes, const RootedOptions& options) {
  return gather_binomial(comm, root, send, recv, block_bytes,
                         GatherScatterOptions{options.start_round});
}

int scatter(mps::Communicator& comm, std::int64_t root,
            std::span<const std::byte> send, std::span<std::byte> recv,
            std::int64_t block_bytes, const RootedOptions& options) {
  return scatter_binomial(comm, root, send, recv, block_bytes,
                          GatherScatterOptions{options.start_round});
}

}  // namespace bruck::coll
