#include "coll/api.hpp"

#include <algorithm>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/concat_bruck.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/index_bruck.hpp"
#include "coll/index_direct.hpp"
#include "coll/index_pairwise.hpp"
#include "coll/plan_cache.hpp"
#include "coll/vector_reference.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

std::string to_string(IndexAlgorithm a) {
  switch (a) {
    case IndexAlgorithm::kBruck: return "bruck";
    case IndexAlgorithm::kDirect: return "direct";
    case IndexAlgorithm::kPairwise: return "pairwise";
    case IndexAlgorithm::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(ConcatAlgorithm a) {
  switch (a) {
    case ConcatAlgorithm::kBruck: return "bruck";
    case ConcatAlgorithm::kFolklore: return "folklore";
    case ConcatAlgorithm::kRing: return "ring";
    case ConcatAlgorithm::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(ExecutionPath p) {
  switch (p) {
    case ExecutionPath::kCompiled: return "compiled";
    case ExecutionPath::kReference: return "reference";
    case ExecutionPath::kPipelined: return "pipelined";
  }
  return "?";
}

namespace {

/// The shared compiled tail of both collectives: fetch (or lower once) the
/// plan for `key`, execute it through the requested executor, and report
/// the cache/round/byte statistics.
int run_compiled(mps::Communicator& comm, const PlanKey& key,
                 std::span<const std::byte> send, std::span<std::byte> recv,
                 std::int64_t block_bytes, int start_round, bool pipelined) {
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(key);
  const PlanExecution ex =
      pipelined
          ? lookup.plan->run_pipelined(comm, send, recv, block_bytes,
                                       start_round)
          : lookup.plan->run(comm, send, recv, block_bytes, start_round);
  comm.record_plan_event(mps::PlanEvent{lookup.cache_hit,
                                        lookup.plan->round_count(),
                                        ex.bytes_sent});
  return ex.next_round;
}

/// Resolve the wire-segmentation knob for a compiled execution: 0 means
/// "tune from the predicted metrics" (per-round message size ≈ C2/C1);
/// only the pipelined executor segments, so other paths resolve to 1.
int resolve_segments(int requested, bool pipelined,
                     const model::LinearModel& machine,
                     const model::CostMetrics& predicted) {
  if (!pipelined) return 1;
  if (requested != 0) {
    BRUCK_REQUIRE_MSG(requested >= 1, "segment count must be >= 1");
    return requested;
  }
  if (predicted.c1 <= 0) return 1;
  const std::int64_t per_round =
      (predicted.c2 + predicted.c1 - 1) / predicted.c1;
  return model::pick_segment_count(machine, predicted.c1, per_round).segments;
}

/// run_compiled's irregular twin: fetch/lower the vector plan and execute
/// it against the VectorView.
int run_compiled_v(mps::Communicator& comm, const PlanKey& key,
                   std::span<const std::byte> send, std::span<std::byte> recv,
                   const VectorView& view, int start_round, bool pipelined) {
  const PlanCache::Lookup lookup = PlanCache::global().get_or_lower(key);
  const PlanExecution ex =
      pipelined
          ? lookup.plan->run_pipelined(comm, send, recv, view, start_round)
          : lookup.plan->run(comm, send, recv, view, start_round);
  comm.record_plan_event(mps::PlanEvent{lookup.cache_hit,
                                        lookup.plan->round_count(),
                                        ex.bytes_sent});
  return ex.next_round;
}

/// Packed canonical layout: block i at the prefix sum of sizes [0, i).
std::vector<std::int64_t> prefix_displs(std::span<const std::int64_t> sizes) {
  std::vector<std::int64_t> displs(sizes.size());
  std::int64_t pos = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    displs[i] = pos;
    pos += sizes[i];
  }
  return displs;
}

}  // namespace

AlltoallPlan plan_alltoall(std::int64_t n, int k, std::int64_t block_bytes,
                           const AlltoallOptions& options) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  AlltoallPlan plan;
  switch (options.algorithm) {
    case IndexAlgorithm::kDirect:
      plan.algorithm = IndexAlgorithm::kDirect;
      plan.radix = std::max<std::int64_t>(2, n);
      plan.predicted = model::index_direct_cost(n, k, block_bytes);
      break;
    case IndexAlgorithm::kPairwise:
      plan.algorithm = IndexAlgorithm::kPairwise;
      plan.radix = std::max<std::int64_t>(2, n);
      plan.predicted = model::index_pairwise_cost(n, k, block_bytes);
      break;
    case IndexAlgorithm::kBruck:
    case IndexAlgorithm::kAuto: {
      plan.algorithm = IndexAlgorithm::kBruck;
      if (options.radix != 0) {
        plan.radix = options.radix;
        plan.predicted =
            model::index_bruck_cost(n, plan.radix, k, block_bytes);
      } else {
        // Memoized: repeated kAuto calls on one geometry skip the sweep.
        const model::RadixChoice choice = model::pick_index_radix_cached(
            n, k, block_bytes, options.machine, options.radix_set);
        plan.radix = choice.radix;
        plan.predicted = choice.metrics;
      }
      break;
    }
  }
  plan.predicted_us = options.machine.predict_us(plan.predicted);
  return plan;
}

int alltoall(mps::Communicator& comm, std::span<const std::byte> send,
             std::span<std::byte> recv, std::int64_t block_bytes,
             const AlltoallOptions& options) {
  const AlltoallPlan plan =
      plan_alltoall(comm.size(), comm.ports(), block_bytes, options);

  if (options.path == ExecutionPath::kReference) {
    switch (plan.algorithm) {
      case IndexAlgorithm::kDirect:
        return index_direct(comm, send, recv, block_bytes,
                            IndexDirectOptions{options.start_round});
      case IndexAlgorithm::kPairwise:
        return index_pairwise(comm, send, recv, block_bytes,
                              IndexPairwiseOptions{options.start_round});
      case IndexAlgorithm::kBruck:
      case IndexAlgorithm::kAuto:
        return index_bruck(comm, send, recv, block_bytes,
                           IndexBruckOptions{plan.radix, options.start_round});
    }
    BRUCK_ENSURE_MSG(false, "unreachable");
    return options.start_round;
  }

  // Compiled hot path: the tuner's radix and segment choices are part of
  // the key.
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const int segments = resolve_segments(options.segments, pipelined,
                                        options.machine, plan.predicted);
  return run_compiled(comm,
                      index_plan_key(plan.algorithm, comm.size(), comm.ports(),
                                     plan.radix, segments),
                      send, recv, block_bytes, options.start_round, pipelined);
}

int allgather(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, std::int64_t block_bytes,
              const AllgatherOptions& options) {
  const ConcatAlgorithm algorithm =
      options.algorithm == ConcatAlgorithm::kAuto ? ConcatAlgorithm::kBruck
                                                  : options.algorithm;

  if (options.path == ExecutionPath::kReference) {
    switch (algorithm) {
      case ConcatAlgorithm::kFolklore:
        return concat_folklore(comm, send, recv, block_bytes,
                               ConcatFolkloreOptions{options.start_round});
      case ConcatAlgorithm::kRing:
        return concat_ring(comm, send, recv, block_bytes,
                           ConcatRingOptions{options.start_round});
      case ConcatAlgorithm::kBruck:
      case ConcatAlgorithm::kAuto:
        return concat_bruck(
            comm, send, recv, block_bytes,
            ConcatBruckOptions{options.last_round, options.start_round});
    }
    BRUCK_ENSURE_MSG(false, "unreachable");
    return options.start_round;
  }

  // Canonicalize the last-round strategy so equal geometries share a key
  // (the same resolution concat_bruck performs internally).
  const model::ConcatLastRound strategy =
      algorithm == ConcatAlgorithm::kBruck
          ? model::resolve_concat_last_round(comm.size(), comm.ports(),
                                             block_bytes, options.last_round)
          : options.last_round;
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  model::CostMetrics predicted;
  if (pipelined && options.segments == 0) {
    switch (algorithm) {
      case ConcatAlgorithm::kBruck:
      case ConcatAlgorithm::kAuto:
        predicted = model::concat_bruck_cost(comm.size(), comm.ports(),
                                             block_bytes, strategy);
        break;
      case ConcatAlgorithm::kFolklore:
        predicted = model::concat_folklore_cost(comm.size(), block_bytes);
        break;
      case ConcatAlgorithm::kRing:
        predicted = model::concat_ring_cost(comm.size(), block_bytes);
        break;
    }
  }
  const int segments = resolve_segments(options.segments, pipelined,
                                        options.machine, predicted);
  return run_compiled(comm,
                      concat_plan_key(algorithm, comm.size(), comm.ports(),
                                      strategy, block_bytes, segments),
                      send, recv, block_bytes, options.start_round, pipelined);
}

int alltoallv(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv,
              std::span<const std::int64_t> counts,
              std::span<const std::int64_t> send_displs,
              std::span<const std::int64_t> recv_displs,
              const AlltoallvOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  const std::int64_t rank = comm.rank();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n * n,
                    "alltoallv needs the full n*n count matrix");

  // Shape statistics: drive the tuner, the padding stride, and the digest.
  std::int64_t total = 0;
  std::int64_t max_pair = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_pair = std::max(max_pair, c);
  }

  // Empty displacements mean the packed canonical layout.
  std::vector<std::int64_t> sd_storage;
  std::vector<std::int64_t> rd_storage;
  if (send_displs.empty()) {
    sd_storage = prefix_displs(counts.subspan(
        static_cast<std::size_t>(rank * n), static_cast<std::size_t>(n)));
    send_displs = sd_storage;
  }
  if (recv_displs.empty()) {
    std::vector<std::int64_t> col(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      col[static_cast<std::size_t>(i)] =
          counts[static_cast<std::size_t>(i * n + rank)];
    }
    rd_storage = prefix_displs(col);
    recv_displs = rd_storage;
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(send_displs.size()) == n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);

  if (options.path == ExecutionPath::kReference) {
    return alltoallv_reference(comm, send, recv, counts, send_displs,
                               recv_displs,
                               VectorReferenceOptions{options.start_round});
  }

  // Resolve the algorithm, radix, and predicted measures (the segment
  // tuner's input) from the shape statistics.
  const std::int64_t mean = std::max<std::int64_t>(
      1, (total + n * n - 1) / (n * n));
  IndexAlgorithm algorithm = options.algorithm;
  std::int64_t radix = std::max<std::int64_t>(2, n);
  model::CostMetrics predicted;
  switch (options.algorithm) {
    case IndexAlgorithm::kDirect:
      predicted = model::index_direct_cost(n, k, max_pair);
      break;
    case IndexAlgorithm::kPairwise:
      predicted = model::index_pairwise_cost(n, k, max_pair);
      break;
    case IndexAlgorithm::kBruck:
      radix = options.radix != 0
                  ? options.radix
                  : model::pick_index_radix_cached(n, k, mean, options.machine,
                                                   options.radix_set)
                        .radix;
      predicted = model::index_bruck_cost(n, radix, k, mean);
      break;
    case IndexAlgorithm::kAuto: {
      const model::VectorIndexChoice choice = model::pick_indexv_cached(
          n, k, total, max_pair, options.machine, options.radix_set);
      algorithm = choice.direct ? IndexAlgorithm::kDirect
                                : IndexAlgorithm::kBruck;
      radix = choice.radix;
      predicted = choice.predicted;
      break;
    }
  }

  const bool pipelined = options.path == ExecutionPath::kPipelined;
  const int segments = resolve_segments(options.segments, pipelined,
                                        options.machine, predicted);
  const VectorView view{counts, send_displs, recv_displs, max_pair};
  return run_compiled_v(
      comm,
      indexv_plan_key(algorithm, n, k, radix, shape_digest(counts), segments),
      send, recv, view, options.start_round, pipelined);
}

int allgatherv(mps::Communicator& comm, std::span<const std::byte> send,
               std::span<std::byte> recv,
               std::span<const std::int64_t> counts,
               std::span<const std::int64_t> recv_displs,
               const AllgathervOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  BRUCK_REQUIRE_MSG(static_cast<std::int64_t>(counts.size()) == n,
                    "allgatherv needs one count per rank");

  std::int64_t total = 0;
  std::int64_t max_block = 0;
  for (const std::int64_t c : counts) {
    BRUCK_REQUIRE_MSG(c >= 0, "counts must be non-negative");
    total += c;
    max_block = std::max(max_block, c);
  }

  std::vector<std::int64_t> rd_storage;
  if (recv_displs.empty()) {
    rd_storage = prefix_displs(counts);
    recv_displs = rd_storage;
  }
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv_displs.size()) == n);

  if (options.path == ExecutionPath::kReference) {
    return allgatherv_reference(comm, send, recv, counts, recv_displs,
                                VectorReferenceOptions{options.start_round});
  }

  const ConcatAlgorithm algorithm =
      options.algorithm == ConcatAlgorithm::kAuto ? ConcatAlgorithm::kBruck
                                                  : options.algorithm;
  const bool pipelined = options.path == ExecutionPath::kPipelined;
  model::CostMetrics predicted;
  if (pipelined && options.segments == 0) {
    // Segment tuning sees the mean block (wire messages carry trimmed true
    // sizes, so the mean is the honest per-message estimate).
    const std::int64_t b_eff = n > 0 ? (total + n - 1) / std::max<std::int64_t>(
                                           1, n)
                                     : 0;
    switch (algorithm) {
      case ConcatAlgorithm::kBruck:
      case ConcatAlgorithm::kAuto:
        predicted = model::concat_bruck_cost(
            n, k, b_eff, model::ConcatLastRound::kColumnGranular);
        break;
      case ConcatAlgorithm::kFolklore:
        predicted = model::concat_folklore_cost(n, b_eff);
        break;
      case ConcatAlgorithm::kRing:
        predicted = model::concat_ring_cost(n, b_eff);
        break;
    }
  }
  const int segments = resolve_segments(options.segments, pipelined,
                                        options.machine, predicted);
  const VectorView view{counts, {}, recv_displs, max_block};
  return run_compiled_v(
      comm, concatv_plan_key(algorithm, n, k, shape_digest(counts), segments),
      send, recv, view, options.start_round, pipelined);
}

int broadcast(mps::Communicator& comm, std::int64_t root,
              std::span<std::byte> data, const BcastApiOptions& options) {
  switch (options.algorithm) {
    case BcastAlgorithm::kBinomial:
      return bcast_binomial(comm, root, data,
                            BcastOptions{options.start_round});
    case BcastAlgorithm::kCirculant:
    case BcastAlgorithm::kAuto:
      return bcast_circulant(comm, root, data,
                             BcastOptions{options.start_round});
  }
  BRUCK_ENSURE_MSG(false, "unreachable");
  return options.start_round;
}

int gather(mps::Communicator& comm, std::int64_t root,
           std::span<const std::byte> send, std::span<std::byte> recv,
           std::int64_t block_bytes, const RootedOptions& options) {
  return gather_binomial(comm, root, send, recv, block_bytes,
                         GatherScatterOptions{options.start_round});
}

int scatter(mps::Communicator& comm, std::int64_t root,
            std::span<const std::byte> send, std::span<std::byte> recv,
            std::int64_t block_bytes, const RootedOptions& options) {
  return scatter_binomial(comm, root, send, recv, block_bytes,
                          GatherScatterOptions{options.start_round});
}

}  // namespace bruck::coll
