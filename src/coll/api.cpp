#include "coll/api.hpp"

#include "coll/bcast.hpp"
#include "coll/concat_bruck.hpp"
#include "coll/concat_folklore.hpp"
#include "coll/concat_ring.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/index_bruck.hpp"
#include "coll/index_direct.hpp"
#include "coll/index_pairwise.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

std::string to_string(IndexAlgorithm a) {
  switch (a) {
    case IndexAlgorithm::kBruck: return "bruck";
    case IndexAlgorithm::kDirect: return "direct";
    case IndexAlgorithm::kPairwise: return "pairwise";
    case IndexAlgorithm::kAuto: return "auto";
  }
  return "?";
}

std::string to_string(ConcatAlgorithm a) {
  switch (a) {
    case ConcatAlgorithm::kBruck: return "bruck";
    case ConcatAlgorithm::kFolklore: return "folklore";
    case ConcatAlgorithm::kRing: return "ring";
    case ConcatAlgorithm::kAuto: return "auto";
  }
  return "?";
}

AlltoallPlan plan_alltoall(std::int64_t n, int k, std::int64_t block_bytes,
                           const AlltoallOptions& options) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  AlltoallPlan plan;
  switch (options.algorithm) {
    case IndexAlgorithm::kDirect:
      plan.algorithm = IndexAlgorithm::kDirect;
      plan.radix = std::max<std::int64_t>(2, n);
      plan.predicted = model::index_direct_cost(n, k, block_bytes);
      break;
    case IndexAlgorithm::kPairwise:
      plan.algorithm = IndexAlgorithm::kPairwise;
      plan.radix = std::max<std::int64_t>(2, n);
      plan.predicted = model::index_pairwise_cost(n, k, block_bytes);
      break;
    case IndexAlgorithm::kBruck:
    case IndexAlgorithm::kAuto: {
      plan.algorithm = IndexAlgorithm::kBruck;
      if (options.radix != 0) {
        plan.radix = options.radix;
        plan.predicted =
            model::index_bruck_cost(n, plan.radix, k, block_bytes);
      } else {
        const model::RadixChoice choice = model::pick_index_radix(
            n, k, block_bytes, options.machine, options.radix_set);
        plan.radix = choice.radix;
        plan.predicted = choice.metrics;
      }
      break;
    }
  }
  plan.predicted_us = options.machine.predict_us(plan.predicted);
  return plan;
}

int alltoall(mps::Communicator& comm, std::span<const std::byte> send,
             std::span<std::byte> recv, std::int64_t block_bytes,
             const AlltoallOptions& options) {
  const AlltoallPlan plan =
      plan_alltoall(comm.size(), comm.ports(), block_bytes, options);
  switch (plan.algorithm) {
    case IndexAlgorithm::kDirect:
      return index_direct(comm, send, recv, block_bytes,
                          IndexDirectOptions{options.start_round});
    case IndexAlgorithm::kPairwise:
      return index_pairwise(comm, send, recv, block_bytes,
                            IndexPairwiseOptions{options.start_round});
    case IndexAlgorithm::kBruck:
    case IndexAlgorithm::kAuto:
      return index_bruck(comm, send, recv, block_bytes,
                         IndexBruckOptions{plan.radix, options.start_round});
  }
  BRUCK_ENSURE_MSG(false, "unreachable");
  return options.start_round;
}

int allgather(mps::Communicator& comm, std::span<const std::byte> send,
              std::span<std::byte> recv, std::int64_t block_bytes,
              const AllgatherOptions& options) {
  switch (options.algorithm) {
    case ConcatAlgorithm::kFolklore:
      return concat_folklore(comm, send, recv, block_bytes,
                             ConcatFolkloreOptions{options.start_round});
    case ConcatAlgorithm::kRing:
      return concat_ring(comm, send, recv, block_bytes,
                         ConcatRingOptions{options.start_round});
    case ConcatAlgorithm::kBruck:
    case ConcatAlgorithm::kAuto:
      return concat_bruck(
          comm, send, recv, block_bytes,
          ConcatBruckOptions{options.last_round, options.start_round});
  }
  BRUCK_ENSURE_MSG(false, "unreachable");
  return options.start_round;
}

int broadcast(mps::Communicator& comm, std::int64_t root,
              std::span<std::byte> data, const BcastApiOptions& options) {
  switch (options.algorithm) {
    case BcastAlgorithm::kBinomial:
      return bcast_binomial(comm, root, data,
                            BcastOptions{options.start_round});
    case BcastAlgorithm::kCirculant:
    case BcastAlgorithm::kAuto:
      return bcast_circulant(comm, root, data,
                             BcastOptions{options.start_round});
  }
  BRUCK_ENSURE_MSG(false, "unreachable");
  return options.start_round;
}

int gather(mps::Communicator& comm, std::int64_t root,
           std::span<const std::byte> send, std::span<std::byte> recv,
           std::int64_t block_bytes, const RootedOptions& options) {
  return gather_binomial(comm, root, send, recv, block_bytes,
                         GatherScatterOptions{options.start_round});
}

int scatter(mps::Communicator& comm, std::int64_t root,
            std::span<const std::byte> send, std::span<std::byte> recv,
            std::int64_t block_bytes, const RootedOptions& options) {
  return scatter_binomial(comm, root, send, recv, block_bytes,
                          GatherScatterOptions{options.start_round});
}

}  // namespace bruck::coll
