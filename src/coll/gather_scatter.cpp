#include "coll/gather_scatter.hpp"

#include <cstring>
#include <vector>

#include "coll/blocks.hpp"
#include "topo/binomial.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

int gather_binomial(mps::Communicator& comm, std::int64_t root,
                    std::span<const std::byte> send, std::span<std::byte> recv,
                    std::int64_t block_bytes,
                    const GatherScatterOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(root >= 0 && root < n);
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);

  int round = options.start_round;
  if (n == 1) {
    if (b > 0) std::memcpy(recv.data(), send.data(), send.size());
    return round;
  }
  if (b == 0) return round;

  // Work in relative ranks v = (rank − root) mod n; the staging buffer
  // accumulates the contiguous relative segment [v, v + have).
  const std::int64_t v = pos_mod(comm.rank() - root, n);
  const int d = ceil_log(n, 2);
  std::vector<std::byte> staging(static_cast<std::size_t>(n * b));
  std::memcpy(staging.data(), send.data(), static_cast<std::size_t>(b));
  for (int i = 0; i < d; ++i, ++round) {
    const std::int64_t stride = ipow(2, i);
    if (pos_mod(v, 2 * stride) == stride) {
      const std::int64_t seg = topo::binomial_gather_segment(n, v, i);
      const mps::SendSpec s{
          pos_mod(root + v - stride, n),
          std::span<const std::byte>(staging.data(),
                                     static_cast<std::size_t>(seg * b))};
      comm.exchange(round, {&s, 1}, {});
    } else if (pos_mod(v, 2 * stride) == 0 && v + stride < n) {
      const std::int64_t seg =
          topo::binomial_gather_segment(n, v + stride, i);
      const mps::RecvSpec r{
          pos_mod(root + v + stride, n),
          std::span<std::byte>(staging.data() + stride * b,
                               static_cast<std::size_t>(seg * b))};
      comm.exchange(round, {}, {&r, 1});
    }
  }
  if (v == 0) {
    // The root's staging is blocks [root, root+n) mod n; rotate into rank
    // order.
    rotate_window_to_origin(ConstBlockSpan(staging, n, b),
                            BlockSpan(recv, n, b), root);
  }
  return round;
}

int scatter_binomial(mps::Communicator& comm, std::int64_t root,
                     std::span<const std::byte> send, std::span<std::byte> recv,
                     std::int64_t block_bytes,
                     const GatherScatterOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(root >= 0 && root < n);
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == n * b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == b);

  int round = options.start_round;
  if (n == 1) {
    if (b > 0) std::memcpy(recv.data(), send.data(), static_cast<std::size_t>(b));
    return round;
  }
  if (b == 0) return round;

  const std::int64_t v = pos_mod(comm.rank() - root, n);
  const int d = ceil_log(n, 2);
  // Staging holds the relative segment this rank is responsible for
  // distributing: [v, v + len) where len shrinks as rounds proceed.
  std::vector<std::byte> staging(static_cast<std::size_t>(n * b));
  if (v == 0) {
    // Root reorders rank-order blocks into relative order: staging slot t
    // is the block of rank (root + t) mod n.
    rotate_blocks_up(ConstBlockSpan(send, n, b), BlockSpan(staging, n, b),
                     root);
  }
  // Reverse the gather: in round j (stride halving), a holder of segment
  // [v, v + len) ships its upper half [v + stride, v + len) to v + stride.
  for (int j = 0; j < d; ++j, ++round) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    const std::int64_t len =
        std::min<std::int64_t>(2 * stride, n - v);  // my current segment
    if (pos_mod(v, 2 * stride) == 0 && v + stride < n) {
      const std::int64_t upper = len - stride;
      const mps::SendSpec s{
          pos_mod(root + v + stride, n),
          std::span<const std::byte>(staging.data() + stride * b,
                                     static_cast<std::size_t>(upper * b))};
      comm.exchange(round, {&s, 1}, {});
    } else if (pos_mod(v, 2 * stride) == stride) {
      const std::int64_t mine = std::min<std::int64_t>(stride, n - v);
      const mps::RecvSpec r{
          pos_mod(root + v - stride, n),
          std::span<std::byte>(staging.data(),
                               static_cast<std::size_t>(mine * b))};
      comm.exchange(round, {}, {&r, 1});
    }
  }
  std::memcpy(recv.data(), staging.data(), static_cast<std::size_t>(b));
  return round;
}

}  // namespace bruck::coll
