#include "coll/reduction.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "coll/index_bruck.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

std::string to_string(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kSum: return "sum";
    case ReduceKind::kMin: return "min";
    case ReduceKind::kMax: return "max";
    case ReduceKind::kProd: return "prod";
    case ReduceKind::kUser: return "user";
  }
  return "?";
}

std::string to_string(ReduceElem elem) {
  switch (elem) {
    case ReduceElem::kI32: return "i32";
    case ReduceElem::kI64: return "i64";
    case ReduceElem::kF32: return "f32";
    case ReduceElem::kF64: return "f64";
  }
  return "?";
}

ReduceOp ReduceOp::sum(ReduceElem e) { return {ReduceKind::kSum, e}; }
ReduceOp ReduceOp::min(ReduceElem e) { return {ReduceKind::kMin, e}; }
ReduceOp ReduceOp::max(ReduceElem e) { return {ReduceKind::kMax, e}; }
ReduceOp ReduceOp::prod(ReduceElem e) { return {ReduceKind::kProd, e}; }

ReduceOp ReduceOp::user(UserFn fn, std::int64_t elem_bytes, void* ctx) {
  BRUCK_REQUIRE_MSG(fn != nullptr, "user reduce op needs a function");
  BRUCK_REQUIRE_MSG(elem_bytes >= 1, "user reduce op needs an element width");
  ReduceOp op;
  op.kind = ReduceKind::kUser;
  op.user_fn = fn;
  op.user_elem_bytes = elem_bytes;
  op.user_ctx = ctx;
  return op;
}

std::int64_t ReduceOp::elem_bytes() const {
  if (kind == ReduceKind::kUser) return user_elem_bytes;
  switch (elem) {
    case ReduceElem::kI32:
    case ReduceElem::kF32:
      return 4;
    case ReduceElem::kI64:
    case ReduceElem::kF64:
      return 8;
  }
  return 0;
}

namespace {

/// True when `p` is aligned for T loads/stores.
template <typename T>
bool aligned_for(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0;
}

/// Elements combined per chunk on the unaligned path: big enough for the
/// vectorized core to amortize the staging memcpys, small enough to live
/// in L1 and on the stack.
constexpr std::int64_t kCombineChunk = 128;

/// Elementwise acc ⊕= in.  Both buffers verified element-aligned: the body
/// is a plain typed loop over restrict-qualified pointers, which the
/// compiler turns into packed SIMD at -O2/-O3 — this is the memory-bandwidth
/// combine of the fused reduce-on-receive path.
template <typename T, typename F>
void combine_typed_aligned(std::byte* acc, const std::byte* in,
                           std::int64_t count, F f) {
  T* __restrict a = reinterpret_cast<T*>(acc);
  const T* __restrict b = reinterpret_cast<const T*>(in);
  for (std::int64_t i = 0; i < count; ++i) {
    a[i] = f(a[i], b[i]);
  }
}

/// Unaligned-safe fallback: stage fixed-size chunks into aligned stack
/// arrays by memcpy, run the same vectorizable core, memcpy back.  Handles
/// any byte offset (wire payloads carry no alignment guarantee) without
/// dropping to per-element loads.
template <typename T, typename F>
void combine_typed_chunked(std::byte* acc, const std::byte* in,
                           std::int64_t count, F f) {
  T a[kCombineChunk];
  T b[kCombineChunk];
  for (std::int64_t done = 0; done < count; done += kCombineChunk) {
    const std::int64_t m = std::min(kCombineChunk, count - done);
    std::memcpy(a, acc + done * static_cast<std::int64_t>(sizeof(T)),
                static_cast<std::size_t>(m) * sizeof(T));
    std::memcpy(b, in + done * static_cast<std::int64_t>(sizeof(T)),
                static_cast<std::size_t>(m) * sizeof(T));
    for (std::int64_t i = 0; i < m; ++i) {
      a[i] = f(a[i], b[i]);
    }
    std::memcpy(acc + done * static_cast<std::int64_t>(sizeof(T)), a,
                static_cast<std::size_t>(m) * sizeof(T));
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define BRUCK_COMBINE_AVX2 1
/// Wide-vector clone of the aligned kernel: identical source loop compiled
/// for AVX2 (256-bit lanes — 4 f64 / 8 f32 per op instead of the baseline
/// SSE2 two/four).  Elementwise ⊕ is bitwise independent of vector width,
/// so this is pure throughput; selected at runtime via cpuid.
template <typename T, typename F>
__attribute__((target("avx2"))) void combine_typed_aligned_avx2(
    std::byte* acc, const std::byte* in, std::int64_t count, F f) {
  T* __restrict a = reinterpret_cast<T*>(acc);
  const T* __restrict b = reinterpret_cast<const T*>(in);
  for (std::int64_t i = 0; i < count; ++i) {
    a[i] = f(a[i], b[i]);
  }
}
#endif

template <typename T, typename F>
void combine_typed(std::byte* acc, const std::byte* in, std::int64_t bytes,
                   F f) {
  const std::int64_t count = bytes / static_cast<std::int64_t>(sizeof(T));
  if (aligned_for<T>(acc) && aligned_for<T>(in)) {
#ifdef BRUCK_COMBINE_AVX2
    static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
    if (has_avx2) {
      combine_typed_aligned_avx2<T>(acc, in, count, f);
      return;
    }
#endif
    combine_typed_aligned<T>(acc, in, count, f);
  } else {
    combine_typed_chunked<T>(acc, in, count, f);
  }
}

template <typename T>
void combine_kind(ReduceKind kind, std::byte* acc, const std::byte* in,
                  std::int64_t bytes) {
  switch (kind) {
    case ReduceKind::kSum:
      combine_typed<T>(acc, in, bytes, [](T a, T b) { return a + b; });
      break;
    case ReduceKind::kMin:
      combine_typed<T>(acc, in, bytes,
                       [](T a, T b) { return std::min(a, b); });
      break;
    case ReduceKind::kMax:
      combine_typed<T>(acc, in, bytes,
                       [](T a, T b) { return std::max(a, b); });
      break;
    case ReduceKind::kProd:
      combine_typed<T>(acc, in, bytes, [](T a, T b) { return a * b; });
      break;
    case ReduceKind::kUser:
      BRUCK_ENSURE_MSG(false, "unreachable: user ops dispatch separately");
  }
}

/// The pre-SIMD loop, verbatim: per-element memcpy in and out, no
/// alignment assumptions.  Pinned scalar (vectorization disabled) so it
/// measures — and the bench baseline reports — the one-element-at-a-time
/// path the typed kernels replace, rather than whatever the optimizer
/// makes of it; the bitwise semantics are unaffected.
template <typename T, typename F>
#if defined(__clang__)
void combine_typed_reference(std::byte* acc, const std::byte* in,
                             std::int64_t bytes, F f) {
  const std::int64_t count = bytes / static_cast<std::int64_t>(sizeof(T));
#pragma clang loop vectorize(disable) interleave(disable)
  for (std::int64_t i = 0; i < count; ++i) {
#else
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
void combine_typed_reference(std::byte* acc, const std::byte* in,
                             std::int64_t bytes, F f) {
  const std::int64_t count = bytes / static_cast<std::int64_t>(sizeof(T));
  for (std::int64_t i = 0; i < count; ++i) {
#endif
    T a;
    T b;
    std::memcpy(&a, acc + i * sizeof(T), sizeof(T));
    std::memcpy(&b, in + i * sizeof(T), sizeof(T));
    a = f(a, b);
    std::memcpy(acc + i * sizeof(T), &a, sizeof(T));
  }
}

template <typename T>
void combine_kind_reference(ReduceKind kind, std::byte* acc,
                            const std::byte* in, std::int64_t bytes) {
  switch (kind) {
    case ReduceKind::kSum:
      combine_typed_reference<T>(acc, in, bytes,
                                 [](T a, T b) { return a + b; });
      break;
    case ReduceKind::kMin:
      combine_typed_reference<T>(acc, in, bytes,
                                 [](T a, T b) { return std::min(a, b); });
      break;
    case ReduceKind::kMax:
      combine_typed_reference<T>(acc, in, bytes,
                                 [](T a, T b) { return std::max(a, b); });
      break;
    case ReduceKind::kProd:
      combine_typed_reference<T>(acc, in, bytes,
                                 [](T a, T b) { return a * b; });
      break;
    case ReduceKind::kUser:
      BRUCK_ENSURE_MSG(false, "unreachable: user ops dispatch separately");
  }
}

bool elem_aligned_pair(ReduceElem elem, const void* acc, const void* in) {
  switch (elem) {
    case ReduceElem::kI32:
      return aligned_for<std::int32_t>(acc) && aligned_for<std::int32_t>(in);
    case ReduceElem::kI64:
      return aligned_for<std::int64_t>(acc) && aligned_for<std::int64_t>(in);
    case ReduceElem::kF32:
      return aligned_for<float>(acc) && aligned_for<float>(in);
    case ReduceElem::kF64:
      return aligned_for<double>(acc) && aligned_for<double>(in);
  }
  return false;
}

}  // namespace

CombinePath combine_path(const ReduceOp& op, const void* acc,
                         const void* in) {
  if (op.kind == ReduceKind::kUser) return CombinePath::kUser;
  return elem_aligned_pair(op.elem, acc, in) ? CombinePath::kAlignedVector
                                             : CombinePath::kChunkedVector;
}

void combine_elementwise_reference(const ReduceOp& op, std::byte* acc,
                                   const std::byte* in, std::int64_t bytes) {
  const std::int64_t ew = op.elem_bytes();
  BRUCK_REQUIRE_MSG(ew >= 1 && bytes % ew == 0,
                    "combine length must be a whole number of elements");
  if (bytes == 0) return;
  if (op.kind == ReduceKind::kUser) {
    op.user_fn(acc, in, bytes / ew, op.user_ctx);
    return;
  }
  switch (op.elem) {
    case ReduceElem::kI32:
      combine_kind_reference<std::int32_t>(op.kind, acc, in, bytes);
      break;
    case ReduceElem::kI64:
      combine_kind_reference<std::int64_t>(op.kind, acc, in, bytes);
      break;
    case ReduceElem::kF32:
      combine_kind_reference<float>(op.kind, acc, in, bytes);
      break;
    case ReduceElem::kF64:
      combine_kind_reference<double>(op.kind, acc, in, bytes);
      break;
  }
}

void ReduceOp::combine(std::byte* acc, const std::byte* in,
                       std::int64_t bytes) const {
  const std::int64_t ew = elem_bytes();
  BRUCK_REQUIRE_MSG(ew >= 1 && bytes % ew == 0,
                    "combine length must be a whole number of elements");
  if (bytes == 0) return;
  if (kind == ReduceKind::kUser) {
    user_fn(acc, in, bytes / ew, user_ctx);
    return;
  }
  switch (elem) {
    case ReduceElem::kI32: combine_kind<std::int32_t>(kind, acc, in, bytes); break;
    case ReduceElem::kI64: combine_kind<std::int64_t>(kind, acc, in, bytes); break;
    case ReduceElem::kF32: combine_kind<float>(kind, acc, in, bytes); break;
    case ReduceElem::kF64: combine_kind<double>(kind, acc, in, bytes); break;
  }
}

std::uint32_t ReduceOp::cache_tag() const {
  return (static_cast<std::uint32_t>(kind) << 16) |
         static_cast<std::uint32_t>(elem_bytes() & 0xFFFF);
}

std::string ReduceOp::name() const {
  if (kind == ReduceKind::kUser) {
    return "user/" + std::to_string(user_elem_bytes) + "B";
  }
  return to_string(kind) + "/" + to_string(elem);
}

// ---------------------------------------------------------------------------
// Per-pair reference oracles.

int reduce_scatter_reference(mps::Communicator& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv,
                             std::int64_t block_bytes, const ReduceOp& op,
                             const ReduceReferenceOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const int k = comm.ports();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(b % std::max<std::int64_t>(1, op.elem_bytes()) == 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == n * b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == b);

  // Own contribution seeds the accumulator.
  if (b > 0) {
    std::memcpy(recv.data(), send.data() + rank * b,
                static_cast<std::size_t>(b));
  }
  int round = options.start_round;
  if (n == 1) return round;

  // Ring-distance exchange like index_direct: step j sends this rank's
  // contribution for rank+j and receives (then combines, in ascending j
  // order) the contribution from rank−j; k steps per round.
  std::vector<std::vector<std::byte>> stage(static_cast<std::size_t>(k));
  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    std::vector<mps::SendSpec> sends;
    std::vector<mps::RecvSpec> recvs;
    for (std::int64_t j = j0; j < j1; ++j) {
      if (b == 0) continue;
      const std::int64_t dst = pos_mod(rank + j, n);
      std::vector<std::byte>& in = stage[static_cast<std::size_t>(j - j0)];
      in.resize(static_cast<std::size_t>(b));
      sends.push_back(mps::SendSpec{
          dst, send.subspan(static_cast<std::size_t>(dst * b),
                            static_cast<std::size_t>(b))});
      recvs.push_back(mps::RecvSpec{pos_mod(rank - j, n), in});
    }
    if (!sends.empty()) comm.exchange(round, sends, recvs);
    for (const mps::RecvSpec& r : recvs) {
      op.combine(recv.data(), r.data.data(), b);
    }
    ++round;
  }
  return round;
}

int allreduce_reference(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, const ReduceOp& op,
                        const ReduceReferenceOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const std::int64_t bytes = static_cast<std::int64_t>(send.size());
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == bytes);
  BRUCK_REQUIRE(bytes % std::max<std::int64_t>(1, op.elem_bytes()) == 0);

  // Ring-circulate all n full vectors, then combine locally in rank order —
  // every rank applies the identical association ((B0 ⊕ B1) ⊕ B2) ⊕ …
  std::vector<std::byte> all(static_cast<std::size_t>(n * bytes));
  if (bytes > 0) {
    std::memcpy(all.data() + rank * bytes, send.data(),
                static_cast<std::size_t>(bytes));
  }
  int round = options.start_round;
  for (std::int64_t t = 0; t + 1 < n; ++t) {
    if (bytes > 0) {
      const std::int64_t fwd = pos_mod(rank - t, n);
      const std::int64_t got = pos_mod(rank - t - 1, n);
      comm.send_and_recv(
          round,
          std::span<const std::byte>(all.data() + fwd * bytes,
                                     static_cast<std::size_t>(bytes)),
          pos_mod(rank + 1, n),
          std::span<std::byte>(all.data() + got * bytes,
                               static_cast<std::size_t>(bytes)),
          pos_mod(rank - 1, n));
    }
    ++round;
  }
  if (bytes > 0) {
    std::memcpy(recv.data(), all.data(), static_cast<std::size_t>(bytes));
    for (std::int64_t i = 1; i < n; ++i) {
      op.combine(recv.data(), all.data() + i * bytes, bytes);
    }
  }
  return round;
}

int concat_via_index(mps::Communicator& comm, std::span<const std::byte> send,
                     std::span<std::byte> recv, std::int64_t block_bytes,
                     const ConcatViaIndexOptions& options) {
  const std::int64_t n = comm.size();
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == block_bytes);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * block_bytes);

  // B[i, j] := B[i] for all j: replicate the local block n times.
  std::vector<std::byte> replicated(static_cast<std::size_t>(n * block_bytes));
  for (std::int64_t j = 0; j < n; ++j) {
    if (block_bytes > 0) {
      std::memcpy(replicated.data() + j * block_bytes, send.data(),
                  static_cast<std::size_t>(block_bytes));
    }
  }
  // After the index, receive block i = B[i, rank] = B[i]: the concatenation.
  return index_bruck(comm, replicated, recv, block_bytes,
                     IndexBruckOptions{options.radix, options.start_round});
}

}  // namespace bruck::coll
