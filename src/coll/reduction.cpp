#include "coll/reduction.hpp"

#include <cstring>
#include <vector>

#include "coll/index_bruck.hpp"
#include "util/assert.hpp"

namespace bruck::coll {

int concat_via_index(mps::Communicator& comm, std::span<const std::byte> send,
                     std::span<std::byte> recv, std::int64_t block_bytes,
                     const ConcatViaIndexOptions& options) {
  const std::int64_t n = comm.size();
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == block_bytes);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * block_bytes);

  // B[i, j] := B[i] for all j: replicate the local block n times.
  std::vector<std::byte> replicated(static_cast<std::size_t>(n * block_bytes));
  for (std::int64_t j = 0; j < n; ++j) {
    if (block_bytes > 0) {
      std::memcpy(replicated.data() + j * block_bytes, send.data(),
                  static_cast<std::size_t>(block_bytes));
    }
  }
  // After the index, receive block i = B[i, rank] = B[i]: the concatenation.
  return index_bruck(comm, replicated, recv, block_bytes,
                     IndexBruckOptions{options.radix, options.start_round});
}

}  // namespace bruck::coll
