// XOR pairwise-exchange index baseline (the classic hypercube-flavoured
// complete exchange, cf. Bokhari 1991 and Johnsson–Ho 1989 cited by the
// paper): in step j, rank i exchanges one block with rank i XOR j.  Requires
// n to be a power of two.  Identical measures to direct exchange — it is the
// other standard C2-optimal pattern MPI libraries use — but with a pairwise
// (symmetric partner) structure instead of ring offsets.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct IndexPairwiseOptions {
  int start_round = 0;
};

/// Same buffer contract as index_bruck; n must be a power of two.
/// Blocking: returns once this rank's receives have landed.  Thread
/// safety: SPMD, one call per rank thread.  Trace: one send event per
/// nonzero message at its round.
int index_pairwise(mps::Communicator& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, std::int64_t block_bytes,
                   const IndexPairwiseOptions& options = {});

}  // namespace bruck::coll
