#include "coll/concat_folklore.hpp"

#include <cstring>
#include <vector>

#include "topo/binomial.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

int concat_folklore(mps::Communicator& comm, std::span<const std::byte> send,
                    std::span<std::byte> recv, std::int64_t block_bytes,
                    const ConcatFolkloreOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);

  int round = options.start_round;
  if (n == 1) {
    if (b > 0) std::memcpy(recv.data(), send.data(), send.size());
    return round;
  }
  const int d = ceil_log(n, 2);
  if (b == 0) return round;

  // Gather phase.  Rank r accumulates the contiguous segment [r, r + seg)
  // in `staging` (position t ↔ block r + t, no wraparound: the tree is over
  // linear indices).
  std::vector<std::byte> staging(static_cast<std::size_t>(n * b));
  std::memcpy(staging.data(), send.data(), static_cast<std::size_t>(b));
  for (int i = 0; i < d; ++i) {
    const std::int64_t stride = ipow(2, i);
    if (pos_mod(rank, 2 * stride) == stride) {
      // Sender: forward everything accumulated so far, then go idle until
      // the broadcast phase reaches us.
      const std::int64_t seg = topo::binomial_gather_segment(n, rank, i);
      const mps::SendSpec s{
          rank - stride,
          std::span<const std::byte>(staging.data(),
                                     static_cast<std::size_t>(seg * b))};
      comm.exchange(options.start_round + i, {&s, 1}, {});
    } else if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
      const std::int64_t seg =
          topo::binomial_gather_segment(n, rank + stride, i);
      const mps::RecvSpec r{
          rank + stride,
          std::span<std::byte>(staging.data() + stride * b,
                               static_cast<std::size_t>(seg * b))};
      comm.exchange(options.start_round + i, {}, {&r, 1});
    }
  }
  round = options.start_round + d;

  // Broadcast phase: rank 0 has the full result; push it down the reversed
  // tree.  Every rank ends with the concatenation in `recv`.
  if (rank == 0) {
    std::memcpy(recv.data(), staging.data(), recv.size());
  }
  for (int j = 0; j < d; ++j) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    if (pos_mod(rank, 2 * stride) == 0 && rank + stride < n) {
      const mps::SendSpec s{rank + stride,
                            std::span<const std::byte>(recv.data(), recv.size())};
      comm.exchange(round + j, {&s, 1}, {});
    } else if (pos_mod(rank, 2 * stride) == stride) {
      const mps::RecvSpec r{rank - stride,
                            std::span<std::byte>(recv.data(), recv.size())};
      comm.exchange(round + j, {}, {&r, 1});
    }
  }
  return round + d;
}

}  // namespace bruck::coll
