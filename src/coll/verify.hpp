// Deterministic payload generation and content verification for the
// collectives.  Every byte of every block is a pure function of
// (seed, source rank, block id, offset), so any rank — and any test — can
// check any delivered block without global state, and a misrouted or
// corrupted block is detected at its first byte.
//
// All functions here are pure local computation: never blocking, no
// fabric or trace side effects, safe to call concurrently on disjoint
// buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace bruck::coll {

/// Fill rank `rank`'s index send buffer: n blocks of block_bytes, block j
/// keyed by (seed, src = rank, block = j).
void fill_index_send(std::span<std::byte> buf, std::int64_t n,
                     std::int64_t rank, std::int64_t block_bytes,
                     std::uint64_t seed);

/// Verify rank `rank`'s index receive buffer: block i must be the block that
/// rank i addressed to `rank`.  Empty string on success, else a description
/// of the first mismatch.
[[nodiscard]] std::string check_index_recv(std::span<const std::byte> buf,
                                           std::int64_t n, std::int64_t rank,
                                           std::int64_t block_bytes,
                                           std::uint64_t seed);

/// Fill rank `rank`'s concatenation send block, keyed (seed, rank, 0).
void fill_concat_send(std::span<std::byte> buf, std::int64_t rank,
                      std::int64_t block_bytes, std::uint64_t seed);

/// Verify a concatenation receive buffer: block i must be rank i's block.
[[nodiscard]] std::string check_concat_recv(std::span<const std::byte> buf,
                                            std::int64_t n,
                                            std::int64_t block_bytes,
                                            std::uint64_t seed);

}  // namespace bruck::coll
