#include "coll/pack.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::coll {

namespace {

// Walk the slots with digit x == z in ascending order without materializing
// the member list: slots are q·r^{x+1} + z·r^x + t for t ∈ [0, r^x).
template <typename Fn>
void for_each_member(std::int64_t n, std::int64_t r, int x, std::int64_t z,
                     Fn&& fn) {
  const std::int64_t lo = ipow(r, x);
  const std::int64_t period = lo * r;
  for (std::int64_t base = z * lo; base < n; base += period) {
    const std::int64_t end = std::min(base + lo, n);
    for (std::int64_t slot = base; slot < end; ++slot) fn(slot);
  }
}

}  // namespace

std::int64_t gather_extents(std::span<const std::byte> src,
                            std::span<const ByteExtent> extents,
                            std::span<std::byte> out) {
  std::int64_t pos = 0;
  for (const ByteExtent& e : extents) {
    BRUCK_REQUIRE(e.offset >= 0 && e.bytes >= 0);
    BRUCK_REQUIRE(static_cast<std::int64_t>(src.size()) >= e.offset + e.bytes);
    BRUCK_REQUIRE(static_cast<std::int64_t>(out.size()) >= pos + e.bytes);
    if (e.bytes > 0) {
      std::memcpy(out.data() + pos, src.data() + e.offset,
                  static_cast<std::size_t>(e.bytes));
    }
    pos += e.bytes;
  }
  return pos;
}

std::int64_t scatter_extents(std::span<std::byte> dst,
                             std::span<const ByteExtent> extents,
                             std::span<const std::byte> in) {
  std::int64_t pos = 0;
  for (const ByteExtent& e : extents) {
    BRUCK_REQUIRE(e.offset >= 0 && e.bytes >= 0);
    BRUCK_REQUIRE(static_cast<std::int64_t>(dst.size()) >= e.offset + e.bytes);
    BRUCK_REQUIRE(static_cast<std::int64_t>(in.size()) >= pos + e.bytes);
    if (e.bytes > 0) {
      std::memcpy(dst.data() + e.offset, in.data() + pos,
                  static_cast<std::size_t>(e.bytes));
    }
    pos += e.bytes;
  }
  return pos;
}

std::int64_t pack_by_digit(std::span<const std::byte> buffer,
                           std::span<std::byte> packed, std::int64_t n,
                           std::int64_t block_bytes, std::int64_t r, int x,
                           std::int64_t z) {
  BRUCK_REQUIRE(static_cast<std::int64_t>(buffer.size()) == n * block_bytes);
  BRUCK_REQUIRE(z >= 1 && z < r);
  std::int64_t count = 0;
  for_each_member(n, r, x, z, [&](std::int64_t slot) {
    BRUCK_REQUIRE(static_cast<std::int64_t>(packed.size()) >=
                  (count + 1) * block_bytes);
    if (block_bytes > 0) {
      std::memcpy(packed.data() + count * block_bytes,
                  buffer.data() + slot * block_bytes,
                  static_cast<std::size_t>(block_bytes));
    }
    ++count;
  });
  BRUCK_ENSURE(count == radix_digit_census(n, r, x, z));
  return count;
}

std::int64_t unpack_by_digit(std::span<std::byte> buffer,
                             std::span<const std::byte> packed, std::int64_t n,
                             std::int64_t block_bytes, std::int64_t r, int x,
                             std::int64_t z) {
  BRUCK_REQUIRE(static_cast<std::int64_t>(buffer.size()) == n * block_bytes);
  BRUCK_REQUIRE(z >= 1 && z < r);
  std::int64_t count = 0;
  for_each_member(n, r, x, z, [&](std::int64_t slot) {
    BRUCK_REQUIRE(static_cast<std::int64_t>(packed.size()) >=
                  (count + 1) * block_bytes);
    if (block_bytes > 0) {
      std::memcpy(buffer.data() + slot * block_bytes,
                  packed.data() + count * block_bytes,
                  static_cast<std::size_t>(block_bytes));
    }
    ++count;
  });
  BRUCK_ENSURE(count == radix_digit_census(n, r, x, z));
  return count;
}

}  // namespace bruck::coll
