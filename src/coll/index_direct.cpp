#include "coll/index_direct.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

int index_direct(mps::Communicator& comm, std::span<const std::byte> send,
                 std::span<std::byte> recv, std::int64_t block_bytes,
                 const IndexDirectOptions& options) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  const int k = comm.ports();
  const std::int64_t b = block_bytes;
  BRUCK_REQUIRE(b >= 0);
  BRUCK_REQUIRE(static_cast<std::int64_t>(send.size()) == n * b);
  BRUCK_REQUIRE(static_cast<std::int64_t>(recv.size()) == n * b);

  // Own block never touches the network.
  if (b > 0) {
    std::memcpy(recv.data() + rank * b, send.data() + rank * b,
                static_cast<std::size_t>(b));
  }
  int round = options.start_round;
  if (n == 1) return round;

  // Step j exchanges with ranks at ring distance j; steps are grouped k per
  // round.  Send buffers are block-aligned slices of `send`, receive buffers
  // block-aligned slices of `recv` — no staging needed.
  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    std::vector<mps::SendSpec> sends;
    std::vector<mps::RecvSpec> recvs;
    for (std::int64_t j = j0; j < j1; ++j) {
      const std::int64_t dst = pos_mod(rank + j, n);
      const std::int64_t src = pos_mod(rank - j, n);
      if (b == 0) continue;
      sends.push_back(mps::SendSpec{
          dst, send.subspan(static_cast<std::size_t>(dst * b),
                            static_cast<std::size_t>(b))});
      recvs.push_back(mps::RecvSpec{
          src, recv.subspan(static_cast<std::size_t>(src * b),
                            static_cast<std::size_t>(b))});
    }
    if (!sends.empty()) comm.exchange(round, sends, recvs);
    ++round;
  }
  return round;
}

}  // namespace bruck::coll
