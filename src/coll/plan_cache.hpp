// Memoization of compiled plans per communicator geometry.
//
// A key identifies everything a plan depends on: the collective, the
// resolved algorithm (never kAuto — the tuner's radix choice and the concat
// last-round resolution happen *before* keying, so the tuned parameters are
// part of the key), n, k, radix/strategy, and the block-size class.  Index
// plans are block-size independent (class 0: one plan serves every b);
// concat plans are lowered per exact block size because the byte-split
// table partition of Section 4.2 depends on b.
//
// The cache is process-global and thread-safe: all rank threads of a fabric
// share it, so the first collective call on a new geometry lowers once and
// every other rank (and every later call) takes the hit path — zero
// re-planning work.
// Irregular (vector) plans add a *shape digest* to the key: a hash of the
// log2-bucketed count vector (bucket(c) = bit_width(c), with 0 its own
// bucket).  Irregular plans are shape-free — any same-structure plan
// executes any shape correctly — so bucketing is purely a cache policy:
// a skewed workload whose counts jitter within size classes keeps hitting
// one plan, while a genuinely different shape (different buckets) lowers
// its own entry.  A digest of 0 marks a uniform key.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "coll/api.hpp"
#include "coll/plan.hpp"

namespace bruck::coll {

struct PlanKey {
  PlanCollective collective = PlanCollective::kIndex;
  /// Resolved IndexAlgorithm / ConcatAlgorithm enumerator value.
  std::uint8_t algorithm = 0;
  std::int64_t n = 1;
  int k = 1;
  /// Index Bruck radix; 0 for every other algorithm.
  std::int64_t radix = 0;
  /// Resolved model::ConcatLastRound enumerator for concat Bruck; 0 else.
  std::uint8_t strategy = 0;
  /// 0 for index plans (block-size independent); exact b for concat plans.
  std::int64_t block_class = 0;
  /// Wire segments per message under the pipelined executor (resolved — the
  /// tuner's pick or the caller's explicit count — never 0).  Segmentation
  /// does not change the lowered round/cell structure, but keying it keeps
  /// "one key = one complete execution recipe"; the cost is one extra
  /// lowering per distinct segment count on a geometry (e.g. an index
  /// workload alternating between a small-b and a large-b auto-tuned call),
  /// bounded by the LRU capacity — never per-call re-planning.
  int segments = 1;
  /// 0 for uniform plans; the bucketed shape digest (never 0) for irregular
  /// (vector) plans.  See the file comment.
  std::uint64_t shape_digest = 0;
  /// 0 for non-reduction plans; ReduceOp::cache_tag() — (kind << 16) |
  /// element width — for reduction plans.  The lowered structure is
  /// op-independent, but keying the op keeps "one key = one complete
  /// execution recipe".
  std::uint32_t reduce_tag = 0;
  /// 0 when both user-buffer layouts are absent or contiguous — a
  /// contiguous-layout call keys *identically* to today's plain calls (no
  /// cache blow-up) — else coll::layout_digest(send, recv): a
  /// contiguity-class bucket hash, never 0.  Like shape_digest this is
  /// pure cache policy: plans are layout-free (layouts resolve at run
  /// time), so the digest only groups entries; jittered strides of one
  /// shape class keep hitting one plan.
  std::uint64_t layout_digest = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const;
};

/// Make the canonical key for a *resolved* index algorithm choice
/// (`algorithm` must not be kAuto; radix is ignored unless kBruck).
/// Every key ctor takes a trailing `layout` digest (from
/// coll::layout_digest; default 0 = contiguous) — lower_from_key ignores
/// it, the cache does not.
[[nodiscard]] PlanKey index_plan_key(IndexAlgorithm algorithm, std::int64_t n,
                                     int k, std::int64_t radix,
                                     int segments = 1,
                                     std::uint64_t layout = 0);

/// Make the canonical key for a *resolved* concat algorithm choice
/// (`strategy` must not be kAuto when algorithm is kBruck).
[[nodiscard]] PlanKey concat_plan_key(ConcatAlgorithm algorithm,
                                      std::int64_t n, int k,
                                      model::ConcatLastRound strategy,
                                      std::int64_t block_bytes,
                                      int segments = 1,
                                      std::uint64_t layout = 0);

/// Make the canonical key for a *resolved* reduce-scatter algorithm choice
/// (`algorithm` must not be kAuto; radix is ignored unless kBruck; `op`
/// contributes its cache_tag).
[[nodiscard]] PlanKey reduce_plan_key(ReduceAlgorithm algorithm,
                                      std::int64_t n, int k,
                                      std::int64_t radix, const ReduceOp& op,
                                      int segments = 1,
                                      std::uint64_t layout = 0);

/// Make the key of a rooted intra-group stage plan (root = rank 0; all
/// three are block-size independent, so block_class stays 0).  `collective`
/// must be kGather, kScatter, or kBcast; the algorithm is implied (binomial
/// gather/scatter, circulant bcast).
[[nodiscard]] PlanKey rooted_plan_key(PlanCollective collective,
                                      std::int64_t n, int k,
                                      int segments = 1);

/// PlanKey::shape_digest == 0 is the reserved "uniform plan" sentinel
/// (lower_from_key branches on it), so no irregular shape may ever digest
/// to 0: a raw hash of 0 is remapped to 1.  Exposed so tests can pin the
/// reservation independently of finding a zero-hash preimage.
[[nodiscard]] constexpr std::uint64_t reserve_shape_digest_sentinel(
    std::uint64_t raw) {
  return raw == 0 ? 1 : raw;
}

/// Digest of an irregular shape for plan-cache keying: FNV-1a over the
/// log2 bucket of every count (bit_width(c); 0 stays its own bucket),
/// passed through reserve_shape_digest_sentinel — deterministic, never 0.
/// Two shapes in the same buckets share a plan (correct for any shape —
/// irregular plans resolve sizes at run time); shapes in different buckets
/// key separate entries.
[[nodiscard]] std::uint64_t shape_digest(
    std::span<const std::int64_t> counts);

/// Make the key of an irregular index plan (`algorithm` must not be kAuto;
/// `digest` from shape_digest over the n×n count matrix).
[[nodiscard]] PlanKey indexv_plan_key(IndexAlgorithm algorithm, std::int64_t n,
                                      int k, std::int64_t radix,
                                      std::uint64_t digest, int segments = 1,
                                      std::uint64_t layout = 0);

/// Make the key of an irregular concat plan (`digest` from shape_digest
/// over the n per-rank counts).  Irregular concat Bruck always lowers the
/// column-granular last round, so no strategy enters the key.
[[nodiscard]] PlanKey concatv_plan_key(ConcatAlgorithm algorithm,
                                       std::int64_t n, int k,
                                       std::uint64_t digest,
                                       int segments = 1);

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  friend bool operator==(const PlanCacheStats&, const PlanCacheStats&) =
      default;
};

class PlanCache {
 public:
  /// Memory bound: concat plans are per-(geometry, b), so a workload
  /// sweeping many message sizes would otherwise pin one plan per size
  /// forever.  Least-recently-used plans are evicted past this many
  /// entries (in-flight executions keep their plan alive via shared_ptr).
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  struct Lookup {
    std::shared_ptr<const Plan> plan;
    bool cache_hit = false;
  };

  /// The plan for `key`, lowering it on first use.  Thread-safe; the
  /// lowering runs outside the cache lock (lookups of other keys never
  /// stall behind a miss), concurrent same-key callers wait on the first
  /// lowering's future and all but one report a hit.
  Lookup get_or_lower(const PlanKey& key);

  [[nodiscard]] PlanCacheStats stats() const;
  void clear();

  /// The process-wide cache used by the coll:: facade.
  static PlanCache& global();

 private:
  struct Entry {
    std::shared_ptr<const Plan> plan;
    std::list<PlanKey>::iterator lru_pos;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<PlanKey> lru_;  // front = most recently used
  std::unordered_map<PlanKey, Entry, PlanKeyHash> plans_;
  /// Keys being lowered right now (outside the lock); same-key callers
  /// wait on the future instead of re-lowering.
  std::unordered_map<PlanKey,
                     std::shared_future<std::shared_ptr<const Plan>>,
                     PlanKeyHash>
      pending_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bruck::coll
