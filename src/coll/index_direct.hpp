// Direct-exchange index baseline: every block travels straight from source
// to destination, one peer per step, k peers per round.  This is the
// C2-optimal extreme of the trade-off (Theorem 2.6's regime): it transfers
// exactly b(n−1) bytes per rank — no forwarding — at the price of
// C1 = ⌈(n−1)/k⌉ rounds.  Equivalent in measures to index_bruck with r = n,
// but implemented independently (no rotation phases, no packing) so it can
// serve as a true baseline.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct IndexDirectOptions {
  int start_round = 0;
};

/// Same buffer contract as index_bruck.  Returns the next free round index.
/// Blocking: returns once this rank's receives have landed.  Thread
/// safety: SPMD, one call per rank thread.  Trace: one send event per
/// nonzero message at its round.
int index_direct(mps::Communicator& comm, std::span<const std::byte> send,
                 std::span<std::byte> recv, std::int64_t block_bytes,
                 const IndexDirectOptions& options = {});

}  // namespace bruck::coll
