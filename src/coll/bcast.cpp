#include "coll/bcast.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

namespace {

/// Round in which relative node v joins the circulant tree: the position of
/// v's most significant nonzero digit in base k+1 for v < n1, or the final
/// round d−1 for the partial-layer nodes v ≥ n1.
int circulant_join_round(std::int64_t v, int k, std::int64_t n1, int d) {
  if (v == 0) return -1;  // root has the data from the start
  if (v >= n1) return d - 1;
  return floor_log(v, k + 1);
}

}  // namespace

int bcast_circulant(mps::Communicator& comm, std::int64_t root,
                    std::span<std::byte> data, const BcastOptions& options) {
  const std::int64_t n = comm.size();
  const int k = comm.ports();
  BRUCK_REQUIRE(root >= 0 && root < n);
  int round = options.start_round;
  if (n == 1 || data.empty()) return round;

  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;
  const std::int64_t v = pos_mod(comm.rank() - root, n);
  const int joined = circulant_join_round(v, k, n1, d);

  for (int i = 0; i < d; ++i, ++round) {
    std::vector<mps::SendSpec> sends;
    std::vector<mps::RecvSpec> recvs;
    if (joined == i) {
      // Receive from my parent.
      std::int64_t parent_v;
      if (v >= n1) {
        parent_v = pos_mod(v - n1, n1);  // final layer: parent = c mod n1
      } else {
        parent_v = v % ipow(k + 1, i);  // strip my leading digit
      }
      recvs.push_back(
          mps::RecvSpec{pos_mod(root + parent_v, n), data});
    } else if (joined < i) {
      if (i < d - 1) {
        // Growth round: nodes v < (k+1)^i add children v + j·(k+1)^i, all
        // of which lie below (k+1)^{i+1} ≤ n1.
        const std::int64_t base = ipow(k + 1, i);
        if (v < base) {
          for (int j = 1; j <= k; ++j) {
            sends.push_back(
                mps::SendSpec{pos_mod(root + v + j * base, n), data});
          }
        }
      } else {
        // Final round: the remaining n2 nodes n1 + c hang off parent
        // c mod n1 — at most ⌈n2/n1⌉ ≤ k children per parent.
        if (v < n1) {
          for (std::int64_t c = v; c < n2; c += n1) {
            sends.push_back(
                mps::SendSpec{pos_mod(root + n1 + c, n), data});
          }
        }
      }
    }
    if (!sends.empty() || !recvs.empty()) {
      comm.exchange(round, sends, recvs);
    }
  }
  return round;
}

int bcast_binomial(mps::Communicator& comm, std::int64_t root,
                   std::span<std::byte> data, const BcastOptions& options) {
  const std::int64_t n = comm.size();
  BRUCK_REQUIRE(root >= 0 && root < n);
  int round = options.start_round;
  if (n == 1 || data.empty()) return round;

  const int d = ceil_log(n, 2);
  const std::int64_t v = pos_mod(comm.rank() - root, n);
  for (int j = 0; j < d; ++j, ++round) {
    const std::int64_t stride = ipow(2, d - 1 - j);
    if (pos_mod(v, 2 * stride) == 0 && v + stride < n) {
      const mps::SendSpec s{pos_mod(root + v + stride, n), data};
      comm.exchange(round, {&s, 1}, {});
    } else if (pos_mod(v, 2 * stride) == stride) {
      const mps::RecvSpec r{pos_mod(root + v - stride, n), data};
      comm.exchange(round, {}, {&r, 1});
    }
  }
  return round;
}

}  // namespace bruck::coll
