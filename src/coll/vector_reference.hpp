// The irregular (vector) cross-check oracle: a direct per-pair exchange
// that re-derives nothing and shares no code with the plan engine.  Rank r
// exchanges with ring-distance-j peers, k distances per round, shipping
// exactly counts[r][dst] bytes to each destination — the irregular
// counterpart of index_direct, and the substrate every compiled vector
// path is tested against (`ExecutionPath::kReference`).
//
// Both calls block until all of this rank's receives have landed (they run
// through Communicator::exchange round by round).  Thread-safe in the SPMD
// sense: each rank thread passes its own buffers.  Trace: one send event
// per nonzero message at its round, exactly like the compiled direct plan,
// so oracle and plan traces are comparable transfer-for-transfer.
#pragma once

#include <cstdint>
#include <span>

#include "mps/communicator.hpp"

namespace bruck::coll {

struct VectorReferenceOptions {
  int start_round = 0;
};

/// Direct per-pair irregular all-to-all.  `counts` is the full n×n matrix
/// (counts[i*n + j] = bytes rank i sends to rank j, identical on every
/// rank); `send_displs`/`recv_displs` give each block's byte offset in the
/// caller's buffers (n entries each, non-overlapping blocks).  Zero-count
/// pairs never touch the fabric.  Returns the next free round index —
/// always start_round + ⌈(n−1)/k⌉ for n > 1.
int alltoallv_reference(mps::Communicator& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv,
                        std::span<const std::int64_t> counts,
                        std::span<const std::int64_t> send_displs,
                        std::span<const std::int64_t> recv_displs,
                        const VectorReferenceOptions& options = {});

/// Direct per-pair irregular allgather.  `send` is this rank's block
/// (counts[rank] bytes); `recv` holds block i at recv_displs[i] with
/// counts[i] bytes.  Same round structure and blocking behavior as
/// alltoallv_reference.
int allgatherv_reference(mps::Communicator& comm,
                         std::span<const std::byte> send,
                         std::span<std::byte> recv,
                         std::span<const std::int64_t> counts,
                         std::span<const std::int64_t> recv_displs,
                         const VectorReferenceOptions& options = {});

}  // namespace bruck::coll
