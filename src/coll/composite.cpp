// CompositePlan / CompositeCursor implementation and the hierarchical
// (two-level leader-model) lowerings.  See composite.hpp for the model.
//
// Splice-map derivations (all offsets in base blocks; g = nominal group
// size, G = group count, q' ranges over groups, p over group-local ranks):
//
// index (alltoall): the gather stage leaves member p's whole send vector at
// units [p·n, (p+1)·n) of the leader's staging — unit p·n + d is p's block
// for global rank d.  The leader transposes contiguous destination runs
// into per-group super-blocks of g² units: unit p·g + p' of super-block q'
// is "my member p → q''s member p'".  After the inter-leader index
// operation, received super-block q' holds unit ps·g + pd = "q''s member ps
// → my member pd", which len-1 splices re-transpose into per-member result
// vectors (unit pd·n + first(q') + ps) for the scatter stage.
//
// concat (allgather): gather leaves member j's block at unit j — already
// the leader's prefix of the final rank-ordered result, because groups are
// contiguous rank ranges.  One identity splice pads it to the g-unit
// super-block; after the inter-leader concat, super-block q' lands at units
// [first(q'), first(q') + |q'|) of the n-unit broadcast payload.
//
// reduce (reduce-scatter): gather leaves member p's whole contribution
// vector at [p·n, (p+1)·n).  For each destination group q' the leader
// splices the run [p·n + first(q'), …) onto super-block units [q'·g, …) —
// a plain copy for p = 0, ⊕-combines for p > 0, so zero padding is never
// folded into live slots.  The inter-leader reduce leaves the group's
// g-unit result block; an identity splice (trimmed to the real group size)
// feeds the single-block scatter.
#include "coll/composite.hpp"

#include <cstring>
#include <utility>

#include "mps/group.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::coll {

CompositePlan::CompositePlan(std::string name, std::int64_t n,
                             std::int64_t block_bytes)
    : name_(std::move(name)), n_(n), block_bytes_(block_bytes) {
  BRUCK_REQUIRE(n_ >= 1);
  BRUCK_REQUIRE(block_bytes_ >= 0);
}

void CompositePlan::add_stage(CompositeStage stage) {
  BRUCK_REQUIRE(stage.round_stride >= 0);
  if (stage.plan) {
    BRUCK_REQUIRE_MSG(stage.plan->round_count() <= stage.round_stride,
                      "stage stride below the stage plan's own round count");
  }
  needs_op_ = needs_op_ || stage.reducing;
  for (const SpliceOp& s : stage.splices) {
    BRUCK_REQUIRE(s.len >= 1 && s.src >= 0 && s.dst >= 0);
    needs_op_ = needs_op_ || s.combine;
  }
  total_stride_ += stage.round_stride;
  stages_.push_back(std::move(stage));
}

void CompositePlan::check_contract(std::span<const std::byte> send,
                                   std::span<std::byte> recv,
                                   const ReduceOp* op) const {
  // Per-stage buffer sizes are enforced by each stage plan's own run
  // contract; the composite only checks what the stages cannot see.
  (void)send;
  (void)recv;
  BRUCK_REQUIRE_MSG(!needs_op_ || op != nullptr,
                    "composite has reducing stages or combine splices but no "
                    "ReduceOp was supplied");
}

void CompositePlan::apply_splices(const CompositeStage& st,
                                  std::span<const std::byte> out,
                                  std::span<std::byte> next_in,
                                  const ReduceOp* op) const {
  const std::int64_t b = block_bytes_;
  for (const SpliceOp& s : st.splices) {
    BRUCK_REQUIRE((s.src + s.len) * b <=
                  static_cast<std::int64_t>(out.size()));
    BRUCK_REQUIRE((s.dst + s.len) * b <=
                  static_cast<std::int64_t>(next_in.size()));
    const std::int64_t bytes = s.len * b;
    if (bytes == 0) continue;
    std::byte* dst = next_in.data() + s.dst * b;
    const std::byte* src = out.data() + s.src * b;
    if (s.combine) {
      BRUCK_ENSURE(op != nullptr);
      op->combine(dst, src, bytes);
    } else {
      std::memcpy(dst, src, static_cast<std::size_t>(bytes));
    }
  }
}

namespace {

PlanExecution run_stage_plan(const CompositeStage& st, mps::Communicator& comm,
                             std::span<const std::byte> in,
                             std::span<std::byte> out, std::int64_t stage_block,
                             const ReduceOp* op, int base, bool pipelined) {
  if (st.reducing) {
    return pipelined
               ? st.plan->run_pipelined(comm, in, out, stage_block, *op, base)
               : st.plan->run(comm, in, out, stage_block, *op, base);
  }
  return pipelined ? st.plan->run_pipelined(comm, in, out, stage_block, base)
                   : st.plan->run(comm, in, out, stage_block, base);
}

}  // namespace

PlanExecution CompositePlan::run(mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, const ReduceOp* op,
                                 int start_round, bool pipelined) const {
  check_contract(send, recv, op);
  BRUCK_REQUIRE_MSG(comm.size() == n_,
                    "composite was lowered for a different communicator size");
  const std::int64_t b = block_bytes_;
  PlanExecution total;
  int base = start_round;
  std::vector<std::byte> stage_in;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const CompositeStage& st = stages_[s];
    const std::span<const std::byte> in =
        st.user_send_in ? send : std::span<const std::byte>(stage_in);
    std::vector<std::byte> out_store;
    std::span<std::byte> out;
    if (st.user_recv_out) {
      out = recv;
    } else {
      out_store.assign(static_cast<std::size_t>(st.out_units * b),
                       std::byte{0});
      out = out_store;
    }
    if (st.plan) {
      const std::int64_t stage_block = st.block_units * b;
      PlanExecution r;
      if (st.members.empty()) {
        r = run_stage_plan(st, comm, in, out, stage_block, op, base,
                           pipelined);
      } else {
        mps::GroupComm sub(comm, st.members);
        r = run_stage_plan(st, sub, in, out, stage_block, op, base, pipelined);
      }
      total.bytes_sent += r.bytes_sent;
      total.bytes_reduced += r.bytes_reduced;
      comm.record_plan_event(mps::PlanEvent{st.cache_hit,
                                            st.plan->round_count(),
                                            r.bytes_sent, r.bytes_reduced});
    }
    base += st.round_stride;
    if (s + 1 < stages_.size()) {
      const CompositeStage& next = stages_[s + 1];
      std::vector<std::byte> next_in(
          static_cast<std::size_t>(next.in_units * b), std::byte{0});
      apply_splices(st, out, next_in, op);
      stage_in = std::move(next_in);
    }
  }
  total.next_round = base;
  return total;
}

std::string CompositePlan::describe() const {
  std::string out = name_ + ": n=" + std::to_string(n_) +
                    ", base block=" + std::to_string(block_bytes_) + " B, " +
                    std::to_string(stages_.size()) + " stages, " +
                    std::to_string(total_stride_) + " rounds total\n";
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const CompositeStage& st = stages_[s];
    out += "  stage " + std::to_string(s) + " [" + st.label + "]: ";
    if (st.plan) {
      out += st.plan->algorithm() + ", n=" + std::to_string(st.plan->n()) +
             ", block=" + std::to_string(st.block_units * block_bytes_) +
             " B, rounds=" + std::to_string(st.plan->round_count());
      if (!st.members.empty()) {
        out += ", members=" + std::to_string(st.members.size());
      }
    } else {
      out += "idle";
    }
    out += ", stride=" + std::to_string(st.round_stride);
    if (!st.splices.empty()) {
      out += ", splices=" + std::to_string(st.splices.size());
    }
    out += "\n";
  }
  return out;
}

// -- Hierarchical lowerings --------------------------------------------------

namespace {

/// Clamp the inter-leader radix into index/reduce Bruck's valid range
/// [2, max(2, G)] (a single-leader inter stage only admits radix 2).
std::int64_t clamp_inter_radix(std::int64_t radix, std::int64_t groups) {
  return std::min(std::max<std::int64_t>(radix, 2),
                  std::max<std::int64_t>(2, groups));
}

PlanCache::Lookup stage_lookup(const PlanKey& key) {
  return PlanCache::global().get_or_lower(key);
}

}  // namespace

CompositePlan CompositePlan::lower_index_hier(std::int64_t n, int k,
                                              std::int64_t rank,
                                              std::int64_t block_bytes,
                                              const HierShape& shape) {
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  const topo::GroupGeometry geo(n, shape.group);
  const std::int64_t gm = geo.max_size();
  const std::int64_t G = geo.groups();
  const std::int64_t q = geo.group_of(rank);
  const std::int64_t gsz = geo.size_of(q);
  const bool leader = geo.is_leader(rank);
  const std::int64_t ir = clamp_inter_radix(shape.inter_radix, G);
  CompositePlan cp("hier-index", n, block_bytes);

  {  // Stage A: intra-group gather of whole alltoall send vectors.
    CompositeStage st;
    st.label = "intra gather";
    const PlanCache::Lookup lk = stage_lookup(
        rooted_plan_key(PlanCollective::kGather, gsz, k, shape.segments));
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.members = geo.members(q);
    st.block_units = n;
    st.user_send_in = true;
    st.out_units = gsz * n;
    st.round_stride = ceil_log(gm, 2);
    if (leader) {
      for (std::int64_t p = 0; p < gsz; ++p) {
        for (std::int64_t qq = 0; qq < G; ++qq) {
          st.splices.push_back(SpliceOp{p * n + geo.first(qq),
                                        qq * gm * gm + p * gm,
                                        geo.size_of(qq), false});
        }
      }
    }
    cp.add_stage(std::move(st));
  }

  {  // Stage B: inter-leader index Bruck over g²-block super-blocks.
    CompositeStage st;
    st.label = "inter index";
    st.round_stride =
        static_cast<int>(model::index_bruck_cost(G, ir, k, 1).c1);
    if (leader) {
      const PlanCache::Lookup lk = stage_lookup(
          index_plan_key(IndexAlgorithm::kBruck, G, k, ir, shape.segments));
      st.plan = lk.plan;
      st.cache_hit = lk.cache_hit;
      st.members = geo.leaders();
      st.block_units = gm * gm;
      st.in_units = G * gm * gm;
      st.out_units = G * gm * gm;
      for (std::int64_t pd = 0; pd < gsz; ++pd) {
        for (std::int64_t qq = 0; qq < G; ++qq) {
          for (std::int64_t ps = 0; ps < geo.size_of(qq); ++ps) {
            st.splices.push_back(SpliceOp{qq * gm * gm + ps * gm + pd,
                                          pd * n + geo.first(qq) + ps, 1,
                                          false});
          }
        }
      }
    }
    cp.add_stage(std::move(st));
  }

  {  // Stage C: intra-group scatter of per-member result vectors.
    CompositeStage st;
    st.label = "intra scatter";
    const PlanCache::Lookup lk = stage_lookup(
        rooted_plan_key(PlanCollective::kScatter, gsz, k, shape.segments));
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.members = geo.members(q);
    st.block_units = n;
    st.in_units = gsz * n;
    st.user_recv_out = true;
    st.round_stride = ceil_log(gm, 2);
    cp.add_stage(std::move(st));
  }
  return cp;
}

CompositePlan CompositePlan::lower_concat_hier(std::int64_t n, int k,
                                               std::int64_t rank,
                                               std::int64_t block_bytes,
                                               const HierShape& shape) {
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  const topo::GroupGeometry geo(n, shape.group);
  const std::int64_t gm = geo.max_size();
  const std::int64_t G = geo.groups();
  const std::int64_t q = geo.group_of(rank);
  const std::int64_t gsz = geo.size_of(q);
  const bool leader = geo.is_leader(rank);
  const std::int64_t super = gm * block_bytes;
  const model::ConcatLastRound resolved =
      model::resolve_concat_last_round(G, k, super, shape.strategy);
  CompositePlan cp("hier-concat", n, block_bytes);

  {  // Stage A: intra-group gather of single blocks.
    CompositeStage st;
    st.label = "intra gather";
    const PlanCache::Lookup lk = stage_lookup(
        rooted_plan_key(PlanCollective::kGather, gsz, k, shape.segments));
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.members = geo.members(q);
    st.block_units = 1;
    st.user_send_in = true;
    st.out_units = gsz;
    st.round_stride = ceil_log(gm, 2);
    if (leader) st.splices.push_back(SpliceOp{0, 0, gsz, false});
    cp.add_stage(std::move(st));
  }

  {  // Stage B: inter-leader concat over g-block super-blocks.
    CompositeStage st;
    st.label = "inter concat";
    st.round_stride =
        static_cast<int>(model::concat_bruck_cost(G, k, super, resolved).c1);
    if (leader) {
      const PlanCache::Lookup lk = stage_lookup(
          concat_plan_key(ConcatAlgorithm::kBruck, G, k, resolved, super,
                          shape.segments));
      st.plan = lk.plan;
      st.cache_hit = lk.cache_hit;
      st.members = geo.leaders();
      st.block_units = gm;
      st.in_units = gm;
      st.out_units = G * gm;
      for (std::int64_t qq = 0; qq < G; ++qq) {
        st.splices.push_back(
            SpliceOp{qq * gm, geo.first(qq), geo.size_of(qq), false});
      }
    }
    cp.add_stage(std::move(st));
  }

  {  // Stage C: intra-group circulant broadcast of the n-block result.
    CompositeStage st;
    st.label = "intra bcast";
    const PlanCache::Lookup lk = stage_lookup(
        rooted_plan_key(PlanCollective::kBcast, gsz, k, shape.segments));
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.members = geo.members(q);
    st.block_units = n;
    st.in_units = n;
    st.user_recv_out = true;
    st.round_stride = ceil_log(gm, k + 1);
    cp.add_stage(std::move(st));
  }
  return cp;
}

CompositePlan CompositePlan::lower_reduce_hier(std::int64_t n, int k,
                                               std::int64_t rank,
                                               std::int64_t block_bytes,
                                               const ReduceOp& op,
                                               const HierShape& shape) {
  BRUCK_REQUIRE(rank >= 0 && rank < n);
  const topo::GroupGeometry geo(n, shape.group);
  const std::int64_t gm = geo.max_size();
  const std::int64_t G = geo.groups();
  const std::int64_t q = geo.group_of(rank);
  const std::int64_t gsz = geo.size_of(q);
  const bool leader = geo.is_leader(rank);
  const std::int64_t ir = clamp_inter_radix(shape.inter_radix, G);
  CompositePlan cp("hier-reduce", n, block_bytes);

  {  // Stage A: intra-group gather of whole contribution vectors.
    CompositeStage st;
    st.label = "intra gather";
    const PlanCache::Lookup lk = stage_lookup(
        rooted_plan_key(PlanCollective::kGather, gsz, k, shape.segments));
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.members = geo.members(q);
    st.block_units = n;
    st.user_send_in = true;
    st.out_units = gsz * n;
    st.round_stride = ceil_log(gm, 2);
    if (leader) {
      // p = 0 seeds each super-block run with a copy; later members fold in
      // with ⊕, so the zero padding beyond each run is never combined.
      for (std::int64_t p = 0; p < gsz; ++p) {
        for (std::int64_t qq = 0; qq < G; ++qq) {
          st.splices.push_back(SpliceOp{p * n + geo.first(qq), qq * gm,
                                        geo.size_of(qq), p > 0});
        }
      }
    }
    cp.add_stage(std::move(st));
  }

  {  // Stage B: inter-leader reduce Bruck over g-block super-blocks.
    CompositeStage st;
    st.label = "inter reduce";
    st.round_stride =
        static_cast<int>(model::reduce_bruck_cost(G, ir, k, 1).c1);
    if (leader) {
      const PlanCache::Lookup lk = stage_lookup(reduce_plan_key(
          ReduceAlgorithm::kBruck, G, k, ir, op, shape.segments));
      st.plan = lk.plan;
      st.cache_hit = lk.cache_hit;
      st.members = geo.leaders();
      st.block_units = gm;
      st.in_units = G * gm;
      st.out_units = gm;
      st.reducing = true;
      st.splices.push_back(SpliceOp{0, 0, gsz, false});
    }
    cp.add_stage(std::move(st));
  }

  {  // Stage C: intra-group scatter of single result blocks.
    CompositeStage st;
    st.label = "intra scatter";
    const PlanCache::Lookup lk = stage_lookup(
        rooted_plan_key(PlanCollective::kScatter, gsz, k, shape.segments));
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.members = geo.members(q);
    st.block_units = 1;
    st.in_units = gsz;
    st.user_recv_out = true;
    st.round_stride = ceil_log(gm, 2);
    cp.add_stage(std::move(st));
  }
  return cp;
}

CompositePlan CompositePlan::allreduce_chain(const PlanKey& reduce_key,
                                             const PlanKey& concat_key,
                                             std::int64_t n,
                                             std::int64_t block_bytes) {
  CompositePlan cp("allreduce-chain", n, block_bytes);
  {
    CompositeStage st;
    st.label = "reduce-scatter";
    const PlanCache::Lookup lk = stage_lookup(reduce_key);
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.block_units = 1;
    st.user_send_in = true;
    st.out_units = 1;
    st.reducing = true;
    st.round_stride = lk.plan->round_count();
    st.splices.push_back(SpliceOp{0, 0, 1, false});
    cp.add_stage(std::move(st));
  }
  {
    CompositeStage st;
    st.label = "allgather";
    const PlanCache::Lookup lk = stage_lookup(concat_key);
    st.plan = lk.plan;
    st.cache_hit = lk.cache_hit;
    st.block_units = 1;
    st.in_units = 1;
    st.user_recv_out = true;
    st.round_stride = lk.plan->round_count();
    cp.add_stage(std::move(st));
  }
  return cp;
}

// -- CompositeCursor ---------------------------------------------------------

CompositeCursor::CompositeCursor(CompositePlan plan, mps::Communicator& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, const ReduceOp* op,
                                 int start_round, int tag)
    : plan_(std::move(plan)),
      comm_(&comm),
      send_(send),
      recv_(recv),
      op_(op),
      tag_(tag),
      base_round_(start_round) {
  plan_.check_contract(send_, recv_, op_);
  BRUCK_REQUIRE_MSG(!plan_.stages_.empty(), "empty composite");
  for (const CompositeStage& st : plan_.stages_) {
    BRUCK_REQUIRE_MSG(st.members.empty() && st.plan != nullptr,
                      "CompositeCursor drives world-scope composites only");
  }
  open_stage();
}

void CompositeCursor::open_stage() {
  const CompositeStage& st = plan_.stages_[stage_];
  const std::int64_t b = plan_.block_bytes_;
  const std::span<const std::byte> in =
      st.user_send_in ? send_ : std::span<const std::byte>(stage_in_);
  std::span<std::byte> out;
  if (st.user_recv_out) {
    out = recv_;
  } else {
    stage_out_.assign(static_cast<std::size_t>(st.out_units * b),
                      std::byte{0});
    out = stage_out_;
  }
  const std::int64_t stage_block = st.block_units * b;
  if (st.reducing) {
    cursor_ = std::make_unique<PlanCursor>(st.plan, *comm_, in, out,
                                           stage_block, *op_, base_round_,
                                           tag_);
  } else {
    cursor_ = std::make_unique<PlanCursor>(st.plan, *comm_, in, out,
                                           stage_block, base_round_, tag_);
  }
}

void CompositeCursor::finish_stage() {
  const CompositeStage& st = plan_.stages_[stage_];
  const PlanExecution r = cursor_->result();
  out_.bytes_sent += r.bytes_sent;
  out_.bytes_reduced += r.bytes_reduced;
  comm_->record_plan_event(mps::PlanEvent{st.cache_hit,
                                          st.plan->round_count(),
                                          r.bytes_sent, r.bytes_reduced,
                                          tag_});
  base_round_ += st.round_stride;
  const bool last = stage_ + 1 == plan_.stages_.size();
  if (!last) {
    const CompositeStage& next = plan_.stages_[stage_ + 1];
    std::vector<std::byte> next_in(
        static_cast<std::size_t>(next.in_units * plan_.block_bytes_),
        std::byte{0});
    const std::span<const std::byte> out =
        st.user_recv_out ? std::span<const std::byte>(recv_)
                         : std::span<const std::byte>(stage_out_);
    plan_.apply_splices(st, out, next_in, op_);
    stage_in_ = std::move(next_in);
  }
  cursor_.reset();
  ++stage_;
  if (last) {
    out_.next_round = base_round_;
    done_ = true;
  }
}

std::vector<mps::PortHandle> CompositeCursor::post_ready() {
  std::vector<mps::PortHandle> handles;
  while (!done_) {
    if (!cursor_) open_stage();
    const std::vector<mps::PortHandle> batch = cursor_->post_ready();
    handles.insert(handles.end(), batch.begin(), batch.end());
    if (!cursor_->done()) break;
    finish_stage();
  }
  return handles;
}

void CompositeCursor::on_complete(mps::PortHandle h) {
  BRUCK_REQUIRE_MSG(cursor_ != nullptr && !done_,
                    "completion delivered to a finished composite cursor");
  cursor_->on_complete(h);
}

const PlanExecution& CompositeCursor::result() const {
  BRUCK_REQUIRE_MSG(done_, "composite cursor result read before done()");
  return out_;
}

}  // namespace bruck::coll
