#include "coll/layout.hpp"

#include <bit>
#include <sstream>

#include "util/assert.hpp"

namespace bruck::coll {
namespace {

// FNV-1a, matching the PlanKey hash family in plan_cache.cpp.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

// log2 bucket (0 for 0) — the same coarsening shape_digest applies to
// irregular counts, so jittered values of one magnitude class collide.
std::uint64_t log2_bucket(std::int64_t v) {
  if (v <= 0) return 0;
  return static_cast<std::uint64_t>(
      std::bit_width(static_cast<std::uint64_t>(v)));
}

}  // namespace

Layout Layout::contiguous(std::int64_t bytes) {
  BRUCK_REQUIRE(bytes >= 0);
  Layout l;
  l.kind_ = Kind::kContiguous;
  l.count_ = 1;
  l.blocklen_ = bytes;
  l.stride_ = bytes;
  l.tiles_ = 1;
  l.tile_stride_ = bytes;
  return l;
}

Layout Layout::vector(std::int64_t count, std::int64_t blocklen,
                      std::int64_t stride) {
  BRUCK_REQUIRE(count >= 1);
  BRUCK_REQUIRE(blocklen >= 0);
  BRUCK_REQUIRE_MSG(stride >= blocklen, "vector pieces must not overlap");
  Layout l;
  l.kind_ = Kind::kVector;
  l.count_ = count;
  l.blocklen_ = blocklen;
  l.stride_ = stride;
  l.tiles_ = 1;
  l.tile_stride_ = l.block_span();
  return l;
}

Layout Layout::tiled(std::int64_t tiles, std::int64_t tile_stride,
                     std::int64_t count, std::int64_t blocklen,
                     std::int64_t stride) {
  BRUCK_REQUIRE(tiles >= 1);
  Layout l = Layout::vector(count, blocklen, stride);
  l.kind_ = Kind::kTiled;
  l.tiles_ = tiles;
  l.tile_stride_ = tile_stride;
  if (tiles > 1) {
    const std::int64_t tile_span = (count - 1) * stride + blocklen;
    BRUCK_REQUIRE_MSG(tile_stride >= tile_span, "tiles must not overlap");
  }
  return l;
}

Layout Layout::with_block_stride(std::int64_t bytes) const {
  BRUCK_REQUIRE(bytes >= 0);
  Layout l = *this;
  l.block_stride_ = bytes;
  return l;
}

std::int64_t Layout::block_span() const {
  if (block_bytes() == 0) return 0;
  return (tiles_ - 1) * tile_stride_ + (count_ - 1) * stride_ + blocklen_;
}

std::int64_t Layout::block_stride() const {
  return block_stride_ > 0 ? block_stride_ : block_span();
}

std::int64_t Layout::span_of(std::int64_t logical_bytes) const {
  BRUCK_REQUIRE(logical_bytes >= 0 && logical_bytes <= block_bytes());
  if (logical_bytes == 0) return 0;
  // Locate the piece holding the last logical byte; physical end = that
  // piece's origin + bytes used of it.
  const std::int64_t g = (logical_bytes - 1) / blocklen_;  // global piece
  const std::int64_t used = logical_bytes - g * blocklen_;
  const std::int64_t t = g / count_;
  const std::int64_t p = g % count_;
  return t * tile_stride_ + p * stride_ + used;
}

std::int64_t Layout::span_bytes(std::int64_t nblocks) const {
  BRUCK_REQUIRE(nblocks >= 0);
  if (nblocks == 0 || block_bytes() == 0) return 0;
  return (nblocks - 1) * block_stride() + block_span();
}

bool Layout::is_contiguous() const {
  if (block_bytes() == 0) return true;
  const bool piece_dense = count_ <= 1 || stride_ == blocklen_;
  const bool tile_dense =
      tiles_ <= 1 || (piece_dense && tile_stride_ == count_ * blocklen_);
  const bool packed = block_stride_ == 0 || block_stride_ == block_bytes();
  return piece_dense && tile_dense && packed;
}

bool Layout::elem_aligned(std::int64_t elem_bytes) const {
  BRUCK_REQUIRE(elem_bytes >= 1);
  return blocklen_ % elem_bytes == 0;
}

std::uint64_t Layout::digest() const {
  if (is_contiguous()) return 0;
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(kind_));
  h = fnv_mix(h, log2_bucket(count_));
  h = fnv_mix(h, log2_bucket(blocklen_));
  h = fnv_mix(h, log2_bucket(tiles_));
  // Denseness flags, not exact strides: jittered strides of one shape
  // class must collide (plans are layout-free; this is cache policy only).
  const std::uint64_t flags =
      (count_ > 1 && stride_ == blocklen_ ? 1ULL : 0) |
      (tiles_ > 1 && tile_stride_ == count_ * blocklen_ ? 2ULL : 0) |
      (block_stride_ != 0 && block_stride_ != block_span() ? 4ULL : 0);
  h = fnv_mix(h, flags);
  return h == 0 ? 1 : h;
}

void Layout::append_extents(std::int64_t origin, std::int64_t lo,
                            std::int64_t hi,
                            std::vector<ByteExtent>& out) const {
  BRUCK_REQUIRE(lo >= 0 && lo <= hi && hi <= block_bytes());
  if (lo == hi) return;
  const std::int64_t g_first = lo / blocklen_;
  const std::int64_t g_last = (hi - 1) / blocklen_;
  for (std::int64_t g = g_first; g <= g_last; ++g) {
    const std::int64_t t = g / count_;
    const std::int64_t p = g % count_;
    const std::int64_t piece_lo = g * blocklen_;        // logical
    const std::int64_t phys = origin + t * tile_stride_ + p * stride_;
    const std::int64_t from = std::max(lo, piece_lo) - piece_lo;
    const std::int64_t to = std::min(hi, piece_lo + blocklen_) - piece_lo;
    const std::int64_t off = phys + from;
    const std::int64_t len = to - from;
    if (len <= 0) continue;
    if (!out.empty() && out.back().offset + out.back().bytes == off) {
      out.back().bytes += len;  // merge physically adjacent runs
    } else {
      out.push_back(ByteExtent{off, len});
    }
  }
}

std::string Layout::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kContiguous:
      os << "contig(" << block_bytes() << ")";
      break;
    case Kind::kVector:
      os << "vector{count=" << count_ << ", blocklen=" << blocklen_
         << ", stride=" << stride_ << "}";
      break;
    case Kind::kTiled:
      os << "tiled{tiles=" << tiles_ << ", tile_stride=" << tile_stride_
         << ", count=" << count_ << ", blocklen=" << blocklen_
         << ", stride=" << stride_ << "}";
      break;
  }
  if (block_stride_ > 0) os << "@block_stride=" << block_stride_;
  return os.str();
}

void layout_gather(std::span<const std::byte> src, const Layout& layout,
                   std::int64_t origin, std::int64_t lo, std::int64_t hi,
                   std::span<std::byte> dst) {
  std::vector<ByteExtent> extents;
  layout.append_extents(origin, lo, hi, extents);
  const std::int64_t packed = gather_extents(src, extents, dst);
  BRUCK_ENSURE(packed == hi - lo);
}

void layout_scatter(std::span<std::byte> dst, const Layout& layout,
                    std::int64_t origin, std::int64_t lo, std::int64_t hi,
                    std::span<const std::byte> src) {
  std::vector<ByteExtent> extents;
  layout.append_extents(origin, lo, hi, extents);
  const std::int64_t scattered = scatter_extents(dst, extents, src);
  BRUCK_ENSURE(scattered == hi - lo);
}

void layout_gather_all(std::span<const std::byte> src, const Layout& layout,
                       std::int64_t nblocks, std::span<std::byte> packed) {
  const std::int64_t b = layout.block_bytes();
  BRUCK_REQUIRE(static_cast<std::int64_t>(packed.size()) >= nblocks * b);
  for (std::int64_t j = 0; j < nblocks; ++j) {
    layout_gather(src, layout, j * layout.block_stride(), 0, b,
                  packed.subspan(static_cast<std::size_t>(j * b),
                                 static_cast<std::size_t>(b)));
  }
}

void layout_scatter_all(std::span<std::byte> dst, const Layout& layout,
                        std::int64_t nblocks,
                        std::span<const std::byte> packed) {
  const std::int64_t b = layout.block_bytes();
  BRUCK_REQUIRE(static_cast<std::int64_t>(packed.size()) >= nblocks * b);
  for (std::int64_t j = 0; j < nblocks; ++j) {
    layout_scatter(dst, layout, j * layout.block_stride(), 0, b,
                   packed.subspan(static_cast<std::size_t>(j * b),
                                  static_cast<std::size_t>(b)));
  }
}

std::uint64_t layout_digest(const Layout* send, const Layout* recv) {
  const std::uint64_t s = send != nullptr ? send->digest() : 0;
  const std::uint64_t r = recv != nullptr ? recv->digest() : 0;
  if (s == 0 && r == 0) return 0;
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, s);
  h = fnv_mix(h, r);  // position-aware: send-strided ≠ recv-strided
  return h == 0 ? 1 : h;
}

}  // namespace bruck::coll
