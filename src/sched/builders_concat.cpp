#include "sched/builders_concat.hpp"

#include "topo/binomial.hpp"
#include "topo/partition.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::sched {

namespace {

/// Append the one-round pattern of a table partition: every rank sends every
/// area on its own port at offset n1 + L_m.
void add_partition_round(Schedule& s, std::int64_t n, std::int64_t n1,
                         const topo::TablePartition& part) {
  const std::size_t round = s.add_round();
  for (const topo::Area& area : part.areas) {
    const std::int64_t offset = n1 + area.left_col();
    const std::int64_t bytes = area.size();
    for (std::int64_t u = 0; u < n; ++u) {
      s.add_transfer(round, Transfer{u, pos_mod(u - offset, n), bytes});
    }
  }
}

}  // namespace

Schedule build_concat_bruck(std::int64_t n, int k, std::int64_t block_bytes,
                            model::ConcatLastRound strategy) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  Schedule s(n, k);
  if (n == 1 || block_bytes == 0) return s;
  strategy = model::resolve_concat_last_round(n, k, block_bytes, strategy);
  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;
  std::int64_t cur = 1;
  for (int i = 0; i + 1 < d; ++i) {
    const std::size_t round = s.add_round();
    for (int j = 1; j <= k; ++j) {
      for (std::int64_t u = 0; u < n; ++u) {
        s.add_transfer(
            round, Transfer{u, pos_mod(u - j * cur, n), cur * block_bytes});
      }
    }
    cur *= (k + 1);
  }
  if (n2 == 0) return s;
  switch (strategy) {
    case model::ConcatLastRound::kByteSplit:
      add_partition_round(
          s, n, n1, topo::byte_split_partition(n1, n2, block_bytes, k));
      break;
    case model::ConcatLastRound::kColumnGranular:
      add_partition_round(
          s, n, n1, topo::column_granular_partition(n1, n2, block_bytes, k));
      break;
    case model::ConcatLastRound::kTwoRound: {
      if (n2 <= k) {
        add_partition_round(
            s, n, n1, topo::column_granular_partition(n1, n2, block_bytes, k));
      } else {
        add_partition_round(
            s, n, n1, topo::byte_split_partition(n1, n2 - k, block_bytes, k));
        const std::size_t round = s.add_round();
        for (std::int64_t c = n2 - k; c < n2; ++c) {
          const std::int64_t offset = n1 + c;
          for (std::int64_t u = 0; u < n; ++u) {
            s.add_transfer(round,
                           Transfer{u, pos_mod(u - offset, n), block_bytes});
          }
        }
      }
      break;
    }
    case model::ConcatLastRound::kAuto:
      BRUCK_ENSURE_MSG(false, "kAuto resolved above");
  }
  return s;
}

Schedule build_concat_folklore(std::int64_t n, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  Schedule s(n, /*k=*/1);
  if (n == 1 || block_bytes == 0) return s;
  const auto gather = topo::binomial_gather_rounds(n);
  for (std::size_t i = 0; i < gather.size(); ++i) {
    const std::size_t round = s.add_round();
    for (const topo::RoundEdge& e : gather[i]) {
      const std::int64_t seg =
          topo::binomial_gather_segment(n, e.from, static_cast<int>(i));
      s.add_transfer(round, Transfer{e.from, e.to, seg * block_bytes});
    }
  }
  const auto bcast = topo::binomial_broadcast_rounds(n);
  for (const auto& edges : bcast) {
    const std::size_t round = s.add_round();
    for (const topo::RoundEdge& e : edges) {
      s.add_transfer(round, Transfer{e.from, e.to, n * block_bytes});
    }
  }
  return s;
}

Schedule build_concat_ring(std::int64_t n, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  Schedule s(n, /*k=*/1);
  if (n == 1 || block_bytes == 0) return s;
  for (std::int64_t t = 0; t < n - 1; ++t) {
    const std::size_t round = s.add_round();
    for (std::int64_t u = 0; u < n; ++u) {
      s.add_transfer(round, Transfer{u, pos_mod(u + 1, n), block_bytes});
    }
  }
  return s;
}

}  // namespace bruck::sched
