// Data-free derivations of the concatenation algorithms' patterns (see
// builders_index.hpp for the cross-check rationale).
#pragma once

#include <cstdint>

#include "model/costs.hpp"
#include "sched/schedule.hpp"

namespace bruck::sched {

/// Section 4 circulant concatenation on n ranks, k ports, b-byte blocks,
/// with the given last-round strategy (kAuto resolves exactly as coll/).
[[nodiscard]] Schedule build_concat_bruck(std::int64_t n, int k,
                                          std::int64_t block_bytes,
                                          model::ConcatLastRound strategy);

/// Folklore binomial gather + broadcast (one port).
[[nodiscard]] Schedule build_concat_folklore(std::int64_t n,
                                             std::int64_t block_bytes);

/// Ring allgather (one port).
[[nodiscard]] Schedule build_concat_ring(std::int64_t n,
                                         std::int64_t block_bytes);

}  // namespace bruck::sched
