#include "sched/builders_index.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"
#include "util/radix.hpp"

namespace bruck::sched {

Schedule build_index_bruck(std::int64_t n, std::int64_t r, int k,
                           std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE(r >= 2 && r <= std::max<std::int64_t>(2, n));
  Schedule s(n, k);
  if (n == 1 || block_bytes == 0) return s;
  const int w = radix_digit_count(n, r);
  for (int x = 0; x < w; ++x) {
    const std::int64_t dist = ipow(r, x);
    const std::int64_t h = radix_subphase_height(n, r, x);
    for (std::int64_t z0 = 1; z0 < h; z0 += k) {
      const std::int64_t z1 = std::min<std::int64_t>(h, z0 + k);
      const std::size_t round = s.add_round();
      for (std::int64_t z = z0; z < z1; ++z) {
        const std::int64_t bytes =
            block_bytes * radix_digit_census(n, r, x, z);
        for (std::int64_t i = 0; i < n; ++i) {
          s.add_transfer(round,
                         Transfer{i, pos_mod(i + z * dist, n), bytes});
        }
      }
    }
  }
  return s;
}

Schedule build_index_direct(std::int64_t n, int k, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  Schedule s(n, k);
  if (n == 1 || block_bytes == 0) return s;
  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    const std::size_t round = s.add_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t i = 0; i < n; ++i) {
        s.add_transfer(round, Transfer{i, pos_mod(i + j, n), block_bytes});
      }
    }
  }
  return s;
}

Schedule build_index_pairwise(std::int64_t n, int k,
                              std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  BRUCK_REQUIRE(is_pow2(n));
  Schedule s(n, k);
  if (n == 1 || block_bytes == 0) return s;
  for (std::int64_t j0 = 1; j0 < n; j0 += k) {
    const std::int64_t j1 = std::min<std::int64_t>(n, j0 + k);
    const std::size_t round = s.add_round();
    for (std::int64_t j = j0; j < j1; ++j) {
      for (std::int64_t i = 0; i < n; ++i) {
        s.add_transfer(round, Transfer{i, i ^ j, block_bytes});
      }
    }
  }
  return s;
}

}  // namespace bruck::sched
