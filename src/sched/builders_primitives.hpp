// Data-free derivations of the one-to-all / all-to-one primitives
// (broadcast, gather, scatter) — see builders_index.hpp for the rationale.
#pragma once

#include <cstdint>

#include "sched/schedule.hpp"

namespace bruck::sched {

/// k-port circulant-tree broadcast from `root`.
[[nodiscard]] Schedule build_bcast_circulant(std::int64_t n, int k,
                                             std::int64_t root,
                                             std::int64_t payload_bytes);

/// One-port binomial broadcast from `root`.
[[nodiscard]] Schedule build_bcast_binomial(std::int64_t n, std::int64_t root,
                                            std::int64_t payload_bytes);

/// One-port binomial gather to `root`.
[[nodiscard]] Schedule build_gather_binomial(std::int64_t n, std::int64_t root,
                                             std::int64_t block_bytes);

/// One-port binomial scatter from `root`.
[[nodiscard]] Schedule build_scatter_binomial(std::int64_t n, std::int64_t root,
                                              std::int64_t block_bytes);

}  // namespace bruck::sched
