#include "sched/builders_primitives.hpp"

#include <algorithm>

#include "topo/binomial.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::sched {

Schedule build_bcast_circulant(std::int64_t n, int k, std::int64_t root,
                               std::int64_t payload_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(root >= 0 && root < n);
  BRUCK_REQUIRE(payload_bytes >= 0);
  Schedule s(n, k);
  if (n == 1 || payload_bytes == 0) return s;
  const int d = ceil_log(n, k + 1);
  const std::int64_t n1 = ipow(k + 1, d - 1);
  const std::int64_t n2 = n - n1;
  for (int i = 0; i < d; ++i) {
    const std::size_t round = s.add_round();
    if (i < d - 1) {
      const std::int64_t base = ipow(k + 1, i);
      for (std::int64_t v = 0; v < base; ++v) {
        for (int j = 1; j <= k; ++j) {
          s.add_transfer(round, Transfer{pos_mod(root + v, n),
                                         pos_mod(root + v + j * base, n),
                                         payload_bytes});
        }
      }
    } else {
      for (std::int64_t c = 0; c < n2; ++c) {
        s.add_transfer(round, Transfer{pos_mod(root + (c % n1), n),
                                       pos_mod(root + n1 + c, n),
                                       payload_bytes});
      }
    }
  }
  return s;
}

Schedule build_bcast_binomial(std::int64_t n, std::int64_t root,
                              std::int64_t payload_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(root >= 0 && root < n);
  BRUCK_REQUIRE(payload_bytes >= 0);
  Schedule s(n, 1);
  if (n == 1 || payload_bytes == 0) return s;
  for (const auto& edges : topo::binomial_broadcast_rounds(n)) {
    const std::size_t round = s.add_round();
    for (const topo::RoundEdge& e : edges) {
      s.add_transfer(round, Transfer{pos_mod(root + e.from, n),
                                     pos_mod(root + e.to, n), payload_bytes});
    }
  }
  return s;
}

Schedule build_gather_binomial(std::int64_t n, std::int64_t root,
                               std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(root >= 0 && root < n);
  BRUCK_REQUIRE(block_bytes >= 0);
  Schedule s(n, 1);
  if (n == 1 || block_bytes == 0) return s;
  const auto rounds = topo::binomial_gather_rounds(n);
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const std::size_t round = s.add_round();
    for (const topo::RoundEdge& e : rounds[i]) {
      const std::int64_t seg =
          topo::binomial_gather_segment(n, e.from, static_cast<int>(i));
      s.add_transfer(round, Transfer{pos_mod(root + e.from, n),
                                     pos_mod(root + e.to, n),
                                     seg * block_bytes});
    }
  }
  return s;
}

Schedule build_scatter_binomial(std::int64_t n, std::int64_t root,
                                std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(root >= 0 && root < n);
  BRUCK_REQUIRE(block_bytes >= 0);
  Schedule s(n, 1);
  if (n == 1 || block_bytes == 0) return s;
  const int d = ceil_log(n, 2);
  for (int j = 0; j < d; ++j) {
    const std::size_t round = s.add_round();
    const std::int64_t stride = ipow(2, d - 1 - j);
    for (std::int64_t v = 0; v + stride < n; v += 2 * stride) {
      const std::int64_t upper =
          std::min<std::int64_t>(stride, n - v - stride);
      s.add_transfer(round, Transfer{pos_mod(root + v, n),
                                     pos_mod(root + v + stride, n),
                                     upper * block_bytes});
    }
  }
  return s;
}

}  // namespace bruck::sched
