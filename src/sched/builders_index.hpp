// Data-free derivations of the index algorithms' communication patterns.
//
// These builders intentionally do NOT share code with the executable
// implementations in coll/ beyond the radix helpers: they re-derive each
// pattern from the paper's description so that "executed trace == built
// schedule" is a meaningful cross-check and not a tautology.
#pragma once

#include <cstdint>

#include "sched/schedule.hpp"

namespace bruck::sched {

/// Section 3 index algorithm with radix r on n ranks, k ports, b-byte
/// blocks.  Returns the empty schedule when n == 1 or b == 0 (no bytes ever
/// enter the fabric), matching the executed trace.
[[nodiscard]] Schedule build_index_bruck(std::int64_t n, std::int64_t r, int k,
                                         std::int64_t block_bytes);

/// Direct exchange: step j pairs i → (i+j) mod n, k steps per round.
[[nodiscard]] Schedule build_index_direct(std::int64_t n, int k,
                                          std::int64_t block_bytes);

/// XOR pairwise exchange (n a power of two): step j pairs i ↔ i xor j.
[[nodiscard]] Schedule build_index_pairwise(std::int64_t n, int k,
                                            std::int64_t block_bytes);

}  // namespace bruck::sched
