#include "sched/virtual_time.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bruck::sched {

VirtualTimeResult virtual_time(const sched::Schedule& schedule,
                               const model::LinearModel& machine) {
  const std::string err = schedule.validate();
  BRUCK_REQUIRE_MSG(err.empty(), err);
  const auto n = static_cast<std::size_t>(schedule.n());
  VirtualTimeResult result;
  result.finish_us.assign(n, 0.0);
  std::vector<double> next(n);
  for (const sched::Round& round : schedule.rounds()) {
    next = result.finish_us;  // idle ranks keep their clocks
    for (const sched::Transfer& t : round.transfers) {
      const auto s = static_cast<std::size_t>(t.src);
      const auto d = static_cast<std::size_t>(t.dst);
      const double start =
          std::max(result.finish_us[s], result.finish_us[d]);
      const double done = start + machine.message_us(t.bytes);
      next[s] = std::max(next[s], done);
      next[d] = std::max(next[d], done);
    }
    result.finish_us = next;
  }
  for (double f : result.finish_us) {
    result.makespan_us = std::max(result.makespan_us, f);
  }
  for (double f : result.finish_us) {
    result.total_slack_us += result.makespan_us - f;
  }
  return result;
}

double virtual_makespan_us(const sched::Schedule& schedule,
                           const model::LinearModel& machine) {
  return virtual_time(schedule, machine).makespan_us;
}

}  // namespace bruck::sched
