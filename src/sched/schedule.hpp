// A data-free intermediate representation of a collective communication
// pattern: the sequence of rounds, each a set of point-to-point transfers.
//
// Every algorithm in coll/ has a corresponding *builder* in this library
// that derives its pattern independently of the data-moving implementation.
// Tests assert that the executed trace (mps/trace.hpp) and the built
// schedule agree transfer-for-transfer; benches evaluate schedules under
// cost models without moving any bytes.
//
// Port semantics follow the paper's k-port model: in one round a processor
// may send at most k messages and receive at most k messages.  Two messages
// between the same pair in one round are legal (they ride distinct ports);
// self-sends are not (local data needs no port).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/metrics.hpp"

namespace bruck::sched {

struct Transfer {
  std::int64_t src = 0;
  std::int64_t dst = 0;
  std::int64_t bytes = 0;

  friend auto operator<=>(const Transfer&, const Transfer&) = default;
};

struct Round {
  std::vector<Transfer> transfers;

  friend bool operator==(const Round&, const Round&) = default;
};

class Schedule {
 public:
  Schedule(std::int64_t n, int k);

  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] std::size_t round_count() const { return rounds_.size(); }
  [[nodiscard]] const std::vector<Round>& rounds() const { return rounds_; }

  /// Append a round (may be appended empty and filled via add_transfer).
  std::size_t add_round();
  void add_transfer(std::size_t round, Transfer t);

  /// Check the k-port model constraints; returns an empty string when valid,
  /// else a human-readable description of the first violation found.
  [[nodiscard]] std::string validate() const;

  /// The paper's measures of this pattern.  Requires a valid schedule.
  [[nodiscard]] model::CostMetrics metrics() const;

  /// Canonical form: transfers of each round sorted by (src, dst, bytes).
  /// Two schedules of the same algorithm must compare equal after
  /// normalization regardless of emission order.
  void normalize();

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::int64_t n_;
  int k_;
  std::vector<Round> rounds_;
};

}  // namespace bruck::sched
