// Human-readable renderings of schedules: a per-round transfer listing and
// an n×n aggregate traffic matrix.  Used by the walkthrough example and the
// benches to show who talks to whom, and by tests as a smoke check that the
// renderer tracks the schedule.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace bruck::sched {

/// One line per round: "round 3: 0->1:16 2->5:16 ...", transfers in
/// normalized order.
[[nodiscard]] std::string render_rounds(const Schedule& schedule);

/// An n×n matrix of total bytes sent from row-rank to column-rank over the
/// whole schedule, with row/column sums.
[[nodiscard]] std::string render_traffic_matrix(const Schedule& schedule);

}  // namespace bruck::sched
