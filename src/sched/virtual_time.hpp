// Event-driven virtual-time evaluation of a schedule.
//
// Section 1.2 notes that finer models (BSP, Postal, LogP) "take into
// account that a receiving processor generally completes its receive
// operation later than the corresponding sending processor finishes its
// send" — and that the paper trades that fidelity for the simple
// T = C1·β + C2·τ.  This module quantifies the gap: it replays a schedule
// with per-rank clocks and no global round barrier, so an idle rank's slack
// is not charged to the makespan.
//
// Semantics: rank r enters round i at its current clock S_r.  A transfer
// (s → d, m bytes) in round i completes at max(S_s, S_d) + β + m·τ (the k
// ports of one rank operate concurrently, so transfers of one round do not
// queue behind each other).  A rank's clock after the round is the latest
// completion among the transfers it touches (or S_r if it idles).  The
// makespan is the largest final clock.
//
// For perfectly balanced algorithms (every rank sends the round maximum in
// every round) the makespan equals the linear model's C1·β + C2·τ exactly;
// for tree algorithms with idle ranks it is strictly smaller.  The
// bench_ablation_models binary reports both across the library.
#pragma once

#include <vector>

#include "model/linear_model.hpp"
#include "sched/schedule.hpp"

namespace bruck::sched {

struct VirtualTimeResult {
  double makespan_us = 0.0;
  /// Final per-rank clocks (µs).
  std::vector<double> finish_us;
  /// Σ over ranks of (makespan − finish): aggregate idle tail.
  double total_slack_us = 0.0;
};

/// Replay `schedule` under `machine` with per-rank clocks.
[[nodiscard]] VirtualTimeResult virtual_time(const sched::Schedule& schedule,
                                             const model::LinearModel& machine);

/// Convenience: makespan only.
[[nodiscard]] double virtual_makespan_us(const sched::Schedule& schedule,
                                         const model::LinearModel& machine);

}  // namespace bruck::sched
