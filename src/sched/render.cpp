#include "sched/render.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace bruck::sched {

std::string render_rounds(const Schedule& schedule) {
  std::ostringstream os;
  for (std::size_t i = 0; i < schedule.rounds().size(); ++i) {
    os << "round " << i << ':';
    std::vector<Transfer> transfers = schedule.rounds()[i].transfers;
    std::sort(transfers.begin(), transfers.end());
    for (const Transfer& t : transfers) {
      os << ' ' << t.src << "->" << t.dst << ':' << t.bytes;
    }
    os << '\n';
  }
  return os.str();
}

std::string render_traffic_matrix(const Schedule& schedule) {
  const auto n = static_cast<std::size_t>(schedule.n());
  std::vector<std::vector<std::int64_t>> traffic(
      n, std::vector<std::int64_t>(n, 0));
  for (const Round& round : schedule.rounds()) {
    for (const Transfer& t : round.transfers) {
      traffic[static_cast<std::size_t>(t.src)][static_cast<std::size_t>(t.dst)] +=
          t.bytes;
    }
  }
  // Column width from the largest entry.
  std::int64_t widest = 0;
  for (const auto& row : traffic) {
    for (std::int64_t v : row) widest = std::max(widest, v);
  }
  const int width =
      std::max<int>(4, static_cast<int>(std::to_string(widest).size()) + 1);

  std::ostringstream os;
  os << "bytes sent (row = source, column = destination)\n";
  os << std::setw(6) << "src\\dst";
  for (std::size_t c = 0; c < n; ++c) os << std::setw(width) << c;
  os << std::setw(width + 2) << "sum" << '\n';
  for (std::size_t r = 0; r < n; ++r) {
    os << std::setw(6) << r << ' ';
    std::int64_t sum = 0;
    for (std::size_t c = 0; c < n; ++c) {
      os << std::setw(width) << traffic[r][c];
      sum += traffic[r][c];
    }
    os << std::setw(width + 2) << sum << '\n';
  }
  os << std::setw(6) << "sum" << ' ';
  for (std::size_t c = 0; c < n; ++c) {
    std::int64_t sum = 0;
    for (std::size_t r = 0; r < n; ++r) sum += traffic[r][c];
    os << std::setw(width) << sum;
  }
  os << '\n';
  return os.str();
}

}  // namespace bruck::sched
