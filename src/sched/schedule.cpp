#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace bruck::sched {

Schedule::Schedule(std::int64_t n, int k) : n_(n), k_(k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
}

std::size_t Schedule::add_round() {
  rounds_.emplace_back();
  return rounds_.size() - 1;
}

void Schedule::add_transfer(std::size_t round, Transfer t) {
  BRUCK_REQUIRE(round < rounds_.size());
  rounds_[round].transfers.push_back(t);
}

std::string Schedule::validate() const {
  std::vector<int> sends(static_cast<std::size_t>(n_));
  std::vector<int> recvs(static_cast<std::size_t>(n_));
  for (std::size_t ri = 0; ri < rounds_.size(); ++ri) {
    std::fill(sends.begin(), sends.end(), 0);
    std::fill(recvs.begin(), recvs.end(), 0);
    if (rounds_[ri].transfers.empty()) {
      std::ostringstream os;
      os << "round " << ri << " is empty (rounds must contain a transfer)";
      return os.str();
    }
    for (const Transfer& t : rounds_[ri].transfers) {
      auto fail = [&](const char* why) {
        std::ostringstream os;
        os << "round " << ri << ": transfer " << t.src << "->" << t.dst << " ("
           << t.bytes << " B): " << why;
        return os.str();
      };
      if (t.src < 0 || t.src >= n_) return fail("source rank out of range");
      if (t.dst < 0 || t.dst >= n_) return fail("destination rank out of range");
      if (t.src == t.dst) return fail("self-send (local data needs no port)");
      if (t.bytes <= 0) return fail("message must carry at least one byte");
      if (++sends[static_cast<std::size_t>(t.src)] > k_)
        return fail("sender exceeds k send ports this round");
      if (++recvs[static_cast<std::size_t>(t.dst)] > k_)
        return fail("receiver exceeds k receive ports this round");
    }
  }
  return {};
}

model::CostMetrics Schedule::metrics() const {
  const std::string err = validate();
  BRUCK_REQUIRE_MSG(err.empty(), err);
  model::CostMetrics m;
  std::vector<std::int64_t> sent(static_cast<std::size_t>(n_));
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n_));
  for (const Round& round : rounds_) {
    std::int64_t round_max = 0;
    for (const Transfer& t : round.transfers) {
      round_max = std::max(round_max, t.bytes);
      m.total_bytes += t.bytes;
      sent[static_cast<std::size_t>(t.src)] += t.bytes;
      recv[static_cast<std::size_t>(t.dst)] += t.bytes;
    }
    m.c1 += 1;
    m.c2 += round_max;
  }
  for (std::int64_t v : sent) m.max_rank_sent = std::max(m.max_rank_sent, v);
  for (std::int64_t v : recv) m.max_rank_recv = std::max(m.max_rank_recv, v);
  return m;
}

void Schedule::normalize() {
  for (Round& round : rounds_) {
    std::sort(round.transfers.begin(), round.transfers.end());
  }
}

}  // namespace bruck::sched
