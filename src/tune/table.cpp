#include "tune/table.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

namespace bruck::tune {

namespace {

constexpr std::string_view kHeader = "bruck-tune-table v1";

std::string hex_bits(double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(model::model_bits(v)));
  return buf;
}

/// Exact inverse of hex_bits: 1..16 lowercase hex digits, nothing else.
std::optional<double> parse_hex_double(std::string_view tok) {
  if (tok.empty() || tok.size() > 16) return std::nullopt;
  std::uint64_t bits = 0;
  for (const char c : tok) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;
    }
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  return std::bit_cast<double>(bits);
}

std::optional<std::int64_t> parse_i64(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const std::string s(tok);
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
  return v;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::optional<LearnedEntry> parse_learned(
    const std::vector<std::string_view>& tok) {
  // learned family n k b β τ γ direct radix segments hier group count mean
  if (tok.size() != 15) return std::nullopt;
  LearnedEntry e;
  const auto family = model::parse_tuned_family(std::string(tok[1]).c_str());
  const auto n = parse_i64(tok[2]);
  const auto k = parse_i64(tok[3]);
  const auto b = parse_i64(tok[4]);
  const auto beta = parse_hex_double(tok[5]);
  const auto tau = parse_hex_double(tok[6]);
  const auto gamma = parse_hex_double(tok[7]);
  const auto direct = parse_i64(tok[8]);
  const auto radix = parse_i64(tok[9]);
  const auto segments = parse_i64(tok[10]);
  const auto hier = parse_i64(tok[11]);
  const auto group = parse_i64(tok[12]);
  const auto count = parse_i64(tok[13]);
  const auto mean = parse_hex_double(tok[14]);
  if (!family || !n || !k || !b || !beta || !tau || !gamma || !direct ||
      !radix || !segments || !hier || !group || !count || !mean) {
    return std::nullopt;
  }
  if (*direct != 0 && *direct != 1) return std::nullopt;
  if (*hier < -1 || *hier > 1) return std::nullopt;
  if (*n < 1 || *k < 1 || *b < 0 || *count < 0) return std::nullopt;
  e.query.family = *family;
  e.query.n = *n;
  e.query.k = static_cast<int>(*k);
  e.query.block_bytes = *b;
  e.query.beta_bits = model::model_bits(*beta);
  e.query.tau_bits = model::model_bits(*tau);
  e.query.gamma_bits = model::model_bits(*gamma);
  e.config.direct = *direct == 1;
  e.config.radix = *radix;
  e.config.segments = static_cast<int>(*segments);
  e.config.hier = static_cast<int>(*hier);
  e.config.group = *group;
  e.observations = *count;
  e.mean_wall_us = *mean;
  return e;
}

}  // namespace

std::string serialize_tune_table(const TuneTable& table) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const auto& [fabric, m] : table.models) {
    out << "model " << fabric << ' ' << hex_bits(m.beta_us) << ' '
        << hex_bits(m.tau_us_per_byte) << ' ' << hex_bits(m.gamma_us_per_byte)
        << '\n';
  }
  std::vector<LearnedEntry> learned = table.learned;
  std::sort(learned.begin(), learned.end(),
            [](const LearnedEntry& a, const LearnedEntry& b) {
              return a.query < b.query;
            });
  for (const LearnedEntry& e : learned) {
    out << "learned " << model::to_string(e.query.family) << ' ' << e.query.n
        << ' ' << e.query.k << ' ' << e.query.block_bytes << ' '
        << hex_bits(std::bit_cast<double>(e.query.beta_bits)) << ' '
        << hex_bits(std::bit_cast<double>(e.query.tau_bits)) << ' '
        << hex_bits(std::bit_cast<double>(e.query.gamma_bits)) << ' '
        << (e.config.direct ? 1 : 0) << ' ' << e.config.radix << ' '
        << e.config.segments << ' ' << e.config.hier << ' ' << e.config.group
        << ' ' << e.observations << ' ' << hex_bits(e.mean_wall_us) << '\n';
  }
  return std::move(out).str();
}

std::optional<TuneTable> parse_tune_table(std::string_view text) {
  TuneTable table;
  std::size_t pos = 0;
  bool saw_header = false;
  std::set<model::TunerQuery> seen;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (!saw_header) {
      if (line != kHeader) return std::nullopt;
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;
    const std::vector<std::string_view> tok = split_ws(line);
    if (tok.empty()) continue;
    if (tok[0] == "model") {
      if (tok.size() != 5) return std::nullopt;
      const auto beta = parse_hex_double(tok[2]);
      const auto tau = parse_hex_double(tok[3]);
      const auto gamma = parse_hex_double(tok[4]);
      if (!beta || !tau || !gamma) return std::nullopt;
      const std::string fabric(tok[1]);
      if (table.models.count(fabric) != 0) return std::nullopt;
      model::LinearModel m;
      m.name = fabric;
      m.beta_us = *beta;
      m.tau_us_per_byte = *tau;
      m.gamma_us_per_byte = *gamma;
      table.models.emplace(fabric, m);
    } else if (tok[0] == "learned") {
      const std::optional<LearnedEntry> e = parse_learned(tok);
      if (!e) return std::nullopt;
      if (!seen.insert(e->query).second) return std::nullopt;
      table.learned.push_back(*e);
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return table;
}

std::optional<TuneTable> load_tune_table(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;  // first run: no table yet
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = std::move(buf).str();
  std::optional<TuneTable> table = parse_tune_table(text);
  if (!table) {
    // One line per process per path: a corrupt table degrades to the
    // compiled-in constants, never to a crash or a half-applied load.
    static std::mutex mu;
    static std::set<std::string>* warned = nullptr;
    std::lock_guard<std::mutex> lock(mu);
    if (warned == nullptr) warned = new std::set<std::string>();
    if (warned->insert(path).second) {
      std::fprintf(stderr,
                   "bruck: ignoring corrupt or mis-versioned tune table "
                   "\"%s\" (want a \"%s\" file); using defaults\n",
                   path.c_str(), std::string(kHeader).c_str());
    }
  }
  return table;
}

bool save_tune_table(const TuneTable& table, const std::string& path) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out << serialize_tune_table(table);
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace bruck::tune
