// Tuning-mode environment knobs, following the repo's strict-parse
// discipline (pure parse_* seams over the raw text; default_* warns once
// per process and falls back rather than silently misconfiguring):
//
//   BRUCK_TUNE_MODE    off | calibrate | adaptive
//       off        — compiled-in machine constants, no measurement
//       calibrate  — measure β/τ/γ per fabric at bootstrap and price plans
//                    with the measured model
//       adaptive   — calibrate + learn from executed plans (wall-clock
//                    feedback, hysteresis-gated switch-and-remember)
//   BRUCK_TUNE_TABLE   path of the persisted learned table (loaded at
//                      bootstrap, rewritten when a learned pick locks in)
#pragma once

#include <optional>
#include <string>

namespace bruck::tune {

enum class TuneMode {
  /// SpawnOptions sentinel: follow BRUCK_TUNE_MODE (resolve_tune_mode).
  kDefault,
  kOff,
  kCalibrate,
  kAdaptive,
};

[[nodiscard]] const char* to_string(TuneMode mode);

/// Strict parse of a BRUCK_TUNE_MODE value ("off" | "calibrate" |
/// "adaptive", exact); anything else — including "default", prefixes, or
/// case variants — ⇒ nullopt.
[[nodiscard]] std::optional<TuneMode> parse_tune_mode(const char* text);

/// BRUCK_TUNE_MODE with warn-once fallback to kOff.
[[nodiscard]] TuneMode default_tune_mode();

/// Strict parse of a BRUCK_TUNE_TABLE value: non-empty, at most 4096
/// bytes, no newline/carriage-return (the table format is line-oriented and
/// a path containing one could never round-trip through it).
[[nodiscard]] std::optional<std::string> parse_tune_table_path(
    const char* text);

/// BRUCK_TUNE_TABLE with warn-once fallback to "no table" (nullopt).
[[nodiscard]] std::optional<std::string> default_tune_table_path();

/// kDefault ⇒ default_tune_mode(); anything else passes through.
[[nodiscard]] TuneMode resolve_tune_mode(TuneMode requested);

}  // namespace bruck::tune
