// The persisted tuning table: measured per-fabric machine models plus the
// learned per-(geometry, machine) pick overrides, serialized to a
// versioned line-oriented text file.
//
//   bruck-tune-table v1
//   model <fabric> <beta_hex> <tau_hex> <gamma_hex>
//   learned <family> <n> <k> <block_bytes> <beta_hex> <tau_hex> <gamma_hex>
//           <direct> <radix> <segments> <hier> <group> <count> <mean_hex>
//
// Every double travels as the 16-digit hex of its bit pattern
// (model::model_bits), so a table round-trips *bitwise*: the reloaded
// overrides key on exactly the machine constants that produced them.
// Serialization is deterministic (models sorted by fabric name, learned
// entries by query), so save → load → save is byte-identical.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/linear_model.hpp"
#include "model/tuner.hpp"

namespace bruck::tune {

/// One learned pick with its evidence (observation count and mean measured
/// wall time of the winning configuration).
struct LearnedEntry {
  model::TunerQuery query;
  model::TunerConfig config;
  std::int64_t observations = 0;
  double mean_wall_us = 0.0;
};

struct TuneTable {
  /// Fabric name ("thread" | "shm" | "socket" | ...) → measured model.
  std::map<std::string, model::LinearModel> models;
  std::vector<LearnedEntry> learned;
};

[[nodiscard]] std::string serialize_tune_table(const TuneTable& table);

/// Strict parse of a full table text.  Any malformed line, unknown record
/// kind, or version mismatch rejects the whole table (nullopt): a partially
/// applied table would silently mix stale and fresh picks.
[[nodiscard]] std::optional<TuneTable> parse_tune_table(std::string_view text);

/// Read + parse `path`.  A missing file is a clean nullopt (first run); a
/// present-but-corrupt or mis-versioned file is nullopt plus a one-line
/// warning (once per process per path).
[[nodiscard]] std::optional<TuneTable> load_tune_table(const std::string& path);

/// Atomically replace `path` with the serialized table (write a sibling
/// temp file, then rename) so concurrent rank processes can only ever
/// observe a complete table.  Returns false on I/O failure.
bool save_tune_table(const TuneTable& table, const std::string& path);

}  // namespace bruck::tune
