// The adaptive autotuner: learn from executed plans.
//
// Per tuned decision point (model::TunerQuery) the tuner explores a small
// fixed neighborhood of the model's fully resolved choice — radix ±1 and
// wire segments ×2 / ÷2 — by rerouting a deterministic schedule of
// executions through each arm, accumulating measured wall times, and then
// *locking in* a winner: the incumbent (the model's choice) unless some
// neighbor has ≥ min_observations samples and beats the incumbent's mean
// by ≥ min_margin (the hysteresis rule).  Once locked a key never changes
// again in this process (no oscillation); a non-incumbent winner is also
// installed as a model::set_tuner_override (so pick_*_cached returns it
// directly) and, when a persist path is set, appended to the tune table on
// disk.
//
// SPMD determinism: decide() must return the SAME config on every rank of
// a collective or ranks lower mismatched plans and deadlock.  The schedule
// is therefore a pure function of a per-rank (thread_local) per-key call
// ordinal — SPMD ranks call decide() in lockstep, so equal ordinals ⇒
// equal arms — and the winner is computed once (first arrival, under the
// mutex) at a fixed ordinal boundary, then reused verbatim by every rank.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "model/tuner.hpp"
#include "tune/table.hpp"

namespace bruck::tune {

struct AdaptiveOptions {
  /// Samples required of every arm before a switch may fire.
  int min_observations = 4;
  /// Relative margin a neighbor must win by (0.05 = 5% faster mean).
  double min_margin = 0.05;
};

class AdaptiveTuner {
 public:
  explicit AdaptiveTuner(AdaptiveOptions options = {});

  /// The model::AdaptiveHook entry point (see file comment for the
  /// determinism contract).  `base` must be the model's fully resolved
  /// choice — radix AND wire segments — so neighbors are real plans.
  [[nodiscard]] std::optional<model::TunerConfig> decide(
      const model::TunerQuery& query, const model::TunerConfig& base);

  /// The model::ObservationHook entry point: credit `sample.wall_us` to
  /// the arm whose config matches `sample.config`.
  void observe(const model::ExecutionSample& sample);

  /// Locked keys whose winner differs from the model's choice.
  [[nodiscard]] std::vector<LearnedEntry> learned() const;

  /// Number of keys that have locked in (winner decided), regardless of
  /// whether the winner differs from the model's choice.
  [[nodiscard]] std::size_t locked_count() const;

  /// Register this tuner as the process's model-layer hooks.
  void install();

  /// Forget all per-key state (arms, samples, locks).  Does NOT clear
  /// model-layer overrides — model::clear_tuner_cache owns those.
  void reset();

  /// When set, a locked-in non-incumbent winner rewrites `path` (merged
  /// with the table already there, atomic replace).
  void set_persist_path(std::string path);
  [[nodiscard]] std::string persist_path() const;

  [[nodiscard]] const AdaptiveOptions& options() const { return options_; }

 private:
  struct Arm {
    model::TunerConfig config;
    std::int64_t count = 0;
    double total_us = 0.0;
  };
  struct KeyState {
    std::vector<Arm> arms;  ///< arms[0] is the incumbent (model's choice)
    bool locked = false;
    model::TunerConfig winner;
  };

  void persist_locked(const model::TunerQuery& query,
                      const KeyState& state) const;

  AdaptiveOptions options_;
  mutable std::mutex mu_;
  std::map<model::TunerQuery, KeyState> keys_;
  /// (ordinal domain, query) → next call ordinal: the deterministic
  /// exploration schedule, one independent stream per rank.
  std::map<std::pair<int, model::TunerQuery>, std::uint64_t> ordinals_;
  std::string persist_path_;
};

/// Bind the calling thread to an ordinal domain (its SPMD rank) for every
/// subsequent AdaptiveTuner::decide.  Rank identity must come from the
/// communicator, not the thread (thread ids are recycled across spawns,
/// which would desynchronize the per-rank schedules); bootstrap_rank sets
/// this, and -1 (the default) is the no-rank-context stream.
void set_adaptive_ordinal_domain(int domain);
[[nodiscard]] int adaptive_ordinal_domain();

/// The process-global tuner bootstrap_rank installs in adaptive mode.
[[nodiscard]] AdaptiveTuner& global_adaptive();

}  // namespace bruck::tune
