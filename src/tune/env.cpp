#include "tune/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

namespace bruck::tune {

const char* to_string(TuneMode mode) {
  switch (mode) {
    case TuneMode::kDefault:
      return "default";
    case TuneMode::kOff:
      return "off";
    case TuneMode::kCalibrate:
      return "calibrate";
    case TuneMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::optional<TuneMode> parse_tune_mode(const char* text) {
  if (text == nullptr) return std::nullopt;
  const std::string_view s(text);
  if (s == "off") return TuneMode::kOff;
  if (s == "calibrate") return TuneMode::kCalibrate;
  if (s == "adaptive") return TuneMode::kAdaptive;
  return std::nullopt;
}

TuneMode default_tune_mode() {
  const char* env = std::getenv("BRUCK_TUNE_MODE");
  if (env == nullptr) return TuneMode::kOff;
  if (const auto parsed = parse_tune_mode(env)) return *parsed;
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid BRUCK_TUNE_MODE=\"%s\" "
                 "(want off|calibrate|adaptive); using off\n",
                 env);
  });
  return TuneMode::kOff;
}

std::optional<std::string> parse_tune_table_path(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  const std::string_view s(text);
  if (s.size() > 4096) return std::nullopt;
  if (s.find('\n') != std::string_view::npos ||
      s.find('\r') != std::string_view::npos) {
    return std::nullopt;
  }
  return std::string(s);
}

std::optional<std::string> default_tune_table_path() {
  const char* env = std::getenv("BRUCK_TUNE_TABLE");
  if (env == nullptr) return std::nullopt;
  if (auto parsed = parse_tune_table_path(env)) return parsed;
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid BRUCK_TUNE_TABLE=\"%.64s\" "
                 "(want a non-empty single-line path <= 4096 bytes); "
                 "tuning table disabled\n",
                 env);
  });
  return std::nullopt;
}

TuneMode resolve_tune_mode(TuneMode requested) {
  return requested == TuneMode::kDefault ? default_tune_mode() : requested;
}

}  // namespace bruck::tune
