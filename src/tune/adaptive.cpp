#include "tune/adaptive.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bruck::tune {

namespace {

/// The explored neighborhood of a fully resolved model choice.  Live
/// exploration is scoped to the flat alltoall and reduce-scatter families
/// (one collective per decide call, config fully described by radix +
/// segments); the hierarchical and vector families take overrides only
/// from a loaded table.
std::vector<model::TunerConfig> neighbor_configs(
    const model::TunerQuery& query, const model::TunerConfig& base) {
  std::vector<model::TunerConfig> out;
  if (query.family != model::TunedFamily::kIndexRadix &&
      query.family != model::TunedFamily::kReduceScatter) {
    return out;
  }
  if (base.direct) return out;  // a direct exchange has no radix to nudge
  const std::int64_t max_radix = std::max<std::int64_t>(2, query.n);
  auto push_unique = [&](model::TunerConfig c) {
    if (c == base) return;
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  };
  if (base.radix - 1 >= 2) {
    model::TunerConfig c = base;
    c.radix = base.radix - 1;
    push_unique(c);
  }
  if (base.radix + 1 <= max_radix) {
    model::TunerConfig c = base;
    c.radix = base.radix + 1;
    push_unique(c);
  }
  if (base.segments >= 1) {
    model::TunerConfig c = base;
    c.segments = base.segments * 2;
    push_unique(c);
  }
  if (base.segments >= 2) {
    model::TunerConfig c = base;
    c.segments = base.segments / 2;
    push_unique(c);
  }
  return out;
}

}  // namespace

AdaptiveTuner::AdaptiveTuner(AdaptiveOptions options) : options_(options) {
  BRUCK_REQUIRE(options_.min_observations >= 1);
  BRUCK_REQUIRE(options_.min_margin >= 0.0);
}

namespace {

thread_local int tl_ordinal_domain = -1;

}  // namespace

void set_adaptive_ordinal_domain(int domain) { tl_ordinal_domain = domain; }

int adaptive_ordinal_domain() { return tl_ordinal_domain; }

std::optional<model::TunerConfig> AdaptiveTuner::decide(
    const model::TunerQuery& query, const model::TunerConfig& base) {
  std::lock_guard<std::mutex> lock(mu_);
  // The schedule key: a per-rank per-query call ordinal.  SPMD ranks call
  // decide() in lockstep, so every rank of one collective holds the same
  // ordinal and maps to the same arm — shared state (sample counts) is
  // deliberately NOT consulted while exploring.
  const std::uint64_t ord = ordinals_[{tl_ordinal_domain, query}]++;

  KeyState& st = keys_[query];
  if (st.arms.empty()) {
    st.arms.push_back(Arm{base});
    for (const model::TunerConfig& c : neighbor_configs(query, base)) {
      st.arms.push_back(Arm{c});
    }
  }
  if (st.locked) return st.winner;

  const auto per_arm = static_cast<std::uint64_t>(options_.min_observations);
  const std::uint64_t horizon = st.arms.size() * per_arm;
  if (ord < horizon) {
    return st.arms[static_cast<std::size_t>(ord / per_arm)].config;
  }

  // Exploration budget spent: the first rank to get here decides, everyone
  // after (same or later ordinal) reuses the locked winner verbatim.
  const Arm& incumbent = st.arms[0];
  const double incumbent_mean =
      incumbent.count > 0 ? incumbent.total_us / incumbent.count : 0.0;
  st.winner = incumbent.config;
  const Arm* best = nullptr;
  for (std::size_t i = 1; i < st.arms.size(); ++i) {
    const Arm& a = st.arms[i];
    if (a.count < options_.min_observations) continue;
    const double mean = a.total_us / a.count;
    if (best == nullptr || mean < best->total_us / best->count) best = &a;
  }
  // The hysteresis rule: switch only with full evidence on both sides and
  // a mean at least min_margin better than the incumbent's.
  if (best != nullptr && incumbent.count >= options_.min_observations) {
    const double best_mean = best->total_us / best->count;
    if (best_mean < incumbent_mean * (1.0 - options_.min_margin)) {
      st.winner = best->config;
    }
  }
  st.locked = true;
  if (!(st.winner == incumbent.config)) {
    // Remember: pick_*_cached now returns the winner directly, and the
    // table on disk (if configured) records it for the next process.
    model::set_tuner_override(query, st.winner);
    persist_locked(query, st);
  }
  return st.winner;
}

void AdaptiveTuner::observe(const model::ExecutionSample& sample) {
  if (!(sample.wall_us > 0.0)) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = keys_.find(sample.query);
  if (it == keys_.end()) return;
  for (Arm& arm : it->second.arms) {
    if (arm.config == sample.config) {
      ++arm.count;
      arm.total_us += sample.wall_us;
      return;
    }
  }
}

std::vector<LearnedEntry> AdaptiveTuner::learned() const {
  std::vector<LearnedEntry> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [query, st] : keys_) {
    if (!st.locked || st.arms.empty() || st.winner == st.arms[0].config) {
      continue;
    }
    LearnedEntry e;
    e.query = query;
    e.config = st.winner;
    for (const Arm& arm : st.arms) {
      if (arm.config == st.winner && arm.count > 0) {
        e.observations = arm.count;
        e.mean_wall_us = arm.total_us / arm.count;
      }
    }
    out.push_back(e);
  }
  return out;
}

std::size_t AdaptiveTuner::locked_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [query, st] : keys_) {
    (void)query;
    if (st.locked) ++n;
  }
  return n;
}

void AdaptiveTuner::install() {
  model::set_adaptive_hook(
      [this](const model::TunerQuery& q, const model::TunerConfig& base) {
        return decide(q, base);
      });
  model::set_observation_hook(
      [this](const model::ExecutionSample& s) { observe(s); });
}

void AdaptiveTuner::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  keys_.clear();
  ordinals_.clear();
}

void AdaptiveTuner::set_persist_path(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  persist_path_ = std::move(path);
}

std::string AdaptiveTuner::persist_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return persist_path_;
}

void AdaptiveTuner::persist_locked(const model::TunerQuery& query,
                                   const KeyState& state) const {
  // Caller holds mu_.  Merge into whatever table is on disk (preserving
  // its models and other entries), last writer wins across rank processes.
  if (persist_path_.empty()) return;
  TuneTable table =
      load_tune_table(persist_path_).value_or(TuneTable{});
  LearnedEntry entry;
  entry.query = query;
  entry.config = state.winner;
  for (const Arm& arm : state.arms) {
    if (arm.config == state.winner && arm.count > 0) {
      entry.observations = arm.count;
      entry.mean_wall_us = arm.total_us / arm.count;
    }
  }
  bool replaced = false;
  for (LearnedEntry& e : table.learned) {
    if (e.query == query) {
      e = entry;
      replaced = true;
    }
  }
  if (!replaced) table.learned.push_back(entry);
  save_tune_table(table, persist_path_);
}

AdaptiveTuner& global_adaptive() {
  static AdaptiveTuner tuner;
  return tuner;
}

}  // namespace bruck::tune
