#include "tune/runtime.hpp"

#include <mutex>

#include "tune/adaptive.hpp"

namespace bruck::tune {

namespace {

struct TableSource {
  std::mutex mu;
  std::string path;
  std::string fabric;
};

TableSource& table_source() {
  static TableSource source;
  return source;
}

/// Re-read the source file and reinstall what it holds.  Runs at
/// set_tune_table_source time and again from the model layer's reload hook
/// after every clear_tuner_cache().
void apply_table_source() {
  std::string path;
  std::string fabric;
  {
    TableSource& src = table_source();
    std::lock_guard<std::mutex> lock(src.mu);
    path = src.path;
    fabric = src.fabric;
  }
  if (path.empty()) return;
  const std::optional<TuneTable> table = load_tune_table(path);
  if (!table) return;
  // A live measured model outranks the file's recorded one (it is
  // fresher); the file's model covers fabrics calibration skipped.
  if (!model::active_machine().has_value()) {
    const auto it = table->models.find(fabric);
    if (it != table->models.end()) model::set_active_machine(it->second);
  }
  for (const LearnedEntry& e : table->learned) {
    model::set_tuner_override(e.query, e.config);
  }
}

}  // namespace

void set_tune_table_source(const std::string& path,
                           const std::string& fabric) {
  {
    TableSource& src = table_source();
    std::lock_guard<std::mutex> lock(src.mu);
    src.path = path;
    src.fabric = fabric;
  }
  if (path.empty()) {
    model::set_tuner_reload_hook({});
    return;
  }
  model::set_tuner_reload_hook([] { apply_table_source(); });
  apply_table_source();
}

bool record_machine(const std::string& path, const std::string& fabric,
                    const model::LinearModel& machine) {
  TuneTable table = load_tune_table(path).value_or(TuneTable{});
  table.models[fabric] = machine;
  return save_tune_table(table, path);
}

RankBootstrap bootstrap_rank(mps::Communicator& comm,
                             const std::string& fabric, TuneMode mode,
                             bool allow_exploration) {
  RankBootstrap out;
  out.mode = resolve_tune_mode(mode);
  if (out.mode == TuneMode::kOff) return out;

  const Calibration cal = calibrate(comm, fabric);
  if (cal.measured) {
    model::set_active_machine(cal.machine);
    model::set_active_two_level(std::nullopt);  // uniform over the measured
    out.calibrated = true;
    out.machine = cal.machine;
  }

  const std::optional<std::string> path = default_tune_table_path();
  if (path) {
    set_tune_table_source(*path, fabric);
    if (cal.measured && comm.rank() == 0) {
      record_machine(*path, fabric, cal.machine);
    }
  }

  if (out.mode == TuneMode::kAdaptive && allow_exploration) {
    AdaptiveTuner& tuner = global_adaptive();
    if (path) tuner.set_persist_path(*path);
    tuner.install();
    set_adaptive_ordinal_domain(static_cast<int>(comm.rank()));
  }
  return out;
}

}  // namespace bruck::tune
