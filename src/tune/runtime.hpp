// Process-level glue of the tuning subsystem: resolve the tuning mode,
// run calibration at fabric bootstrap, publish the measured model to the
// model layer, load/apply the persisted table, and (adaptive mode) install
// the global AdaptiveTuner's hooks.
//
// spawn_local calls bootstrap_rank() on every rank before the user body;
// bruckcl_plan's `calibrate` subcommand and tests call it (or calibrate())
// directly.
#pragma once

#include <optional>
#include <string>

#include "model/linear_model.hpp"
#include "mps/communicator.hpp"
#include "tune/calibrate.hpp"
#include "tune/env.hpp"
#include "tune/table.hpp"

namespace bruck::tune {

/// What bootstrap_rank did on this rank.
struct RankBootstrap {
  TuneMode mode = TuneMode::kOff;  ///< resolved (never kDefault)
  bool calibrated = false;         ///< a measured model was published
  model::LinearModel machine;      ///< the published model when calibrated
};

/// Tuning bootstrap for one rank of a fabric.  Collective when the mode
/// calibrates (every rank must call it at the same point).
///
/// `allow_exploration` gates adaptive *live* exploration: it requires all
/// ranks to share one process (the thread fabric) so the per-key sample
/// pool and the locked winner are common to every rank — forked fabrics
/// (one process per rank) would lock divergent winners from divergent
/// local samples and deadlock on mismatched plans.  With exploration off,
/// adaptive mode still calibrates and applies table-learned overrides.
RankBootstrap bootstrap_rank(mps::Communicator& comm,
                             const std::string& fabric, TuneMode mode,
                             bool allow_exploration);

/// Point the reload seam at `path`: loads the table now (installing its
/// models for `fabric` — unless a measured model is already active — and
/// its learned overrides), and registers the model-layer reload hook so a
/// clear_tuner_cache() re-reads the FILE and reinstalls what it holds.
/// That file is then the overrides' source of truth: entries it no longer
/// contains do not survive a clear.  An empty path unregisters the seam.
void set_tune_table_source(const std::string& path, const std::string& fabric);

/// Merge `machine` into the table at `path` as fabric `fabric`'s measured
/// model (creating the table if absent; atomic replace).
bool record_machine(const std::string& path, const std::string& fabric,
                    const model::LinearModel& machine);

}  // namespace bruck::tune
