#include "tune/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "util/assert.hpp"

namespace bruck::tune {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             Clock::now() - start)
      .count();
}

/// Per-message wall time of `reps` ring-neighbor rounds at `bytes`.
double time_ring_us(mps::Communicator& comm, int tag, int& round,
                    std::int64_t bytes, int reps) {
  const std::int64_t n = comm.size();
  const std::int64_t next = (comm.rank() + 1) % n;
  const std::int64_t prev = (comm.rank() + n - 1) % n;
  std::vector<std::byte> out(static_cast<std::size_t>(bytes),
                             std::byte{0x3C});
  std::vector<std::byte> in(static_cast<std::size_t>(bytes));
  // One untimed warmup round absorbs first-touch costs (page faults,
  // socket buffer growth) that would inflate β.
  comm.post_send(round, next, out, 1, tag);
  comm.wait_recv(comm.post_recv(round, prev, in, 1, tag));
  ++round;
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < reps; ++i) {
    comm.post_send(round, next, out, 1, tag);
    comm.wait_recv(comm.post_recv(round, prev, in, 1, tag));
    ++round;
  }
  return elapsed_us(start) / reps;
}

/// Per-byte wall time of the reduction combine loop (local, no wire).
double time_combine_us_per_byte() {
  constexpr std::size_t kElems = 1 << 15;
  std::vector<double> acc(kElems, 1.0);
  std::vector<double> contrib(kElems, 2.0);
  constexpr int kReps = 8;
  const Clock::time_point start = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < kElems; ++i) acc[i] += contrib[i];
  }
  double us = elapsed_us(start);
  // Keep the accumulators observable so the loop can't be elided.
  volatile double sink = acc[0];
  (void)sink;
  return us / (kReps * static_cast<double>(kElems * sizeof(double)));
}

/// Binomial-tree broadcast of `values` from rank 0 over the calibrate tag:
/// every rank ends with rank 0's exact bytes (bit-identical constants).
void broadcast_doubles(mps::Communicator& comm, int tag, int& round,
                       double* values, std::size_t count) {
  const std::int64_t n = comm.size();
  const std::int64_t rank = comm.rank();
  auto span_of = [&](void* p) {
    return std::span<std::byte>(static_cast<std::byte*>(p),
                                count * sizeof(double));
  };
  for (std::int64_t d = 1; d < n; d *= 2) {
    if (rank < d && rank + d < n) {
      comm.post_send(round, rank + d,
                     std::span<const std::byte>(span_of(values)), 1, tag);
    } else if (rank >= d && rank < 2 * d) {
      comm.wait_recv(comm.post_recv(round, rank - d, span_of(values), 1, tag));
    }
    ++round;
  }
}

}  // namespace

Calibration calibrate(mps::Communicator& comm, const std::string& fabric_name,
                      const CalibrateOptions& options) {
  BRUCK_REQUIRE(options.base_reps >= 2);
  Calibration out;
  out.machine.name = fabric_name;
  if (comm.size() == 1 || !comm.native_port_engine()) {
    return out;  // nothing to measure / no tag namespace to measure in
  }

  const int tag = comm.allocate_collective_tag();
  int round = 0;
  comm.barrier();  // start the ladder with everyone past bootstrap

  // The ladder: small sizes pin β, the large end pins the τ slope.  Reps
  // shrink with size so the whole ladder stays ~milliseconds per fabric —
  // but only by half per rung: the τ fit is a slope through the large
  // anchors, and starving them of samples lets one scheduler hiccup
  // collapse the slope to the clamp floor.
  const std::int64_t sizes[] = {16, 1024, 16384, 131072};
  double per_msg_us[std::size(sizes)] = {};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const int reps = std::max(3, options.base_reps >> static_cast<int>(i));
    per_msg_us[i] = time_ring_us(comm, tag, round, sizes[i], reps);
  }
  const double gamma = time_combine_us_per_byte();

  // Rank 0 fits and broadcasts; everyone else adopts its constants
  // verbatim (ranks' raw timings differ — the model must not).
  double constants[3] = {0.0, 0.0, 0.0};
  if (comm.rank() == 0) {
    double mean_s = 0.0;
    double mean_t = 0.0;
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      mean_s += static_cast<double>(sizes[i]);
      mean_t += per_msg_us[i];
    }
    mean_s /= std::size(sizes);
    mean_t /= std::size(sizes);
    double cov = 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      const double ds = static_cast<double>(sizes[i]) - mean_s;
      cov += ds * (per_msg_us[i] - mean_t);
      var += ds * ds;
    }
    const double tau = std::max(var > 0.0 ? cov / var : 0.0, 1e-9);
    // β from the startup-dominated end of the ladder, with the (tiny)
    // transfer share of the smallest message removed; clamped positive.
    const double beta =
        std::max(per_msg_us[0] - tau * static_cast<double>(sizes[0]), 1e-3);
    constants[0] = beta;
    constants[1] = tau;
    constants[2] = std::max(gamma, 1e-9);
  }
  broadcast_doubles(comm, tag, round, constants, 3);
  comm.barrier();  // every rank drained before the tag is retired
  comm.release_tag(tag);

  out.machine.beta_us = constants[0];
  out.machine.tau_us_per_byte = constants[1];
  out.machine.gamma_us_per_byte = constants[2];
  out.ladder_points = static_cast<int>(std::size(sizes));
  out.measured = true;
  return out;
}

}  // namespace bruck::tune
