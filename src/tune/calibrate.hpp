// Online cost-model calibration: measure a fabric's real β (per-message
// startup), τ (per-byte transfer), and γ (per-byte combine) with a short
// micro-exchange ladder, producing the LinearModel the tuner then prices
// plans with — measured constants instead of the compiled-in machines.
//
// The ladder is a neighbor ring exchange (each rank sends to rank+1 and
// receives from rank-1 per round) over a handful of message sizes: the
// smallest size is startup-dominated (≈ β), the spread across sizes fits τ
// as a least-squares slope.  γ comes from a local double-accumulate loop —
// no wire traffic, same arithmetic the reduction executor performs.
//
// SPMD discipline: the ladder runs on its own allocated collective tag
// (never consuming tag-0 rounds the caller's collectives will use), every
// rank participates, and rank 0 fits the model and broadcasts the three
// constants over a binomial tree so all ranks hold a *bit-identical*
// model — divergent constants would give divergent tuner keys and picks.
#pragma once

#include <string>

#include "model/linear_model.hpp"
#include "mps/communicator.hpp"

namespace bruck::tune {

struct CalibrateOptions {
  /// Repetitions at the smallest ladder size; larger sizes run fewer
  /// (cost-bounded), never below 2.
  int base_reps = 24;
};

struct Calibration {
  /// Measured machine (name = the fabric label passed in).  When
  /// `measured` is false this is the compiled-in default, untouched.
  model::LinearModel machine;
  /// Ladder sizes actually timed (0 when calibration was skipped).
  int ladder_points = 0;
  /// False when calibration was skipped: single rank (nothing to
  /// exchange) or a non-native port engine (a wrapper fabric whose
  /// deferred engine can't host an extra tag).
  bool measured = false;
};

/// Run the ladder on `comm`.  Collective: every rank of the communicator
/// must call it at the same point in the program.
[[nodiscard]] Calibration calibrate(mps::Communicator& comm,
                                    const std::string& fabric_name = "local",
                                    const CalibrateOptions& options = {});

}  // namespace bruck::tune
