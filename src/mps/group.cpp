#include "mps/group.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace bruck::mps {

GroupComm::GroupComm(Communicator& parent, std::vector<std::int64_t> members)
    : parent_(&parent), members_(std::move(members)) {
  BRUCK_REQUIRE_MSG(!members_.empty(), "a group needs at least one member");
  std::vector<std::int64_t> sorted = members_;
  std::sort(sorted.begin(), sorted.end());
  BRUCK_REQUIRE_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "group members must be distinct");
  for (std::int64_t m : members_) {
    BRUCK_REQUIRE_MSG(m >= 0 && m < parent.size(),
                      "group member outside the parent communicator");
  }
  group_rank_ = getrank(parent.rank());
  BRUCK_REQUIRE_MSG(group_rank_ >= 0,
                    "the calling rank must be a member of the group");
}

std::int64_t GroupComm::getrank(std::int64_t parent_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == parent_rank) return static_cast<std::int64_t>(i);
  }
  return -1;
}

std::int64_t GroupComm::member(std::int64_t group_rank) const {
  BRUCK_REQUIRE(group_rank >= 0 &&
                group_rank < static_cast<std::int64_t>(members_.size()));
  return members_[static_cast<std::size_t>(group_rank)];
}

void GroupComm::exchange(int round, std::span<const SendSpec> sends,
                         std::span<const RecvSpec> recvs) {
  // Translate group ranks to parent ranks and delegate; all validation
  // (port counts, round monotonicity, sequencing) happens in the parent.
  std::vector<SendSpec> psends(sends.begin(), sends.end());
  std::vector<RecvSpec> precvs(recvs.begin(), recvs.end());
  for (SendSpec& s : psends) s.dst = member(s.dst);
  for (RecvSpec& r : precvs) r.src = member(r.src);
  parent_->exchange(round, psends, precvs);
}

void GroupComm::post_send(int round, std::int64_t dst,
                          std::span<const std::byte> data, int segments,
                          int tag) {
  parent_->post_send(round, member(dst), data, segments, tag);
}

void GroupComm::post_send(int round, std::int64_t dst,
                          std::vector<std::byte>&& data, int segments,
                          int tag) {
  parent_->post_send(round, member(dst), std::move(data), segments, tag);
}

PortHandle GroupComm::post_recv(int round, std::int64_t src,
                                std::span<std::byte> data, int segments,
                                int tag) {
  return parent_->post_recv(round, member(src), data, segments, tag);
}

PortHandle GroupComm::post_recv_buffer(int round, std::int64_t src,
                                       std::int64_t bytes, int segments,
                                       int tag) {
  return parent_->post_recv_buffer(round, member(src), bytes, segments, tag);
}

std::vector<std::byte> GroupComm::take_payload(PortHandle h) {
  return parent_->take_payload(h);
}

bool GroupComm::test_recv(PortHandle h) { return parent_->test_recv(h); }

void GroupComm::wait_recv(PortHandle h) { parent_->wait_recv(h); }

PortHandle GroupComm::wait_any_recv() { return parent_->wait_any_recv(); }

void GroupComm::wait_all_recvs() { parent_->wait_all_recvs(); }

std::optional<PortHandle> GroupComm::poll_any_recv() {
  return parent_->poll_any_recv();
}

void GroupComm::barrier() {
  BRUCK_REQUIRE_MSG(false,
                    "group barriers are unsupported; the parent barrier "
                    "spans the whole fabric (see GroupComm docs)");
  // BRUCK_REQUIRE_MSG always throws on a false condition; this is
  // unreachable but keeps the [[noreturn]] contract explicit.
  throw ContractViolation("unreachable");
}

}  // namespace bruck::mps
