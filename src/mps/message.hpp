// The wire unit of the multiport message-passing substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace bruck::mps {

struct Message {
  std::int64_t src = 0;
  std::int64_t dst = 0;
  /// Per-(src, dst, tag) sequence number assigned by the sender; receivers
  /// check it to assert FIFO channel order was preserved within the tag
  /// namespace.  Segmented payloads consume one sequence number per segment.
  std::int64_t seq = 0;
  /// Port-namespace tag (0 = the default/blocking namespace).  Concurrent
  /// collectives on one communicator each run in their own tag, so their
  /// wire segments can never alias: matching, sequencing, and the per-round
  /// port budget are all tag-scoped.
  int tag = 0;
  /// Global communication-round index supplied by the algorithm; carried for
  /// trace/bookkeeping only (matching is FIFO per channel).
  int round = 0;
  /// Owned payload storage.  The port engine moves buffers end-to-end:
  /// a packed send's staging vector becomes this member without a copy, and
  /// a whole-message receive can steal it back out.
  std::vector<std::byte> payload;
  /// Segmented sends ship one logical buffer as several wire messages
  /// without copying: each segment shares ownership of the buffer and views
  /// its own [shared_offset, shared_offset + shared_length) slice.  When
  /// `shared` is null the message is unsegmented and `payload` holds the
  /// bytes.
  std::shared_ptr<const std::vector<std::byte>> shared;
  std::int64_t shared_offset = 0;
  std::int64_t shared_length = 0;

  /// The bytes this wire message carries, wherever they live.
  [[nodiscard]] std::span<const std::byte> view() const {
    if (shared) {
      return std::span<const std::byte>(shared->data() + shared_offset,
                                        static_cast<std::size_t>(shared_length));
    }
    return payload;
  }

  [[nodiscard]] std::size_t size_bytes() const { return view().size(); }
};

}  // namespace bruck::mps
