// The wire unit of the multiport message-passing substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bruck::mps {

struct Message {
  std::int64_t src = 0;
  std::int64_t dst = 0;
  /// Per-(src, dst) sequence number assigned by the sender; receivers check
  /// it to assert FIFO channel order was preserved.
  std::int64_t seq = 0;
  /// Global communication-round index supplied by the algorithm; carried for
  /// trace/bookkeeping only (matching is FIFO per channel).
  int round = 0;
  std::vector<std::byte> payload;
};

}  // namespace bruck::mps
