#include "mps/shm_comm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace bruck::mps {

namespace {

constexpr std::uint64_t kShmMagic = 0x6272'7563'6b73'686dULL;  // "bruckshm"

constexpr std::size_t align64(std::size_t v) { return (v + 63) & ~std::size_t{63}; }

/// Spin → yield → sleep escalation for the fabric's wait loops: the common
/// case (peer mid-push) resolves in nanoseconds, but a rank genuinely ahead
/// of its peers must not burn a core for the whole drain deadline.
class Backoff {
 public:
  void pause() {
    ++waits_;
    if (waits_ < 64) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#else
      std::this_thread::yield();
#endif
    } else if (waits_ < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { waits_ = 0; }

 private:
  int waits_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// ShmSegment

ShmSegment ShmSegment::create_anonymous(std::size_t bytes) {
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  BRUCK_REQUIRE_MSG(mem != MAP_FAILED, "mmap(MAP_SHARED|MAP_ANONYMOUS) failed");
  ShmSegment seg;
  seg.mem_ = mem;
  seg.bytes_ = bytes;
  return seg;
}

ShmSegment ShmSegment::create_named(const std::string& name, std::size_t bytes) {
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  BRUCK_REQUIRE_MSG(fd >= 0, "shm_open(O_CREAT|O_EXCL) failed for " + name);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    BRUCK_REQUIRE_MSG(false, "ftruncate failed for shm segment " + name);
  }
  void* mem =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    BRUCK_REQUIRE_MSG(false, "mmap failed for shm segment " + name);
  }
  ShmSegment seg;
  seg.mem_ = mem;
  seg.bytes_ = bytes;
  seg.unlink_name_ = name;
  return seg;
}

ShmSegment ShmSegment::open_named(const std::string& name, std::size_t bytes) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
  BRUCK_REQUIRE_MSG(fd >= 0, "shm_open failed for " + name);
  void* mem =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  BRUCK_REQUIRE_MSG(mem != MAP_FAILED, "mmap failed for shm segment " + name);
  ShmSegment seg;
  seg.mem_ = mem;
  seg.bytes_ = bytes;
  return seg;
}

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : mem_(std::exchange(other.mem_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      unlink_name_(std::exchange(other.unlink_name_, {})) {}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    this->~ShmSegment();
    new (this) ShmSegment(std::move(other));
  }
  return *this;
}

ShmSegment::~ShmSegment() {
  if (mem_ != nullptr) ::munmap(mem_, bytes_);
  if (!unlink_name_.empty()) ::shm_unlink(unlink_name_.c_str());
}

// ---------------------------------------------------------------------------
// ShmComm

/// The shared control block at the front of a fabric region.  Everything a
/// rank needs to attach travels here, so openers pass only (region, rank).
struct ShmComm::Control {
  std::uint64_t magic;
  std::int64_t n;
  std::int32_t k;
  std::uint32_t record_trace;
  std::uint64_t ring_capacity;  ///< data bytes per ring (power of two)
  std::uint64_t ring_stride;    ///< 64-byte-aligned region bytes per ring
  std::int64_t recv_timeout_ms;
  alignas(64) std::atomic<std::uint64_t> barrier_arrived;
  alignas(64) std::atomic<std::uint64_t> barrier_generation;
  alignas(64) std::atomic<std::uint32_t> abort_flag;
};

std::size_t ShmComm::control_area_bytes() { return align64(sizeof(Control)); }

std::byte* ShmComm::ring_base(std::byte* region, const Control* c,
                              std::int64_t rank) {
  return region + control_area_bytes() +
         static_cast<std::size_t>(rank) * c->ring_stride;
}

std::size_t ShmComm::region_bytes(const ShmFabricOptions& options) {
  const std::size_t cap = MpscByteRing::round_up_capacity(options.ring_bytes);
  const std::size_t stride = align64(MpscByteRing::region_bytes(cap));
  return control_area_bytes() +
         static_cast<std::size_t>(options.n) * stride;
}

void ShmComm::init_region(void* region, const ShmFabricOptions& options) {
  BRUCK_REQUIRE(options.n >= 1);
  BRUCK_REQUIRE(options.k >= 1);
  BRUCK_REQUIRE_MSG(reinterpret_cast<std::uintptr_t>(region) % 64 == 0,
                    "shm fabric region must be 64-byte aligned");
  const std::size_t cap = MpscByteRing::round_up_capacity(options.ring_bytes);
  const std::size_t stride = align64(MpscByteRing::region_bytes(cap));
  auto* base = static_cast<std::byte*>(region);
  std::memset(base, 0, control_area_bytes());
  auto* c = new (base) Control;
  c->n = options.n;
  c->k = options.k;
  c->record_trace = options.record_trace ? 1 : 0;
  c->ring_capacity = cap;
  c->ring_stride = stride;
  c->recv_timeout_ms = options.recv_timeout.count();
  c->barrier_arrived.store(0, std::memory_order_relaxed);
  c->barrier_generation.store(0, std::memory_order_relaxed);
  c->abort_flag.store(0, std::memory_order_relaxed);
  for (std::int64_t r = 0; r < options.n; ++r) {
    (void)MpscByteRing::create(ring_base(base, c, r), cap);
  }
  // Published last: a named-segment opener spins on the magic before
  // touching anything else in the region.
  reinterpret_cast<std::atomic<std::uint64_t>*>(&c->magic)->store(
      kShmMagic, std::memory_order_release);
}

void ShmComm::abort_region(void* region) {
  auto* c = static_cast<Control*>(region);
  c->abort_flag.store(1, std::memory_order_release);
}

ShmComm::Control* ShmComm::control() const {
  return reinterpret_cast<Control*>(region_);
}

ShmComm::ShmComm(void* region, std::int64_t rank)
    : WirePortEngine([&] {
        // Wait for the initializer to publish the region (named-segment
        // openers may attach while init_region is still running).
        auto* c = static_cast<Control*>(region);
        const DrainDeadline deadline(std::chrono::milliseconds(10000));
        Backoff backoff;
        while (reinterpret_cast<std::atomic<std::uint64_t>*>(&c->magic)->load(
                   std::memory_order_acquire) != kShmMagic) {
          BRUCK_REQUIRE_MSG(!deadline.expired(),
                            "shm fabric region was never initialized");
          backoff.pause();
        }
        return c->n;
      }()),
      region_(static_cast<std::byte*>(region)),
      rank_(rank) {
  Control* c = control();
  n_ = c->n;
  k_ = c->k;
  record_trace_ = c->record_trace != 0;
  recv_timeout_ = std::chrono::milliseconds(c->recv_timeout_ms);
  BRUCK_REQUIRE(rank_ >= 0 && rank_ < n_);
  inbound_ = MpscByteRing::open(ring_base(region_, c, rank_));
  peer_ring_.reserve(static_cast<std::size_t>(n_));
  for (std::int64_t r = 0; r < n_; ++r) {
    peer_ring_.push_back(MpscByteRing::open(ring_base(region_, c, r)));
  }
}

void ShmComm::check_abort() const {
  BRUCK_REQUIRE_MSG(
      control()->abort_flag.load(std::memory_order_acquire) == 0,
      "shm fabric aborted: a peer rank exited abnormally");
}

void ShmComm::wire_push(Message&& m) {
  RingFrame frame;
  frame.src = m.src;
  frame.seq = m.seq;
  frame.tag = m.tag;
  frame.round = m.round;
  const std::span<const std::byte> payload = m.view();
  MpscByteRing& ring = peer_ring_[static_cast<std::size_t>(m.dst)];
  if (ring.try_push(frame, payload)) return;
  // Backpressure: the destination ring is full.  Drain our own inbound ring
  // while waiting — two ranks pushing into each other's full rings must not
  // deadlock — and give the whole retry loop one deadline.
  const DrainDeadline deadline(recv_timeout_);
  Backoff backoff;
  for (;;) {
    check_abort();
    bool drained = false;
    Message in;
    while (inbound_.try_pop(in)) {
      in.dst = rank_;
      pending_in_.push_back(std::move(in));
      drained = true;
    }
    if (ring.try_push(frame, payload)) return;
    BRUCK_REQUIRE_MSG(!deadline.expired(),
                      "shm fabric send timed out: destination ring stayed "
                      "full past the receive deadline (peer stuck?)");
    if (drained) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

std::optional<Message> ShmComm::wire_pop(
    std::span<const std::int64_t> waiting_srcs,
    std::chrono::milliseconds timeout) {
  // Single inbound channel: the filter is unused (the engine stashes
  // messages from sources it is not yet waiting for).
  (void)waiting_srcs;
  auto take = [this]() -> std::optional<Message> {
    if (!pending_in_.empty()) {
      Message m = std::move(pending_in_.front());
      pending_in_.pop_front();
      return m;
    }
    Message m;
    if (inbound_.try_pop(m)) {
      m.dst = rank_;
      return m;
    }
    return std::nullopt;
  };
  if (auto m = take()) return m;
  if (timeout.count() == 0) return std::nullopt;
  const DrainDeadline deadline(timeout);
  Backoff backoff;
  for (;;) {
    check_abort();
    if (auto m = take()) return m;
    if (deadline.expired()) return std::nullopt;
    backoff.pause();
  }
}

void ShmComm::record_send_event(int round, std::int64_t dst,
                                std::int64_t bytes, int tag) {
  if (record_trace_) sink_.record_send(round, dst, bytes, tag);
}

void ShmComm::record_plan_event(const PlanEvent& event) {
  if (record_trace_) sink_.record_plan(event);
}

void ShmComm::barrier() {
  Control* c = control();
  const std::uint64_t generation =
      c->barrier_generation.load(std::memory_order_acquire);
  const std::uint64_t arrived =
      c->barrier_arrived.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (arrived == static_cast<std::uint64_t>(n_)) {
    // Last arriver: reset the counter for the next generation, then release
    // everyone.  Waiters acquire the generation bump, which orders the
    // reset before any of their next-barrier arrivals.
    c->barrier_arrived.store(0, std::memory_order_relaxed);
    c->barrier_generation.fetch_add(1, std::memory_order_release);
    return;
  }
  const DrainDeadline deadline(recv_timeout_);
  Backoff backoff;
  while (c->barrier_generation.load(std::memory_order_acquire) == generation) {
    check_abort();
    BRUCK_REQUIRE_MSG(!deadline.expired(),
                      "shm fabric barrier timed out waiting for peers");
    backoff.pause();
  }
}

}  // namespace bruck::mps
