#include "mps/socket_comm.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>

#include "mps/bootstrap.hpp"
#include "util/assert.hpp"

namespace bruck::mps {

namespace {

constexpr std::uint32_t kFrameMagic = 0x6272'466dU;  // "brFm"

enum FrameKind : std::uint32_t {
  kData = 0,
  kHello = 1,
  kBarrierArrive = 2,
  kBarrierRelease = 3,
};

/// The 40-byte wire frame header (host byte order: loopback / homogeneous
/// cluster protocol).
struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t kind;
  std::int64_t src;
  std::int64_t seq;
  std::int32_t tag;
  std::int32_t round;
  std::uint64_t payload_bytes;
};
static_assert(sizeof(FrameHeader) == 40);
static_assert(std::is_trivially_copyable_v<FrameHeader>);

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  BRUCK_REQUIRE_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                    "fcntl(O_NONBLOCK) failed");
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking full write during bootstrap (sockets are still blocking there).
void write_fully(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  while (bytes > 0) {
    const ssize_t w = ::send(fd, p, bytes, MSG_NOSIGNAL);
    BRUCK_REQUIRE_MSG(w > 0, "socket bootstrap write failed");
    p += w;
    bytes -= static_cast<std::size_t>(w);
  }
}

/// Blocking full read during bootstrap.
void read_fully(int fd, void* data, std::size_t bytes) {
  auto* p = static_cast<std::byte*>(data);
  while (bytes > 0) {
    const ssize_t r = ::recv(fd, p, bytes, 0);
    BRUCK_REQUIRE_MSG(r > 0, "socket bootstrap read failed (peer died?)");
    p += r;
    bytes -= static_cast<std::size_t>(r);
  }
}

}  // namespace

SocketListeners create_loopback_listeners(std::int64_t n) {
  SocketListeners out;
  out.fds.reserve(static_cast<std::size_t>(n));
  out.ports.reserve(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    BRUCK_REQUIRE_MSG(fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // kernel-assigned ephemeral port
    BRUCK_REQUIRE_MSG(
        ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
        "bind(127.0.0.1:0) failed");
    BRUCK_REQUIRE_MSG(::listen(fd, 128) == 0, "listen() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    BRUCK_REQUIRE_MSG(
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
        "getsockname() failed");
    out.fds.push_back(fd);
    out.ports.push_back(ntohs(bound.sin_port));
  }
  return out;
}

SocketComm::SocketComm(SocketFabricOptions options)
    : WirePortEngine(options.n),
      options_(std::move(options)),
      max_write_bytes_(default_socket_max_write_bytes()) {
  BRUCK_REQUIRE(options_.rank >= 0 && options_.rank < options_.n);
  BRUCK_REQUIRE(static_cast<std::int64_t>(options_.ports.size()) == options_.n);
  epoll_fd_ = ::epoll_create1(0);
  BRUCK_REQUIRE_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  connect_mesh();
}

void SocketComm::connect_mesh() {
  const std::int64_t n = options_.n;
  const std::int64_t rank = options_.rank;
  peers_.resize(static_cast<std::size_t>(n));

  // Dial every lower rank, opening each connection with a hello frame that
  // names us (the accepter cannot tell ranks apart otherwise).
  for (std::int64_t r = 0; r < rank; ++r) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    BRUCK_REQUIRE_MSG(fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.ports[static_cast<std::size_t>(r)]);
    const DrainDeadline deadline(options_.recv_timeout);
    for (;;) {
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      BRUCK_REQUIRE_MSG(
          (errno == ECONNREFUSED || errno == EINTR) && !deadline.expired(),
          "connect to peer rank " + std::to_string(r) + " failed");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FrameHeader hello{};
    hello.magic = kFrameMagic;
    hello.kind = kHello;
    hello.src = rank;
    write_fully(fd, &hello, sizeof(hello));
    peers_[static_cast<std::size_t>(r)].fd = fd;
  }

  // Accept one connection from every higher rank; the hello frame tells us
  // which rank dialed (accept order is arbitrary).
  const DrainDeadline accept_deadline(options_.recv_timeout);
  for (std::int64_t pending = n - 1 - rank; pending > 0; --pending) {
    pollfd pfd{options_.listen_fd, POLLIN, 0};
    for (;;) {
      const int pr =
          ::poll(&pfd, 1,
                 static_cast<int>(
                     std::min<std::int64_t>(accept_deadline.remaining().count(),
                                            100)));
      if (pr > 0) break;
      BRUCK_REQUIRE_MSG(!accept_deadline.expired(),
                        "timed out accepting fabric connections");
    }
    const int fd = ::accept(options_.listen_fd, nullptr, nullptr);
    BRUCK_REQUIRE_MSG(fd >= 0, "accept() failed");
    FrameHeader hello{};
    read_fully(fd, &hello, sizeof(hello));
    BRUCK_REQUIRE_MSG(hello.magic == kFrameMagic && hello.kind == kHello &&
                          hello.src > rank && hello.src < n,
                      "bad hello frame during fabric bootstrap");
    BRUCK_REQUIRE_MSG(peers_[static_cast<std::size_t>(hello.src)].fd < 0,
                      "duplicate hello from one rank");
    peers_[static_cast<std::size_t>(hello.src)].fd = fd;
  }
  ::close(options_.listen_fd);
  options_.listen_fd = -1;

  for (std::int64_t r = 0; r < n; ++r) {
    if (r == rank) continue;
    Peer& p = peers_[static_cast<std::size_t>(r)];
    set_nonblocking(p.fd);
    set_nodelay(p.fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = static_cast<std::uint64_t>(r);
    BRUCK_REQUIRE_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, p.fd, &ev) == 0,
                      "epoll_ctl(ADD) failed");
  }
}

SocketComm::~SocketComm() {
  // Flush every outbox before closing: our sends complete at post time, so
  // unsent tails would otherwise vanish with the connection.  TCP delivers
  // everything written before close(), so peers still mid-collective read
  // our data and only then see EOF.
  try {
    const DrainDeadline deadline(options_.recv_timeout);
    for (;;) {
      bool unsent = false;
      for (const Peer& p : peers_) {
        if (p.fd >= 0 && !p.eof && !p.outbox.empty()) unsent = true;
      }
      if (!unsent || deadline.expired()) break;
      pump(std::chrono::milliseconds(10));
    }
  } catch (...) {
    // Teardown best-effort: a peer that died mid-flush is its own error.
  }
  for (Peer& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (options_.listen_fd >= 0) ::close(options_.listen_fd);
}

void SocketComm::enqueue_frame(std::int64_t dst, std::uint32_t kind,
                               std::int64_t seq, std::int32_t tag,
                               std::int32_t round,
                               std::span<const std::byte> payload) {
  FrameHeader h{};
  h.magic = kFrameMagic;
  h.kind = kind;
  h.src = options_.rank;
  h.seq = seq;
  h.tag = tag;
  h.round = round;
  h.payload_bytes = payload.size();
  Peer& p = peers_[static_cast<std::size_t>(dst)];
  BRUCK_REQUIRE_MSG(!p.eof, "send to peer rank " + std::to_string(dst) +
                                " after it closed its connection");
  const auto* hb = reinterpret_cast<const std::byte*>(&h);
  p.outbox.insert(p.outbox.end(), hb, hb + sizeof(h));
  p.outbox.insert(p.outbox.end(), payload.begin(), payload.end());
  flush_outbox(dst);
}

void SocketComm::flush_outbox(std::int64_t peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd < 0 || p.eof) return;
  std::byte chunk[64 * 1024];
  bool blocked = false;
  while (!p.outbox.empty()) {
    const std::size_t want = std::min(
        {p.outbox.size(), sizeof(chunk), max_write_bytes_});
    std::copy_n(p.outbox.begin(), want, chunk);
    const ssize_t w = ::send(p.fd, chunk, want, MSG_NOSIGNAL);
    if (w > 0) {
      p.outbox.erase(p.outbox.begin(), p.outbox.begin() + w);
      continue;  // short write: loop re-tries the tail immediately
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      blocked = true;
      break;
    }
    BRUCK_REQUIRE_MSG(false, "peer rank " + std::to_string(peer) +
                                 " closed its connection mid-send");
  }
  // Level-triggered EPOLLOUT only while a tail is actually pending.
  epoll_event ev{};
  ev.events = blocked ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = static_cast<std::uint64_t>(peer);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd, &ev);
}

void SocketComm::flush_all_outboxes() {
  for (std::int64_t r = 0; r < options_.n; ++r) {
    if (r == options_.rank) continue;
    if (!peers_[static_cast<std::size_t>(r)].outbox.empty()) flush_outbox(r);
  }
}

void SocketComm::read_from_peer(std::int64_t peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd < 0 || p.eof) return;
  std::byte chunk[64 * 1024];
  for (;;) {
    const ssize_t r = ::recv(p.fd, chunk, sizeof(chunk), 0);
    if (r > 0) {
      p.inbuf.insert(p.inbuf.end(), chunk, chunk + r);
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (r < 0 && errno == EINTR) continue;
    // EOF or hard reset: everything sent before the peer's close has been
    // ingested above; the death is only an error for whoever still waits
    // on fresh traffic (require_alive).
    p.eof = true;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p.fd, nullptr);
    break;
  }
  // Extract complete frames from the front of the parse buffer.
  std::size_t consumed = 0;
  while (p.inbuf.size() - consumed >= sizeof(FrameHeader)) {
    FrameHeader h{};
    std::memcpy(&h, p.inbuf.data() + consumed, sizeof(h));
    BRUCK_REQUIRE_MSG(h.magic == kFrameMagic,
                      "corrupt frame from peer rank " + std::to_string(peer));
    const std::size_t total = sizeof(FrameHeader) + h.payload_bytes;
    if (p.inbuf.size() - consumed < total) break;
    const std::byte* body = p.inbuf.data() + consumed + sizeof(FrameHeader);
    switch (h.kind) {
      case kData: {
        Message m;
        m.src = h.src;
        m.dst = options_.rank;
        m.seq = h.seq;
        m.tag = h.tag;
        m.round = h.round;
        m.payload.assign(body, body + h.payload_bytes);
        inbox_.push_back(std::move(m));
        break;
      }
      case kBarrierArrive:
        ++barrier_arrivals_;
        break;
      case kBarrierRelease:
        barrier_release_seen_ = h.seq;
        break;
      default:
        BRUCK_REQUIRE_MSG(false, "unexpected frame kind on established link");
    }
    consumed += total;
  }
  if (consumed > 0) {
    p.inbuf.erase(p.inbuf.begin(),
                  p.inbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
}

bool SocketComm::pump(std::chrono::milliseconds wait) {
  flush_all_outboxes();
  epoll_event events[64];
  const int nev = ::epoll_wait(epoll_fd_, events, 64,
                               static_cast<int>(wait.count()));
  for (int i = 0; i < nev; ++i) {
    const auto r = static_cast<std::int64_t>(events[i].data.u64);
    if ((events[i].events & EPOLLOUT) != 0) flush_outbox(r);
    if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
      read_from_peer(r);
    }
  }
  return nev > 0;
}

void SocketComm::require_alive(std::int64_t src) const {
  if (src == options_.rank) return;
  const Peer& p = peers_[static_cast<std::size_t>(src)];
  if (!p.eof) return;
  // A closed connection is fine as long as every frame we still need from
  // that peer already arrived; parse leftovers or inbox entries mean data
  // is still flowing through.
  if (!p.inbuf.empty()) return;
  for (const Message& m : inbox_) {
    if (m.src == src) return;
  }
  BRUCK_REQUIRE_MSG(false,
                    "peer rank " + std::to_string(src) +
                        " died (connection closed) while traffic from it "
                        "was still expected");
}

void SocketComm::wire_push(Message&& m) {
  enqueue_frame(m.dst, kData, m.seq, m.tag, m.round, m.view());
}

std::optional<Message> SocketComm::wire_pop(
    std::span<const std::int64_t> waiting_srcs,
    std::chrono::milliseconds timeout) {
  auto take = [this]() -> std::optional<Message> {
    if (inbox_.empty()) return std::nullopt;
    Message m = std::move(inbox_.front());
    inbox_.pop_front();
    return m;
  };
  if (auto m = take()) return m;
  if (timeout.count() == 0) {
    pump(std::chrono::milliseconds(0));
    return take();
  }
  const DrainDeadline deadline(timeout);
  for (;;) {
    for (const std::int64_t src : waiting_srcs) require_alive(src);
    pump(std::min(deadline.remaining(), std::chrono::milliseconds(50)));
    if (auto m = take()) return m;
    if (deadline.expired()) return std::nullopt;
  }
}

void SocketComm::record_send_event(int round, std::int64_t dst,
                                   std::int64_t bytes, int tag) {
  if (options_.record_trace) sink_.record_send(round, dst, bytes, tag);
}

void SocketComm::record_plan_event(const PlanEvent& event) {
  if (options_.record_trace) sink_.record_plan(event);
}

void SocketComm::barrier() {
  const std::int64_t generation = barrier_generation_++;
  if (options_.n == 1) return;
  const DrainDeadline deadline(options_.recv_timeout);
  if (options_.rank == 0) {
    // Collect one arrive per peer, then broadcast the release.  Arrivals of
    // a *later* generation cannot overtake: a peer only sends arrive g+1
    // after it received release g, which we have not sent yet.
    while (barrier_arrivals_ < options_.n - 1) {
      for (std::int64_t r = 1; r < options_.n; ++r) require_alive(r);
      BRUCK_REQUIRE_MSG(!deadline.expired(),
                        "socket fabric barrier timed out waiting for peers");
      pump(std::min(deadline.remaining(), std::chrono::milliseconds(50)));
    }
    barrier_arrivals_ -= options_.n - 1;
    for (std::int64_t r = 1; r < options_.n; ++r) {
      enqueue_frame(r, kBarrierRelease, generation, 0, 0, {});
    }
  } else {
    enqueue_frame(0, kBarrierArrive, generation, 0, 0, {});
    while (barrier_release_seen_ < generation) {
      require_alive(0);
      BRUCK_REQUIRE_MSG(!deadline.expired(),
                        "socket fabric barrier timed out waiting for release");
      pump(std::min(deadline.remaining(), std::chrono::milliseconds(50)));
    }
  }
}

}  // namespace bruck::mps
