// Default implementations of the nonblocking port-engine primitives and of
// `exchange` on the abstract Communicator.
//
// The two sides are mutually defined: the default `exchange` is a shim over
// the (virtual) engine primitives, and the default engine primitives defer
// posted operations and flush them round-by-round through the (virtual)
// `exchange` on the first wait.  A concrete communicator overrides exactly
// one side; overriding neither is a programming error that surfaces as a
// loud ContractViolation out of the recursion guard below.
#include "mps/communicator.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "mps/thread_comm.hpp"  // default_recv_timeout
#include "util/assert.hpp"

namespace bruck::mps {

std::chrono::milliseconds Communicator::recv_timeout() const {
  return default_recv_timeout();
}

DrainDeadline::DrainDeadline(std::chrono::milliseconds budget)
    : deadline_(std::chrono::steady_clock::now() + budget), budget_(budget) {}

std::chrono::milliseconds DrainDeadline::remaining() const {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline_ - std::chrono::steady_clock::now());
  return std::max(left, std::chrono::milliseconds{0});
}

namespace detail {

class DeferredEngine {
 public:
  explicit DeferredEngine(Communicator& owner) : owner_(&owner) {}

  void post_send(int round, std::int64_t dst, std::vector<std::byte>&& data) {
    Round& r = round_for_post(round);
    r.sends.push_back(DeferredSend{dst, std::move(data)});
  }

  PortHandle post_recv(int round, std::int64_t src,
                       std::span<std::byte> landing) {
    Round& r = round_for_post(round);
    const PortHandle h = next_handle_++;
    r.recvs.push_back(DeferredRecv{h, src, landing, {}, /*take_buffer=*/false});
    return h;
  }

  PortHandle post_recv_buffer(int round, std::int64_t src, std::int64_t bytes) {
    Round& r = round_for_post(round);
    const PortHandle h = next_handle_++;
    DeferredRecv op{h, src, {}, {}, /*take_buffer=*/true};
    op.owned.resize(static_cast<std::size_t>(bytes));
    r.recvs.push_back(std::move(op));
    return h;
  }

  std::vector<std::byte> take_payload(PortHandle h) {
    const auto it = completed_.find(h);
    BRUCK_REQUIRE_MSG(it != completed_.end() && it->second.take_buffer,
                      "take_payload needs a completed buffer-mode receive");
    std::vector<std::byte> out = std::move(it->second.owned);
    completed_.erase(it);
    return out;
  }

  bool test_recv(PortHandle h) {
    // The deferred engine cannot make progress without blocking in
    // `exchange`, so test degrades to wait for posted-but-unflushed
    // receives (documented on Communicator::test_recv's fallback).
    if (completed_.contains(h)) return true;
    wait_recv(h);
    return true;
  }

  void wait_recv(PortHandle h) {
    const DrainDeadline deadline(default_recv_timeout());
    while (!completed_.contains(h)) {
      BRUCK_REQUIRE_MSG(!rounds_.empty(),
                        "wait on an unknown or already-consumed receive");
      check_deadline(deadline, "wait_recv");
      flush_front();
    }
    erase_unreported(h);
    retire_if_landing(h);
  }

  PortHandle wait_any_recv() {
    const DrainDeadline deadline(default_recv_timeout());
    while (unreported_.empty()) {
      BRUCK_REQUIRE_MSG(!rounds_.empty(),
                        "wait_any_recv with no outstanding receive");
      check_deadline(deadline, "wait_any_recv");
      flush_front();
    }
    const PortHandle h = unreported_.front();
    unreported_.pop_front();
    retire_if_landing(h);
    return h;
  }

  void wait_all() {
    const DrainDeadline deadline(default_recv_timeout());
    while (!rounds_.empty()) {
      check_deadline(deadline, "wait_all_recvs");
      flush_front();
    }
    for (const PortHandle h : unreported_) retire_if_landing(h);
    unreported_.clear();
  }

  [[nodiscard]] std::optional<PortHandle> poll_any_recv() {
    // Cannot make progress without blocking in `exchange`: report only
    // already-flushed completions.
    if (unreported_.empty()) return std::nullopt;
    const PortHandle h = unreported_.front();
    unreported_.pop_front();
    retire_if_landing(h);
    return h;
  }

  /// True while a flush is re-entering owner_->exchange: the engine
  /// primitives must not be called from inside it (recursion guard for
  /// subclasses that override neither side).
  [[nodiscard]] bool in_flush() const { return in_flush_; }

 private:
  struct DeferredSend {
    std::int64_t dst = 0;
    std::vector<std::byte> data;
  };
  struct DeferredRecv {
    PortHandle handle = 0;
    std::int64_t src = 0;
    std::span<std::byte> landing;
    std::vector<std::byte> owned;
    bool take_buffer = false;
  };
  struct Round {
    int round = 0;
    std::vector<DeferredSend> sends;
    std::vector<DeferredRecv> recvs;
  };

  /// One total BRUCK_RECV_TIMEOUT_MS budget per drain call.  Each flushed
  /// round blocks inside the wrapper's `exchange` under that comm's own
  /// per-round timeout, so before this check a many-round drain could take
  /// rounds x timeout — and a wrapper whose exchange returns without
  /// completing anything could extend the loop with no deadline at all.
  static void check_deadline(const DrainDeadline& deadline, const char* what) {
    if (!deadline.expired()) return;
    std::ostringstream os;
    os << "deferred port engine: " << what
       << " exceeded the receive deadline (" << deadline.budget().count()
       << " ms, BRUCK_RECV_TIMEOUT_MS) with rounds still queued "
          "(deadlock, or a wrapper exchange making no progress?)";
    throw ContractViolation(os.str());
  }

  Round& round_for_post(int round) {
    BRUCK_REQUIRE_MSG(!in_flush_,
                      "Communicator subclass overrides neither exchange() nor "
                      "the port-engine primitives");
    if (rounds_.empty() || round > rounds_.back().round) {
      rounds_.push_back(Round{round, {}, {}});
    }
    BRUCK_REQUIRE_MSG(round == rounds_.back().round,
                      "port-engine posts must use non-decreasing rounds");
    return rounds_.back();
  }

  void flush_front() {
    Round r = std::move(rounds_.front());
    rounds_.pop_front();
    std::vector<SendSpec> sends;
    sends.reserve(r.sends.size());
    for (const DeferredSend& s : r.sends) sends.push_back(SendSpec{s.dst, s.data});
    std::vector<RecvSpec> recvs;
    recvs.reserve(r.recvs.size());
    for (DeferredRecv& op : r.recvs) {
      recvs.push_back(RecvSpec{
          op.src, op.take_buffer ? std::span<std::byte>(op.owned) : op.landing});
    }
    in_flush_ = true;
    try {
      owner_->exchange(r.round, sends, recvs);
    } catch (...) {
      in_flush_ = false;
      throw;
    }
    in_flush_ = false;
    for (DeferredRecv& op : r.recvs) {
      unreported_.push_back(op.handle);
      completed_.emplace(op.handle, std::move(op));
    }
  }

  /// Landing-mode receives carry no retrievable payload: drop their
  /// bookkeeping as soon as they are reported (buffer-mode entries live on
  /// until take_payload).
  void retire_if_landing(PortHandle h) {
    const auto it = completed_.find(h);
    if (it != completed_.end() && !it->second.take_buffer) completed_.erase(it);
  }

  void erase_unreported(PortHandle h) {
    for (auto it = unreported_.begin(); it != unreported_.end(); ++it) {
      if (*it == h) {
        unreported_.erase(it);
        return;
      }
    }
  }

  Communicator* owner_;
  std::deque<Round> rounds_;  // posted, unflushed; ascending round order
  std::unordered_map<PortHandle, DeferredRecv> completed_;
  std::deque<PortHandle> unreported_;  // completed, not yet handed out
  PortHandle next_handle_ = 1;
  bool in_flush_ = false;
};

}  // namespace detail

Communicator::Communicator() = default;
Communicator::~Communicator() = default;

detail::DeferredEngine& Communicator::deferred() {
  if (!deferred_) deferred_ = std::make_unique<detail::DeferredEngine>(*this);
  return *deferred_;
}

namespace {

/// The deferred fallback flushes through a wrapper's `exchange`, which has
/// no tag concept: only the default namespace is representable.  Callers
/// that want tags must check native_port_engine() first (the coll::
/// progress engine degrades to serial tag-0 execution on wrappers).
void require_default_tag(int tag) {
  BRUCK_REQUIRE_MSG(tag == 0,
                    "the deferred (exchange-backed) port engine supports "
                    "only tag 0");
}

}  // namespace

void Communicator::post_send(int round, std::int64_t dst,
                             std::span<const std::byte> data, int segments,
                             int tag) {
  (void)segments;  // the deferred fallback ships unsegmented (symmetrically)
  require_default_tag(tag);
  deferred().post_send(round, dst,
                       std::vector<std::byte>(data.begin(), data.end()));
}

void Communicator::post_send(int round, std::int64_t dst,
                             std::vector<std::byte>&& data, int segments,
                             int tag) {
  (void)segments;
  require_default_tag(tag);
  deferred().post_send(round, dst, std::move(data));
}

PortHandle Communicator::post_recv(int round, std::int64_t src,
                                   std::span<std::byte> data, int segments,
                                   int tag) {
  (void)segments;
  require_default_tag(tag);
  return deferred().post_recv(round, src, data);
}

PortHandle Communicator::post_recv_buffer(int round, std::int64_t src,
                                          std::int64_t bytes, int segments,
                                          int tag) {
  (void)segments;
  require_default_tag(tag);
  return deferred().post_recv_buffer(round, src, bytes);
}

std::vector<std::byte> Communicator::take_payload(PortHandle h) {
  return deferred().take_payload(h);
}

bool Communicator::test_recv(PortHandle h) { return deferred().test_recv(h); }

void Communicator::wait_recv(PortHandle h) { deferred().wait_recv(h); }

PortHandle Communicator::wait_any_recv() { return deferred().wait_any_recv(); }

void Communicator::wait_all_recvs() {
  if (deferred_) deferred_->wait_all();
}

std::optional<PortHandle> Communicator::poll_any_recv() {
  // Do not lazily create the engine: with nothing ever posted there is
  // nothing to report.
  if (!deferred_) return std::nullopt;
  return deferred_->poll_any_recv();
}

void Communicator::exchange(int round, std::span<const SendSpec> sends,
                            std::span<const RecvSpec> recvs) {
  BRUCK_REQUIRE_MSG(round > last_exchange_round_,
                    "round indices must be strictly increasing per rank");
  BRUCK_REQUIRE_MSG(static_cast<int>(sends.size()) <= ports(),
                    "more sends than ports in one round");
  BRUCK_REQUIRE_MSG(static_cast<int>(recvs.size()) <= ports(),
                    "more receives than ports in one round");
  last_exchange_round_ = round;
  for (const SendSpec& s : sends) post_send(round, s.dst, s.data);
  std::vector<PortHandle> handles;
  handles.reserve(recvs.size());
  for (const RecvSpec& r : recvs) handles.push_back(post_recv(round, r.src, r.data));
  for (const PortHandle h : handles) wait_recv(h);
}

}  // namespace bruck::mps
