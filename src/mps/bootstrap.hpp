// Fabric selection, fabric-sizing environment knobs, and the multi-process
// SPMD launcher.
//
// Environment variables follow the repo's strict-parse discipline
// (mps::parse_* seams, pure functions over the raw text): the whole string
// must be a valid value — junk, trailing characters, overflow, or
// out-of-range input is *rejected*, and the default_* wrapper warns once
// per process and falls back to the default rather than silently
// misconfiguring the fabric.
//
//   BRUCK_FABRIC                 thread | shm | socket   (backend selection)
//   BRUCK_SHM_RING_BYTES         per-rank inbound ring capacity (shm fabric)
//   BRUCK_SOCKET_MAX_WRITE_BYTES per-::send byte cap (socket fabric; a test
//                                knob forcing the partial-write paths)
//   BRUCK_TUNE_MODE              off | calibrate | adaptive (tune::, applied
//                                when SpawnOptions::tune is kDefault)
//   BRUCK_TUNE_TABLE             path of the persisted tune table (tune::)
//
// spawn_local() is the process-spanning counterpart of run_spmd(): fork n
// rank processes over the chosen backend, run the same body in each, ship
// every rank's result payload and trace events back over pipes, and
// reassemble a Trace the existing test machinery can compare bitwise
// against the thread fabric's.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mps/communicator.hpp"
#include "mps/trace.hpp"
#include "tune/env.hpp"

namespace bruck::mps {

enum class FabricBackend {
  kThread,  ///< in-process rank threads over mutex/condvar mailboxes
  kShm,     ///< forked rank processes over shared-memory MPSC rings
  kSocket,  ///< forked rank processes over loopback TCP + epoll
};

[[nodiscard]] const char* to_string(FabricBackend backend);

/// Strict parse of a BRUCK_FABRIC value ("thread" | "shm" | "socket",
/// exact); anything else ⇒ nullopt.
[[nodiscard]] std::optional<FabricBackend> parse_fabric_backend(
    const char* text);

/// BRUCK_FABRIC with warn-once fallback to kThread.
[[nodiscard]] FabricBackend default_fabric_backend();

/// Strict parse of a byte-count knob: whole-string positive decimal within
/// [min_bytes, max_bytes]; junk/overflow/out-of-range ⇒ nullopt.
[[nodiscard]] std::optional<std::size_t> parse_byte_count(
    const char* text, std::size_t min_bytes, std::size_t max_bytes);

/// BRUCK_SHM_RING_BYTES with warn-once fallback (default 1 MiB; accepted
/// range 4 KiB .. 1 GiB — a ring must hold at least one max-size segment).
[[nodiscard]] std::size_t default_shm_ring_bytes();

/// BRUCK_SOCKET_MAX_WRITE_BYTES with warn-once fallback (default 64 KiB;
/// accepted range 1 .. 16 MiB — 1 is valid and maximally adversarial).
[[nodiscard]] std::size_t default_socket_max_write_bytes();

/// One spawn_local configuration.  Zero-initialized ring/timeout fields
/// mean "use the environment-derived default".
struct SpawnOptions {
  std::int64_t n = 1;
  int k = 1;
  FabricBackend backend = FabricBackend::kThread;
  bool record_trace = true;
  /// Per-rank inbound ring capacity (shm backend); 0 ⇒ default_shm_ring_bytes().
  std::size_t shm_ring_bytes = 0;
  /// Receive/deadlock timeout; 0 ⇒ default_recv_timeout().
  std::chrono::milliseconds recv_timeout{0};
  /// Tuning bootstrap run on every rank before the body (kDefault defers
  /// to BRUCK_TUNE_MODE): calibrate measures β/τ/γ on this fabric and
  /// publishes the model; adaptive additionally installs the learning
  /// hooks (live exploration on the thread fabric only — forked ranks
  /// cannot share a sample pool; they still consume table overrides).
  tune::TuneMode tune = tune::TuneMode::kDefault;
};

/// What came back from one multi-process run: the reassembled trace, the
/// wall time of the parallel section, and each rank's result payload (the
/// body's return value, shipped over the result pipe) — the differential
/// harness compares those bitwise across backends.
struct SpawnResult {
  std::shared_ptr<Trace> trace;
  double wall_seconds = 0.0;
  std::vector<std::vector<std::byte>> rank_payloads;
};

/// Run `body` on every rank of a fabric of the chosen backend.
///
/// Thread backend: delegates to run_spmd (same process, same substrate the
/// oracle tests use).  Shm/socket backends: fork one process per rank; each
/// child attaches its communicator, runs the body, and ships {payload,
/// trace events} (or a clean error string) back over a pipe before
/// _exit(0).  The parent supervises: a child that dies abnormally raises
/// the fabric abort flag (shm) — its peers throw promptly instead of
/// hanging — and the first failing rank's error is rethrown after all
/// children are reaped.
SpawnResult spawn_local(
    const SpawnOptions& options,
    const std::function<std::vector<std::byte>(Communicator&)>& body);

}  // namespace bruck::mps
