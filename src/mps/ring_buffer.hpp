// Lock-free multi-producer / single-consumer byte ring — the wire channel
// of the shared-memory fabric, replacing the mutex/condvar mailbox on the
// process-spanning hot path.
//
// Design: one contiguous power-of-two byte region indexed by two monotonic
// 64-bit offsets (`tail` = bytes reserved by producers, `head` = bytes
// consumed).  Producers reserve space with a CAS on `tail`, write their
// record body, then *publish* it by storing the record's commit word
// (release); the consumer walks records strictly in reservation order,
// waiting on an unpublished commit word even if later records are already
// published (per-ring FIFO is part of the wire contract — sequence numbers
// downstream assert it).  Records never wrap: a producer whose record would
// straddle the end of the region publishes a PAD record covering the tail
// gap and starts at offset 0 of the next lap.
//
// Memory reclamation: the consumer zeroes a record's region before
// advancing `head` (release).  A producer's space check acquires `head`, so
// any region it may write into is (a) free and (b) all-zero — which is what
// lets the consumer distinguish "reserved but not yet published" (commit
// word still 0) from garbage left by a previous lap.
//
// The ring is *address-free*: all state is plain data + lock-free
// std::atomic offsets inside the region itself, so the same region mapped
// at different addresses in different processes (MAP_SHARED) works.  The
// single consumer must be the region's owning rank; producers may be any
// number of threads or processes.
//
// Blocking is the caller's job: try_push/try_pop never wait.  A full ring
// returns false from try_push (fabric backpressure — the shm communicator
// retries under its drain deadline); an empty or mid-publish ring returns
// false from try_pop.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

#include "mps/message.hpp"

namespace bruck::mps {

/// Wire-frame metadata carried alongside a ring record's payload (the
/// destination is implicit: the ring's owning rank).
struct RingFrame {
  std::int64_t src = 0;
  std::int64_t seq = 0;
  std::int32_t tag = 0;
  std::int32_t round = 0;
};

class MpscByteRing {
 public:
  /// An empty handle (no region attached); assign from create()/open()
  /// before use.
  MpscByteRing() = default;

  /// Bytes a region must provide for a ring of `capacity` data bytes
  /// (capacity must be a power of two; the header rides in front).
  [[nodiscard]] static std::size_t region_bytes(std::size_t capacity);

  /// Round `wanted` up to the smallest valid ring capacity (power of two,
  /// at least one max-size record's worth of headroom).
  [[nodiscard]] static std::size_t round_up_capacity(std::size_t wanted);

  /// Placement-initialize a ring over `region` (region_bytes(capacity)
  /// bytes; the region is fully zeroed here).  Returns a process-local
  /// handle; exactly one side (the consumer) initializes, everyone else
  /// opens.  The region itself is position-independent — handles in other
  /// processes may map it at different addresses.
  static MpscByteRing create(void* region, std::size_t capacity);

  /// Attach to a region initialized by create() (same or another process).
  static MpscByteRing open(void* region);

  /// Largest payload a single record may carry on a ring of this capacity.
  [[nodiscard]] std::size_t max_payload_bytes() const;

  /// Producer side (any thread or process): reserve-write-publish one
  /// record.  Returns false when the ring lacks space (retry after the
  /// consumer drains).  Throws ContractViolation if the payload can never
  /// fit (caller should size the ring for the fabric's largest wire
  /// segment).
  bool try_push(const RingFrame& frame, std::span<const std::byte> payload);

  /// Consumer side (owning rank only): pop the oldest record into `out`
  /// (src/seq/tag/round/payload filled; dst left untouched).  False when
  /// the ring is empty or the oldest reservation is not yet published.
  bool try_pop(Message& out);

  /// Payload bytes currently queued (published and not yet consumed) —
  /// the diagnostics counterpart of Mailbox::pending_bytes().
  [[nodiscard]] std::size_t pending_bytes() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::uint64_t kMagic = 0x6272'7563'6b72'696eULL;  // "bruckrin"
  static constexpr std::uint32_t kPadFlag = 0x8000'0000u;

  /// Per-record header, laid out at the record's start inside the region.
  /// `commit` is 0 while the record is reserved-but-unpublished; once
  /// published it holds the record's total size (kPadFlag set for pads).
  struct RecordHeader {
    std::atomic<std::uint32_t> commit;
    std::uint32_t payload_bytes;
    std::int64_t src;
    std::int64_t seq;
    std::int32_t tag;
    std::int32_t round;
  };
  static_assert(sizeof(RecordHeader) == 32);

  /// The shared control block at the front of the region.
  struct Control {
    std::uint64_t magic;
    std::uint64_t capacity;
    alignas(64) std::atomic<std::uint64_t> tail;  ///< bytes reserved
    alignas(64) std::atomic<std::uint64_t> head;  ///< bytes consumed
    alignas(64) std::atomic<std::uint64_t> pending_payload;
  };
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "the shm ring needs address-free lock-free 64-bit atomics");

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] RecordHeader* header_at(std::uint64_t slot) {
    return reinterpret_cast<RecordHeader*>(data_ + slot);
  }

  Control* ctl_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace bruck::mps
