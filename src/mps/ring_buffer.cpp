#include "mps/ring_buffer.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace bruck::mps {

namespace {

constexpr std::size_t kRecordAlign = 8;

constexpr std::size_t align_up(std::size_t v) {
  return (v + (kRecordAlign - 1)) & ~(kRecordAlign - 1);
}

}  // namespace

std::size_t MpscByteRing::region_bytes(std::size_t capacity) {
  BRUCK_REQUIRE_MSG(std::has_single_bit(capacity),
                    "ring capacity must be a power of two");
  return sizeof(Control) + capacity;
}

std::size_t MpscByteRing::round_up_capacity(std::size_t wanted) {
  const std::size_t floor = 4096;
  return std::bit_ceil(wanted < floor ? floor : wanted);
}

MpscByteRing MpscByteRing::create(void* region, std::size_t capacity) {
  BRUCK_REQUIRE_MSG(std::has_single_bit(capacity),
                    "ring capacity must be a power of two");
  BRUCK_REQUIRE_MSG(reinterpret_cast<std::uintptr_t>(region) % 64 == 0,
                    "ring region must be 64-byte aligned");
  // Zero everything first: the empty-vs-unpublished discipline relies on
  // free space reading as zero commit words.
  std::memset(region, 0, region_bytes(capacity));
  MpscByteRing ring;
  ring.ctl_ = new (region) Control;
  ring.ctl_->capacity = capacity;
  ring.ctl_->tail.store(0, std::memory_order_relaxed);
  ring.ctl_->head.store(0, std::memory_order_relaxed);
  ring.ctl_->pending_payload.store(0, std::memory_order_relaxed);
  ring.data_ = static_cast<std::byte*>(region) + sizeof(Control);
  ring.capacity_ = capacity;
  // The magic is published last: attach-side open() spins on it when racing
  // a named-segment creator.
  reinterpret_cast<std::atomic<std::uint64_t>*>(&ring.ctl_->magic)
      ->store(kMagic, std::memory_order_release);
  return ring;
}

MpscByteRing MpscByteRing::open(void* region) {
  MpscByteRing ring;
  ring.ctl_ = static_cast<Control*>(region);
  const std::uint64_t magic =
      reinterpret_cast<std::atomic<std::uint64_t>*>(&ring.ctl_->magic)
          ->load(std::memory_order_acquire);
  BRUCK_REQUIRE_MSG(magic == kMagic, "ring region not initialized");
  ring.data_ = static_cast<std::byte*>(region) + sizeof(Control);
  ring.capacity_ = static_cast<std::size_t>(ring.ctl_->capacity);
  return ring;
}

std::size_t MpscByteRing::max_payload_bytes() const {
  // A record must leave room for itself plus a worst-case pad on one lap.
  return capacity_ / 2 - sizeof(RecordHeader);
}

bool MpscByteRing::try_push(const RingFrame& frame,
                            std::span<const std::byte> payload) {
  const std::size_t total =
      align_up(sizeof(RecordHeader) + payload.size());
  BRUCK_REQUIRE_MSG(
      payload.size() <= max_payload_bytes(),
      "wire segment larger than the shm ring (raise BRUCK_SHM_RING_BYTES)");
  std::uint64_t t = ctl_->tail.load(std::memory_order_relaxed);
  std::uint64_t pad = 0;
  for (;;) {
    const std::uint64_t pos = t & (capacity_ - 1);
    const std::uint64_t to_end = capacity_ - pos;
    pad = to_end < total ? to_end : 0;
    const std::uint64_t head = ctl_->head.load(std::memory_order_acquire);
    if (t + pad + total - head > capacity_) return false;  // full
    if (ctl_->tail.compare_exchange_weak(t, t + pad + total,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
      break;
    }
    // t was reloaded by the failed CAS; recompute pad/space.
  }
  const std::uint64_t pos = t & (capacity_ - 1);
  if (pad != 0) {
    // Publish the tail-gap pad record; the real record starts at offset 0.
    // The pad region beyond its commit word is already zero (consumer
    // zeroes on free), so nothing else to write.
    header_at(pos)->commit.store(static_cast<std::uint32_t>(pad) | kPadFlag,
                                 std::memory_order_release);
  }
  const std::uint64_t slot = pad != 0 ? 0 : pos;
  RecordHeader* h = header_at(slot);
  h->payload_bytes = static_cast<std::uint32_t>(payload.size());
  h->src = frame.src;
  h->seq = frame.seq;
  h->tag = frame.tag;
  h->round = frame.round;
  if (!payload.empty()) {
    std::memcpy(data_ + slot + sizeof(RecordHeader), payload.data(),
                payload.size());
  }
  ctl_->pending_payload.fetch_add(payload.size(), std::memory_order_relaxed);
  h->commit.store(static_cast<std::uint32_t>(total),
                  std::memory_order_release);
  return true;
}

bool MpscByteRing::try_pop(Message& out) {
  for (;;) {
    const std::uint64_t head = ctl_->head.load(std::memory_order_relaxed);
    if (head == ctl_->tail.load(std::memory_order_acquire)) return false;
    const std::uint64_t slot = head & (capacity_ - 1);
    RecordHeader* h = header_at(slot);
    const std::uint32_t commit = h->commit.load(std::memory_order_acquire);
    if (commit == 0) return false;  // oldest record still being written
    const std::uint64_t total = commit & ~kPadFlag;
    if ((commit & kPadFlag) != 0) {
      // Tail-gap pad: zero it and advance to the next lap.
      std::memset(data_ + slot, 0, static_cast<std::size_t>(total));
      ctl_->head.store(head + total, std::memory_order_release);
      continue;
    }
    out.src = h->src;
    out.seq = h->seq;
    out.tag = h->tag;
    out.round = h->round;
    out.shared.reset();
    out.shared_offset = 0;
    out.shared_length = 0;
    out.payload.assign(
        data_ + slot + sizeof(RecordHeader),
        data_ + slot + sizeof(RecordHeader) + h->payload_bytes);
    ctl_->pending_payload.fetch_sub(h->payload_bytes,
                                    std::memory_order_relaxed);
    // Zero before freeing: the next lap's producers must find zero commit
    // words anywhere in the region they reserve.
    std::memset(data_ + slot, 0, static_cast<std::size_t>(total));
    ctl_->head.store(head + total, std::memory_order_release);
    return true;
  }
}

std::size_t MpscByteRing::pending_bytes() const {
  return static_cast<std::size_t>(
      ctl_->pending_payload.load(std::memory_order_relaxed));
}

}  // namespace bruck::mps
