#include "mps/trace.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace bruck::mps {

Trace::Trace(std::int64_t n, int k) : n_(n), k_(k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  sinks_.resize(static_cast<std::size_t>(n));
}

TraceSink& Trace::sink(std::int64_t rank) {
  BRUCK_REQUIRE(rank >= 0 && rank < n_);
  return sinks_[static_cast<std::size_t>(rank)];
}

std::vector<int> Trace::tags() const {
  std::vector<int> out;
  for (const TraceSink& s : sinks_) {
    for (const SendEvent& e : s.sends()) {
      if (std::find(out.begin(), out.end(), e.tag) == out.end()) {
        out.push_back(e.tag);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

sched::Schedule Trace::to_schedule() const {
  // Round indices are per tag: stack each tag's round space after the
  // previous one so the merged schedule validates each namespace's k-port
  // structure independently (see the header comment).
  const std::vector<int> all_tags = tags();
  std::unordered_map<int, int> base;    // tag -> first merged round
  std::unordered_map<int, int> extent;  // tag -> max round within the tag
  for (const TraceSink& s : sinks_) {
    for (const SendEvent& e : s.sends()) {
      BRUCK_ENSURE_MSG(e.round >= 0, "negative round index recorded");
      auto [it, inserted] = extent.try_emplace(e.tag, e.round);
      if (!inserted) it->second = std::max(it->second, e.round);
    }
  }
  int next_base = 0;
  for (const int tag : all_tags) {
    base[tag] = next_base;
    next_base += extent.at(tag) + 1;
  }
  sched::Schedule schedule(n_, k_);
  for (int r = 0; r < next_base; ++r) schedule.add_round();
  for (std::int64_t rank = 0; rank < n_; ++rank) {
    for (const SendEvent& e : sinks_[static_cast<std::size_t>(rank)].sends()) {
      schedule.add_transfer(static_cast<std::size_t>(base.at(e.tag) + e.round),
                            sched::Transfer{rank, e.dst, e.bytes});
    }
  }
  schedule.normalize();
  const std::string err = schedule.validate();
  BRUCK_ENSURE_MSG(err.empty(), "executed trace violates the k-port model: " + err);
  return schedule;
}

sched::Schedule Trace::to_schedule_for_tag(int tag) const {
  int max_round = -1;
  for (const TraceSink& s : sinks_) {
    for (const SendEvent& e : s.sends()) {
      if (e.tag != tag) continue;
      BRUCK_ENSURE_MSG(e.round >= 0, "negative round index recorded");
      max_round = std::max(max_round, e.round);
    }
  }
  sched::Schedule schedule(n_, k_);
  for (int r = 0; r <= max_round; ++r) schedule.add_round();
  for (std::int64_t rank = 0; rank < n_; ++rank) {
    for (const SendEvent& e : sinks_[static_cast<std::size_t>(rank)].sends()) {
      if (e.tag != tag) continue;
      schedule.add_transfer(static_cast<std::size_t>(e.round),
                            sched::Transfer{rank, e.dst, e.bytes});
    }
  }
  schedule.normalize();
  const std::string err = schedule.validate();
  BRUCK_ENSURE_MSG(err.empty(),
                   "executed trace (one tag) violates the k-port model: " + err);
  return schedule;
}

model::CostMetrics Trace::metrics() const {
  if (event_count() == 0) return {};
  return to_schedule().metrics();
}

std::size_t Trace::event_count() const {
  std::size_t total = 0;
  for (const TraceSink& s : sinks_) total += s.sends().size();
  return total;
}

PlanStats Trace::plan_stats() const {
  PlanStats stats;
  for (const TraceSink& s : sinks_) {
    for (const PlanEvent& e : s.plans()) {
      ++stats.uses;
      if (e.cache_hit) {
        ++stats.hits;
      } else {
        ++stats.misses;
      }
      stats.rounds += e.rounds;
      stats.bytes_sent += e.bytes_sent;
      stats.bytes_reduced += e.bytes_reduced;
      stats.wall_us += e.wall_us;
    }
  }
  return stats;
}

}  // namespace bruck::mps
