// Buffered per-destination mailbox.  Sends never block (the paper's model
// has no flow control below the round structure); receives block until the
// next message from the requested source arrives, with a timeout so that a
// deadlocked algorithm fails loudly instead of hanging the test binary.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "mps/message.hpp"

namespace bruck::mps {

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called from the sender's thread).
  void push(Message m);

  /// Pop the oldest pending message from `src`; blocks up to `timeout`.
  /// Throws bruck::ContractViolation on timeout — a deadlock diagnostic,
  /// not a recoverable condition.
  [[nodiscard]] Message pop_from(std::int64_t src,
                                 std::chrono::milliseconds timeout);

  /// Number of queued messages over all sources (diagnostics; O(sources)).
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::int64_t, std::deque<Message>> queues_;
};

}  // namespace bruck::mps
