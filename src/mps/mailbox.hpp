// Buffered per-destination mailbox.  Sends never block (the paper's model
// has no flow control below the round structure); receives block until the
// next message from the requested source arrives, with a timeout so that a
// deadlocked algorithm fails loudly instead of hanging the test binary.
//
// The nonblocking port engine completes receives in arrival order, so the
// mailbox also supports popping from *any* of a set of sources — both a
// nonblocking probe and a blocking wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

#include "mps/message.hpp"

namespace bruck::mps {

/// Thread safety: every method is internally synchronized on one mutex per
/// mailbox; `push` is wait-free with respect to receivers (sends never
/// block).  Trace: the mailbox records nothing — trace events are the
/// sender's post-time responsibility.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called from the sender's thread).  The message is
  /// moved in; payload buffers are never copied inside the mailbox.
  void push(Message m);

  /// Pop the oldest pending message from `src`; blocks up to `timeout`.
  /// Throws bruck::ContractViolation on timeout — a deadlock diagnostic,
  /// not a recoverable condition.
  [[nodiscard]] Message pop_from(std::int64_t src,
                                 std::chrono::milliseconds timeout);

  /// Pop the oldest pending message from whichever of `srcs` has one,
  /// without blocking.  Sources are probed in the given order (per-source
  /// FIFO is always preserved).  Empty optional if none has a message.
  [[nodiscard]] std::optional<Message> try_pop_any(
      std::span<const std::int64_t> srcs);

  /// Blocking try_pop_any: waits up to `timeout` for a message from any of
  /// `srcs`.  Empty optional on timeout (the caller owns the diagnostic —
  /// it knows which logical receives are outstanding).
  [[nodiscard]] std::optional<Message> pop_any(
      std::span<const std::int64_t> srcs, std::chrono::milliseconds timeout);

  /// Number of queued messages over all sources (diagnostics; O(sources)).
  [[nodiscard]] std::size_t pending() const;

  /// Total payload bytes queued over all sources (diagnostics: how much
  /// data is buffered in-flight toward this rank).
  [[nodiscard]] std::size_t pending_bytes() const;

 private:
  /// Pop the oldest message among `srcs`, assuming mu_ is held.
  std::optional<Message> pop_any_locked(std::span<const std::int64_t> srcs);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::int64_t, std::deque<Message>> queues_;
};

}  // namespace bruck::mps
