// TCP socket fabric: the inter-node transport backend (exercised over
// loopback in this repo's tests; the wire protocol is host-order and
// assumes a homogeneous cluster).
//
// Topology is a full mesh of TCP connections bootstrapped
// connect-to-lower / accept-from-higher: rank i dials every rank j < i
// (each dial opens with a hello frame naming the dialer's rank) and
// accepts one connection from every rank j > i.  The launcher hands each
// rank its pre-bound listening socket plus the port table, so no rank
// races another for an address.
//
// Wire protocol: length-framed records, one FrameHeader (40 bytes,
// host-order) followed by the payload.  Data frames carry one port-engine
// wire segment; hello frames bootstrap; barrier frames implement a
// rank-0-coordinated barrier (everyone sends arrive to rank 0, rank 0
// broadcasts release).
//
// All sockets run nonblocking under one epoll instance per rank.  Sends
// append to a per-peer outbox and flush opportunistically — partial
// writes (short ::send) simply leave the tail in the outbox, and the
// BRUCK_SOCKET_MAX_WRITE_BYTES knob caps each ::send so tests can force
// that path deterministically.  Receives parse incrementally: a frame
// split across arbitrarily many TCP reads assembles correctly.
//
// Failure story: a peer that dies drops its connection; EOF on a socket
// marks the peer dead, and any blocking wait that still needs traffic
// from a dead peer throws a ContractViolation immediately instead of
// waiting out the drain deadline.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "mps/port_engine.hpp"
#include "mps/trace.hpp"

namespace bruck::mps {

/// Everything one rank needs to join a socket fabric.
struct SocketFabricOptions {
  std::int64_t n = 1;
  std::int64_t rank = 0;
  int k = 1;
  /// This rank's already-bound, already-listening socket (ownership moves
  /// to the communicator).
  int listen_fd = -1;
  /// Loopback listen ports indexed by rank.
  std::vector<std::uint16_t> ports;
  bool record_trace = true;
  std::chrono::milliseconds recv_timeout{30000};
};

/// A set of pre-bound loopback listeners, one per rank, created by the
/// launcher before forking so every rank knows every port up front.
struct SocketListeners {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
};

/// Bind and listen on `n` ephemeral loopback ports (127.0.0.1:0).
[[nodiscard]] SocketListeners create_loopback_listeners(std::int64_t n);

class SocketComm final : public WirePortEngine {
 public:
  explicit SocketComm(SocketFabricOptions options);
  ~SocketComm() override;

  [[nodiscard]] std::int64_t rank() const override { return options_.rank; }
  [[nodiscard]] std::int64_t size() const override { return options_.n; }
  [[nodiscard]] int ports() const override { return options_.k; }
  [[nodiscard]] std::chrono::milliseconds recv_timeout() const override {
    return options_.recv_timeout;
  }
  void barrier() override;
  void record_plan_event(const PlanEvent& event) override;

  /// This rank's locally recorded events (the launcher ships them home).
  [[nodiscard]] const TraceSink& trace_sink() const { return sink_; }

 protected:
  void wire_push(Message&& m) override;
  std::optional<Message> wire_pop(std::span<const std::int64_t> waiting_srcs,
                                  std::chrono::milliseconds timeout) override;
  void record_send_event(int round, std::int64_t dst, std::int64_t bytes,
                         int tag) override;

 private:
  /// Per-peer connection state: the socket, its unsent outbox tail, and the
  /// incremental parse buffer of its inbound byte stream.
  struct Peer {
    int fd = -1;
    bool eof = false;
    std::deque<std::byte> outbox;
    std::vector<std::byte> inbuf;
  };

  void connect_mesh();
  /// Append one frame (header + payload) to dst's outbox and try to flush.
  void enqueue_frame(std::int64_t dst, std::uint32_t kind, std::int64_t seq,
                     std::int32_t tag, std::int32_t round,
                     std::span<const std::byte> payload);
  /// Write as much of peer's outbox as the socket accepts (short writes
  /// leave the tail; EPIPE/reset ⇒ ContractViolation naming the peer).
  void flush_outbox(std::int64_t peer);
  void flush_all_outboxes();
  /// Drain readable bytes from peer's socket into its parse buffer and
  /// extract complete frames (data ⇒ inbox_, barrier ⇒ counters).
  void read_from_peer(std::int64_t peer);
  /// One epoll pass: flush outboxes, wait up to `wait`, ingest readable
  /// sockets.  Returns true if any frame or write progress happened.
  bool pump(std::chrono::milliseconds wait);
  /// Throw if `src` is dead with nothing buffered while traffic from it is
  /// still required.
  void require_alive(std::int64_t src) const;

  SocketFabricOptions options_;
  int epoll_fd_ = -1;
  std::size_t max_write_bytes_;  ///< per-::send cap (test knob)
  std::vector<Peer> peers_;      ///< indexed by rank; self entry unused
  std::deque<Message> inbox_;    ///< parsed data frames, arrival order
  // Rank-0-coordinated barrier state.
  std::int64_t barrier_arrivals_ = 0;  ///< rank 0: arrive frames this generation
  std::int64_t barrier_generation_ = 0;
  std::int64_t barrier_release_seen_ = -1;  ///< ranks != 0: last release generation
  TraceSink sink_;
};

}  // namespace bruck::mps
