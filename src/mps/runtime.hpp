// SPMD launcher: run the same body on n rank threads over one Fabric, join,
// propagate failures, and hand back the executed trace and wall time.
#pragma once

#include <functional>
#include <memory>

#include "mps/thread_comm.hpp"

namespace bruck::mps {

struct RunResult {
  /// Executed communication trace (empty if record_trace was off).
  std::shared_ptr<Trace> trace;
  /// Wall-clock seconds of the parallel section (thread spawn to last join).
  double wall_seconds = 0.0;
};

/// Run `body(comm)` on every rank of a fabric described by `options`.
/// If any rank throws, the first exception (by rank order) is rethrown after
/// all threads have been joined.
RunResult run_spmd(const FabricOptions& options,
                   const std::function<void(Communicator&)>& body);

/// Convenience overload for the common (n, k) case.
RunResult run_spmd(std::int64_t n, int k,
                   const std::function<void(Communicator&)>& body);

}  // namespace bruck::mps
