#include "mps/mailbox.hpp"

#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace bruck::mps {

void Mailbox::push(Message m) {
  {
    const std::scoped_lock lock(mu_);
    queues_[m.src].push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::pop_from(std::int64_t src, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    const auto it = queues_.find(src);
    return it != queues_.end() && !it->second.empty();
  });
  if (!ok) {
    std::ostringstream os;
    os << "mailbox receive from rank " << src << " timed out after "
       << timeout.count() << " ms (deadlock or mismatched exchange?)";
    throw ContractViolation(os.str());
  }
  auto& q = queues_[src];
  Message m = std::move(q.front());
  q.pop_front();
  return m;
}

std::optional<Message> Mailbox::pop_any_locked(
    std::span<const std::int64_t> srcs) {
  for (const std::int64_t src : srcs) {
    const auto it = queues_.find(src);
    if (it != queues_.end() && !it->second.empty()) {
      Message m = std::move(it->second.front());
      it->second.pop_front();
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::try_pop_any(
    std::span<const std::int64_t> srcs) {
  const std::scoped_lock lock(mu_);
  return pop_any_locked(srcs);
}

std::optional<Message> Mailbox::pop_any(std::span<const std::int64_t> srcs,
                                        std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  std::optional<Message> m = pop_any_locked(srcs);
  if (m.has_value()) return m;
  (void)cv_.wait_for(lock, timeout, [&] {
    m = pop_any_locked(srcs);
    return m.has_value();
  });
  return m;
}

std::size_t Mailbox::pending() const {
  const std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [src, q] : queues_) total += q.size();
  return total;
}

std::size_t Mailbox::pending_bytes() const {
  const std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [src, q] : queues_) {
    for (const Message& m : q) total += m.size_bytes();
  }
  return total;
}

}  // namespace bruck::mps
