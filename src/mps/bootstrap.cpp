#include "mps/bootstrap.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>
#include <utility>

#include "mps/runtime.hpp"
#include "mps/shm_comm.hpp"
#include "mps/socket_comm.hpp"
#include "mps/thread_comm.hpp"
#include "tune/runtime.hpp"
#include "util/assert.hpp"

namespace bruck::mps {

const char* to_string(FabricBackend backend) {
  switch (backend) {
    case FabricBackend::kThread:
      return "thread";
    case FabricBackend::kShm:
      return "shm";
    case FabricBackend::kSocket:
      return "socket";
  }
  return "?";
}

std::optional<FabricBackend> parse_fabric_backend(const char* text) {
  if (text == nullptr) return std::nullopt;
  const std::string_view s(text);
  if (s == "thread") return FabricBackend::kThread;
  if (s == "shm") return FabricBackend::kShm;
  if (s == "socket") return FabricBackend::kSocket;
  return std::nullopt;
}

FabricBackend default_fabric_backend() {
  const char* env = std::getenv("BRUCK_FABRIC");
  if (env == nullptr) return FabricBackend::kThread;
  if (const auto parsed = parse_fabric_backend(env)) return *parsed;
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid BRUCK_FABRIC=\"%s\" "
                 "(want thread|shm|socket); using thread\n",
                 env);
  });
  return FabricBackend::kThread;
}

std::optional<std::size_t> parse_byte_count(const char* text,
                                            std::size_t min_bytes,
                                            std::size_t max_bytes) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;  // junk / trailing junk
  if (errno == ERANGE) return std::nullopt;
  if (v < 0) return std::nullopt;
  const auto u = static_cast<unsigned long long>(v);
  if (u < min_bytes || u > max_bytes) return std::nullopt;
  return static_cast<std::size_t>(u);
}

namespace {

std::size_t byte_env(const char* name, std::size_t min_bytes,
                     std::size_t max_bytes, std::size_t fallback,
                     std::once_flag& warned) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  if (const auto parsed = parse_byte_count(env, min_bytes, max_bytes)) {
    return *parsed;
  }
  std::call_once(warned, [&] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid %s=\"%s\" (want an integer in "
                 "[%zu, %zu]); using %zu\n",
                 name, env, min_bytes, max_bytes, fallback);
  });
  return fallback;
}

}  // namespace

std::size_t default_shm_ring_bytes() {
  static std::once_flag warned;
  return byte_env("BRUCK_SHM_RING_BYTES", std::size_t{4} << 10,
                  std::size_t{1} << 30, std::size_t{1} << 20, warned);
}

std::size_t default_socket_max_write_bytes() {
  static std::once_flag warned;
  return byte_env("BRUCK_SOCKET_MAX_WRITE_BYTES", 1, std::size_t{16} << 20,
                  std::size_t{64} << 10, warned);
}

// ---------------------------------------------------------------------------
// spawn_local

namespace {

/// Child→parent result-pipe records, length-prefixed raw bytes (both ends
/// are the same binary image, so trivially copyable event structs ship as
/// memcpy'd arrays).
void write_all(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  while (bytes > 0) {
    const ssize_t w = ::write(fd, p, bytes);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return;  // parent gone: nothing useful left to do
    p += w;
    bytes -= static_cast<std::size_t>(w);
  }
}

void put_u64(int fd, std::uint64_t v) { write_all(fd, &v, sizeof(v)); }

void put_blob(int fd, const void* data, std::size_t bytes) {
  put_u64(fd, bytes);
  write_all(fd, data, bytes);
}

/// Serialize one rank's outcome onto its result pipe.
void ship_result(int fd, bool ok, const std::string& error,
                 const std::vector<std::byte>& payload,
                 const TraceSink& sink) {
  const std::uint64_t flag = ok ? 1 : 0;
  put_u64(fd, flag);
  if (!ok) {
    put_blob(fd, error.data(), error.size());
    return;
  }
  put_blob(fd, payload.data(), payload.size());
  const auto& sends = sink.sends();
  put_blob(fd, sends.data(), sends.size() * sizeof(SendEvent));
  const auto& plans = sink.plans();
  put_blob(fd, plans.data(), plans.size() * sizeof(PlanEvent));
}

/// Cursor over one rank's fully buffered pipe bytes.
struct PipeReader {
  const std::vector<std::byte>* buf;
  std::size_t off = 0;

  std::uint64_t u64() {
    BRUCK_REQUIRE_MSG(buf->size() - off >= sizeof(std::uint64_t),
                      "truncated result pipe from a rank process");
    std::uint64_t v = 0;
    std::memcpy(&v, buf->data() + off, sizeof(v));
    off += sizeof(v);
    return v;
  }
  std::vector<std::byte> blob() {
    const std::uint64_t len = u64();
    BRUCK_REQUIRE_MSG(buf->size() - off >= len,
                      "truncated result pipe from a rank process");
    std::vector<std::byte> out(buf->data() + off, buf->data() + off + len);
    off += len;
    return out;
  }
};

/// The child side of one forked rank: attach, run, ship, _exit.  Never
/// returns.  `comm_factory` builds the rank's communicator (the fabric
/// resources were prepared pre-fork and inherited).
[[noreturn]] void run_child_rank(
    int result_fd,
    const std::function<std::unique_ptr<Communicator>()>& comm_factory,
    const std::function<std::vector<std::byte>(Communicator&)>& body) {
  bool ok = false;
  std::string error;
  std::vector<std::byte> payload;
  TraceSink events;
  try {
    {
      std::unique_ptr<Communicator> comm = comm_factory();
      payload = body(*comm);
      if (auto* shm = dynamic_cast<ShmComm*>(comm.get())) {
        events = shm->trace_sink();
      } else if (auto* sock = dynamic_cast<SocketComm*>(comm.get())) {
        events = sock->trace_sink();
      }
    }  // communicator teardown (socket outbox flush) before reporting
    ok = true;
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown exception in rank process";
  }
  ship_result(result_fd, ok, error, payload, events);
  ::close(result_fd);
  ::_exit(0);
}

}  // namespace

SpawnResult spawn_local(
    const SpawnOptions& options,
    const std::function<std::vector<std::byte>(Communicator&)>& body) {
  BRUCK_REQUIRE(options.n >= 1);
  BRUCK_REQUIRE(options.k >= 1);
  const std::int64_t n = options.n;
  const std::chrono::milliseconds timeout = options.recv_timeout.count() > 0
                                                ? options.recv_timeout
                                                : default_recv_timeout();

  // Tuning bootstrap wraps the body: every rank calibrates/loads the tune
  // table before user work.  Live adaptive exploration needs all ranks in
  // one process (shared sample pool) — thread fabric only.
  const tune::TuneMode tune_mode = tune::resolve_tune_mode(options.tune);
  const std::string fabric_name = to_string(options.backend);
  const bool allow_exploration = options.backend == FabricBackend::kThread;
  const std::function<std::vector<std::byte>(Communicator&)> tuned_body =
      [&body, tune_mode, fabric_name,
       allow_exploration](Communicator& comm) -> std::vector<std::byte> {
    if (tune_mode != tune::TuneMode::kOff) {
      tune::bootstrap_rank(comm, fabric_name, tune_mode, allow_exploration);
    }
    return body(comm);
  };

  if (options.backend == FabricBackend::kThread) {
    FabricOptions fo;
    fo.n = n;
    fo.k = options.k;
    fo.record_trace = options.record_trace;
    fo.recv_timeout = timeout;
    SpawnResult out;
    out.rank_payloads.resize(static_cast<std::size_t>(n));
    const RunResult run = run_spmd(fo, [&](Communicator& comm) {
      // Each rank writes only its own slot: no synchronization needed.
      out.rank_payloads[static_cast<std::size_t>(comm.rank())] =
          tuned_body(comm);
    });
    out.trace = run.trace;
    out.wall_seconds = run.wall_seconds;
    return out;
  }

  // -- Process backends: prepare inheritable fabric resources pre-fork. ----
  ShmSegment shm_region;
  SocketListeners listeners;
  if (options.backend == FabricBackend::kShm) {
    ShmFabricOptions so;
    so.n = n;
    so.k = options.k;
    so.ring_bytes = options.shm_ring_bytes > 0 ? options.shm_ring_bytes
                                               : default_shm_ring_bytes();
    so.record_trace = options.record_trace;
    so.recv_timeout = timeout;
    shm_region = ShmSegment::create_anonymous(ShmComm::region_bytes(so));
    ShmComm::init_region(shm_region.data(), so);
  } else {
    listeners = create_loopback_listeners(n);
  }

  std::vector<std::array<int, 2>> pipes(static_cast<std::size_t>(n));
  for (auto& p : pipes) {
    BRUCK_REQUIRE_MSG(::pipe(p.data()) == 0, "pipe() failed");
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<pid_t> pids(static_cast<std::size_t>(n), -1);
  for (std::int64_t r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    BRUCK_REQUIRE_MSG(pid >= 0, "fork() failed");
    if (pid == 0) {
      // Child: keep only this rank's resources.
      for (std::int64_t s = 0; s < n; ++s) {
        ::close(pipes[static_cast<std::size_t>(s)][0]);
        if (s != r) ::close(pipes[static_cast<std::size_t>(s)][1]);
      }
      if (options.backend == FabricBackend::kSocket) {
        for (std::int64_t s = 0; s < n; ++s) {
          if (s != r) ::close(listeners.fds[static_cast<std::size_t>(s)]);
        }
      }
      auto factory = [&]() -> std::unique_ptr<Communicator> {
        if (options.backend == FabricBackend::kShm) {
          return std::make_unique<ShmComm>(shm_region.data(), r);
        }
        SocketFabricOptions so;
        so.n = n;
        so.rank = r;
        so.k = options.k;
        so.listen_fd = listeners.fds[static_cast<std::size_t>(r)];
        so.ports = listeners.ports;
        so.record_trace = options.record_trace;
        so.recv_timeout = timeout;
        return std::make_unique<SocketComm>(std::move(so));
      };
      run_child_rank(pipes[static_cast<std::size_t>(r)][1], factory,
                     tuned_body);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Parent: drop the child-side fds, then supervise — drain result pipes
  // (so no child blocks writing a large payload) while reaping exits.  An
  // abnormal exit raises the shm abort flag immediately so surviving ranks
  // fail fast instead of spinning out their whole drain deadline; socket
  // ranks see the death as EOF on their own.
  for (std::int64_t r = 0; r < n; ++r) {
    ::close(pipes[static_cast<std::size_t>(r)][1]);
  }
  if (options.backend == FabricBackend::kSocket) {
    for (const int fd : listeners.fds) ::close(fd);
  }

  std::vector<std::vector<std::byte>> raw(static_cast<std::size_t>(n));
  std::vector<bool> pipe_open(static_cast<std::size_t>(n), true);
  std::vector<int> exit_status(static_cast<std::size_t>(n), -1);
  std::vector<bool> reaped(static_cast<std::size_t>(n), false);
  std::int64_t open_pipes = n;
  std::int64_t live_children = n;
  while (open_pipes > 0 || live_children > 0) {
    std::vector<pollfd> pfds;
    for (std::int64_t r = 0; r < n; ++r) {
      if (pipe_open[static_cast<std::size_t>(r)]) {
        pfds.push_back(pollfd{pipes[static_cast<std::size_t>(r)][0], POLLIN, 0});
      }
    }
    if (!pfds.empty()) {
      ::poll(pfds.data(), pfds.size(), 20);
      std::size_t i = 0;
      for (std::int64_t r = 0; r < n; ++r) {
        if (!pipe_open[static_cast<std::size_t>(r)]) continue;
        const pollfd& pfd = pfds[i++];
        if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        std::byte chunk[64 * 1024];
        const ssize_t got = ::read(pfd.fd, chunk, sizeof(chunk));
        if (got > 0) {
          auto& buf = raw[static_cast<std::size_t>(r)];
          buf.insert(buf.end(), chunk, chunk + got);
        } else if (got == 0 || (got < 0 && errno != EINTR)) {
          ::close(pfd.fd);
          pipe_open[static_cast<std::size_t>(r)] = false;
          --open_pipes;
        }
      }
    }
    while (live_children > 0) {
      int status = 0;
      const pid_t done = ::waitpid(-1, &status, WNOHANG);
      if (done <= 0) break;
      for (std::int64_t r = 0; r < n; ++r) {
        if (pids[static_cast<std::size_t>(r)] != done) continue;
        reaped[static_cast<std::size_t>(r)] = true;
        exit_status[static_cast<std::size_t>(r)] = status;
        --live_children;
        if (options.backend == FabricBackend::kShm &&
            (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
          ShmComm::abort_region(shm_region.data());
        }
      }
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // Assemble results; surface the lowest failing rank's story.
  SpawnResult out;
  out.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  out.rank_payloads.resize(static_cast<std::size_t>(n));
  auto trace = options.record_trace
                   ? std::make_shared<Trace>(n, options.k)
                   : std::shared_ptr<Trace>();
  std::string first_error;
  for (std::int64_t r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const int status = exit_status[ri];
    const bool crashed =
        !reaped[ri] || !WIFEXITED(status) || WEXITSTATUS(status) != 0;
    if (crashed) {
      if (first_error.empty()) {
        first_error = "rank " + std::to_string(r) +
                      (reaped[ri] && WIFSIGNALED(status)
                           ? " killed by signal " +
                                 std::to_string(WTERMSIG(status))
                           : " exited abnormally");
      }
      continue;
    }
    PipeReader reader{&raw[ri]};
    const std::uint64_t ok = reader.u64();
    if (ok == 0) {
      const auto msg = reader.blob();
      if (first_error.empty()) {
        first_error = "rank " + std::to_string(r) + ": " +
                      std::string(reinterpret_cast<const char*>(msg.data()),
                                  msg.size());
      }
      continue;
    }
    out.rank_payloads[ri] = reader.blob();
    const auto send_bytes = reader.blob();
    const auto plan_bytes = reader.blob();
    if (trace) {
      TraceSink& sink = trace->sink(r);
      const auto* se = reinterpret_cast<const SendEvent*>(send_bytes.data());
      for (std::size_t i = 0; i < send_bytes.size() / sizeof(SendEvent); ++i) {
        sink.record_send(se[i].round, se[i].dst, se[i].bytes, se[i].tag);
      }
      const auto* pe = reinterpret_cast<const PlanEvent*>(plan_bytes.data());
      for (std::size_t i = 0; i < plan_bytes.size() / sizeof(PlanEvent); ++i) {
        sink.record_plan(pe[i]);
      }
    }
  }
  BRUCK_REQUIRE_MSG(first_error.empty(),
                    "spawn_local(" + std::string(to_string(options.backend)) +
                        ") failed: " + first_error);
  out.trace = std::move(trace);
  return out;
}

}  // namespace bruck::mps
