// Process groups — Appendix A's collectives take "A, the array of the n
// different processor ids, such that A[i] = p_i": the operations run inside
// an ordered subset of the machine, with group ranks translated through A.
// GroupComm realizes exactly that: a Communicator view over an ordered
// member list of a parent communicator.  Collectives run unmodified inside
// the group; disjoint groups run concurrently on one fabric (the paper's
// "operate within arbitrary and dynamic subsets of processors",
// Section 1.2).
#pragma once

#include <cstdint>
#include <vector>

#include "mps/communicator.hpp"

namespace bruck::mps {

class GroupComm final : public Communicator {
 public:
  /// `members[i]` is the parent rank acting as group rank i (the paper's
  /// A[i] = p_i).  Members must be distinct, valid parent ranks, and
  /// include the calling parent rank.
  GroupComm(Communicator& parent, std::vector<std::int64_t> members);

  [[nodiscard]] std::int64_t rank() const override { return group_rank_; }
  [[nodiscard]] std::int64_t size() const override {
    return static_cast<std::int64_t>(members_.size());
  }
  [[nodiscard]] int ports() const override { return parent_->ports(); }

  /// Appendix A's getrank: the group rank of a parent rank, or −1.
  [[nodiscard]] std::int64_t getrank(std::int64_t parent_rank) const;

  /// The parent rank of a group rank (A[i]).
  [[nodiscard]] std::int64_t member(std::int64_t group_rank) const;

  void exchange(int round, std::span<const SendSpec> sends,
                std::span<const RecvSpec> recvs) override;

  // The nonblocking port engine forwards to the parent with group ranks
  // translated to parent ranks, so compiled/pipelined plans run inside a
  // group exactly as they do on the full machine (handles are the
  // parent's).  A rank thread owns ONE completion stream: wait_any_recv
  // reports any outstanding receive of the parent engine, so do not
  // interleave a group collective with receives posted directly on the
  // parent (or a sibling group) without draining them first — the plan
  // executors always drain before returning, so sequential collectives
  // compose fine; a foreign handle in flight fails loudly.
  void post_send(int round, std::int64_t dst, std::span<const std::byte> data,
                 int segments = 1, int tag = 0) override;
  void post_send(int round, std::int64_t dst, std::vector<std::byte>&& data,
                 int segments = 1, int tag = 0) override;
  PortHandle post_recv(int round, std::int64_t src, std::span<std::byte> data,
                       int segments = 1, int tag = 0) override;
  PortHandle post_recv_buffer(int round, std::int64_t src, std::int64_t bytes,
                              int segments = 1, int tag = 0) override;
  std::vector<std::byte> take_payload(PortHandle h) override;
  bool test_recv(PortHandle h) override;
  void wait_recv(PortHandle h) override;
  PortHandle wait_any_recv() override;
  void wait_all_recvs() override;
  std::optional<PortHandle> poll_any_recv() override;

  // Tag namespaces are the parent's: tags allocated through any group view
  // draw from the parent's monotone counter, so sibling groups on one
  // parent can never collide in a tag.
  [[nodiscard]] int allocate_collective_tag() override {
    return parent_->allocate_collective_tag();
  }
  void release_tag(int tag) override { parent_->release_tag(tag); }
  [[nodiscard]] bool native_port_engine() const override {
    return parent_->native_port_engine();
  }

  /// Plan statistics flow to the parent's sink (the group has no trace of
  /// its own).
  void record_plan_event(const PlanEvent& event) override {
    parent_->record_plan_event(event);
  }

  /// Group barriers are intentionally unsupported: the parent barrier spans
  /// the whole fabric, and the group's collectives synchronize through
  /// their own receives.  Throws ContractViolation.
  [[noreturn]] void barrier() override;

 private:
  Communicator* parent_;
  std::vector<std::int64_t> members_;
  std::int64_t group_rank_ = -1;
};

}  // namespace bruck::mps
