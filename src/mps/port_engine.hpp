// The shared *native* implementation of the nonblocking port-engine
// contract, factored out of ThreadComm so that every real fabric — threads
// with mailboxes, processes over shared-memory rings, processes over TCP —
// runs the exact same matching/ordering machinery and differs only in how
// wire messages physically move.
//
// A WirePortEngine owns the receive side of the contract entirely:
// pending-receive matching in per-(tag, source) FIFO order, wire-segment
// sequence and length checks, the early-arrival stash for tags whose
// receive is not posted yet, per-tag round monotonicity and port budgets,
// and arrival-order completion reporting.  All of that state is touched
// only by the owning rank's thread (the engine's single-thread contract),
// so a subclass's wire hooks never need to synchronize with the engine.
//
// A fabric subclass implements three hooks:
//  * wire_push(Message&&)  — move one wire segment toward its destination
//    (mailbox deposit, ring push, socket write ...).  May block on fabric
//    backpressure, bounded by the fabric's own deadline discipline.
//  * wire_pop(waiting_srcs, timeout) — surface one arrived wire message for
//    this rank, blocking up to `timeout` (0 = poll).  The engine stashes
//    anything it is not yet waiting for, so fabrics that must drain their
//    channel eagerly (bounded rings) may return messages from any source.
//  * record_send_event(...) — the trace hook (one event per *logical* send).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mps/communicator.hpp"
#include "mps/message.hpp"

namespace bruck::mps {

/// Byte length of segment `i` of a `total`-byte payload split `segments`
/// ways: the remainder is spread over the leading segments, so sender and
/// receiver derive identical layouts from (total, segments) alone.
[[nodiscard]] std::int64_t wire_segment_length(std::int64_t total, int segments,
                                               int i);

/// Effective wire segment count: never more segments than bytes.
[[nodiscard]] int effective_wire_segments(std::int64_t total, int segments);

class WirePortEngine : public Communicator {
 public:
  void post_send(int round, std::int64_t dst, std::span<const std::byte> data,
                 int segments = 1, int tag = 0) override;
  void post_send(int round, std::int64_t dst, std::vector<std::byte>&& data,
                 int segments = 1, int tag = 0) override;
  PortHandle post_recv(int round, std::int64_t src, std::span<std::byte> data,
                       int segments = 1, int tag = 0) override;
  PortHandle post_recv_buffer(int round, std::int64_t src, std::int64_t bytes,
                              int segments = 1, int tag = 0) override;
  std::vector<std::byte> take_payload(PortHandle h) override;
  bool test_recv(PortHandle h) override;
  void wait_recv(PortHandle h) override;
  PortHandle wait_any_recv() override;
  PortHandle wait_any_recv_within(const DrainDeadline& deadline) override;
  void wait_all_recvs() override;
  std::optional<PortHandle> poll_any_recv() override;
  void release_tag(int tag) override;
  [[nodiscard]] bool native_port_engine() const override { return true; }

  /// Highest round index this rank has posted in the default (tag-0)
  /// namespace, or −1.  Tagged namespaces keep their own counters.
  [[nodiscard]] int last_round() const { return tag0_rounds_.last_round; }

 protected:
  /// `peers` is the fabric size (dense per-peer sequence tables).
  explicit WirePortEngine(std::int64_t peers);

  // -- Wire hooks a fabric must implement ----------------------------------

  /// Move one wire segment toward m.dst (src/seq/tag/round already set).
  virtual void wire_push(Message&& m) = 0;

  /// Surface one arrived wire message for this rank, blocking up to
  /// `timeout` (0 = nonblocking poll).  `waiting_srcs` lists the distinct
  /// sources with a pending receive — fabrics with per-source channels may
  /// use it as a pop filter; fabrics with one inbound channel ignore it and
  /// rely on the engine's stash.
  virtual std::optional<Message> wire_pop(
      std::span<const std::int64_t> waiting_srcs,
      std::chrono::milliseconds timeout) = 0;

  /// One *logical* send (regardless of wire segmentation), at post time.
  virtual void record_send_event(int round, std::int64_t dst,
                                 std::int64_t bytes, int tag) = 0;

 private:
  /// One posted logical receive.
  struct RecvOp {
    PortHandle handle = 0;
    std::int64_t src = 0;
    int tag = 0;
    int round = 0;
    std::span<std::byte> landing;  ///< copy-into mode target
    std::vector<std::byte> owned;  ///< buffer mode storage
    bool take_buffer = false;
    std::int64_t total = 0;  ///< logical message bytes
    int segments = 1;
    int seg_done = 0;
    std::int64_t offset = 0;  ///< next segment's write offset
  };

  /// Round/port-budget counters of one tag namespace.
  struct TagRoundState {
    int last_round = -1;
    int sends_in_round = 0;
    int recvs_in_round = 0;
  };

  /// Composite key for per-(tag, peer) state maps.
  [[nodiscard]] static std::uint64_t tag_peer_key(int tag, std::int64_t peer) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 32) |
           static_cast<std::uint32_t>(peer);
  }

  [[nodiscard]] TagRoundState& round_state(int tag);
  [[nodiscard]] std::int64_t& send_seq(int tag, std::int64_t dst);
  [[nodiscard]] std::int64_t& recv_seq(int tag, std::int64_t src);

  /// Shared post-side contract checks; advances the tag's round counters.
  void check_post(int round, std::int64_t peer, std::int64_t bytes,
                  bool is_send, int tag);
  /// Split `payload` into wire segments and push them (records the logical
  /// send in the trace).
  void wire_send(int round, std::int64_t dst, std::vector<std::byte>&& payload,
                 int segments, int tag);
  PortHandle add_recv_op(RecvOp&& op);
  /// Write `m`'s bytes into the matched pending receive (FIFO seq and
  /// segment length checked); complete the op on its last segment.
  void deliver(std::list<RecvOp>::iterator it, Message&& m);
  /// Match one arrived wire message to the oldest pending (source, tag)
  /// receive, or stash it if its tag's receive is not posted yet.
  void apply_message(Message&& m);
  /// Deliver stashed (tag, src) messages that now have a pending receive.
  void drain_stash(int tag, std::int64_t src);
  /// Pop-and-apply one available message without blocking; false if none.
  bool try_progress();
  /// Pop-and-apply one message, blocking up to `deadline.remaining()`
  /// (expiry ⇒ ContractViolation naming the sources still awaited).
  void progress_blocking(const DrainDeadline& deadline);
  /// Report h as consumed: drop landing-mode bookkeeping.
  void retire_if_landing(PortHandle h);

  TagRoundState tag0_rounds_;                          // tag-0 hot path
  std::unordered_map<int, TagRoundState> tag_rounds_;  // tags > 0
  // Wire sequencing is per (tag, peer) channel; tag 0 keeps dense per-rank
  // vectors as its hot path.
  std::vector<std::int64_t> send_seq0_;  // per-destination next sequence
  std::vector<std::int64_t> recv_seq0_;  // per-source next expected sequence
  std::unordered_map<std::uint64_t, std::int64_t> send_seq_tagged_;
  std::unordered_map<std::uint64_t, std::int64_t> recv_seq_tagged_;
  // Early arrivals: wire messages popped for a (tag, src) with no pending
  // receive yet, in arrival (= per-channel FIFO) order.
  std::unordered_map<std::uint64_t, std::deque<Message>> stash_;
  std::size_t stashed_count_ = 0;
  std::list<RecvOp> recv_ops_;  // incomplete, in post order
  // Distinct sources with ≥1 incomplete receive, maintained incrementally
  // (the receive hot path consults this once per arriving wire message).
  std::vector<std::int64_t> waiting_srcs_;
  std::unordered_map<std::int64_t, int> pending_per_src_;
  std::unordered_set<PortHandle> incomplete_;
  std::unordered_map<PortHandle, RecvOp> completed_;
  std::deque<PortHandle> unreported_;  // completed, not yet handed out
  PortHandle next_handle_ = 1;
};

}  // namespace bruck::mps
