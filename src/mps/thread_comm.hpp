// The substrate implementation: a Fabric owns the shared state (mailboxes,
// trace, barrier) of one simulated machine; each rank thread drives a
// ThreadComm facade bound to its rank.
//
// ThreadComm implements the nonblocking port engine natively: post_send
// deposits (optionally segmented) wire messages into the destination
// mailbox immediately and never blocks; post_recv registers a pending
// operation that is completed — in *arrival* order across sources — by the
// rank's own thread inside test/wait calls.  All buffer writes therefore
// happen on the owning rank's thread; the engine needs no locking beyond
// the mailboxes.  `exchange` is the Communicator base-class shim over these
// primitives.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mps/communicator.hpp"
#include "mps/mailbox.hpp"
#include "mps/trace.hpp"

namespace bruck::mps {

/// Upper bound accepted for a BRUCK_RECV_TIMEOUT_MS override (24 h): a
/// larger value is far more likely a typo or an overflowed number than a
/// deliberate deadlock timeout, and silently accepting it would disable the
/// hang protection entirely.
inline constexpr long long kMaxRecvTimeoutMs = 24ll * 60 * 60 * 1000;

/// Strictly parse a BRUCK_RECV_TIMEOUT_MS override: the whole string must
/// be one decimal integer in (0, kMaxRecvTimeoutMs] — no trailing junk, no
/// overflow (strtol-style silent saturation is rejected).  Returns
/// std::nullopt for null/empty/invalid input.
[[nodiscard]] std::optional<std::chrono::milliseconds> parse_recv_timeout_ms(
    const char* text);

/// The fabric-wide receive timeout default: the BRUCK_RECV_TIMEOUT_MS
/// environment variable when it parses strictly (parse_recv_timeout_ms),
/// else 30000 ms.  A set-but-invalid value warns once on stderr and falls
/// back to the default instead of silently misconfiguring the timeout.
/// Read per call, so tests and sanitizer CI jobs (where every operation is
/// 10-20x slower) can adjust it without touching code.
[[nodiscard]] std::chrono::milliseconds default_recv_timeout();

struct FabricOptions {
  std::int64_t n = 1;
  int k = 1;
  bool record_trace = true;
  /// Receive timeout: a deadlocked or mismatched algorithm throws instead of
  /// hanging the process.  Defaults to default_recv_timeout() (env-tunable).
  std::chrono::milliseconds recv_timeout = default_recv_timeout();
};

class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::int64_t n() const { return options_.n; }
  [[nodiscard]] int k() const { return options_.k; }
  [[nodiscard]] const FabricOptions& options() const { return options_; }

  [[nodiscard]] Mailbox& mailbox(std::int64_t rank);
  [[nodiscard]] Trace& trace() { return trace_; }
  void arrive_at_barrier();

  /// Called by a rank that is abandoning the computation (exception unwind):
  /// removes it from all future barrier phases so surviving ranks cannot
  /// hang waiting for it.
  void drop_from_barrier();

 private:
  FabricOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Trace trace_;
  std::barrier<> barrier_;
};

/// Blocking/thread-safety/trace contract: a ThreadComm belongs to exactly
/// one rank thread — only that thread may call it.  post_send/post_recv
/// never block; test_recv is truly nonblocking here; each wait_* call as a
/// whole is bounded by ONE fabric recv_timeout budget (a DrainDeadline —
/// the timeout does not reset per arriving message) and throws
/// ContractViolation naming the still-awaited sources on expiry.  The
/// trace records each logical send once at post time (one event regardless
/// of wire segmentation) into this rank's private sink.
///
/// Tag namespaces are implemented natively: round monotonicity, per-round
/// port budgets, and wire sequence numbers are all kept per tag, and a
/// message matches only receives posted with its tag.  Because the mailbox
/// pop filter is per *source*, a message for a tag whose receive has not
/// been posted yet can surface while another tag drains; such early
/// arrivals are stashed and delivered when their receive is posted.
class ThreadComm final : public Communicator {
 public:
  ThreadComm(Fabric& fabric, std::int64_t rank);

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return fabric_->n(); }
  [[nodiscard]] int ports() const override { return fabric_->k(); }

  void post_send(int round, std::int64_t dst, std::span<const std::byte> data,
                 int segments = 1, int tag = 0) override;
  void post_send(int round, std::int64_t dst, std::vector<std::byte>&& data,
                 int segments = 1, int tag = 0) override;
  PortHandle post_recv(int round, std::int64_t src, std::span<std::byte> data,
                       int segments = 1, int tag = 0) override;
  PortHandle post_recv_buffer(int round, std::int64_t src, std::int64_t bytes,
                              int segments = 1, int tag = 0) override;
  std::vector<std::byte> take_payload(PortHandle h) override;
  bool test_recv(PortHandle h) override;
  void wait_recv(PortHandle h) override;
  PortHandle wait_any_recv() override;
  void wait_all_recvs() override;
  std::optional<PortHandle> poll_any_recv() override;
  void release_tag(int tag) override;
  [[nodiscard]] bool native_port_engine() const override { return true; }

  void barrier() override;
  void record_plan_event(const PlanEvent& event) override;

  /// Highest round index this rank has posted in the default (tag-0)
  /// namespace, or −1.  Tagged namespaces keep their own counters.
  [[nodiscard]] int last_round() const { return tag0_rounds_.last_round; }

 private:
  /// One posted logical receive.
  struct RecvOp {
    PortHandle handle = 0;
    std::int64_t src = 0;
    int tag = 0;
    int round = 0;
    std::span<std::byte> landing;  ///< copy-into mode target
    std::vector<std::byte> owned;  ///< buffer mode storage
    bool take_buffer = false;
    std::int64_t total = 0;  ///< logical message bytes
    int segments = 1;
    int seg_done = 0;
    std::int64_t offset = 0;  ///< next segment's write offset
  };

  /// Round/port-budget counters of one tag namespace.
  struct TagRoundState {
    int last_round = -1;
    int sends_in_round = 0;
    int recvs_in_round = 0;
  };

  /// Composite key for per-(tag, peer) state maps.
  [[nodiscard]] static std::uint64_t tag_peer_key(int tag, std::int64_t peer) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 32) |
           static_cast<std::uint32_t>(peer);
  }

  [[nodiscard]] TagRoundState& round_state(int tag);
  [[nodiscard]] std::int64_t& send_seq(int tag, std::int64_t dst);
  [[nodiscard]] std::int64_t& recv_seq(int tag, std::int64_t src);

  /// Shared post-side contract checks; advances the tag's round counters.
  void check_post(int round, std::int64_t peer, std::int64_t bytes,
                  bool is_send, int tag);
  /// Split `payload` into wire segments and deposit them (records the
  /// logical send in the trace).
  void wire_send(int round, std::int64_t dst, std::vector<std::byte>&& payload,
                 int segments, int tag);
  PortHandle add_recv_op(RecvOp&& op);
  /// Write `m`'s bytes into the matched pending receive (FIFO seq and
  /// segment length checked); complete the op on its last segment.
  void deliver(std::list<RecvOp>::iterator it, Message&& m);
  /// Match one arrived wire message to the oldest pending (source, tag)
  /// receive, or stash it if its tag's receive is not posted yet.
  void apply_message(Message&& m);
  /// Deliver stashed (tag, src) messages that now have a pending receive.
  void drain_stash(int tag, std::int64_t src);
  /// Pop-and-apply one available message without blocking; false if none.
  bool try_progress();
  /// Pop-and-apply one message, blocking up to `deadline.remaining()`
  /// (expiry ⇒ ContractViolation naming the sources still awaited).
  void progress_blocking(const DrainDeadline& deadline);
  /// Report h as consumed: drop landing-mode bookkeeping.
  void retire_if_landing(PortHandle h);

  Fabric* fabric_;
  std::int64_t rank_;
  TagRoundState tag0_rounds_;                         // tag-0 hot path
  std::unordered_map<int, TagRoundState> tag_rounds_;  // tags > 0
  // Wire sequencing is per (tag, peer) channel; tag 0 keeps the dense
  // per-rank vectors of the untagged engine as its hot path.
  std::vector<std::int64_t> send_seq0_;  // per-destination next sequence
  std::vector<std::int64_t> recv_seq0_;  // per-source next expected sequence
  std::unordered_map<std::uint64_t, std::int64_t> send_seq_tagged_;
  std::unordered_map<std::uint64_t, std::int64_t> recv_seq_tagged_;
  // Early arrivals: wire messages popped for a (tag, src) with no pending
  // receive yet, in arrival (= per-channel FIFO) order.
  std::unordered_map<std::uint64_t, std::deque<Message>> stash_;
  std::size_t stashed_count_ = 0;
  std::list<RecvOp> recv_ops_;  // incomplete, in post order
  // Distinct sources with ≥1 incomplete receive, maintained incrementally
  // (the receive hot path consults this once per arriving wire message).
  std::vector<std::int64_t> waiting_srcs_;
  std::unordered_map<std::int64_t, int> pending_per_src_;
  std::unordered_set<PortHandle> incomplete_;
  std::unordered_map<PortHandle, RecvOp> completed_;
  std::deque<PortHandle> unreported_;  // completed, not yet handed out
  PortHandle next_handle_ = 1;
};

}  // namespace bruck::mps
