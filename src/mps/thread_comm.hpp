// The substrate implementation: a Fabric owns the shared state (mailboxes,
// trace, barrier) of one simulated machine; each rank thread drives a
// ThreadComm facade bound to its rank.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "mps/communicator.hpp"
#include "mps/mailbox.hpp"
#include "mps/trace.hpp"

namespace bruck::mps {

struct FabricOptions {
  std::int64_t n = 1;
  int k = 1;
  bool record_trace = true;
  /// Receive timeout: a deadlocked or mismatched algorithm throws instead of
  /// hanging the process.
  std::chrono::milliseconds recv_timeout{30000};
};

class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::int64_t n() const { return options_.n; }
  [[nodiscard]] int k() const { return options_.k; }
  [[nodiscard]] const FabricOptions& options() const { return options_; }

  [[nodiscard]] Mailbox& mailbox(std::int64_t rank);
  [[nodiscard]] Trace& trace() { return trace_; }
  void arrive_at_barrier();

  /// Called by a rank that is abandoning the computation (exception unwind):
  /// removes it from all future barrier phases so surviving ranks cannot
  /// hang waiting for it.
  void drop_from_barrier();

 private:
  FabricOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Trace trace_;
  std::barrier<> barrier_;
};

class ThreadComm final : public Communicator {
 public:
  ThreadComm(Fabric& fabric, std::int64_t rank);

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return fabric_->n(); }
  [[nodiscard]] int ports() const override { return fabric_->k(); }

  void exchange(int round, std::span<const SendSpec> sends,
                std::span<const RecvSpec> recvs) override;
  void barrier() override;
  void record_plan_event(const PlanEvent& event) override;

  /// Highest round index this rank has used, or −1.
  [[nodiscard]] int last_round() const { return last_round_; }

 private:
  Fabric* fabric_;
  std::int64_t rank_;
  int last_round_ = -1;
  std::vector<std::int64_t> send_seq_;  // per-destination next sequence
  std::vector<std::int64_t> recv_seq_;  // per-source next expected sequence
};

}  // namespace bruck::mps
