// The in-process substrate: a Fabric owns the shared state (mailboxes,
// trace, barrier) of one simulated machine; each rank thread drives a
// ThreadComm facade bound to its rank.
//
// ThreadComm is the WirePortEngine instantiated over mutex/condvar
// mailboxes: wire_push deposits (optionally segmented) wire messages into
// the destination mailbox immediately and never blocks; wire_pop pulls from
// this rank's own mailbox, filtered to the sources the engine is waiting
// on.  All the matching/ordering machinery (arrival-order completion, tag
// namespaces, early-arrival stash, seq checks) lives in the shared engine —
// ThreadComm stays the bitwise *oracle* substrate the process-spanning
// backends (shm_comm.hpp, socket_comm.hpp) are differentially tested
// against.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mps/mailbox.hpp"
#include "mps/port_engine.hpp"
#include "mps/trace.hpp"

namespace bruck::mps {

/// Upper bound accepted for a BRUCK_RECV_TIMEOUT_MS override (24 h): a
/// larger value is far more likely a typo or an overflowed number than a
/// deliberate deadlock timeout, and silently accepting it would disable the
/// hang protection entirely.
inline constexpr long long kMaxRecvTimeoutMs = 24ll * 60 * 60 * 1000;

/// Strictly parse a BRUCK_RECV_TIMEOUT_MS override: the whole string must
/// be one decimal integer in (0, kMaxRecvTimeoutMs] — no trailing junk, no
/// overflow (strtol-style silent saturation is rejected).  Returns
/// std::nullopt for null/empty/invalid input.
[[nodiscard]] std::optional<std::chrono::milliseconds> parse_recv_timeout_ms(
    const char* text);

/// The fabric-wide receive timeout default: the BRUCK_RECV_TIMEOUT_MS
/// environment variable when it parses strictly (parse_recv_timeout_ms),
/// else 30000 ms.  A set-but-invalid value warns once on stderr and falls
/// back to the default instead of silently misconfiguring the timeout.
/// Read per call, so tests and sanitizer CI jobs (where every operation is
/// 10-20x slower) can adjust it without touching code.
[[nodiscard]] std::chrono::milliseconds default_recv_timeout();

struct FabricOptions {
  std::int64_t n = 1;
  int k = 1;
  bool record_trace = true;
  /// Receive timeout: a deadlocked or mismatched algorithm throws instead of
  /// hanging the process.  Defaults to default_recv_timeout() (env-tunable).
  std::chrono::milliseconds recv_timeout = default_recv_timeout();
};

class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::int64_t n() const { return options_.n; }
  [[nodiscard]] int k() const { return options_.k; }
  [[nodiscard]] const FabricOptions& options() const { return options_; }

  [[nodiscard]] Mailbox& mailbox(std::int64_t rank);
  [[nodiscard]] Trace& trace() { return trace_; }
  void arrive_at_barrier();

  /// Called by a rank that is abandoning the computation (exception unwind):
  /// removes it from all future barrier phases so surviving ranks cannot
  /// hang waiting for it.
  void drop_from_barrier();

 private:
  FabricOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Trace trace_;
  std::barrier<> barrier_;
};

/// Blocking/thread-safety/trace contract: a ThreadComm belongs to exactly
/// one rank thread — only that thread may call it.  post_send/post_recv
/// never block; test_recv is truly nonblocking here; each wait_* call as a
/// whole is bounded by ONE fabric recv_timeout budget (a DrainDeadline —
/// the timeout does not reset per arriving message) and throws
/// ContractViolation naming the still-awaited sources on expiry.  The
/// trace records each logical send once at post time (one event regardless
/// of wire segmentation) into this rank's private sink.
///
/// Tag namespaces are implemented natively by the shared engine: round
/// monotonicity, per-round port budgets, and wire sequence numbers are all
/// kept per tag, and a message matches only receives posted with its tag.
/// Because the mailbox pop filter is per *source*, a message for a tag
/// whose receive has not been posted yet can surface while another tag
/// drains; such early arrivals are stashed and delivered when their receive
/// is posted.
class ThreadComm final : public WirePortEngine {
 public:
  ThreadComm(Fabric& fabric, std::int64_t rank);

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return fabric_->n(); }
  [[nodiscard]] int ports() const override { return fabric_->k(); }
  [[nodiscard]] std::chrono::milliseconds recv_timeout() const override {
    return fabric_->options().recv_timeout;
  }

  void barrier() override;
  void record_plan_event(const PlanEvent& event) override;

 protected:
  void wire_push(Message&& m) override;
  std::optional<Message> wire_pop(std::span<const std::int64_t> waiting_srcs,
                                  std::chrono::milliseconds timeout) override;
  void record_send_event(int round, std::int64_t dst, std::int64_t bytes,
                         int tag) override;

 private:
  Fabric* fabric_;
  std::int64_t rank_;
};

}  // namespace bruck::mps
