// The substrate implementation: a Fabric owns the shared state (mailboxes,
// trace, barrier) of one simulated machine; each rank thread drives a
// ThreadComm facade bound to its rank.
//
// ThreadComm implements the nonblocking port engine natively: post_send
// deposits (optionally segmented) wire messages into the destination
// mailbox immediately and never blocks; post_recv registers a pending
// operation that is completed — in *arrival* order across sources — by the
// rank's own thread inside test/wait calls.  All buffer writes therefore
// happen on the owning rank's thread; the engine needs no locking beyond
// the mailboxes.  `exchange` is the Communicator base-class shim over these
// primitives.
#pragma once

#include <barrier>
#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mps/communicator.hpp"
#include "mps/mailbox.hpp"
#include "mps/trace.hpp"

namespace bruck::mps {

/// Upper bound accepted for a BRUCK_RECV_TIMEOUT_MS override (24 h): a
/// larger value is far more likely a typo or an overflowed number than a
/// deliberate deadlock timeout, and silently accepting it would disable the
/// hang protection entirely.
inline constexpr long long kMaxRecvTimeoutMs = 24ll * 60 * 60 * 1000;

/// Strictly parse a BRUCK_RECV_TIMEOUT_MS override: the whole string must
/// be one decimal integer in (0, kMaxRecvTimeoutMs] — no trailing junk, no
/// overflow (strtol-style silent saturation is rejected).  Returns
/// std::nullopt for null/empty/invalid input.
[[nodiscard]] std::optional<std::chrono::milliseconds> parse_recv_timeout_ms(
    const char* text);

/// The fabric-wide receive timeout default: the BRUCK_RECV_TIMEOUT_MS
/// environment variable when it parses strictly (parse_recv_timeout_ms),
/// else 30000 ms.  A set-but-invalid value warns once on stderr and falls
/// back to the default instead of silently misconfiguring the timeout.
/// Read per call, so tests and sanitizer CI jobs (where every operation is
/// 10-20x slower) can adjust it without touching code.
[[nodiscard]] std::chrono::milliseconds default_recv_timeout();

struct FabricOptions {
  std::int64_t n = 1;
  int k = 1;
  bool record_trace = true;
  /// Receive timeout: a deadlocked or mismatched algorithm throws instead of
  /// hanging the process.  Defaults to default_recv_timeout() (env-tunable).
  std::chrono::milliseconds recv_timeout = default_recv_timeout();
};

class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] std::int64_t n() const { return options_.n; }
  [[nodiscard]] int k() const { return options_.k; }
  [[nodiscard]] const FabricOptions& options() const { return options_; }

  [[nodiscard]] Mailbox& mailbox(std::int64_t rank);
  [[nodiscard]] Trace& trace() { return trace_; }
  void arrive_at_barrier();

  /// Called by a rank that is abandoning the computation (exception unwind):
  /// removes it from all future barrier phases so surviving ranks cannot
  /// hang waiting for it.
  void drop_from_barrier();

 private:
  FabricOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Trace trace_;
  std::barrier<> barrier_;
};

/// Blocking/thread-safety/trace contract: a ThreadComm belongs to exactly
/// one rank thread — only that thread may call it.  post_send/post_recv
/// never block; test_recv is truly nonblocking here; wait_* block up to
/// the fabric's recv_timeout and then throw ContractViolation naming the
/// still-awaited sources.  The trace records each logical send once at
/// post time (one event regardless of wire segmentation) into this rank's
/// private sink.
class ThreadComm final : public Communicator {
 public:
  ThreadComm(Fabric& fabric, std::int64_t rank);

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return fabric_->n(); }
  [[nodiscard]] int ports() const override { return fabric_->k(); }

  void post_send(int round, std::int64_t dst, std::span<const std::byte> data,
                 int segments = 1) override;
  void post_send(int round, std::int64_t dst, std::vector<std::byte>&& data,
                 int segments = 1) override;
  PortHandle post_recv(int round, std::int64_t src, std::span<std::byte> data,
                       int segments = 1) override;
  PortHandle post_recv_buffer(int round, std::int64_t src, std::int64_t bytes,
                              int segments = 1) override;
  std::vector<std::byte> take_payload(PortHandle h) override;
  bool test_recv(PortHandle h) override;
  void wait_recv(PortHandle h) override;
  PortHandle wait_any_recv() override;
  void wait_all_recvs() override;

  void barrier() override;
  void record_plan_event(const PlanEvent& event) override;

  /// Highest round index this rank has posted in, or −1.
  [[nodiscard]] int last_round() const { return last_round_; }

 private:
  /// One posted logical receive.
  struct RecvOp {
    PortHandle handle = 0;
    std::int64_t src = 0;
    int round = 0;
    std::span<std::byte> landing;  ///< copy-into mode target
    std::vector<std::byte> owned;  ///< buffer mode storage
    bool take_buffer = false;
    std::int64_t total = 0;  ///< logical message bytes
    int segments = 1;
    int seg_done = 0;
    std::int64_t offset = 0;  ///< next segment's write offset
  };

  /// Shared post-side contract checks; advances the round/port counters.
  void check_post(int round, std::int64_t peer, std::int64_t bytes,
                  bool is_send);
  /// Split `payload` into wire segments and deposit them (records the
  /// logical send in the trace).
  void wire_send(int round, std::int64_t dst, std::vector<std::byte>&& payload,
                 int segments);
  PortHandle add_recv_op(RecvOp&& op);
  /// Match one arrived wire message to the oldest pending receive from its
  /// source; write its bytes; complete the op on its last segment.
  void apply_message(Message&& m);
  /// Pop-and-apply one available message without blocking; false if none.
  bool try_progress();
  /// Pop-and-apply one message, blocking up to the fabric's recv timeout
  /// (timeout ⇒ ContractViolation naming the sources still awaited).
  void progress_blocking();
  /// Report h as consumed: drop landing-mode bookkeeping.
  void retire_if_landing(PortHandle h);

  Fabric* fabric_;
  std::int64_t rank_;
  int last_round_ = -1;
  int sends_in_round_ = 0;
  int recvs_in_round_ = 0;
  std::vector<std::int64_t> send_seq_;  // per-destination next sequence
  std::vector<std::int64_t> recv_seq_;  // per-source next expected sequence
  std::list<RecvOp> recv_ops_;          // incomplete, in post order
  // Distinct sources with ≥1 incomplete receive, maintained incrementally
  // (the receive hot path consults this once per arriving wire message).
  std::vector<std::int64_t> waiting_srcs_;
  std::unordered_map<std::int64_t, int> pending_per_src_;
  std::unordered_set<PortHandle> incomplete_;
  std::unordered_map<PortHandle, RecvOp> completed_;
  std::deque<PortHandle> unreported_;  // completed, not yet handed out
  PortHandle next_handle_ = 1;
};

}  // namespace bruck::mps
