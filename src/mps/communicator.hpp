// The abstract k-port communicator the collective algorithms are written
// against (the substrate interface of Section 1.2's model).
//
// A *round* is one synchronous communication step of the paper's model: each
// processor may send up to k messages and receive up to k messages.  The
// algorithm supplies the global round index explicitly; this is what lets
// the trace compute C1 and C2 exactly as the paper defines them even when
// some ranks are idle in some rounds (tree-based baselines).
//
// Since the port-engine refactor the *primitive* operations are
// nonblocking: post_send/post_recv enqueue work and return immediately
// (sends are buffered and complete at post; receives return a PortHandle),
// test_recv/wait_recv/wait_any_recv/wait_all_recvs complete receives in
// *arrival* order.  `exchange` — the substrate of the reference algorithms
// and the blocking plan executor — is a thin shim over those primitives:
// post everything, then wait for the receives in spec order.
//
// A subclass must override either the engine primitives (a native
// substrate: ThreadComm) or `exchange` (a wrapping/intercepting
// communicator: fault injectors, filters).  Whichever side is not
// overridden falls back to the other: the default `exchange` drives the
// engine, and the default engine defers posted operations and flushes them
// round-by-round through `exchange` on the first wait — degraded to
// blocking-round semantics, but correct, so wrappers written against the
// old interface keep working under the pipelined executor.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace bruck::mps {

/// One total deadline for a multi-step drain loop.
///
/// Every blocking wait in the port engine must finish (or throw) within a
/// single BRUCK_RECV_TIMEOUT_MS-style budget.  Before this helper the drain
/// loops applied their timeout *per step* — each arriving message or each
/// flushed round reset the clock — so a slow trickle of traffic (or a
/// wrapper whose `exchange` makes no progress) could extend one wait call
/// far past the configured deadline, or indefinitely.  Constructing one
/// DrainDeadline at the top of a wait and consulting it on every iteration
/// restores the intended contract: one call, one budget.
class DrainDeadline {
 public:
  /// Starts the clock: the deadline is now + `budget`.
  explicit DrainDeadline(std::chrono::milliseconds budget);

  /// The full budget this deadline was created with.
  [[nodiscard]] std::chrono::milliseconds budget() const { return budget_; }

  /// Time left before the deadline, clamped to >= 0 (usable directly as a
  /// condition-variable wait bound).
  [[nodiscard]] std::chrono::milliseconds remaining() const;

  /// True once the budget is exhausted.
  [[nodiscard]] bool expired() const { return remaining().count() == 0; }

 private:
  std::chrono::steady_clock::time_point deadline_;
  std::chrono::milliseconds budget_;
};

struct SendSpec {
  std::int64_t dst = 0;
  std::span<const std::byte> data;
};

struct RecvSpec {
  std::int64_t src = 0;
  /// Exact-size landing buffer; the substrate asserts the incoming payload
  /// matches data.size() (the paper's algorithms always know the sizes).
  std::span<std::byte> data;
};

/// One compiled-plan execution on one rank, as reported to the trace:
/// whether the plan came out of the PlanCache hot, how many rounds it spans,
/// how many payload bytes this rank put on the wire, and how many received
/// bytes it combined into accumulators (reduction plans only; 0 elsewhere).
struct PlanEvent {
  bool cache_hit = false;
  int rounds = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_reduced = 0;
  /// Port-namespace tag the execution ran in (0 = blocking/default path;
  /// nonblocking collectives report the tag their progress engine assigned).
  int tag = 0;
  /// Wall-clock time of this execution on this rank in microseconds
  /// (0 where the path doesn't time itself); the adaptive tuner's feedback
  /// signal, compared against the cost model's predicted_us.
  double wall_us = 0.0;
};

/// Identifies one posted (nonblocking) receive on one communicator.
/// Handles are never reused within a communicator's lifetime.
using PortHandle = std::uint64_t;

namespace detail {
class DeferredEngine;
}

class Communicator {
 public:
  Communicator();
  virtual ~Communicator();

  [[nodiscard]] virtual std::int64_t rank() const = 0;
  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual int ports() const = 0;

  // -- Nonblocking port engine ---------------------------------------------
  //
  // Posts must use non-decreasing round indices, at most ports() sends and
  // ports() receives per round, no self-sends, no empty messages.  One
  // post_send/post_recv pair is one *logical* message: the trace records it
  // once, with the declared round and the full byte count, regardless of
  // `segments`.
  //
  // `segments` splits the payload into that many wire segments (the last
  // pipeline-lowering knob of the plan executor): the receiver can consume
  // segment i while segment i+1 is still being produced.  Sender and
  // receiver must agree on the segment count of each message; segment
  // sizes are derived from the total identically on both sides.  The
  // deferred fallback engine ignores segmentation (symmetrically, so a
  // fabric of wrapper communicators stays wire-consistent).
  //
  // `tag` names an independent *port namespace*: round monotonicity, the
  // per-round port budget, and wire sequencing are all scoped per tag, and
  // a message only ever matches a receive posted with its tag.  This is
  // what lets several collectives (each in its own tag) interleave on one
  // communicator without their rounds or segments aliasing.  Tag 0 is the
  // default/blocking namespace; nonzero tags come from
  // allocate_collective_tag() and are released with release_tag() once
  // drained.  The deferred fallback engine supports only tag 0 (a
  // wrapper's `exchange` has no tag concept); native engines support all.

  /// Post one logical send.  The payload is captured before returning (the
  /// caller's buffer may be reused immediately).  Never blocks.
  virtual void post_send(int round, std::int64_t dst,
                         std::span<const std::byte> data, int segments = 1,
                         int tag = 0);

  /// Move-in overload: a packed staging buffer becomes the wire payload
  /// without a copy.
  virtual void post_send(int round, std::int64_t dst,
                         std::vector<std::byte>&& data, int segments = 1,
                         int tag = 0);

  /// Post one logical receive landing into `data` (written by the time the
  /// handle completes).
  virtual PortHandle post_recv(int round, std::int64_t src,
                               std::span<std::byte> data, int segments = 1,
                               int tag = 0);

  /// Post one logical receive of `bytes` bytes into an engine-owned buffer;
  /// retrieve it with take_payload() once complete.  Lets a non-contiguous
  /// (scatter) receive consume the wire buffer directly instead of staging
  /// a copy.
  virtual PortHandle post_recv_buffer(int round, std::int64_t src,
                                      std::int64_t bytes, int segments = 1,
                                      int tag = 0);

  /// The completed payload of a post_recv_buffer receive (moved out; the
  /// handle is retired).  Precondition: `h` is complete and buffer-mode.
  virtual std::vector<std::byte> take_payload(PortHandle h);

  /// Try to complete `h` without blocking; true once it is complete.
  /// Caveat: the deferred fallback engine (subclasses overriding only
  /// `exchange`) cannot make progress without flushing a round through the
  /// blocking `exchange`, so there this probe degrades to wait_recv — it
  /// can block up to the receive timeout.  Native engines are truly
  /// nonblocking.
  virtual bool test_recv(PortHandle h);

  /// Block until `h` completes (timeout ⇒ ContractViolation).
  virtual void wait_recv(PortHandle h);

  /// Block until *some* posted receive completes and return its handle;
  /// each completed handle is reported exactly once across
  /// wait_any_recv calls.  Precondition: at least one receive is
  /// outstanding or completed-but-unreported.
  virtual PortHandle wait_any_recv();

  /// wait_any_recv bounded by a *caller-owned* deadline: a multi-completion
  /// drain loop (the coll:: progress engine waiting out a whole collective)
  /// constructs ONE DrainDeadline and passes it to every completion wait,
  /// so the entire loop shares a single receive-timeout budget instead of
  /// resetting the clock per completed message.  Native engines honor the
  /// deadline exactly; the default forwards to wait_any_recv() (one budget
  /// per call — the pre-existing behavior, kept for wrappers).
  virtual PortHandle wait_any_recv_within(const DrainDeadline& deadline) {
    (void)deadline;
    return wait_any_recv();
  }

  /// The receive/deadlock timeout every blocking wait on this communicator
  /// is bounded by.  Fabrics override it with their configured budget; the
  /// default is the process-wide BRUCK_RECV_TIMEOUT_MS-derived value.
  [[nodiscard]] virtual std::chrono::milliseconds recv_timeout() const;

  /// Complete every outstanding receive (and, in the deferred fallback,
  /// flush any posted-but-unsent sends).
  virtual void wait_all_recvs();

  /// Truly nonblocking any-completion probe: complete and report one
  /// posted receive if its wire messages have already arrived, else return
  /// std::nullopt *without blocking*.  The deferred fallback engine cannot
  /// make progress without blocking in `exchange`, so its default reports
  /// only already-flushed completions; native engines drain arrived
  /// messages.  Each completed handle is reported exactly once across
  /// poll_any_recv/wait_any_recv calls.
  virtual std::optional<PortHandle> poll_any_recv();

  /// Allocate a fresh nonzero port-namespace tag.  Tags are handed out
  /// monotonically and never reused within a communicator's lifetime:
  /// SPMD ranks allocate in the same program order but may complete in
  /// different orders, so reuse could alias a new collective's wire
  /// sequence space with a peer's still-draining old one.
  [[nodiscard]] virtual int allocate_collective_tag() {
    return next_collective_tag_++;
  }

  /// Release the per-tag engine state (round counters, wire sequence
  /// numbers) of a fully drained nonzero tag.  Precondition: no receive
  /// posted under `tag` is still outstanding and no stashed message for it
  /// remains.  A no-op on engines without tag state (deferred fallback).
  virtual void release_tag(int tag) { (void)tag; }

  /// True when the engine primitives are implemented natively (posts are
  /// nonblocking, tags are supported, poll_any_recv makes real progress).
  /// False for the deferred exchange-backed fallback — callers that need
  /// concurrency (the coll:: progress engine) degrade to serial execution.
  [[nodiscard]] virtual bool native_port_engine() const { return false; }

  // ------------------------------------------------------------------------

  /// Execute one communication round.  Preconditions:
  ///  * sends.size() ≤ ports() and recvs.size() ≤ ports();
  ///  * no self-sends;
  ///  * `round` is strictly greater than any round this rank exchanged
  ///    before.
  /// Sends are posted first (buffered, non-blocking), then receives complete
  /// in spec order; the call returns when all receives have landed.  The
  /// default implementation is a shim over the nonblocking primitives.
  virtual void exchange(int round, std::span<const SendSpec> sends,
                        std::span<const RecvSpec> recvs);

  /// Appendix A's send_and_recv: one send and one receive as a single
  /// one-port round.
  void send_and_recv(int round, std::span<const std::byte> out,
                     std::int64_t dst, std::span<std::byte> in,
                     std::int64_t src) {
    const SendSpec s{dst, out};
    const RecvSpec r{src, in};
    exchange(round, {&s, 1}, {&r, 1});
  }

  /// Block until all ranks reached this barrier (used for timing fences, not
  /// required for correctness of exchanges).
  virtual void barrier() = 0;

  /// Plan-statistics sink: the compiled-schedule executor reports one event
  /// per collective call.  Substrates that keep a trace forward it there;
  /// the default is a no-op so algorithm code never has to care.
  virtual void record_plan_event(const PlanEvent& event) {
    (void)event;
  }

  /// Opaque per-communicator extension slot.  The coll:: progress engine
  /// parks its per-communicator scheduler here so that state's lifetime
  /// tracks the communicator's exactly (a process-global registry keyed by
  /// address would outlive the communicator and could be resurrected by
  /// heap address reuse).  Same single-thread contract as the rest of the
  /// communicator.
  [[nodiscard]] std::shared_ptr<void>& extension_slot() { return extension_; }

 private:
  /// Lazily created state of the deferred (exchange-backed) fallback
  /// engine; null for subclasses that override the primitives natively.
  detail::DeferredEngine& deferred();
  std::unique_ptr<detail::DeferredEngine> deferred_;
  /// Round of the last default-shim exchange (strict monotonicity check).
  int last_exchange_round_ = -1;
  /// Next tag allocate_collective_tag hands out (0 is reserved for the
  /// default/blocking namespace).
  int next_collective_tag_ = 1;
  /// See extension_slot().
  std::shared_ptr<void> extension_;
};

}  // namespace bruck::mps
