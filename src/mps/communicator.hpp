// The abstract k-port communicator the collective algorithms are written
// against (the substrate interface of Section 1.2's model).
//
// A *round* is one synchronous communication step of the paper's model: each
// processor may send up to k messages and receive up to k messages.  The
// algorithm supplies the global round index explicitly; this is what lets
// the trace compute C1 and C2 exactly as the paper defines them even when
// some ranks are idle in some rounds (tree-based baselines).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bruck::mps {

struct SendSpec {
  std::int64_t dst = 0;
  std::span<const std::byte> data;
};

struct RecvSpec {
  std::int64_t src = 0;
  /// Exact-size landing buffer; the substrate asserts the incoming payload
  /// matches data.size() (the paper's algorithms always know the sizes).
  std::span<std::byte> data;
};

/// One compiled-plan execution on one rank, as reported to the trace:
/// whether the plan came out of the PlanCache hot, how many rounds it spans
/// and how many payload bytes this rank put on the wire.
struct PlanEvent {
  bool cache_hit = false;
  int rounds = 0;
  std::int64_t bytes_sent = 0;
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual std::int64_t rank() const = 0;
  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual int ports() const = 0;

  /// Execute one communication round.  Preconditions:
  ///  * sends.size() ≤ ports() and recvs.size() ≤ ports();
  ///  * no self-sends;
  ///  * `round` is strictly greater than any round this rank used before.
  /// Sends are posted first (buffered, non-blocking), then receives complete
  /// in spec order; the call returns when all receives have landed.
  virtual void exchange(int round, std::span<const SendSpec> sends,
                        std::span<const RecvSpec> recvs) = 0;

  /// Appendix A's send_and_recv: one send and one receive as a single
  /// one-port round.
  void send_and_recv(int round, std::span<const std::byte> out,
                     std::int64_t dst, std::span<std::byte> in,
                     std::int64_t src) {
    const SendSpec s{dst, out};
    const RecvSpec r{src, in};
    exchange(round, {&s, 1}, {&r, 1});
  }

  /// Block until all ranks reached this barrier (used for timing fences, not
  /// required for correctness of exchanges).
  virtual void barrier() = 0;

  /// Plan-statistics sink: the compiled-schedule executor reports one event
  /// per collective call.  Substrates that keep a trace forward it there;
  /// the default is a no-op so algorithm code never has to care.
  virtual void record_plan_event(const PlanEvent& event) {
    (void)event;
  }
};

}  // namespace bruck::mps
