// The abstract k-port communicator the collective algorithms are written
// against (the substrate interface of Section 1.2's model).
//
// A *round* is one synchronous communication step of the paper's model: each
// processor may send up to k messages and receive up to k messages.  The
// algorithm supplies the global round index explicitly; this is what lets
// the trace compute C1 and C2 exactly as the paper defines them even when
// some ranks are idle in some rounds (tree-based baselines).
//
// Since the port-engine refactor the *primitive* operations are
// nonblocking: post_send/post_recv enqueue work and return immediately
// (sends are buffered and complete at post; receives return a PortHandle),
// test_recv/wait_recv/wait_any_recv/wait_all_recvs complete receives in
// *arrival* order.  `exchange` — the substrate of the reference algorithms
// and the blocking plan executor — is a thin shim over those primitives:
// post everything, then wait for the receives in spec order.
//
// A subclass must override either the engine primitives (a native
// substrate: ThreadComm) or `exchange` (a wrapping/intercepting
// communicator: fault injectors, filters).  Whichever side is not
// overridden falls back to the other: the default `exchange` drives the
// engine, and the default engine defers posted operations and flushes them
// round-by-round through `exchange` on the first wait — degraded to
// blocking-round semantics, but correct, so wrappers written against the
// old interface keep working under the pipelined executor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace bruck::mps {

struct SendSpec {
  std::int64_t dst = 0;
  std::span<const std::byte> data;
};

struct RecvSpec {
  std::int64_t src = 0;
  /// Exact-size landing buffer; the substrate asserts the incoming payload
  /// matches data.size() (the paper's algorithms always know the sizes).
  std::span<std::byte> data;
};

/// One compiled-plan execution on one rank, as reported to the trace:
/// whether the plan came out of the PlanCache hot, how many rounds it spans,
/// how many payload bytes this rank put on the wire, and how many received
/// bytes it combined into accumulators (reduction plans only; 0 elsewhere).
struct PlanEvent {
  bool cache_hit = false;
  int rounds = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_reduced = 0;
};

/// Identifies one posted (nonblocking) receive on one communicator.
/// Handles are never reused within a communicator's lifetime.
using PortHandle = std::uint64_t;

namespace detail {
class DeferredEngine;
}

class Communicator {
 public:
  Communicator();
  virtual ~Communicator();

  [[nodiscard]] virtual std::int64_t rank() const = 0;
  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual int ports() const = 0;

  // -- Nonblocking port engine ---------------------------------------------
  //
  // Posts must use non-decreasing round indices, at most ports() sends and
  // ports() receives per round, no self-sends, no empty messages.  One
  // post_send/post_recv pair is one *logical* message: the trace records it
  // once, with the declared round and the full byte count, regardless of
  // `segments`.
  //
  // `segments` splits the payload into that many wire segments (the last
  // pipeline-lowering knob of the plan executor): the receiver can consume
  // segment i while segment i+1 is still being produced.  Sender and
  // receiver must agree on the segment count of each message; segment
  // sizes are derived from the total identically on both sides.  The
  // deferred fallback engine ignores segmentation (symmetrically, so a
  // fabric of wrapper communicators stays wire-consistent).

  /// Post one logical send.  The payload is captured before returning (the
  /// caller's buffer may be reused immediately).  Never blocks.
  virtual void post_send(int round, std::int64_t dst,
                         std::span<const std::byte> data, int segments = 1);

  /// Move-in overload: a packed staging buffer becomes the wire payload
  /// without a copy.
  virtual void post_send(int round, std::int64_t dst,
                         std::vector<std::byte>&& data, int segments = 1);

  /// Post one logical receive landing into `data` (written by the time the
  /// handle completes).
  virtual PortHandle post_recv(int round, std::int64_t src,
                               std::span<std::byte> data, int segments = 1);

  /// Post one logical receive of `bytes` bytes into an engine-owned buffer;
  /// retrieve it with take_payload() once complete.  Lets a non-contiguous
  /// (scatter) receive consume the wire buffer directly instead of staging
  /// a copy.
  virtual PortHandle post_recv_buffer(int round, std::int64_t src,
                                      std::int64_t bytes, int segments = 1);

  /// The completed payload of a post_recv_buffer receive (moved out; the
  /// handle is retired).  Precondition: `h` is complete and buffer-mode.
  virtual std::vector<std::byte> take_payload(PortHandle h);

  /// Try to complete `h` without blocking; true once it is complete.
  /// Caveat: the deferred fallback engine (subclasses overriding only
  /// `exchange`) cannot make progress without flushing a round through the
  /// blocking `exchange`, so there this probe degrades to wait_recv — it
  /// can block up to the receive timeout.  Native engines are truly
  /// nonblocking.
  virtual bool test_recv(PortHandle h);

  /// Block until `h` completes (timeout ⇒ ContractViolation).
  virtual void wait_recv(PortHandle h);

  /// Block until *some* posted receive completes and return its handle;
  /// each completed handle is reported exactly once across
  /// wait_any_recv calls.  Precondition: at least one receive is
  /// outstanding or completed-but-unreported.
  virtual PortHandle wait_any_recv();

  /// Complete every outstanding receive (and, in the deferred fallback,
  /// flush any posted-but-unsent sends).
  virtual void wait_all_recvs();

  // ------------------------------------------------------------------------

  /// Execute one communication round.  Preconditions:
  ///  * sends.size() ≤ ports() and recvs.size() ≤ ports();
  ///  * no self-sends;
  ///  * `round` is strictly greater than any round this rank exchanged
  ///    before.
  /// Sends are posted first (buffered, non-blocking), then receives complete
  /// in spec order; the call returns when all receives have landed.  The
  /// default implementation is a shim over the nonblocking primitives.
  virtual void exchange(int round, std::span<const SendSpec> sends,
                        std::span<const RecvSpec> recvs);

  /// Appendix A's send_and_recv: one send and one receive as a single
  /// one-port round.
  void send_and_recv(int round, std::span<const std::byte> out,
                     std::int64_t dst, std::span<std::byte> in,
                     std::int64_t src) {
    const SendSpec s{dst, out};
    const RecvSpec r{src, in};
    exchange(round, {&s, 1}, {&r, 1});
  }

  /// Block until all ranks reached this barrier (used for timing fences, not
  /// required for correctness of exchanges).
  virtual void barrier() = 0;

  /// Plan-statistics sink: the compiled-schedule executor reports one event
  /// per collective call.  Substrates that keep a trace forward it there;
  /// the default is a no-op so algorithm code never has to care.
  virtual void record_plan_event(const PlanEvent& event) {
    (void)event;
  }

 private:
  /// Lazily created state of the deferred (exchange-backed) fallback
  /// engine; null for subclasses that override the primitives natively.
  detail::DeferredEngine& deferred();
  std::unique_ptr<detail::DeferredEngine> deferred_;
  /// Round of the last default-shim exchange (strict monotonicity check).
  int last_exchange_round_ = -1;
};

}  // namespace bruck::mps
