#include "mps/runtime.hpp"

#include <chrono>
#include <exception>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace bruck::mps {

RunResult run_spmd(const FabricOptions& options,
                   const std::function<void(Communicator&)>& body) {
  BRUCK_REQUIRE(options.n >= 1);
  BRUCK_REQUIRE(options.k >= 1);
  BRUCK_REQUIRE(body != nullptr);

  auto fabric = std::make_shared<Fabric>(options);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(options.n));

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(options.n));
    for (std::int64_t rank = 0; rank < options.n; ++rank) {
      threads.emplace_back([&, rank] {
        try {
          ThreadComm comm(*fabric, rank);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(rank)] = std::current_exception();
          fabric->drop_from_barrier();
        }
      });
    }
  }  // jthread joins here
  const auto t1 = std::chrono::steady_clock::now();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  RunResult result;
  result.trace = std::shared_ptr<Trace>(fabric, &fabric->trace());
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

RunResult run_spmd(std::int64_t n, int k,
                   const std::function<void(Communicator&)>& body) {
  FabricOptions options;
  options.n = n;
  options.k = k;
  return run_spmd(options, body);
}

}  // namespace bruck::mps
