// Per-rank communication event log and its aggregation into the paper's
// complexity measures.
//
// Each rank owns a pre-allocated sink and appends without synchronization;
// aggregation happens after all rank threads have joined.  The aggregate can
// be rendered as a sched::Schedule, giving an executed-trace view that tests
// compare against the independently *built* schedule for the same algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "model/metrics.hpp"
#include "sched/schedule.hpp"

namespace bruck::mps {

struct SendEvent {
  int round = 0;
  std::int64_t dst = 0;
  std::int64_t bytes = 0;
};

/// One rank's append-only event log.
class TraceSink {
 public:
  void record_send(int round, std::int64_t dst, std::int64_t bytes) {
    sends_.push_back(SendEvent{round, dst, bytes});
  }
  [[nodiscard]] const std::vector<SendEvent>& sends() const { return sends_; }
  void clear() { sends_.clear(); }

 private:
  std::vector<SendEvent> sends_;
};

class Trace {
 public:
  Trace(std::int64_t n, int k);

  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }

  /// The sink owned by `rank`; each rank must touch only its own sink while
  /// threads are running.
  [[nodiscard]] TraceSink& sink(std::int64_t rank);

  /// Rebuild the global round structure from all sinks.  Only valid after
  /// the rank threads joined.  Validates the k-port constraints.
  [[nodiscard]] sched::Schedule to_schedule() const;

  /// The paper's measures of the executed pattern.
  [[nodiscard]] model::CostMetrics metrics() const;

  /// Total number of recorded send events across ranks.
  [[nodiscard]] std::size_t event_count() const;

 private:
  std::int64_t n_;
  int k_;
  std::vector<TraceSink> sinks_;
};

}  // namespace bruck::mps
