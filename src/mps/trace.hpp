// Per-rank communication event log and its aggregation into the paper's
// complexity measures.
//
// Each rank owns a pre-allocated sink and appends without synchronization;
// aggregation happens after all rank threads have joined.  The aggregate can
// be rendered as a sched::Schedule, giving an executed-trace view that tests
// compare against the independently *built* schedule for the same algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "model/metrics.hpp"
#include "mps/communicator.hpp"
#include "sched/schedule.hpp"

namespace bruck::mps {

struct SendEvent {
  int round = 0;
  std::int64_t dst = 0;
  std::int64_t bytes = 0;
  /// Port-namespace tag the send ran in (0 = blocking/default namespace).
  /// Round indices are only comparable within one tag.
  int tag = 0;
};

/// Aggregate view of the compiled-plan executions recorded in a trace.
struct PlanStats {
  std::uint64_t uses = 0;    ///< plan executions recorded (one per rank call)
  std::uint64_t hits = 0;    ///< executions that found their plan cached
  std::uint64_t misses = 0;  ///< executions that had to lower a plan
  std::int64_t rounds = 0;   ///< Σ per-execution round counts
  std::int64_t bytes_sent = 0;  ///< Σ per-rank payload bytes
  /// Σ per-rank bytes combined on receive (reduction collectives; 0 else).
  std::int64_t bytes_reduced = 0;
  /// Σ per-execution wall-clock microseconds (0 for untimed paths).
  double wall_us = 0.0;

  friend bool operator==(const PlanStats&, const PlanStats&) = default;
};

/// One rank's append-only event log.
class TraceSink {
 public:
  void record_send(int round, std::int64_t dst, std::int64_t bytes,
                   int tag = 0) {
    sends_.push_back(SendEvent{round, dst, bytes, tag});
  }
  void record_plan(const PlanEvent& event) { plans_.push_back(event); }
  [[nodiscard]] const std::vector<SendEvent>& sends() const { return sends_; }
  [[nodiscard]] const std::vector<PlanEvent>& plans() const { return plans_; }
  void clear() {
    sends_.clear();
    plans_.clear();
  }

 private:
  std::vector<SendEvent> sends_;
  std::vector<PlanEvent> plans_;
};

class Trace {
 public:
  Trace(std::int64_t n, int k);

  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }

  /// The sink owned by `rank`; each rank must touch only its own sink while
  /// threads are running.
  [[nodiscard]] TraceSink& sink(std::int64_t rank);

  /// Rebuild the global round structure from all sinks.  Only valid after
  /// the rank threads joined.  Validates the k-port constraints.
  ///
  /// Tag namespaces have independent round indices, so events from
  /// different tags must not be merged round-by-round: each tag's rounds
  /// are *stacked* after the previous tag's (ascending tag order), keeping
  /// the per-tag k-port validation exact.  Concurrent collectives thus
  /// appear sequentially in the combined schedule — C2 stays exact, and C1
  /// is the sum of per-tag round counts (an upper bound on the interleaved
  /// execution's rounds).
  [[nodiscard]] sched::Schedule to_schedule() const;

  /// The distinct tags with at least one recorded send, ascending.
  [[nodiscard]] std::vector<int> tags() const;

  /// The round structure of one tag namespace alone (rounds renumbered from
  /// that tag's own indices).  Lets tests compare a nonblocking
  /// collective's executed pattern against its blocking twin's.
  [[nodiscard]] sched::Schedule to_schedule_for_tag(int tag) const;

  /// The paper's measures of the executed pattern.
  [[nodiscard]] model::CostMetrics metrics() const;

  /// Total number of recorded send events across ranks.
  [[nodiscard]] std::size_t event_count() const;

  /// Aggregated compiled-plan statistics across ranks (zero when the
  /// collectives ran through the reference paths).
  [[nodiscard]] PlanStats plan_stats() const;

 private:
  std::int64_t n_;
  int k_;
  std::vector<TraceSink> sinks_;
};

}  // namespace bruck::mps
