#include "mps/port_engine.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace bruck::mps {

std::int64_t wire_segment_length(std::int64_t total, int segments, int i) {
  const std::int64_t base = total / segments;
  const std::int64_t rem = total % segments;
  return base + (i < rem ? 1 : 0);
}

int effective_wire_segments(std::int64_t total, int segments) {
  return static_cast<int>(
      std::clamp<std::int64_t>(segments, 1, std::max<std::int64_t>(1, total)));
}

WirePortEngine::WirePortEngine(std::int64_t peers)
    : send_seq0_(static_cast<std::size_t>(peers), 0),
      recv_seq0_(static_cast<std::size_t>(peers), 0) {
  BRUCK_REQUIRE(peers >= 1);
}

WirePortEngine::TagRoundState& WirePortEngine::round_state(int tag) {
  if (tag == 0) return tag0_rounds_;
  return tag_rounds_[tag];
}

std::int64_t& WirePortEngine::send_seq(int tag, std::int64_t dst) {
  if (tag == 0) return send_seq0_[static_cast<std::size_t>(dst)];
  return send_seq_tagged_[tag_peer_key(tag, dst)];
}

std::int64_t& WirePortEngine::recv_seq(int tag, std::int64_t src) {
  if (tag == 0) return recv_seq0_[static_cast<std::size_t>(src)];
  return recv_seq_tagged_[tag_peer_key(tag, src)];
}

void WirePortEngine::check_post(int round, std::int64_t peer,
                                std::int64_t bytes, bool is_send, int tag) {
  BRUCK_REQUIRE(round >= 0);
  BRUCK_REQUIRE_MSG(tag >= 0, "negative port-namespace tag");
  TagRoundState& rs = round_state(tag);
  BRUCK_REQUIRE_MSG(round >= rs.last_round,
                    "port-engine posts must use non-decreasing rounds "
                    "(within each tag namespace)");
  if (round > rs.last_round) {
    rs.last_round = round;
    rs.sends_in_round = 0;
    rs.recvs_in_round = 0;
  }
  BRUCK_REQUIRE_MSG(peer != rank(), is_send
                                        ? "self-send (local data needs no port)"
                                        : "self-receive");
  BRUCK_REQUIRE(peer >= 0 && peer < size());
  BRUCK_REQUIRE_MSG(bytes > 0, "empty message");
  if (is_send) {
    BRUCK_REQUIRE_MSG(++rs.sends_in_round <= ports(),
                      "more sends than ports in one round");
  } else {
    BRUCK_REQUIRE_MSG(++rs.recvs_in_round <= ports(),
                      "more receives than ports in one round");
  }
}

void WirePortEngine::wire_send(int round, std::int64_t dst,
                               std::vector<std::byte>&& payload, int segments,
                               int tag) {
  const std::int64_t total = static_cast<std::int64_t>(payload.size());
  // One logical send event, regardless of wire segmentation: C1/C2 stay the
  // paper's measures of the declared round structure.
  record_send_event(round, dst, total, tag);
  const int s = effective_wire_segments(total, segments);
  auto& seq = send_seq(tag, dst);
  if (s == 1) {
    Message m;
    m.src = rank();
    m.dst = dst;
    m.seq = seq++;
    m.tag = tag;
    m.round = round;
    m.payload = std::move(payload);
    wire_push(std::move(m));
    return;
  }
  // Segments share ownership of the one payload buffer: no copies, and the
  // receiver can consume segment i while later segments are still queued.
  auto buffer =
      std::make_shared<const std::vector<std::byte>>(std::move(payload));
  std::int64_t offset = 0;
  for (int i = 0; i < s; ++i) {
    const std::int64_t len = wire_segment_length(total, s, i);
    Message m;
    m.src = rank();
    m.dst = dst;
    m.seq = seq++;
    m.tag = tag;
    m.round = round;
    m.shared = buffer;
    m.shared_offset = offset;
    m.shared_length = len;
    wire_push(std::move(m));
    offset += len;
  }
}

void WirePortEngine::post_send(int round, std::int64_t dst,
                               std::span<const std::byte> data, int segments,
                               int tag) {
  check_post(round, dst, static_cast<std::int64_t>(data.size()), true, tag);
  wire_send(round, dst, std::vector<std::byte>(data.begin(), data.end()),
            segments, tag);
}

void WirePortEngine::post_send(int round, std::int64_t dst,
                               std::vector<std::byte>&& data, int segments,
                               int tag) {
  check_post(round, dst, static_cast<std::int64_t>(data.size()), true, tag);
  wire_send(round, dst, std::move(data), segments, tag);
}

PortHandle WirePortEngine::add_recv_op(RecvOp&& op) {
  op.handle = next_handle_++;
  op.segments = effective_wire_segments(op.total, op.segments);
  const PortHandle h = op.handle;
  const int tag = op.tag;
  const std::int64_t src = op.src;
  incomplete_.insert(h);
  if (pending_per_src_[src]++ == 0) waiting_srcs_.push_back(src);
  recv_ops_.push_back(std::move(op));
  // An early arrival for this (tag, src) may already be stashed (its wire
  // messages beat the post); deliver it now — this can complete the op.
  drain_stash(tag, src);
  return h;
}

PortHandle WirePortEngine::post_recv(int round, std::int64_t src,
                                     std::span<std::byte> data, int segments,
                                     int tag) {
  check_post(round, src, static_cast<std::int64_t>(data.size()), false, tag);
  RecvOp op;
  op.src = src;
  op.tag = tag;
  op.round = round;
  op.landing = data;
  op.total = static_cast<std::int64_t>(data.size());
  op.segments = segments;
  return add_recv_op(std::move(op));
}

PortHandle WirePortEngine::post_recv_buffer(int round, std::int64_t src,
                                            std::int64_t bytes, int segments,
                                            int tag) {
  check_post(round, src, bytes, false, tag);
  RecvOp op;
  op.src = src;
  op.tag = tag;
  op.round = round;
  op.take_buffer = true;
  op.total = bytes;
  op.segments = segments;
  if (segments > 1) {
    // Multi-segment: pre-size the buffer, segments land by memcpy.  The
    // single-segment case steals the wire payload instead (deliver).
    op.owned.resize(static_cast<std::size_t>(bytes));
  }
  return add_recv_op(std::move(op));
}

void WirePortEngine::deliver(std::list<RecvOp>::iterator it, Message&& m) {
  RecvOp& op = *it;
  const std::int64_t expected_seq = recv_seq(op.tag, m.src)++;
  const std::int64_t expected_len =
      wire_segment_length(op.total, op.segments, op.seg_done);
  const std::span<const std::byte> bytes = m.view();
  if (m.seq != expected_seq ||
      static_cast<std::int64_t>(bytes.size()) != expected_len) {
    std::ostringstream os;
    os << "rank " << rank() << " round " << op.round << " tag " << op.tag
       << ": message from rank " << m.src << " has seq " << m.seq
       << " (expected " << expected_seq << ") and " << bytes.size()
       << " bytes (expected " << expected_len << ")";
    throw ContractViolation(os.str());
  }
  if (op.take_buffer && op.segments == 1 && !m.shared) {
    // Whole unsegmented message into an engine-owned buffer: steal the wire
    // payload — the buffer has now moved sender-pack → wire → receiver
    // without a single copy.
    op.owned = std::move(m.payload);
  } else if (expected_len > 0) {
    std::byte* base = op.take_buffer ? op.owned.data() : op.landing.data();
    std::memcpy(base + op.offset, bytes.data(),
                static_cast<std::size_t>(expected_len));
  }
  op.offset += expected_len;
  if (++op.seg_done == op.segments) {
    const PortHandle h = op.handle;
    incomplete_.erase(h);
    unreported_.push_back(h);
    if (--pending_per_src_[op.src] == 0) {
      pending_per_src_.erase(op.src);
      std::erase(waiting_srcs_, op.src);
    }
    completed_.emplace(h, std::move(op));
    recv_ops_.erase(it);
  }
}

void WirePortEngine::apply_message(Message&& m) {
  const auto it = std::find_if(
      recv_ops_.begin(), recv_ops_.end(),
      [&](const RecvOp& op) { return op.src == m.src && op.tag == m.tag; });
  if (it == recv_ops_.end()) {
    // The wire pop can surface a message for another tag whose receive is
    // not posted yet (concurrent collectives progress independently per
    // rank), or — on fabrics that drain their inbound channel eagerly — a
    // message from a source with no pending receive at all.  Stash it in
    // per-channel FIFO order; add_recv_op delivers it when its receive
    // appears.  A genuinely unmatched message therefore surfaces as a
    // drain-deadline timeout reporting the stash, not an immediate throw.
    ++stashed_count_;
    stash_[tag_peer_key(m.tag, m.src)].push_back(std::move(m));
    return;
  }
  deliver(it, std::move(m));
}

void WirePortEngine::drain_stash(int tag, std::int64_t src) {
  const auto sit = stash_.find(tag_peer_key(tag, src));
  if (sit == stash_.end()) return;
  std::deque<Message>& q = sit->second;
  while (!q.empty()) {
    const auto it = std::find_if(
        recv_ops_.begin(), recv_ops_.end(),
        [&](const RecvOp& op) { return op.src == src && op.tag == tag; });
    if (it == recv_ops_.end()) break;
    Message m = std::move(q.front());
    q.pop_front();
    --stashed_count_;
    deliver(it, std::move(m));
  }
  if (q.empty()) stash_.erase(sit);
}

bool WirePortEngine::try_progress() {
  std::optional<Message> m =
      wire_pop(waiting_srcs_, std::chrono::milliseconds{0});
  if (!m.has_value()) return false;
  apply_message(std::move(*m));
  return true;
}

void WirePortEngine::progress_blocking(const DrainDeadline& deadline) {
  std::optional<Message> m = wire_pop(waiting_srcs_, deadline.remaining());
  if (!m.has_value()) {
    std::ostringstream os;
    os << "rank " << rank() << ": port-engine receive timed out after "
       << deadline.budget().count()
       << " ms (one whole-drain budget, BRUCK_RECV_TIMEOUT_MS) waiting on "
          "rank(s)";
    for (const std::int64_t s : waiting_srcs_) os << ' ' << s;
    if (stashed_count_ > 0) {
      os << "; " << stashed_count_
         << " message(s) stashed for other tag namespaces";
    }
    os << " (deadlock or mismatched exchange?)";
    throw ContractViolation(os.str());
  }
  apply_message(std::move(*m));
}

void WirePortEngine::retire_if_landing(PortHandle h) {
  const auto it = completed_.find(h);
  if (it != completed_.end() && !it->second.take_buffer) completed_.erase(it);
}

std::vector<std::byte> WirePortEngine::take_payload(PortHandle h) {
  const auto it = completed_.find(h);
  BRUCK_REQUIRE_MSG(it != completed_.end() && it->second.take_buffer,
                    "take_payload needs a completed buffer-mode receive");
  std::vector<std::byte> out = std::move(it->second.owned);
  completed_.erase(it);
  return out;
}

bool WirePortEngine::test_recv(PortHandle h) {
  while (incomplete_.contains(h)) {
    if (!try_progress()) return false;
  }
  const auto it = completed_.find(h);
  BRUCK_REQUIRE_MSG(it != completed_.end(),
                    "unknown or already-consumed receive handle");
  std::erase(unreported_, h);
  retire_if_landing(h);
  return true;
}

void WirePortEngine::wait_recv(PortHandle h) {
  const DrainDeadline deadline(recv_timeout());
  while (incomplete_.contains(h)) progress_blocking(deadline);
  const auto it = completed_.find(h);
  BRUCK_REQUIRE_MSG(it != completed_.end(),
                    "unknown or already-consumed receive handle");
  std::erase(unreported_, h);
  retire_if_landing(h);
}

PortHandle WirePortEngine::wait_any_recv() {
  const DrainDeadline deadline(recv_timeout());
  return wait_any_recv_within(deadline);
}

PortHandle WirePortEngine::wait_any_recv_within(const DrainDeadline& deadline) {
  while (unreported_.empty()) {
    BRUCK_REQUIRE_MSG(!recv_ops_.empty(),
                      "wait_any_recv with no outstanding receive");
    progress_blocking(deadline);
  }
  const PortHandle h = unreported_.front();
  unreported_.pop_front();
  retire_if_landing(h);
  return h;
}

void WirePortEngine::wait_all_recvs() {
  const DrainDeadline deadline(recv_timeout());
  while (!recv_ops_.empty()) progress_blocking(deadline);
  for (const PortHandle h : unreported_) retire_if_landing(h);
  unreported_.clear();
}

std::optional<PortHandle> WirePortEngine::poll_any_recv() {
  while (unreported_.empty()) {
    if (!try_progress()) return std::nullopt;
  }
  const PortHandle h = unreported_.front();
  unreported_.pop_front();
  retire_if_landing(h);
  return h;
}

void WirePortEngine::release_tag(int tag) {
  BRUCK_REQUIRE_MSG(tag > 0, "release_tag needs a nonzero collective tag");
  for (const RecvOp& op : recv_ops_) {
    BRUCK_REQUIRE_MSG(
        op.tag != tag,
        "release_tag with receives still outstanding under the tag");
  }
  const auto in_tag = [tag](std::uint64_t key) {
    return static_cast<int>(key >> 32) == tag;
  };
  for (const auto& [key, q] : stash_) {
    BRUCK_REQUIRE_MSG(
        !(in_tag(key) && !q.empty()),
        "release_tag with stashed wire messages still undelivered under "
        "the tag");
  }
  tag_rounds_.erase(tag);
  std::erase_if(send_seq_tagged_,
                [&](const auto& kv) { return in_tag(kv.first); });
  std::erase_if(recv_seq_tagged_,
                [&](const auto& kv) { return in_tag(kv.first); });
}

}  // namespace bruck::mps
