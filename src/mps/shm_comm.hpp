// Shared-memory process fabric: the first *real* transport backend.
//
// Layout of one POSIX shared-memory region (anonymous MAP_SHARED inherited
// across fork(), or shm_open()-named for independently launched processes):
//
//   [ ShmControl | ring 0 | ring 1 | ... | ring n-1 ]
//
// ShmControl carries the fabric geometry (n, k, ring bytes, trace flag,
// receive timeout) so attaching needs nothing but the region and a rank,
// plus a generation-based sense-reversing barrier and an abort flag.  Ring
// i is the MPSC inbound channel of rank i: any rank may push (producers),
// only rank i pops (consumer).  This replaces the mutex/condvar Mailbox of
// the thread fabric with the lock-free MpscByteRing on the cross-process
// hot path.
//
// ShmComm subclasses WirePortEngine, so the entire nonblocking port-engine
// contract — matching, per-tag sequencing, early-arrival stash, drain
// deadlines — is the same tested machinery ThreadComm runs; only the three
// wire hooks differ.  Because rings are bounded, wire_push under
// backpressure *eagerly drains* this rank's own inbound ring into a local
// pending queue while waiting for space (two ranks pushing into each
// other's full rings would otherwise deadlock); wire_pop serves that queue
// first.
//
// Failure story: the launcher (spawn_local) sets the region's abort flag
// when any rank process dies, and every blocking loop in here (push
// backpressure, pop wait, barrier) polls it — surviving ranks throw a
// ContractViolation instead of hanging until their drain deadline.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mps/port_engine.hpp"
#include "mps/ring_buffer.hpp"
#include "mps/trace.hpp"

namespace bruck::mps {

/// Geometry + policy of a shared-memory fabric, fixed at region init.
struct ShmFabricOptions {
  std::int64_t n = 1;
  int k = 1;
  /// Capacity of each rank's inbound ring (rounded up to a power of two).
  /// One wire segment must fit in half a ring; the engine throws with a
  /// pointer at BRUCK_SHM_RING_BYTES when a payload cannot.
  std::size_t ring_bytes = std::size_t{1} << 20;
  bool record_trace = true;
  std::chrono::milliseconds recv_timeout{30000};
};

/// RAII POSIX shared-memory mapping.  Anonymous mappings are created before
/// fork() and inherited; named mappings bootstrap independently launched
/// processes via shm_open().
class ShmSegment {
 public:
  /// MAP_SHARED | MAP_ANONYMOUS region (fork-inheritance bootstrap).
  static ShmSegment create_anonymous(std::size_t bytes);

  /// Create (O_CREAT | O_EXCL) and map a named segment; the creating
  /// segment unlinks the name on destruction.
  static ShmSegment create_named(const std::string& name, std::size_t bytes);

  /// Map an existing named segment created by another process.
  static ShmSegment open_named(const std::string& name, std::size_t bytes);

  ShmSegment() = default;
  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment();

  [[nodiscard]] void* data() const { return mem_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }

 private:
  void* mem_ = nullptr;
  std::size_t bytes_ = 0;
  std::string unlink_name_;  ///< non-empty on the creating side of a named segment
};

class ShmComm final : public WirePortEngine {
 public:
  /// Bytes a region must provide for a fabric of these options.
  [[nodiscard]] static std::size_t region_bytes(const ShmFabricOptions& options);

  /// Initialize a region (control block + all n rings).  Exactly one
  /// process calls this, before any rank attaches; attach-side magic
  /// checks catch ordering mistakes.
  static void init_region(void* region, const ShmFabricOptions& options);

  /// Raise the region's abort flag: every rank blocked in this fabric
  /// throws promptly instead of waiting out its deadline.  Safe from any
  /// process mapping the region (the launcher calls it on child death).
  static void abort_region(void* region);

  /// Attach rank `rank` to an initialized region.  The region must outlive
  /// the communicator.
  ShmComm(void* region, std::int64_t rank);

  [[nodiscard]] std::int64_t rank() const override { return rank_; }
  [[nodiscard]] std::int64_t size() const override { return n_; }
  [[nodiscard]] int ports() const override { return k_; }
  [[nodiscard]] std::chrono::milliseconds recv_timeout() const override {
    return recv_timeout_;
  }
  void barrier() override;
  void record_plan_event(const PlanEvent& event) override;

  /// This rank's locally recorded events; the launcher ships them back to
  /// the parent to assemble a full Trace.
  [[nodiscard]] const TraceSink& trace_sink() const { return sink_; }

 protected:
  void wire_push(Message&& m) override;
  std::optional<Message> wire_pop(std::span<const std::int64_t> waiting_srcs,
                                  std::chrono::milliseconds timeout) override;
  void record_send_event(int round, std::int64_t dst, std::int64_t bytes,
                         int tag) override;

 private:
  struct Control;
  [[nodiscard]] static std::size_t control_area_bytes();
  [[nodiscard]] static std::byte* ring_base(std::byte* region, const Control* c,
                                            std::int64_t rank);
  [[nodiscard]] Control* control() const;
  /// Throw if the abort flag is up (peer death / launcher teardown).
  void check_abort() const;

  std::byte* region_ = nullptr;
  std::int64_t rank_ = 0;
  std::int64_t n_ = 0;
  int k_ = 1;
  bool record_trace_ = false;
  std::chrono::milliseconds recv_timeout_{30000};
  MpscByteRing inbound_;                 ///< this rank's ring (consumer side)
  std::vector<MpscByteRing> peer_ring_;  ///< producer handles, indexed by dst
  /// Messages drained from `inbound_` while waiting out push backpressure.
  std::deque<Message> pending_in_;
  TraceSink sink_;
};

}  // namespace bruck::mps
