#include "mps/thread_comm.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "util/assert.hpp"

namespace bruck::mps {

std::optional<std::chrono::milliseconds> parse_recv_timeout_ms(
    const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;  // junk / trailing junk
  if (errno == ERANGE) return std::nullopt;  // overflowed, silently saturated
  if (v <= 0 || v > kMaxRecvTimeoutMs) return std::nullopt;
  return std::chrono::milliseconds(v);
}

std::chrono::milliseconds default_recv_timeout() {
  constexpr std::chrono::milliseconds kDefault{30000};
  const char* env = std::getenv("BRUCK_RECV_TIMEOUT_MS");
  if (env == nullptr) return kDefault;
  if (const auto parsed = parse_recv_timeout_ms(env)) return *parsed;
  // Warn once per process: a misconfigured timeout silently changes hang
  // behavior, but repeating the warning per fabric would drown test output.
  static std::once_flag warned;
  const long long default_ms = kDefault.count();
  std::call_once(warned, [env, default_ms] {
    std::fprintf(stderr,
                 "bruck: ignoring invalid BRUCK_RECV_TIMEOUT_MS=\"%s\" "
                 "(want a positive integer <= %lld ms); using %lld ms\n",
                 env, kMaxRecvTimeoutMs, default_ms);
  });
  return kDefault;
}

Fabric::Fabric(const FabricOptions& options)
    : options_(options),
      trace_(options.n, options.k),
      barrier_(static_cast<std::ptrdiff_t>(options.n)) {
  BRUCK_REQUIRE(options_.n >= 1);
  BRUCK_REQUIRE(options_.k >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(options_.n));
  for (std::int64_t i = 0; i < options_.n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& Fabric::mailbox(std::int64_t rank) {
  BRUCK_REQUIRE(rank >= 0 && rank < options_.n);
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void Fabric::arrive_at_barrier() { barrier_.arrive_and_wait(); }

void Fabric::drop_from_barrier() { barrier_.arrive_and_drop(); }

ThreadComm::ThreadComm(Fabric& fabric, std::int64_t rank)
    : WirePortEngine(fabric.n()), fabric_(&fabric), rank_(rank) {
  BRUCK_REQUIRE(rank >= 0 && rank < fabric.n());
}

void ThreadComm::wire_push(Message&& m) {
  fabric_->mailbox(m.dst).push(std::move(m));
}

std::optional<Message> ThreadComm::wire_pop(
    std::span<const std::int64_t> waiting_srcs,
    std::chrono::milliseconds timeout) {
  Mailbox& box = fabric_->mailbox(rank_);
  if (timeout.count() == 0) return box.try_pop_any(waiting_srcs);
  return box.pop_any(waiting_srcs, timeout);
}

void ThreadComm::record_send_event(int round, std::int64_t dst,
                                   std::int64_t bytes, int tag) {
  if (fabric_->options().record_trace) {
    fabric_->trace().sink(rank_).record_send(round, dst, bytes, tag);
  }
}

void ThreadComm::barrier() { fabric_->arrive_at_barrier(); }

void ThreadComm::record_plan_event(const PlanEvent& event) {
  if (fabric_->options().record_trace) {
    fabric_->trace().sink(rank_).record_plan(event);
  }
}

}  // namespace bruck::mps
