#include "mps/thread_comm.hpp"

#include <cstring>
#include <sstream>

#include "util/assert.hpp"

namespace bruck::mps {

Fabric::Fabric(const FabricOptions& options)
    : options_(options),
      trace_(options.n, options.k),
      barrier_(static_cast<std::ptrdiff_t>(options.n)) {
  BRUCK_REQUIRE(options_.n >= 1);
  BRUCK_REQUIRE(options_.k >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(options_.n));
  for (std::int64_t i = 0; i < options_.n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& Fabric::mailbox(std::int64_t rank) {
  BRUCK_REQUIRE(rank >= 0 && rank < options_.n);
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

void Fabric::arrive_at_barrier() { barrier_.arrive_and_wait(); }

void Fabric::drop_from_barrier() { barrier_.arrive_and_drop(); }

ThreadComm::ThreadComm(Fabric& fabric, std::int64_t rank)
    : fabric_(&fabric),
      rank_(rank),
      send_seq_(static_cast<std::size_t>(fabric.n()), 0),
      recv_seq_(static_cast<std::size_t>(fabric.n()), 0) {
  BRUCK_REQUIRE(rank >= 0 && rank < fabric.n());
}

void ThreadComm::exchange(int round, std::span<const SendSpec> sends,
                          std::span<const RecvSpec> recvs) {
  BRUCK_REQUIRE_MSG(round > last_round_,
                    "round indices must be strictly increasing per rank");
  BRUCK_REQUIRE_MSG(static_cast<int>(sends.size()) <= ports(),
                    "more sends than ports in one round");
  BRUCK_REQUIRE_MSG(static_cast<int>(recvs.size()) <= ports(),
                    "more receives than ports in one round");
  last_round_ = round;

  // Post all sends first: buffered, so a round never deadlocks regardless of
  // the global send/receive ordering across ranks.
  for (const SendSpec& s : sends) {
    BRUCK_REQUIRE_MSG(s.dst != rank_, "self-send (local data needs no port)");
    BRUCK_REQUIRE(s.dst >= 0 && s.dst < size());
    BRUCK_REQUIRE_MSG(!s.data.empty(), "empty message");
    Message m;
    m.src = rank_;
    m.dst = s.dst;
    m.seq = send_seq_[static_cast<std::size_t>(s.dst)]++;
    m.round = round;
    m.payload.assign(s.data.begin(), s.data.end());
    if (fabric_->options().record_trace) {
      fabric_->trace().sink(rank_).record_send(
          round, s.dst, static_cast<std::int64_t>(s.data.size()));
    }
    fabric_->mailbox(s.dst).push(std::move(m));
  }

  // Complete receives in spec order; FIFO per channel plus the sequence
  // check makes any send/receive mismatch a hard error at the first
  // misaligned message.
  for (const RecvSpec& r : recvs) {
    BRUCK_REQUIRE_MSG(r.src != rank_, "self-receive");
    BRUCK_REQUIRE(r.src >= 0 && r.src < size());
    Message m = fabric_->mailbox(rank_).pop_from(
        r.src, fabric_->options().recv_timeout);
    const std::int64_t expected_seq = recv_seq_[static_cast<std::size_t>(r.src)]++;
    if (m.seq != expected_seq || m.payload.size() != r.data.size()) {
      std::ostringstream os;
      os << "rank " << rank_ << " round " << round << ": message from rank "
         << r.src << " has seq " << m.seq << " (expected " << expected_seq
         << ") and " << m.payload.size() << " bytes (expected "
         << r.data.size() << ")";
      throw ContractViolation(os.str());
    }
    std::memcpy(r.data.data(), m.payload.data(), m.payload.size());
  }
}

void ThreadComm::barrier() { fabric_->arrive_at_barrier(); }

void ThreadComm::record_plan_event(const PlanEvent& event) {
  if (fabric_->options().record_trace) {
    fabric_->trace().sink(rank_).record_plan(event);
  }
}

}  // namespace bruck::mps
