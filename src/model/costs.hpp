// Closed-form (loop-exact) C1/C2 cost computation for every algorithm in the
// library.  These are derived directly from the paper's analysis and are the
// third independent derivation of each communication pattern (next to the
// executed trace in mps/ and the built schedule in sched/); the test suite
// asserts all three agree for every parameter combination it sweeps.
#pragma once

#include <cstdint>

#include "model/metrics.hpp"

namespace bruck::model {

/// How the concatenation algorithm schedules its final (partial) round when
/// n is not an exact power of k+1 (Section 4.2 of the paper).
enum class ConcatLastRound {
  /// Proposition 4.2: partition a b × n2 byte table into k areas with
  /// column-span ≤ n1 and ≤ ⌈b·n2/k⌉ entries each.  Optimal C1 *and* C2,
  /// feasible for all (n, b, k) except the paper's range
  /// b ≥ 3, k ≥ 3, (k+1)^d − k < n < (k+1)^d.
  kByteSplit,
  /// Whole-column areas (no byte splitting): always feasible, optimal C1,
  /// C2 at most (b−1) above the lower bound (the paper's Remark, option 2).
  kColumnGranular,
  /// Split the final round into two: always feasible, optimal C2,
  /// C1 one above the lower bound (the paper's Remark, option 1).
  kTwoRound,
  /// kByteSplit when feasible, else kColumnGranular (keeps C1 optimal).
  kAuto,
};

/// Index operation, Section 3 algorithm: radix r ∈ [2, max(2,n)], k ≥ 1
/// ports, blocks of block_bytes bytes.
[[nodiscard]] CostMetrics index_bruck_cost(std::int64_t n, std::int64_t r,
                                           int k, std::int64_t block_bytes);

/// Index operation, direct exchange (the C2-optimal end of the trade-off,
/// equivalent in measures to radix r = n): ⌈(n−1)/k⌉ rounds of b-byte
/// messages.
[[nodiscard]] CostMetrics index_direct_cost(std::int64_t n, int k,
                                            std::int64_t block_bytes);

/// Index operation, XOR pairwise exchange (classic hypercube-flavoured
/// baseline; n must be a power of two).  Same measures as direct exchange.
[[nodiscard]] CostMetrics index_pairwise_cost(std::int64_t n, int k,
                                              std::int64_t block_bytes);

/// Reduce-scatter, radix-r Bruck skeleton run in reverse with combining:
/// identical round structure (C1) to index_bruck_cost, but each rank ships
/// only the *live* partial sums — the digit-x step moves min(r^x, n − z·r^x)
/// blocks, so the total per-rank volume is exactly (n−1)·b instead of the
/// index operation's digit-census volume.
[[nodiscard]] CostMetrics reduce_bruck_cost(std::int64_t n, std::int64_t r,
                                            int k, std::int64_t block_bytes);

/// Reduce-scatter, direct per-pair exchange: identical measures to
/// index_direct_cost (n−1 single-block messages, k per round).
[[nodiscard]] CostMetrics reduce_direct_cost(std::int64_t n, int k,
                                             std::int64_t block_bytes);

/// Concatenation, Section 4 circulant algorithm.
[[nodiscard]] CostMetrics concat_bruck_cost(std::int64_t n, int k,
                                            std::int64_t block_bytes,
                                            ConcatLastRound strategy);

/// True iff the greedy byte-split partition of the final round satisfies
/// both Proposition 4.2 constraints (column-span ≤ n1 per area, ≤ α entries
/// per area) for this (n, k, b).
[[nodiscard]] bool concat_byte_split_feasible(std::int64_t n, int k,
                                              std::int64_t block_bytes);

/// The strategy kAuto stands for on this (n, k, b): kByteSplit when
/// feasible, else kColumnGranular (keeps C1 optimal).  Non-kAuto inputs
/// pass through unchanged.  The single source of this rule — the cost
/// formulas, the executable algorithm, the schedule builder, and the plan
/// cache key must all resolve identically or the three-way cross-checks
/// lose their meaning.
[[nodiscard]] ConcatLastRound resolve_concat_last_round(
    std::int64_t n, int k, std::int64_t block_bytes, ConcatLastRound strategy);

/// True iff (n, b, k) lies in the paper's stated non-optimal range:
/// b ≥ 3, k ≥ 3 and (k+1)^d − k < n < (k+1)^d for some integer d.
[[nodiscard]] bool concat_paper_nonoptimal_range(std::int64_t n, int k,
                                                 std::int64_t block_bytes);

/// Concatenation, folklore gather+broadcast over binomial trees (Section 4
/// intro baseline; one-port).  C2 is measured honestly under the paper's
/// Σ-max-message definition (see EXPERIMENTS.md for the reconciliation with
/// the paper's 2b(n−1) figure).
[[nodiscard]] CostMetrics concat_folklore_cost(std::int64_t n,
                                               std::int64_t block_bytes);

/// Concatenation, ring allgather (one-port): C1 = n−1 rounds, C2 = b(n−1).
[[nodiscard]] CostMetrics concat_ring_cost(std::int64_t n,
                                           std::int64_t block_bytes);

/// Broadcast over the k-port circulant tree: C1 = ⌈log_{k+1} n⌉ (meets
/// Proposition 2.1 with equality), C2 = b·C1 (the whole payload rides every
/// level).
[[nodiscard]] CostMetrics bcast_circulant_cost(std::int64_t n, int k,
                                               std::int64_t payload_bytes);

/// Broadcast over the one-port binomial tree: C1 = ⌈log2 n⌉, C2 = b·C1.
[[nodiscard]] CostMetrics bcast_binomial_cost(std::int64_t n,
                                              std::int64_t payload_bytes);

/// Gather to a root over the binomial tree (one port):
/// C1 = ⌈log2 n⌉, C2 = b·Σ_i min(2^i, n − 2^i).
[[nodiscard]] CostMetrics gather_binomial_cost(std::int64_t n,
                                               std::int64_t block_bytes);

/// Scatter from a root (reverse of gather): identical measures.
[[nodiscard]] CostMetrics scatter_binomial_cost(std::int64_t n,
                                                std::int64_t block_bytes);

// ---------------------------------------------------------------------------
// Two-level (hierarchical leader-model) cost formulas.  n ranks split into
// G = ⌈n/g⌉ contiguous groups of nominal size g; each collective runs as
// intra-group gather to the leader → inter-leader exchange among the G
// leaders (padded to uniform g-sized super-blocks) → intra-group
// scatter/broadcast.  The three stage measures are kept separate so a
// TwoLevelModel can price the intra stages and the inter stage under
// different β/τ; the critical path of each intra stage is the largest
// (= nominal-size) group.

struct HierCost {
  std::int64_t group = 1;   ///< nominal group size g (clamped to [1, n])
  std::int64_t groups = 1;  ///< G = ⌈n/g⌉
  CostMetrics up;           ///< intra gather-to-leader stage
  CostMetrics inter;        ///< inter-leader stage among the G leaders
  CostMetrics down;         ///< intra scatter/broadcast stage
  /// Bytes ⊕-combined locally at the leader while splicing member payloads
  /// into the inter-stage send buffer (reduce only; 0 else).
  std::int64_t local_combine_bytes = 0;
};

/// Hierarchical alltoall: gather (block n·b) → inter-leader index Bruck of
/// radix `inter_radix` over super-blocks of g²·b → scatter (block n·b).
[[nodiscard]] HierCost hier_index_cost(std::int64_t n, int k,
                                       std::int64_t group,
                                       std::int64_t inter_radix,
                                       std::int64_t block_bytes);

/// Hierarchical allgather: gather (block b) → inter-leader concat over
/// super-blocks of g·b (strategy resolved against that super-block size) →
/// circulant broadcast of the full n·b result.
[[nodiscard]] HierCost hier_concat_cost(std::int64_t n, int k,
                                        std::int64_t group,
                                        std::int64_t block_bytes,
                                        ConcatLastRound strategy);

/// Hierarchical reduce-scatter: gather (block n·b) → leader-local combine
/// of member contributions → inter-leader reduce Bruck over super-blocks of
/// g·b → scatter (block b).
[[nodiscard]] HierCost hier_reduce_cost(std::int64_t n, int k,
                                        std::int64_t group,
                                        std::int64_t inter_radix,
                                        std::int64_t block_bytes);

// ---------------------------------------------------------------------------
// Local pack/unpack term.  The C1/C2 measures above are pure wire measures;
// local memory movement (strided-layout gather/scatter, fusion staging) is
// priced separately because it never touches the fabric.

/// Local pack/unpack cost per byte (µs) of a gather/scatter memcpy pass
/// (≈5 GB/s, conservative).  Priced separately from the wire τ: a memcpy
/// byte is orders of magnitude cheaper than a wire byte on every profile we
/// model.  Shared by the fusion decision (model::pick_fusion) and the
/// strided-layout pack term (layout_pack_us).
inline constexpr double kPackUsPerByte = 0.0002;

/// Modeled local cost (µs) of packing/unpacking `noncontig_bytes` bytes of
/// genuinely non-contiguous layout cells on one side of a collective.
/// Charge this only for bytes whose pack/unpack cells actually walk a
/// strided layout: contiguous layouts (and the contiguous-run zero-copy
/// fast path) move no extra bytes and must cost exactly 0, or the model
/// would steer contiguous calls away from plans they execute for free.
[[nodiscard]] double layout_pack_us(std::int64_t noncontig_bytes);

}  // namespace bruck::model
