#include "model/tuner.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::model {

std::vector<std::int64_t> candidate_radices(std::int64_t n, RadixSet set,
                                            int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  const std::int64_t hi = std::max<std::int64_t>(2, n);
  std::vector<std::int64_t> out;
  switch (set) {
    case RadixSet::kAll:
      for (std::int64_t r = 2; r <= hi; ++r) out.push_back(r);
      break;
    case RadixSet::kPowersOfTwo: {
      for (std::int64_t r = 2; r <= hi; r *= 2) out.push_back(r);
      if (out.empty() || out.back() != hi) out.push_back(hi);
      break;
    }
    case RadixSet::kPortAligned: {
      // (r−1) mod k == 0 minimizes wasted port slots per subphase
      // (Section 3.4); always include r = 2 (the C1-optimal end at k = 1)
      // and r = n (the C2-optimal end).
      for (std::int64_t r = 2; r <= hi; ++r) {
        if ((r - 1) % k == 0 || r == 2 || r == hi) out.push_back(r);
      }
      break;
    }
  }
  BRUCK_ENSURE(!out.empty());
  return out;
}

std::vector<RadixChoice> index_radix_curve(std::int64_t n, int k,
                                           std::int64_t block_bytes,
                                           const LinearModel& machine,
                                           RadixSet set) {
  std::vector<RadixChoice> curve;
  for (std::int64_t r : candidate_radices(n, set, k)) {
    RadixChoice c;
    c.radix = r;
    c.metrics = index_bruck_cost(n, r, k, block_bytes);
    c.predicted_us = machine.predict_us(c.metrics);
    curve.push_back(c);
  }
  return curve;
}

RadixChoice pick_index_radix(std::int64_t n, int k, std::int64_t block_bytes,
                             const LinearModel& machine, RadixSet set) {
  const std::vector<RadixChoice> curve =
      index_radix_curve(n, k, block_bytes, machine, set);
  const auto best = std::min_element(
      curve.begin(), curve.end(), [](const RadixChoice& a, const RadixChoice& b) {
        if (a.predicted_us != b.predicted_us)
          return a.predicted_us < b.predicted_us;
        return a.radix < b.radix;
      });
  return *best;
}

namespace {

// (n, k, b, set, β bits, τ bits) → choice.  Doubles are compared by bit
// pattern: two models predicting identical times are the same key, and NaN
// never reaches here (predict_us is a polynomial of finite inputs).
using TunerKey =
    std::tuple<std::int64_t, int, std::int64_t, int, std::uint64_t,
               std::uint64_t>;

struct TunerCache {
  std::mutex mu;
  std::map<TunerKey, RadixChoice> entries;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

TunerCache& tuner_cache() {
  static TunerCache cache;
  return cache;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

RadixChoice pick_index_radix_cached(std::int64_t n, int k,
                                    std::int64_t block_bytes,
                                    const LinearModel& machine, RadixSet set) {
  const TunerKey key{n,
                     k,
                     block_bytes,
                     static_cast<int>(set),
                     double_bits(machine.beta_us),
                     double_bits(machine.tau_us_per_byte)};
  TunerCache& cache = tuner_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      ++cache.hits;
      return it->second;
    }
  }
  // Sweep outside the lock: concurrent first callers may both compute, but
  // the result is deterministic so last-writer-wins is harmless.
  const RadixChoice choice =
      pick_index_radix(n, k, block_bytes, machine, set);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    ++cache.misses;
    cache.entries.emplace(key, choice);
  }
  return choice;
}

TunerCacheStats tuner_cache_stats() {
  TunerCache& cache = tuner_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return TunerCacheStats{cache.hits, cache.misses};
}

void clear_tuner_cache() {
  TunerCache& cache = tuner_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
  cache.hits = 0;
  cache.misses = 0;
}

double pipelined_round_us(const LinearModel& machine,
                          std::int64_t message_bytes, int segments) {
  BRUCK_REQUIRE(message_bytes >= 0);
  BRUCK_REQUIRE(segments >= 1);
  const double per_segment =
      machine.beta_us + machine.tau_us_per_byte *
                            (static_cast<double>(message_bytes) / segments);
  // Three overlapped stages (pack, wire, unpack): pipeline fill of depth 3
  // plus one slot per further segment.
  return (segments + 2) * per_segment;
}

SegmentChoice pick_segment_count(const LinearModel& machine,
                                 std::int64_t rounds,
                                 std::int64_t message_bytes, int max_segments,
                                 std::int64_t min_segment_bytes) {
  BRUCK_REQUIRE(rounds >= 0);
  BRUCK_REQUIRE(max_segments >= 1);
  BRUCK_REQUIRE(min_segment_bytes >= 1);
  const int cap = static_cast<int>(std::min<std::int64_t>(
      max_segments, std::max<std::int64_t>(1, message_bytes / min_segment_bytes)));
  SegmentChoice best;
  best.segments = 1;
  best.predicted_us = rounds * pipelined_round_us(machine, message_bytes, 1);
  for (int s = 2; s <= cap; ++s) {
    const double t = rounds * pipelined_round_us(machine, message_bytes, s);
    if (t < best.predicted_us) {
      best.segments = s;
      best.predicted_us = t;
    }
  }
  return best;
}

std::int64_t crossover_block_bytes(std::int64_t n, int k, std::int64_t radix_a,
                                   std::int64_t radix_b,
                                   const LinearModel& machine,
                                   std::int64_t limit) {
  BRUCK_REQUIRE(limit >= 1);
  // Costs are linear in b, so the sign of (time_a − time_b) changes at most
  // once; find the first b where the order differs from b = 1.
  auto diff = [&](std::int64_t b) {
    const double ta = machine.predict_us(index_bruck_cost(n, radix_a, k, b));
    const double tb = machine.predict_us(index_bruck_cost(n, radix_b, k, b));
    return ta - tb;
  };
  double d1 = diff(1);
  if (d1 == 0.0) {
    // Both costs are affine in b, so equality at two points means equality
    // everywhere — no crossover.  Equality at b = 1 only means they diverge
    // immediately after.
    if (diff(2) == 0.0) return 0;
    return 1;
  }
  // Exponential search then bisection for the sign change.
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (hi <= limit && diff(hi) * d1 > 0.0) {
    lo = hi;
    hi *= 2;
  }
  if (hi > limit) return 0;  // no crossover within limit
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (diff(mid) * d1 > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace bruck::model
