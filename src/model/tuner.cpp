#include "model/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::model {

std::vector<std::int64_t> candidate_radices(std::int64_t n, RadixSet set,
                                            int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  const std::int64_t hi = std::max<std::int64_t>(2, n);
  std::vector<std::int64_t> out;
  switch (set) {
    case RadixSet::kAll:
      for (std::int64_t r = 2; r <= hi; ++r) out.push_back(r);
      break;
    case RadixSet::kPowersOfTwo: {
      for (std::int64_t r = 2; r <= hi; r *= 2) out.push_back(r);
      if (out.empty() || out.back() != hi) out.push_back(hi);
      break;
    }
    case RadixSet::kPortAligned: {
      // (r−1) mod k == 0 minimizes wasted port slots per subphase
      // (Section 3.4); always include r = 2 (the C1-optimal end at k = 1)
      // and r = n (the C2-optimal end).
      for (std::int64_t r = 2; r <= hi; ++r) {
        if ((r - 1) % k == 0 || r == 2 || r == hi) out.push_back(r);
      }
      break;
    }
  }
  BRUCK_ENSURE(!out.empty());
  return out;
}

std::vector<RadixChoice> index_radix_curve(std::int64_t n, int k,
                                           std::int64_t block_bytes,
                                           const LinearModel& machine,
                                           RadixSet set) {
  std::vector<RadixChoice> curve;
  for (std::int64_t r : candidate_radices(n, set, k)) {
    RadixChoice c;
    c.radix = r;
    c.metrics = index_bruck_cost(n, r, k, block_bytes);
    c.predicted_us = machine.predict_us(c.metrics);
    curve.push_back(c);
  }
  return curve;
}

RadixChoice pick_index_radix(std::int64_t n, int k, std::int64_t block_bytes,
                             const LinearModel& machine, RadixSet set) {
  const std::vector<RadixChoice> curve =
      index_radix_curve(n, k, block_bytes, machine, set);
  const auto best = std::min_element(
      curve.begin(), curve.end(), [](const RadixChoice& a, const RadixChoice& b) {
        if (a.predicted_us != b.predicted_us)
          return a.predicted_us < b.predicted_us;
        return a.radix < b.radix;
      });
  return *best;
}

std::uint64_t model_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

namespace {

std::uint64_t double_bits(double v) { return model_bits(v); }

/// One tuner memo family, registered so tuner_cache_stats() and
/// clear_tuner_cache() see every cache without per-family wiring (adding a
/// tuned collective family used to mean hand-extending both functions).
class MemoCacheBase {
 public:
  virtual void add_stats(TunerCacheStats& out) = 0;
  virtual void clear() = 0;

 protected:
  ~MemoCacheBase() = default;
};

std::mutex& memo_registry_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<MemoCacheBase*>& memo_registry() {
  static std::vector<MemoCacheBase*> registry;
  return registry;
}

/// Thread-safe compute-once memo: the compute runs outside the lock
/// (concurrent first callers may both compute, but results are
/// deterministic so last-writer-wins is harmless).
template <typename Key, typename Value>
class MemoCache final : public MemoCacheBase {
 public:
  MemoCache() {
    std::lock_guard<std::mutex> lock(memo_registry_mu());
    memo_registry().push_back(this);
  }

  template <typename Compute>
  Value get_or_compute(const Key& key, const Compute& compute) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        return it->second;
      }
    }
    const Value value = compute();
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    entries_.emplace(key, value);
    return value;
  }

  void add_stats(TunerCacheStats& out) override {
    std::lock_guard<std::mutex> lock(mu_);
    out.hits += hits_;
    out.misses += misses_;
  }

  void clear() override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::mutex mu_;
  std::map<Key, Value> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// (n, k, b, set, β bits, τ bits) → choice.  Doubles are compared by bit
// pattern: two models predicting identical times are the same key, and NaN
// never reaches here (predict_us is a polynomial of finite inputs).
using TunerKey =
    std::tuple<std::int64_t, int, std::int64_t, int, std::uint64_t,
               std::uint64_t>;

MemoCache<TunerKey, RadixChoice>& tuner_cache() {
  static MemoCache<TunerKey, RadixChoice> cache;
  return cache;
}

// ---------------------------------------------------------------------------
// Learned-override registry.  The hot-path guard is a relaxed atomic count:
// with no overrides installed (the common case) a pick_*_cached call pays
// one relaxed load and never touches a lock.

std::atomic<std::size_t> g_override_count{0};
std::atomic<std::uint64_t> g_override_hits{0};

std::mutex& override_mu() {
  static std::mutex mu;
  return mu;
}

std::map<TunerQuery, TunerConfig>& override_map() {
  static std::map<TunerQuery, TunerConfig> overrides;
  return overrides;
}

/// Override lookup for one decision point; counts a hit when found.
std::optional<TunerConfig> find_override(const TunerQuery& query) {
  if (g_override_count.load(std::memory_order_relaxed) == 0) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(override_mu());
  const auto it = override_map().find(query);
  if (it == override_map().end()) return std::nullopt;
  g_override_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::int64_t clamp_radix(std::int64_t radix, std::int64_t n) {
  return std::clamp<std::int64_t>(radix, 2, std::max<std::int64_t>(2, n));
}

std::mutex& hook_mu() {
  static std::mutex mu;
  return mu;
}

/// Hooks and the published (calibrated) machine live together behind one
/// mutex: none of them is hot (the facade copies the hook out once per
/// collective, not per round).
struct HookState {
  AdaptiveHook adaptive;
  ObservationHook observation;
  std::function<void()> reload;
  std::optional<LinearModel> active;
  std::optional<TwoLevelModel> active_two_level;
};

HookState& hook_state() {
  static HookState state;
  return state;
}

std::atomic<bool> g_adaptive_installed{false};
std::atomic<bool> g_observation_installed{false};

bool same_constants(const LinearModel& a, const LinearModel& b) {
  return model_bits(a.beta_us) == model_bits(b.beta_us) &&
         model_bits(a.tau_us_per_byte) == model_bits(b.tau_us_per_byte) &&
         model_bits(a.gamma_us_per_byte) == model_bits(b.gamma_us_per_byte);
}

}  // namespace

RadixChoice pick_index_radix_cached(std::int64_t n, int k,
                                    std::int64_t block_bytes,
                                    const LinearModel& machine, RadixSet set) {
  const std::optional<TunerConfig> learned = find_override(
      make_tuner_query(TunedFamily::kIndexRadix, n, k, block_bytes, machine));
  if (learned && learned->radix > 0) {
    RadixChoice c;
    c.radix = clamp_radix(learned->radix, n);
    c.metrics = index_bruck_cost(n, c.radix, k, block_bytes);
    c.predicted_us = machine.predict_us(c.metrics);
    c.segments_hint = learned->segments;
    return c;
  }
  const TunerKey key{n,
                     k,
                     block_bytes,
                     static_cast<int>(set),
                     double_bits(machine.beta_us),
                     double_bits(machine.tau_us_per_byte)};
  RadixChoice c = tuner_cache().get_or_compute(key, [&] {
    return pick_index_radix(n, k, block_bytes, machine, set);
  });
  // Segments-only override: keep the model's radix, carry the learned force.
  if (learned) c.segments_hint = learned->segments;
  return c;
}

VectorIndexChoice pick_indexv(std::int64_t n, int k, std::int64_t total_bytes,
                              std::int64_t max_pair_bytes,
                              const LinearModel& machine, RadixSet set) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(total_bytes >= 0);
  BRUCK_REQUIRE(max_pair_bytes >= 0);
  BRUCK_REQUIRE(max_pair_bytes <= total_bytes);
  VectorIndexChoice out;
  if (total_bytes == 0 || n == 1) {
    // Nothing on the wire: direct degenerates to pure round counting.
    out.direct = true;
    out.radix = std::max<std::int64_t>(2, n);
    out.predicted = index_direct_cost(n, k, 0);
    out.predicted_us = machine.predict_us(out.predicted);
    return out;
  }
  const std::int64_t mean = std::max<std::int64_t>(
      1, (total_bytes + n * n - 1) / (n * n));
  const RadixChoice bruck = pick_index_radix(n, k, mean, machine, set);
  const CostMetrics direct = index_direct_cost(n, k, max_pair_bytes);
  const double direct_us = machine.predict_us(direct);
  if (direct_us <= bruck.predicted_us) {
    out.direct = true;
    out.radix = std::max<std::int64_t>(2, n);
    out.predicted = direct;
    out.predicted_us = direct_us;
  } else {
    out.direct = false;
    out.radix = bruck.radix;
    out.predicted = bruck.metrics;
    out.predicted_us = bruck.predicted_us;
  }
  return out;
}

namespace {

// (n, k, log2 bucket of total, log2 bucket of max, set, β bits, τ bits).
using VectorTunerKey = std::tuple<std::int64_t, int, int, int, int,
                                  std::uint64_t, std::uint64_t>;

MemoCache<VectorTunerKey, VectorIndexChoice>& vector_tuner_cache() {
  static MemoCache<VectorTunerKey, VectorIndexChoice> cache;
  return cache;
}

int log2_bucket(std::int64_t v) {
  return v == 0 ? 0
               : std::bit_width(static_cast<std::uint64_t>(v));
}

/// Representative value of a bucket (its upper bound): every input in a
/// bucket computes with the same value, so the cached decision is exact for
/// the whole bucket, not just its first caller.
std::int64_t bucket_ceiling(int bucket) {
  return bucket == 0 ? 0 : (std::int64_t{1} << bucket) - 1;
}

}  // namespace

VectorIndexChoice pick_indexv_cached(std::int64_t n, int k,
                                     std::int64_t total_bytes,
                                     std::int64_t max_pair_bytes,
                                     const LinearModel& machine,
                                     RadixSet set) {
  const int total_bucket = log2_bucket(total_bytes);
  const int max_bucket = log2_bucket(max_pair_bytes);
  // Override key: the log2-bucketed total stands in for block_bytes (the
  // same granularity the memo cache keys on, so a learned entry covers the
  // whole bucket).
  if (const std::optional<TunerConfig> learned = find_override(
          make_tuner_query(TunedFamily::kIndexVector, n, k,
                           bucket_ceiling(total_bucket), machine));
      learned && (learned->direct || learned->radix > 0)) {
    VectorIndexChoice out;
    if (learned->direct) {
      out.direct = true;
      out.radix = std::max<std::int64_t>(2, n);
      out.predicted = index_direct_cost(n, k, bucket_ceiling(max_bucket));
      out.predicted_us = machine.predict_us(out.predicted);
    } else {
      out.direct = false;
      out.radix = clamp_radix(learned->radix, n);
      const std::int64_t total_rep =
          std::max(bucket_ceiling(total_bucket), bucket_ceiling(max_bucket));
      const std::int64_t mean =
          std::max<std::int64_t>(1, (total_rep + n * n - 1) / (n * n));
      out.predicted = index_bruck_cost(n, out.radix, k, mean);
      out.predicted_us = machine.predict_us(out.predicted);
    }
    return out;
  }
  const VectorTunerKey key{n,
                           k,
                           total_bucket,
                           max_bucket,
                           static_cast<int>(set),
                           double_bits(machine.beta_us),
                           double_bits(machine.tau_us_per_byte)};
  // Compute from the bucket ceilings, not the raw inputs, so every caller
  // in a bucket gets the identical (cache-key-stable) decision.
  return vector_tuner_cache().get_or_compute(key, [&] {
    const std::int64_t total_rep =
        std::max(bucket_ceiling(total_bucket), bucket_ceiling(max_bucket));
    return pick_indexv(n, k, total_rep, bucket_ceiling(max_bucket), machine,
                       set);
  });
}

RadixChoice pick_reduce_radix(std::int64_t n, int k, std::int64_t block_bytes,
                              const LinearModel& machine, RadixSet set) {
  RadixChoice best;
  bool first = true;
  for (const std::int64_t r : candidate_radices(n, set, k)) {
    RadixChoice c;
    c.radix = r;
    c.metrics = reduce_bruck_cost(n, r, k, block_bytes);
    c.predicted_us = machine.predict_reduce_us(c.metrics);
    if (first || c.predicted_us < best.predicted_us ||
        (c.predicted_us == best.predicted_us && c.radix < best.radix)) {
      best = c;
      first = false;
    }
  }
  return best;
}

ReduceScatterChoice pick_reduce_scatter(std::int64_t n, int k,
                                        std::int64_t block_bytes,
                                        const LinearModel& machine,
                                        RadixSet set) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  const RadixChoice bruck =
      pick_reduce_radix(n, k, block_bytes, machine, set);
  const CostMetrics direct = reduce_direct_cost(n, k, block_bytes);
  const double direct_us = machine.predict_reduce_us(direct);
  ReduceScatterChoice out;
  if (direct_us <= bruck.predicted_us) {
    out.direct = true;
    out.radix = std::max<std::int64_t>(2, n);
    out.predicted = direct;
    out.predicted_us = direct_us;
  } else {
    out.direct = false;
    out.radix = bruck.radix;
    out.predicted = bruck.metrics;
    out.predicted_us = bruck.predicted_us;
  }
  return out;
}

namespace {

// (n, k, b, set, β bits, τ bits, γ bits) → choice.
using ReduceTunerKey = std::tuple<std::int64_t, int, std::int64_t, int,
                                  std::uint64_t, std::uint64_t, std::uint64_t>;

MemoCache<ReduceTunerKey, ReduceScatterChoice>& reduce_tuner_cache() {
  static MemoCache<ReduceTunerKey, ReduceScatterChoice> cache;
  return cache;
}

}  // namespace

ReduceScatterChoice pick_reduce_scatter_cached(std::int64_t n, int k,
                                               std::int64_t block_bytes,
                                               const LinearModel& machine,
                                               RadixSet set) {
  const std::optional<TunerConfig> learned = find_override(make_tuner_query(
      TunedFamily::kReduceScatter, n, k, block_bytes, machine));
  if (learned && (learned->direct || learned->radix > 0)) {
    ReduceScatterChoice out;
    if (learned->direct) {
      out.direct = true;
      out.radix = std::max<std::int64_t>(2, n);
      out.predicted = reduce_direct_cost(n, k, block_bytes);
    } else {
      out.direct = false;
      out.radix = clamp_radix(learned->radix, n);
      out.predicted = reduce_bruck_cost(n, out.radix, k, block_bytes);
    }
    out.predicted_us = machine.predict_reduce_us(out.predicted);
    out.segments_hint = learned->segments;
    return out;
  }
  const ReduceTunerKey key{n,
                           k,
                           block_bytes,
                           static_cast<int>(set),
                           double_bits(machine.beta_us),
                           double_bits(machine.tau_us_per_byte),
                           double_bits(machine.gamma_us_per_byte)};
  ReduceScatterChoice out = reduce_tuner_cache().get_or_compute(key, [&] {
    return pick_reduce_scatter(n, k, block_bytes, machine, set);
  });
  if (learned) out.segments_hint = learned->segments;
  return out;
}

double predict_hier_us(const TwoLevelModel& machine, const HierCost& h) {
  return machine.intra.predict_us(h.up) + machine.inter.predict_us(h.inter) +
         machine.intra.predict_us(h.down);
}

double predict_hier_reduce_us(const TwoLevelModel& machine,
                              const HierCost& h) {
  // The up-stage gather ships raw contributions (no combining on the wire);
  // all intra combining happens in the leader's splice pass, priced at the
  // intra γ.  Only the leader exchange is a reducing wire pattern.
  return machine.intra.predict_us(h.up) +
         machine.intra.gamma_us_per_byte *
             static_cast<double>(h.local_combine_bytes) +
         machine.inter.predict_reduce_us(h.inter) +
         machine.intra.predict_us(h.down);
}

namespace {

std::vector<std::int64_t> hier_group_candidates(std::int64_t n,
                                                std::int64_t forced_group) {
  std::vector<std::int64_t> out;
  if (forced_group > 0) {
    out.push_back(std::min(forced_group, n));
    return out;
  }
  // g = 1 is flat-with-extra-steps (every rank its own leader) and g = n a
  // single group; both stay valid shapes for a forced knob but neither can
  // beat its flat/degenerate twin, so the auto sweep starts at 2.
  for (std::int64_t g = 2; g <= n; ++g) out.push_back(g);
  return out;
}

/// Sweep (g, inter radix) and keep the strict minimizer.  `cost` maps
/// (g, r) → HierCost, `predict` prices it; ascending loop order plus strict
/// < breaks ties toward the smaller group, then the smaller radix.
template <typename CostFn, typename PredictFn>
void sweep_hier(std::int64_t n, int k, RadixSet set, std::int64_t forced_group,
                bool radixed, const CostFn& cost, const PredictFn& predict,
                HierChoice& out) {
  bool first = true;
  for (const std::int64_t g : hier_group_candidates(n, forced_group)) {
    const std::int64_t groups =
        ceil_div(n, std::min<std::int64_t>(std::max<std::int64_t>(g, 1), n));
    const std::vector<std::int64_t> radices =
        radixed && groups > 1 ? candidate_radices(groups, set, k)
                              : std::vector<std::int64_t>{2};
    for (const std::int64_t r : radices) {
      const HierCost h = cost(g, r);
      const double t = predict(h);
      if (first || t < out.hier_us) {
        out.group = g;
        out.inter_radix = r;
        out.hier_cost = h;
        out.hier_us = t;
        first = false;
      }
    }
  }
  out.hier = !first && out.hier_us < out.flat_us;
}

// (collective, n, k, b, set-or-strategy, forced_group, intra β/τ/γ bits,
// inter β/τ/γ bits) → choice.  One cache serves all three hierarchical
// families; the leading discriminator keeps their keys disjoint.
using HierTunerKey =
    std::tuple<int, std::int64_t, int, std::int64_t, int, std::int64_t,
               std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
               std::uint64_t, std::uint64_t>;

MemoCache<HierTunerKey, HierChoice>& hier_tuner_cache() {
  static MemoCache<HierTunerKey, HierChoice> cache;
  return cache;
}

HierTunerKey hier_key(int collective, std::int64_t n, int k,
                      std::int64_t block_bytes, int discriminant,
                      std::int64_t forced_group, const TwoLevelModel& m) {
  return {collective,
          n,
          k,
          block_bytes,
          discriminant,
          forced_group,
          double_bits(m.intra.beta_us),
          double_bits(m.intra.tau_us_per_byte),
          double_bits(m.intra.gamma_us_per_byte),
          double_bits(m.inter.beta_us),
          double_bits(m.inter.tau_us_per_byte),
          double_bits(m.inter.gamma_us_per_byte)};
}

}  // namespace

HierChoice pick_index_plan(std::int64_t n, int k, std::int64_t block_bytes,
                           const TwoLevelModel& machine, RadixSet set,
                           std::int64_t forced_group) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  HierChoice out;
  const RadixChoice flat =
      pick_index_radix(n, k, block_bytes, machine.inter, set);
  out.flat_radix = flat.radix;
  out.flat_us = flat.predicted_us;
  out.hier_us = flat.predicted_us;
  if (n == 1) return out;
  sweep_hier(
      n, k, set, forced_group, /*radixed=*/true,
      [&](std::int64_t g, std::int64_t r) {
        return hier_index_cost(n, k, g, r, block_bytes);
      },
      [&](const HierCost& h) { return predict_hier_us(machine, h); }, out);
  return out;
}

HierChoice pick_index_plan_cached(std::int64_t n, int k,
                                  std::int64_t block_bytes,
                                  const TwoLevelModel& machine, RadixSet set,
                                  std::int64_t forced_group) {
  // Overrides for the hierarchical families key on the *inter* model (the
  // level that dominates the flat-vs-hier comparison).  A learned shape
  // re-sweeps with the learned group forced, then pins hier/radix; the cost
  // fields stay informational (the sweep's, not the pinned radix's).
  if (const std::optional<TunerConfig> learned = find_override(
          make_tuner_query(TunedFamily::kHierIndex, n, k, block_bytes,
                           machine.inter))) {
    HierChoice out = pick_index_plan(
        n, k, block_bytes, machine, set,
        learned->group > 0 ? learned->group : forced_group);
    if (learned->hier >= 0) out.hier = learned->hier == 1 && n > 1;
    if (learned->radix > 0) {
      (out.hier ? out.inter_radix : out.flat_radix) = learned->radix;
    }
    return out;
  }
  const HierTunerKey key = hier_key(0, n, k, block_bytes,
                                    static_cast<int>(set), forced_group,
                                    machine);
  return hier_tuner_cache().get_or_compute(key, [&] {
    return pick_index_plan(n, k, block_bytes, machine, set, forced_group);
  });
}

HierChoice pick_concat_plan(std::int64_t n, int k, std::int64_t block_bytes,
                            const TwoLevelModel& machine,
                            ConcatLastRound strategy,
                            std::int64_t forced_group) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  HierChoice out;
  const CostMetrics flat = concat_bruck_cost(
      n, k, block_bytes,
      resolve_concat_last_round(n, k, block_bytes, strategy));
  out.flat_us = machine.inter.predict_us(flat);
  out.hier_us = out.flat_us;
  if (n == 1) return out;
  sweep_hier(
      n, k, RadixSet::kAll, forced_group, /*radixed=*/false,
      [&](std::int64_t g, std::int64_t) {
        return hier_concat_cost(n, k, g, block_bytes, strategy);
      },
      [&](const HierCost& h) { return predict_hier_us(machine, h); }, out);
  return out;
}

HierChoice pick_concat_plan_cached(std::int64_t n, int k,
                                   std::int64_t block_bytes,
                                   const TwoLevelModel& machine,
                                   ConcatLastRound strategy,
                                   std::int64_t forced_group) {
  if (const std::optional<TunerConfig> learned = find_override(
          make_tuner_query(TunedFamily::kHierConcat, n, k, block_bytes,
                           machine.inter))) {
    HierChoice out = pick_concat_plan(
        n, k, block_bytes, machine, strategy,
        learned->group > 0 ? learned->group : forced_group);
    if (learned->hier >= 0) out.hier = learned->hier == 1 && n > 1;
    return out;
  }
  const HierTunerKey key = hier_key(1, n, k, block_bytes,
                                    static_cast<int>(strategy), forced_group,
                                    machine);
  return hier_tuner_cache().get_or_compute(key, [&] {
    return pick_concat_plan(n, k, block_bytes, machine, strategy,
                            forced_group);
  });
}

HierChoice pick_reduce_plan(std::int64_t n, int k, std::int64_t block_bytes,
                            const TwoLevelModel& machine, RadixSet set,
                            std::int64_t forced_group) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  HierChoice out;
  const RadixChoice flat =
      pick_reduce_radix(n, k, block_bytes, machine.inter, set);
  out.flat_radix = flat.radix;
  out.flat_us = flat.predicted_us;
  out.hier_us = flat.predicted_us;
  if (n == 1) return out;
  sweep_hier(
      n, k, set, forced_group, /*radixed=*/true,
      [&](std::int64_t g, std::int64_t r) {
        return hier_reduce_cost(n, k, g, r, block_bytes);
      },
      [&](const HierCost& h) { return predict_hier_reduce_us(machine, h); },
      out);
  return out;
}

HierChoice pick_reduce_plan_cached(std::int64_t n, int k,
                                   std::int64_t block_bytes,
                                   const TwoLevelModel& machine, RadixSet set,
                                   std::int64_t forced_group) {
  if (const std::optional<TunerConfig> learned = find_override(
          make_tuner_query(TunedFamily::kHierReduce, n, k, block_bytes,
                           machine.inter))) {
    HierChoice out = pick_reduce_plan(
        n, k, block_bytes, machine, set,
        learned->group > 0 ? learned->group : forced_group);
    if (learned->hier >= 0) out.hier = learned->hier == 1 && n > 1;
    if (learned->radix > 0) {
      (out.hier ? out.inter_radix : out.flat_radix) = learned->radix;
    }
    return out;
  }
  const HierTunerKey key = hier_key(2, n, k, block_bytes,
                                    static_cast<int>(set), forced_group,
                                    machine);
  return hier_tuner_cache().get_or_compute(key, [&] {
    return pick_reduce_plan(n, k, block_bytes, machine, set, forced_group);
  });
}

TunerCacheStats tuner_cache_stats() {
  TunerCacheStats out;
  {
    std::lock_guard<std::mutex> lock(memo_registry_mu());
    for (MemoCacheBase* cache : memo_registry()) {
      cache->add_stats(out);
    }
  }
  out.overrides = g_override_count.load(std::memory_order_relaxed);
  out.override_hits = g_override_hits.load(std::memory_order_relaxed);
  return out;
}

void clear_tuner_cache() {
  {
    std::lock_guard<std::mutex> lock(memo_registry_mu());
    for (MemoCacheBase* cache : memo_registry()) {
      cache->clear();
    }
  }
  clear_tuner_overrides();
  g_override_hits.store(0, std::memory_order_relaxed);
  // Reload outside every registry lock: a file-backed tune table reinstalls
  // its overrides here (set_tuner_override takes the override lock itself),
  // which is what makes file-backed learned picks survive a clear while
  // purely in-memory ones do not.
  std::function<void()> reload;
  {
    std::lock_guard<std::mutex> lock(hook_mu());
    reload = hook_state().reload;
  }
  if (reload) reload();
}

const char* to_string(TunedFamily family) {
  switch (family) {
    case TunedFamily::kIndexRadix:
      return "index";
    case TunedFamily::kIndexVector:
      return "indexv";
    case TunedFamily::kReduceScatter:
      return "reduce_scatter";
    case TunedFamily::kHierIndex:
      return "hier_index";
    case TunedFamily::kHierConcat:
      return "hier_concat";
    case TunedFamily::kHierReduce:
      return "hier_reduce";
  }
  return "?";
}

std::optional<TunedFamily> parse_tuned_family(const char* text) {
  if (text == nullptr) return std::nullopt;
  for (const TunedFamily f :
       {TunedFamily::kIndexRadix, TunedFamily::kIndexVector,
        TunedFamily::kReduceScatter, TunedFamily::kHierIndex,
        TunedFamily::kHierConcat, TunedFamily::kHierReduce}) {
    if (std::strcmp(text, to_string(f)) == 0) return f;
  }
  return std::nullopt;
}

TunerQuery make_tuner_query(TunedFamily family, std::int64_t n, int k,
                            std::int64_t block_bytes,
                            const LinearModel& machine) {
  TunerQuery q;
  q.family = family;
  q.n = n;
  q.k = k;
  q.block_bytes = block_bytes;
  q.beta_bits = model_bits(machine.beta_us);
  q.tau_bits = model_bits(machine.tau_us_per_byte);
  q.gamma_bits = model_bits(machine.gamma_us_per_byte);
  return q;
}

void set_tuner_override(const TunerQuery& query, const TunerConfig& config) {
  std::lock_guard<std::mutex> lock(override_mu());
  override_map()[query] = config;
  g_override_count.store(override_map().size(), std::memory_order_relaxed);
}

std::optional<TunerConfig> tuner_override(const TunerQuery& query) {
  if (g_override_count.load(std::memory_order_relaxed) == 0) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(override_mu());
  const auto it = override_map().find(query);
  if (it == override_map().end()) return std::nullopt;
  return it->second;
}

std::size_t tuner_override_count() {
  return g_override_count.load(std::memory_order_relaxed);
}

std::vector<std::pair<TunerQuery, TunerConfig>> tuner_overrides() {
  std::lock_guard<std::mutex> lock(override_mu());
  return {override_map().begin(), override_map().end()};
}

void clear_tuner_overrides() {
  std::lock_guard<std::mutex> lock(override_mu());
  override_map().clear();
  g_override_count.store(0, std::memory_order_relaxed);
}

void set_adaptive_hook(AdaptiveHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu());
  hook_state().adaptive = std::move(hook);
  g_adaptive_installed.store(static_cast<bool>(hook_state().adaptive),
                             std::memory_order_relaxed);
}

bool adaptive_hook_installed() {
  return g_adaptive_installed.load(std::memory_order_relaxed);
}

TunerConfig adaptive_decision(const TunerQuery& query,
                              const TunerConfig& model_choice) {
  if (!adaptive_hook_installed()) return model_choice;
  AdaptiveHook hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu());
    hook = hook_state().adaptive;
  }
  if (!hook) return model_choice;
  const std::optional<TunerConfig> rerouted = hook(query, model_choice);
  return rerouted ? *rerouted : model_choice;
}

void set_observation_hook(ObservationHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu());
  hook_state().observation = std::move(hook);
  g_observation_installed.store(static_cast<bool>(hook_state().observation),
                                std::memory_order_relaxed);
}

bool observation_hook_installed() {
  return g_observation_installed.load(std::memory_order_relaxed);
}

void notify_execution(const ExecutionSample& sample) {
  if (!observation_hook_installed()) return;
  ObservationHook hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu());
    hook = hook_state().observation;
  }
  if (hook) hook(sample);
}

void set_tuner_reload_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu());
  hook_state().reload = std::move(hook);
}

void set_active_machine(const std::optional<LinearModel>& machine) {
  std::lock_guard<std::mutex> lock(hook_mu());
  hook_state().active = machine;
}

std::optional<LinearModel> active_machine() {
  std::lock_guard<std::mutex> lock(hook_mu());
  return hook_state().active;
}

LinearModel effective_machine(const LinearModel& requested) {
  if (!same_constants(requested, ibm_sp1())) return requested;
  std::lock_guard<std::mutex> lock(hook_mu());
  return hook_state().active ? *hook_state().active : requested;
}

void set_active_two_level(const std::optional<TwoLevelModel>& machine) {
  std::lock_guard<std::mutex> lock(hook_mu());
  hook_state().active_two_level = machine;
}

std::optional<TwoLevelModel> active_two_level() {
  std::lock_guard<std::mutex> lock(hook_mu());
  return hook_state().active_two_level;
}

TwoLevelModel effective_two_level(const TwoLevelModel& requested) {
  const TwoLevelModel sentinel = uniform_two_level(ibm_sp1());
  if (!same_constants(requested.intra, sentinel.intra) ||
      !same_constants(requested.inter, sentinel.inter)) {
    return requested;
  }
  std::lock_guard<std::mutex> lock(hook_mu());
  if (hook_state().active_two_level) return *hook_state().active_two_level;
  // A calibrated flat model with no measured hierarchy: apply it uniformly
  // (the same default shape uniform_two_level gives the compiled-in model).
  if (hook_state().active) return uniform_two_level(*hook_state().active);
  return requested;
}

double pipelined_round_us(const LinearModel& machine,
                          std::int64_t message_bytes, int segments) {
  BRUCK_REQUIRE(message_bytes >= 0);
  BRUCK_REQUIRE(segments >= 1);
  const double per_segment =
      machine.beta_us + machine.tau_us_per_byte *
                            (static_cast<double>(message_bytes) / segments);
  // Three overlapped stages (pack, wire, unpack): pipeline fill of depth 3
  // plus one slot per further segment.
  return (segments + 2) * per_segment;
}

SegmentChoice pick_segment_count(const LinearModel& machine,
                                 std::int64_t rounds,
                                 std::int64_t message_bytes, int max_segments,
                                 std::int64_t min_segment_bytes) {
  BRUCK_REQUIRE(rounds >= 0);
  BRUCK_REQUIRE(max_segments >= 1);
  BRUCK_REQUIRE(min_segment_bytes >= 1);
  const int cap = static_cast<int>(std::min<std::int64_t>(
      max_segments, std::max<std::int64_t>(1, message_bytes / min_segment_bytes)));
  SegmentChoice best;
  best.segments = 1;
  best.predicted_us = rounds * pipelined_round_us(machine, message_bytes, 1);
  for (int s = 2; s <= cap; ++s) {
    const double t = rounds * pipelined_round_us(machine, message_bytes, s);
    if (t < best.predicted_us) {
      best.segments = s;
      best.predicted_us = t;
    }
  }
  return best;
}

int resolve_segment_knob(int requested, bool pipelined,
                         const LinearModel& machine,
                         const CostMetrics& predicted) {
  if (!pipelined) return 1;
  if (requested != 0) {
    BRUCK_REQUIRE_MSG(requested >= 1, "segment count must be >= 1");
  }
  if (predicted.c1 <= 0) return 1;
  const std::int64_t per_round =
      (predicted.c2 + predicted.c1 - 1) / predicted.c1;
  const std::int64_t floor_cap =
      std::max<std::int64_t>(1, per_round / kMinSegmentBytes);
  if (requested != 0) {
    return static_cast<int>(std::min<std::int64_t>(requested, floor_cap));
  }
  return pick_segment_count(machine, predicted.c1, per_round).segments;
}

FusionChoice pick_fusion(int group, const LinearModel& machine,
                         const CostMetrics& per_op, const CostMetrics& fused,
                         std::int64_t user_bytes) {
  BRUCK_REQUIRE(group >= 1);
  BRUCK_REQUIRE(user_bytes >= 0);
  FusionChoice out;
  out.serial_us = group * machine.predict_us(per_op);
  // Each member's user buffer crosses the fused staging area twice: once
  // gathered in before the exchange, once scattered out after.
  out.fused_us = machine.predict_us(fused) +
                 kPackUsPerByte * 2.0 * group *
                     static_cast<double>(user_bytes);
  out.fuse = group > 1 && out.fused_us < out.serial_us;
  return out;
}

std::int64_t crossover_block_bytes(std::int64_t n, int k, std::int64_t radix_a,
                                   std::int64_t radix_b,
                                   const LinearModel& machine,
                                   std::int64_t limit) {
  BRUCK_REQUIRE(limit >= 1);
  // Costs are linear in b, so the sign of (time_a − time_b) changes at most
  // once; find the first b where the order differs from b = 1.
  auto diff = [&](std::int64_t b) {
    const double ta = machine.predict_us(index_bruck_cost(n, radix_a, k, b));
    const double tb = machine.predict_us(index_bruck_cost(n, radix_b, k, b));
    return ta - tb;
  };
  double d1 = diff(1);
  if (d1 == 0.0) {
    // Both costs are affine in b, so equality at two points means equality
    // everywhere — no crossover.  Equality at b = 1 only means they diverge
    // immediately after.
    if (diff(2) == 0.0) return 0;
    return 1;
  }
  // Exponential search then bisection for the sign change.
  std::int64_t lo = 1;
  std::int64_t hi = 2;
  while (hi <= limit && diff(hi) * d1 > 0.0) {
    lo = hi;
    hi *= 2;
  }
  if (hi > limit) return 0;  // no crossover within limit
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (diff(mid) * d1 > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace bruck::model
