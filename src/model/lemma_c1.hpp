// Appendix C, Lemma C.1 — the combinatorial engine behind Theorem 2.9:
// for 2 ≤ c ≤ m, if Σ_{j=0}^{h} C(c·m, j) ≥ 2^m then
// h ≥ min(m/64, m/(8·log2 c)).
//
// The lemma is proved symbolically in the paper; this module evaluates both
// sides numerically so the bench/test suite can exercise it over concrete
// ranges (and so Theorem 2.9's "h must be Ω(log n)" step is demonstrable
// with numbers).
#pragma once

#include <cstdint>

namespace bruck::model {

/// The smallest h ≥ 0 with Σ_{j=0}^{h} C(c·m, j) ≥ 2^m.
/// Requires 2 ≤ c ≤ m and c·m small enough for long-double binomials
/// (c·m ≤ 10000 is ample for every use here).
[[nodiscard]] std::int64_t lemma_c1_minimal_h(std::int64_t m, std::int64_t c);

/// The lemma's lower bound min(m/64, m/(8·log2 c)).
[[nodiscard]] double lemma_c1_bound(std::int64_t m, std::int64_t c);

}  // namespace bruck::model
