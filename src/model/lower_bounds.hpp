// Lower bounds from Section 2 of the paper.  All bounds are returned in the
// integral units used by CostMetrics (rounds, bytes); real-valued bounds are
// rounded up, which is valid since the measures are integral.
#pragma once

#include <cstdint>

namespace bruck::model {

/// Proposition 2.1: any concatenation needs ≥ ⌈log_{k+1} n⌉ rounds.
[[nodiscard]] std::int64_t concat_c1_lower_bound(std::int64_t n, int k);

/// Proposition 2.2: any concatenation transfers ≥ b(n−1)/k units.
[[nodiscard]] std::int64_t concat_c2_lower_bound(std::int64_t n, int k,
                                                 std::int64_t block_bytes);

/// Proposition 2.3: any index needs ≥ ⌈log_{k+1} n⌉ rounds.
[[nodiscard]] std::int64_t index_c1_lower_bound(std::int64_t n, int k);

/// Proposition 2.4: any index transfers ≥ b(n−1)/k units.
[[nodiscard]] std::int64_t index_c2_lower_bound(std::int64_t n, int k,
                                                std::int64_t block_bytes);

/// Theorem 2.5: when n = (k+1)^d and C1 = log_{k+1} n exactly, any index
/// algorithm transfers at least (b·n / (k+1)) · log_{k+1} n units.
/// Requires n to be an exact power of k+1.
[[nodiscard]] std::int64_t index_c2_bound_at_min_rounds(std::int64_t n, int k,
                                                        std::int64_t block_bytes);

/// Theorem 2.6: any index algorithm with C2 = b(n−1)/k exactly needs
/// ≥ ⌈(n−1)/k⌉ rounds.
[[nodiscard]] std::int64_t index_c1_bound_at_min_volume(std::int64_t n, int k);

/// Theorem 2.7's Ω-form evaluated with constant 1: n·b·log_{k+1}(n)/(k+1).
/// For benches that plot the compound trade-off for general n.
[[nodiscard]] double index_c2_compound_order(std::int64_t n, int k,
                                             std::int64_t block_bytes);

/// Theorem 2.9's Ω-form for the one-port model with C1 = O(log n):
/// b·n·log2(n) (constant 1).
[[nodiscard]] double index_c2_logn_rounds_order(std::int64_t n,
                                                std::int64_t block_bytes);

}  // namespace bruck::model
