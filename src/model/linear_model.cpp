#include "model/linear_model.hpp"

#include "util/assert.hpp"

namespace bruck::model {

double LinearModel::predict_us(const CostMetrics& m) const {
  BRUCK_REQUIRE(m.c1 >= 0 && m.c2 >= 0);
  return static_cast<double>(m.c1) * beta_us +
         static_cast<double>(m.c2) * tau_us_per_byte;
}

double LinearModel::predict_reduce_us(const CostMetrics& m) const {
  // Combines run serially on the receiving rank even when k ports receive
  // in parallel: charge γ on the heaviest rank's total received bytes.
  return predict_us(m) +
         static_cast<double>(m.max_rank_recv) * gamma_us_per_byte;
}

double LinearModel::message_us(std::int64_t bytes) const {
  BRUCK_REQUIRE(bytes >= 0);
  return beta_us + static_cast<double>(bytes) * tau_us_per_byte;
}

// γ: memory-bandwidth-bound elementwise combine, far cheaper per byte than
// the wire on every profile (the SP-1 figure is a ~100 MB/s streaming add).
LinearModel ibm_sp1() { return {"IBM SP-1 (EUIH)", 29.0, 0.12, 0.01}; }

LinearModel startup_dominated() {
  return {"startup-dominated", 100.0, 0.01, 0.002};
}

LinearModel bandwidth_dominated() {
  return {"bandwidth-dominated", 0.5, 0.25, 0.02};
}

TwoLevelModel uniform_two_level(const LinearModel& m) { return {m, m}; }

TwoLevelModel shm_socket_two_level() {
  // Intra: shm-ring-like — negligible startup, memory-speed bytes.
  // Inter: TCP-like — heavy per-message syscall/startup cost.
  return {{"shm-like", 0.3, 0.002, 0.01}, {"socket-like", 80.0, 0.05, 0.01}};
}

}  // namespace bruck::model
