// The paper's two complexity measures plus auxiliary load measures.
//
// C1: number of communication rounds (start-up count).
// C2: Σ over rounds i of m_i, where m_i is the largest message (in bytes)
//     sent over any port of any processor in round i.
//
// The estimated time under the linear model is T = C1·β + C2·τ (Section 1.2).
// total_bytes and the per-rank aggregates are not used by the paper's
// analysis but are reported by the benches as network-load sanity checks.
#pragma once

#include <cstdint>

namespace bruck::model {

struct CostMetrics {
  std::int64_t c1 = 0;             ///< communication rounds
  std::int64_t c2 = 0;             ///< Σ_rounds max message size (bytes)
  std::int64_t total_bytes = 0;    ///< Σ over all messages of their size
  std::int64_t max_rank_sent = 0;  ///< max over ranks of total bytes sent
  std::int64_t max_rank_recv = 0;  ///< max over ranks of total bytes received

  friend bool operator==(const CostMetrics&, const CostMetrics&) = default;
};

}  // namespace bruck::model
