// The refined model of Section 3.5:  T = g1·C1·ts + g2·C2·tc + g3,
// where g1 absorbs the slowdown of system routines on start-ups, g2 absorbs
// congestion on transfers, and g3 is a fixed offset.  The paper introduces
// it to explain the quantitative gap between the linear model and SP-1
// measurements; we provide a least-squares fitter so the wall-clock bench
// can calibrate (g1, g2, g3) against the threaded runtime.
#pragma once

#include <span>

#include "model/linear_model.hpp"
#include "model/metrics.hpp"

namespace bruck::model {

struct ExtendedModel {
  LinearModel base;  ///< supplies ts (= beta_us) and tc (= tau_us_per_byte)
  double g1 = 1.0;
  double g2 = 1.0;
  double g3 = 0.0;

  [[nodiscard]] double predict_us(const CostMetrics& m) const;
};

/// One calibration observation: measured time for an algorithm whose
/// analytic measures are (c1, c2).
struct Observation {
  CostMetrics metrics;
  double measured_us = 0.0;
};

/// Least-squares fit of (g1, g2, g3) minimizing Σ (predict − measured)².
/// Requires at least 3 observations whose (C1·ts, C2·tc, 1) design matrix
/// has full rank; throws ContractViolation otherwise.
[[nodiscard]] ExtendedModel fit_extended_model(const LinearModel& base,
                                               std::span<const Observation> obs);

/// Coefficient of determination (R²) of a fitted model on observations.
[[nodiscard]] double r_squared(const ExtendedModel& model,
                               std::span<const Observation> obs);

}  // namespace bruck::model
