// The linear communication-cost model of Section 1.2: sending an m-byte
// message costs β + m·τ, so an algorithm with measures (C1, C2) costs
// T = C1·β + C2·τ.  Reduction collectives add a γ compute term: every
// received byte is also combined into an accumulator, serially on the
// receiving rank's thread, so a reducing algorithm costs
// T = C1·β + C2·τ + γ·max_rank_recv — the combine volume on the critical
// path is the heaviest rank's *total* received bytes, not the port-summed
// C2 (k ports receive in parallel but combine on one core).
#pragma once

#include <string>

#include "model/metrics.hpp"

namespace bruck::model {

struct LinearModel {
  std::string name;
  double beta_us = 0.0;           ///< per-message start-up time (µs)
  double tau_us_per_byte = 0.0;   ///< per-byte transfer time (µs/byte)
  double gamma_us_per_byte = 0.0; ///< per-byte combine (reduction) time (µs/byte)

  /// Predicted time (µs) of an algorithm with the given measures.
  [[nodiscard]] double predict_us(const CostMetrics& m) const;

  /// Predicted time (µs) of a *reducing* algorithm with the given measures:
  /// predict_us plus the γ combine term over the heaviest rank's received
  /// (= serially combined) bytes, max_rank_recv.
  [[nodiscard]] double predict_reduce_us(const CostMetrics& m) const;

  /// Predicted time (µs) of a single m-byte point-to-point message.
  [[nodiscard]] double message_us(std::int64_t bytes) const;
};

/// The 64-node IBM SP-1 of Section 3.5: β ≈ 29 µs start-up and ≈8.5 MB/s
/// sustained point-to-point bandwidth, i.e. τ ≈ 0.12 µs/byte.
[[nodiscard]] LinearModel ibm_sp1();

/// A start-up-dominated profile (commodity Ethernet-like): high β relative
/// to τ.  Used by tuner benches to show the radix moving toward 2.
[[nodiscard]] LinearModel startup_dominated();

/// A bandwidth-dominated profile (shared-memory-like): negligible β.  Used
/// by tuner benches to show the radix moving toward n.
[[nodiscard]] LinearModel bandwidth_dominated();

/// The two-level machine of the hierarchical (leader-model) collectives:
/// messages within a group (shm-like) and messages between group leaders
/// (socket-like) are priced under separate linear models.  The flat
/// algorithms send across group boundaries, so a flat plan on a two-level
/// machine is priced under `inter` — the conservative leader-model reading
/// that makes the flat-vs-hierarchical comparison meaningful.
struct TwoLevelModel {
  LinearModel intra;
  LinearModel inter;
};

/// A degenerate two-level machine with the same model at both levels; on it
/// the hierarchy can only add volume, so the tuner must pick flat.
[[nodiscard]] TwoLevelModel uniform_two_level(const LinearModel& m);

/// A skewed profile shaped like the PR 8 fabrics: cheap bandwidth-dominated
/// intra-group links (shm rings), expensive startup-dominated inter-leader
/// links (TCP).  The regime where the hierarchy wins.
[[nodiscard]] TwoLevelModel shm_socket_two_level();

}  // namespace bruck::model
