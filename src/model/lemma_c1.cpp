#include "model/lemma_c1.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bruck::model {

std::int64_t lemma_c1_minimal_h(std::int64_t m, std::int64_t c) {
  BRUCK_REQUIRE(c >= 2);
  BRUCK_REQUIRE(m >= c);
  BRUCK_REQUIRE_MSG(c * m <= 10000, "binomial range too large for long double");
  const std::int64_t cm = c * m;
  // target = 2^m; long double holds up to ~2^16384, and our partial sums are
  // bounded by 2^{cm} ≤ 2^10000.
  const long double target =
      std::exp2(static_cast<long double>(m));  // 2^m, exact for m < 16384
  long double sum = 1.0L;       // C(cm, 0)
  long double binom = 1.0L;     // C(cm, j), updated incrementally
  std::int64_t h = 0;
  while (sum < target) {
    BRUCK_ENSURE_MSG(h < cm, "sum of all binomials is 2^{cm} >= 2^m");
    binom *= static_cast<long double>(cm - h);
    binom /= static_cast<long double>(h + 1);
    sum += binom;
    ++h;
  }
  return h;
}

double lemma_c1_bound(std::int64_t m, std::int64_t c) {
  BRUCK_REQUIRE(c >= 2);
  BRUCK_REQUIRE(m >= c);
  const double by64 = static_cast<double>(m) / 64.0;
  const double bylog =
      static_cast<double>(m) / (8.0 * std::log2(static_cast<double>(c)));
  return by64 < bylog ? by64 : bylog;
}

}  // namespace bruck::model
