#include "model/lower_bounds.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace bruck::model {

std::int64_t concat_c1_lower_bound(std::int64_t n, int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  return ceil_log(n, k + 1);
}

std::int64_t concat_c2_lower_bound(std::int64_t n, int k,
                                   std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  return ceil_div(block_bytes * (n - 1), k);
}

std::int64_t index_c1_lower_bound(std::int64_t n, int k) {
  // Proposition 2.3 reduces concatenation to index.
  return concat_c1_lower_bound(n, k);
}

std::int64_t index_c2_lower_bound(std::int64_t n, int k,
                                  std::int64_t block_bytes) {
  // Proposition 2.4, by the same reduction.
  return concat_c2_lower_bound(n, k, block_bytes);
}

std::int64_t index_c2_bound_at_min_rounds(std::int64_t n, int k,
                                          std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  const int d = ceil_log(n, k + 1);
  BRUCK_REQUIRE_MSG(ipow(k + 1, d) == n,
                    "Theorem 2.5 requires n to be an exact power of k+1");
  // C2 ≥ b·n·d / (k+1).
  return ceil_div(block_bytes * n * d, k + 1);
}

std::int64_t index_c1_bound_at_min_volume(std::int64_t n, int k) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  return ceil_div(n - 1, k);
}

double index_c2_compound_order(std::int64_t n, int k,
                               std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(k >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  if (n == 1) return 0.0;
  const double logk1 =
      std::log(static_cast<double>(n)) / std::log(static_cast<double>(k + 1));
  return static_cast<double>(block_bytes) * static_cast<double>(n) * logk1 /
         static_cast<double>(k + 1);
}

double index_c2_logn_rounds_order(std::int64_t n, std::int64_t block_bytes) {
  BRUCK_REQUIRE(n >= 1);
  BRUCK_REQUIRE(block_bytes >= 0);
  if (n == 1) return 0.0;
  return static_cast<double>(block_bytes) * static_cast<double>(n) *
         std::log2(static_cast<double>(n));
}

}  // namespace bruck::model
