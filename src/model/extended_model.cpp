#include "model/extended_model.hpp"

#include <array>
#include <cmath>

#include "util/assert.hpp"

namespace bruck::model {

double ExtendedModel::predict_us(const CostMetrics& m) const {
  return g1 * static_cast<double>(m.c1) * base.beta_us +
         g2 * static_cast<double>(m.c2) * base.tau_us_per_byte + g3;
}

namespace {

/// Solve the 3×3 linear system A·x = b by Gaussian elimination with partial
/// pivoting.  Throws if A is (numerically) singular.
std::array<double, 3> solve3(std::array<std::array<double, 3>, 3> a,
                             std::array<double, 3> b) {
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::abs(a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]) >
          std::abs(a[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(col)])) {
        pivot = row;
      }
    }
    std::swap(a[static_cast<std::size_t>(col)], a[static_cast<std::size_t>(pivot)]);
    std::swap(b[static_cast<std::size_t>(col)], b[static_cast<std::size_t>(pivot)]);
    const double diag = a[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    BRUCK_REQUIRE_MSG(std::abs(diag) > 1e-12,
                      "singular design matrix: observations do not span "
                      "(C1, C2, 1); vary the workload");
    for (int row = col + 1; row < 3; ++row) {
      const double f =
          a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] / diag;
      for (int j = col; j < 3; ++j) {
        a[static_cast<std::size_t>(row)][static_cast<std::size_t>(j)] -=
            f * a[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)];
      }
      b[static_cast<std::size_t>(row)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  std::array<double, 3> x{};
  for (int row = 2; row >= 0; --row) {
    double acc = b[static_cast<std::size_t>(row)];
    for (int j = row + 1; j < 3; ++j) {
      acc -= a[static_cast<std::size_t>(row)][static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(row)] =
        acc / a[static_cast<std::size_t>(row)][static_cast<std::size_t>(row)];
  }
  return x;
}

}  // namespace

ExtendedModel fit_extended_model(const LinearModel& base,
                                 std::span<const Observation> obs) {
  BRUCK_REQUIRE_MSG(obs.size() >= 3, "need at least 3 observations");
  // Design columns: u = C1·ts, v = C2·tc, constant 1.  Normal equations
  // (XᵀX)·g = Xᵀy; the 3×3 system is solved exactly.
  std::array<std::array<double, 3>, 3> xtx{};
  std::array<double, 3> xty{};
  for (const Observation& o : obs) {
    const double u = static_cast<double>(o.metrics.c1) * base.beta_us;
    const double v =
        static_cast<double>(o.metrics.c2) * base.tau_us_per_byte;
    const std::array<double, 3> row{u, v, 1.0};
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) xtx[i][j] += row[i] * row[j];
      xty[i] += row[i] * o.measured_us;
    }
  }
  const std::array<double, 3> g = solve3(xtx, xty);
  return ExtendedModel{base, g[0], g[1], g[2]};
}

double r_squared(const ExtendedModel& model, std::span<const Observation> obs) {
  BRUCK_REQUIRE(!obs.empty());
  double mean = 0.0;
  for (const Observation& o : obs) mean += o.measured_us;
  mean /= static_cast<double>(obs.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (const Observation& o : obs) {
    const double e = o.measured_us - model.predict_us(o.metrics);
    ss_res += e * e;
    ss_tot += (o.measured_us - mean) * (o.measured_us - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace bruck::model
