// Radix and algorithm selection (Section 3.3: "r can be fine-tuned according
// to the parameters of the underlying machine to balance between the
// start-up time and the data transfer time").
//
// The tuner evaluates the exact cost formulas under a LinearModel and picks
// the minimizer.  Evaluating all candidate radices costs O(n·log n) digit
// censuses in the worst case — microseconds for n up to thousands — so the
// tuner simply enumerates rather than relying on a closed-form crossover.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "model/costs.hpp"
#include "model/linear_model.hpp"

namespace bruck::model {

struct RadixChoice {
  std::int64_t radix = 2;
  CostMetrics metrics;
  double predicted_us = 0.0;
  /// Learned wire-segment force carried by an adaptive override (0 = none;
  /// the facade resolves it through resolve_segment_knob like a user count).
  int segments_hint = 0;
};

/// Candidate filter for the radix sweep.
enum class RadixSet {
  kAll,          ///< every r in [2, max(2,n)]
  kPowersOfTwo,  ///< r ∈ {2, 4, 8, …} ∩ [2, n], plus r = n (the paper's Fig. 5 sweep)
  kPortAligned,  ///< r with (r−1) mod k == 0 (Section 3.4's advice), plus r = 2
};

/// All candidate radices for (n, set, k), sorted ascending.
[[nodiscard]] std::vector<std::int64_t> candidate_radices(std::int64_t n,
                                                          RadixSet set, int k);

/// The radix minimizing modeled time for the index operation (ties broken
/// toward the smaller radix, which has the fewer-rounds shape).
[[nodiscard]] RadixChoice pick_index_radix(std::int64_t n, int k,
                                           std::int64_t block_bytes,
                                           const LinearModel& machine,
                                           RadixSet set = RadixSet::kAll);

/// Memoized pick_index_radix, keyed on (n, k, block_bytes, machine's β/τ,
/// set).  The sweep is O(n·log n) digit censuses; the compiled-schedule hot
/// path calls this so that repeated kAuto collectives on one geometry skip
/// the tuner entirely (the chosen radix then keys the PlanCache).
/// Thread-safe.
[[nodiscard]] RadixChoice pick_index_radix_cached(
    std::int64_t n, int k, std::int64_t block_bytes,
    const LinearModel& machine, RadixSet set = RadixSet::kAll);

struct TunerCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Live entries in the adaptive-override table (tune::AdaptiveTuner's
  /// learned picks; see set_tuner_override below).
  std::uint64_t overrides = 0;
  /// pick_*_cached calls answered by an override instead of the model.
  std::uint64_t override_hits = 0;
};

/// Counters of the pick_*_cached family since process start (or last
/// clear).  `overrides`/`override_hits` cover the learned-override table,
/// so tests can assert a clean slate includes the adaptive state.
[[nodiscard]] TunerCacheStats tuner_cache_stats();
/// Clear every memo cache AND the learned-override table, then invoke the
/// reload hook (set_tuner_reload_hook) so a file-backed table can restore
/// its overrides — learned-in-memory state does not survive a clear, but
/// state whose source of truth is a table file does.
void clear_tuner_cache();

// ---------------------------------------------------------------------------
// Irregular (vector) index tuning.  A skewed alltoallv has no single block
// size to tune from; the pick is driven by the shape's aggregate
// statistics: the total bytes of the whole n×n exchange and the heaviest
// single (source, destination) pair.

struct VectorIndexChoice {
  /// True: run direct exchange.  False: run Bruck with `radix`.
  bool direct = false;
  std::int64_t radix = 2;
  /// Modeled measures of the winning algorithm (see pick_indexv for the
  /// effective block sizes used).
  CostMetrics predicted;
  double predicted_us = 0.0;
};

/// Pick algorithm + radix for an irregular index operation.  Direct
/// exchange is modeled at `max_pair_bytes` (its rounds are gated by the
/// heaviest message, and it never forwards); Bruck is modeled at the mean
/// pair size (max-padding only pads the local scratch — the wire carries
/// trimmed true sizes, so forwarded traffic scales with the mean).  A
/// heavily skewed shape (large max, small mean) therefore leans direct,
/// while many small blocks lean Bruck, matching the paper's uniform
/// trade-off in the two degenerate cases.  Pure function; never blocks.
[[nodiscard]] VectorIndexChoice pick_indexv(std::int64_t n, int k,
                                            std::int64_t total_bytes,
                                            std::int64_t max_pair_bytes,
                                            const LinearModel& machine,
                                            RadixSet set = RadixSet::kAll);

/// Memoized pick_indexv, keyed on the log2-bucketed (total, max) — the
/// same size-class bucketing as the PlanCache's shape digest, so a skewed
/// workload whose counts jitter within size classes reuses one decision
/// (and thereby one plan-cache key).  The bucketed inputs also feed the
/// computation, keeping the decision constant across each bucket.
/// Thread-safe; shares the tuner cache counters.
[[nodiscard]] VectorIndexChoice pick_indexv_cached(
    std::int64_t n, int k, std::int64_t total_bytes,
    std::int64_t max_pair_bytes, const LinearModel& machine,
    RadixSet set = RadixSet::kAll);

// ---------------------------------------------------------------------------
// Reduce-scatter tuning.  The combine cost enters the model through the
// machine's γ term (LinearModel::predict_reduce_us): every received byte is
// also combined serially on the receiving rank, so the objective is
// C1·β + C2·τ + γ·max_rank_recv.  Every pattern we lower receives exactly
// (n−1)·b bytes per rank, so γ prices all algorithms' combine work equally
// and the pick stays driven by the communication terms — γ exists so the
// *predicted time* is honest (and so future unequal-volume patterns tune
// correctly).

struct ReduceScatterChoice {
  /// True: run direct exchange.  False: run the Bruck skeleton with `radix`.
  bool direct = false;
  std::int64_t radix = 2;
  CostMetrics predicted;
  double predicted_us = 0.0;
  /// Learned wire-segment force (see RadixChoice::segments_hint).
  int segments_hint = 0;
};

/// The radix minimizing predict_reduce_us over reduce_bruck_cost (ties
/// toward the smaller radix).  Pure function.
[[nodiscard]] RadixChoice pick_reduce_radix(std::int64_t n, int k,
                                            std::int64_t block_bytes,
                                            const LinearModel& machine,
                                            RadixSet set = RadixSet::kAll);

/// Pick algorithm + radix for a reduce-scatter: the best Bruck radix vs
/// direct exchange, both under the γ-extended model.  Pure function.
[[nodiscard]] ReduceScatterChoice pick_reduce_scatter(
    std::int64_t n, int k, std::int64_t block_bytes,
    const LinearModel& machine, RadixSet set = RadixSet::kAll);

/// Memoized pick_reduce_scatter, keyed on (n, k, b, set, β/τ/γ bits); the
/// chosen algorithm and radix then key the PlanCache.  Thread-safe; shares
/// the tuner cache counters.
[[nodiscard]] ReduceScatterChoice pick_reduce_scatter_cached(
    std::int64_t n, int k, std::int64_t block_bytes,
    const LinearModel& machine, RadixSet set = RadixSet::kAll);

/// The full modeled trade-off curve: one entry per candidate radix.
[[nodiscard]] std::vector<RadixChoice> index_radix_curve(
    std::int64_t n, int k, std::int64_t block_bytes, const LinearModel& machine,
    RadixSet set = RadixSet::kAll);

/// Block size at which the modeled times of two radices cross, found by
/// scanning block sizes in [1, limit].  Returns 0 if they never cross.
/// Used to reproduce Fig. 5's break-even observation (~100–200 bytes between
/// r = 2 and r = n on the SP-1 model at n = 64).
[[nodiscard]] std::int64_t crossover_block_bytes(std::int64_t n, int k,
                                                 std::int64_t radix_a,
                                                 std::int64_t radix_b,
                                                 const LinearModel& machine,
                                                 std::int64_t limit = 1 << 20);

// ---------------------------------------------------------------------------
// Hierarchical (two-level leader-model) tuning.  A flat algorithm sends
// across group boundaries, so on a TwoLevelModel it is priced entirely under
// `inter`; a hierarchical candidate prices its gather/scatter stages under
// `intra` and only the leader exchange under `inter`.  The tuner sweeps the
// group size g (and the inter-leader radix where one applies) and reports
// whether the best hierarchy beats the best flat algorithm.

struct HierChoice {
  /// True: the best hierarchical shape is strictly cheaper than flat.
  bool hier = false;
  /// Nominal group size of the best hierarchical candidate (1 when n == 1).
  std::int64_t group = 1;
  /// Inter-leader radix of the best hierarchical candidate (index/reduce
  /// only; 2 for concat, whose inter stage has no radix).
  std::int64_t inter_radix = 2;
  /// Radix of the best *flat* algorithm (index/reduce only; 2 for concat).
  std::int64_t flat_radix = 2;
  double flat_us = 0.0;
  double hier_us = 0.0;
  /// Stage measures of the best hierarchical candidate.
  HierCost hier_cost;
};

/// Predicted time (µs) of a hierarchical non-reducing collective: intra
/// stages under machine.intra, the leader exchange under machine.inter.
[[nodiscard]] double predict_hier_us(const TwoLevelModel& machine,
                                     const HierCost& h);

/// Reducing variant: the leader exchange is priced with the γ-extended
/// predict_reduce_us, and the leader-local splice combines add
/// intra.γ · local_combine_bytes (they run at memory speed on the leader).
[[nodiscard]] double predict_hier_reduce_us(const TwoLevelModel& machine,
                                            const HierCost& h);

/// Flat-vs-hierarchical pick for the index operation (alltoall).  Sweeps
/// g ∈ [2, n] (or only `forced_group` when > 0) and, per g, the inter
/// radices candidate_radices(G, set, k).  `group`/`inter_radix` always name
/// the best hierarchical candidate even when flat wins, so a forced-on knob
/// can still run the best shape.  Ties break toward flat, then smaller g.
[[nodiscard]] HierChoice pick_index_plan(std::int64_t n, int k,
                                         std::int64_t block_bytes,
                                         const TwoLevelModel& machine,
                                         RadixSet set = RadixSet::kAll,
                                         std::int64_t forced_group = 0);

/// Memoized pick_index_plan, keyed on (n, k, b, set, forced_group, both
/// models' β/τ/γ bits).  Thread-safe; shares the tuner cache counters.
[[nodiscard]] HierChoice pick_index_plan_cached(
    std::int64_t n, int k, std::int64_t block_bytes,
    const TwoLevelModel& machine, RadixSet set = RadixSet::kAll,
    std::int64_t forced_group = 0);

/// Flat-vs-hierarchical pick for concatenation (allgather).  The inter
/// stage has no radix; `strategy` resolves against the super-block size
/// inside the cost formula.
[[nodiscard]] HierChoice pick_concat_plan(
    std::int64_t n, int k, std::int64_t block_bytes,
    const TwoLevelModel& machine,
    ConcatLastRound strategy = ConcatLastRound::kAuto,
    std::int64_t forced_group = 0);

/// Memoized pick_concat_plan.  Thread-safe; shares the tuner counters.
[[nodiscard]] HierChoice pick_concat_plan_cached(
    std::int64_t n, int k, std::int64_t block_bytes,
    const TwoLevelModel& machine,
    ConcatLastRound strategy = ConcatLastRound::kAuto,
    std::int64_t forced_group = 0);

/// Flat-vs-hierarchical pick for reduce-scatter (γ-extended model on the
/// reducing stages).
[[nodiscard]] HierChoice pick_reduce_plan(std::int64_t n, int k,
                                          std::int64_t block_bytes,
                                          const TwoLevelModel& machine,
                                          RadixSet set = RadixSet::kAll,
                                          std::int64_t forced_group = 0);

/// Memoized pick_reduce_plan.  Thread-safe; shares the tuner counters.
[[nodiscard]] HierChoice pick_reduce_plan_cached(
    std::int64_t n, int k, std::int64_t block_bytes,
    const TwoLevelModel& machine, RadixSet set = RadixSet::kAll,
    std::int64_t forced_group = 0);

// ---------------------------------------------------------------------------
// Wire segmentation (the pipelined executor's per-message pipelining knob).

struct SegmentChoice {
  int segments = 1;
  double predicted_us = 0.0;
};

/// Segment-size floor shared by the tuner and the pipelined executor:
/// slices under this size cost more in per-message overhead than their
/// overlap buys on every profile we model.  The executor applies it per
/// message (a plan-wide S never splits the small early-round messages of a
/// geometrically growing pattern), the tuner when picking S.
inline constexpr std::int64_t kMinSegmentBytes = 4096;

/// Modeled time of one communication round whose largest message is
/// `message_bytes`, shipped in `segments` pipeline segments through the
/// executor's three overlapped stages (pack → wire → unpack):
///   T(S) = (S + 2) · (β + τ·m/S).
/// S = 1 degenerates to the unpipelined 3·(β + τ·m); raising S shrinks the
/// per-stage payload but pays one more per-segment start-up — the classic
/// latency-for-overlap trade.
[[nodiscard]] double pipelined_round_us(const LinearModel& machine,
                                        std::int64_t message_bytes,
                                        int segments);

/// The segment count minimizing Σ rounds · pipelined_round_us, enumerated
/// over S ∈ [1, max_segments] with segments no smaller than
/// `min_segment_bytes` (sub-4-KiB slices cost more in per-message overhead
/// than their overlap buys on every profile we model).  Ties break toward
/// the smaller S.  `message_bytes` is the per-round maximum message size
/// (C2/C1 of the plan's predicted metrics is the natural estimate).
[[nodiscard]] SegmentChoice pick_segment_count(
    const LinearModel& machine, std::int64_t rounds,
    std::int64_t message_bytes, int max_segments = 16,
    std::int64_t min_segment_bytes = kMinSegmentBytes);

/// Resolve a user-facing segment knob to the count that keys the PlanCache:
/// 0 means "tune from the predicted metrics" (per-round message size
/// ≈ C2/C1), an explicit S is clamped against the kMinSegmentBytes
/// per-message floor the tuner and executor both apply.  A forced S the
/// floor would collapse anyway must resolve — and key the cache — exactly
/// like the tuned pick, or one geometry caches two plans for the same
/// effective execution.  Only the pipelined executor segments, so
/// `pipelined = false` resolves to 1.
[[nodiscard]] int resolve_segment_knob(int requested, bool pipelined,
                                       const LinearModel& machine,
                                       const CostMetrics& predicted);

// ---------------------------------------------------------------------------
// Nonblocking fusion (the progress engine's batching knob).  G pending
// same-geometry collectives can run as one wire exchange over blocks of
// G·b — the start-up term β is paid once per round instead of G times — at
// the price of a local gather into the fused layout before posting and a
// scatter back on completion.

// The per-byte price of those local gather/scatter passes is
// model::kPackUsPerByte (costs.hpp) — shared with the strided-layout pack
// term so one constant governs all modeled local memory movement.

struct FusionChoice {
  /// True: run the G members as one fused exchange at block G·b.
  bool fuse = false;
  /// Modeled time of running the G members back-to-back, unfused.
  double serial_us = 0.0;
  /// Modeled time of the fused exchange plus both pack/unpack passes.
  double fused_us = 0.0;
};

/// Decide whether G pending same-shape collectives should fuse.
/// `per_op` is the modeled measures of one member at its own block size;
/// `fused` the measures of the same pattern at block G·b; `user_bytes` the
/// mean of one member's send and recv buffer lengths (each buffer crosses
/// the fused staging area once, on every member).  Deterministic pure
/// function: every rank of an SPMD group makes the identical decision.
[[nodiscard]] FusionChoice pick_fusion(int group, const LinearModel& machine,
                                       const CostMetrics& per_op,
                                       const CostMetrics& fused,
                                       std::int64_t user_bytes);

// ---------------------------------------------------------------------------
// Learned-override seam.  The src/tune adaptive autotuner (and a loaded
// BRUCK_TUNE_TABLE) speaks to the pick_*_cached family through this
// registry: a TunerQuery names one tuned decision point (family, geometry,
// machine-constant bits — the same key material the memo caches use), a
// TunerConfig names one concrete runnable configuration.  Overrides are
// consulted *before* the memo caches, so a learned pick wins over the
// model's for exactly the keyed geometry and machine.  The model layer owns
// only the registry; all measurement, hysteresis, and persistence policy
// lives in src/tune (which depends on model, never the reverse).

enum class TunedFamily : int {
  kIndexRadix = 0,     ///< pick_index_radix_cached (alltoall radix)
  kIndexVector = 1,    ///< pick_indexv_cached (alltoallv direct-vs-Bruck)
  kReduceScatter = 2,  ///< pick_reduce_scatter_cached
  kHierIndex = 3,      ///< pick_index_plan_cached (flat vs hierarchical)
  kHierConcat = 4,     ///< pick_concat_plan_cached
  kHierReduce = 5,     ///< pick_reduce_plan_cached
};

[[nodiscard]] const char* to_string(TunedFamily family);
/// Strict parse of a to_string(TunedFamily) name; anything else ⇒ nullopt.
[[nodiscard]] std::optional<TunedFamily> parse_tuned_family(const char* text);

/// One concrete configuration a tuned decision point can run.  Zero-valued
/// fields mean "no opinion — keep the model's choice / resolve normally".
struct TunerConfig {
  /// Index-vector / reduce-scatter families: run the direct exchange.
  bool direct = false;
  /// Bruck radix (flat families) or inter-leader radix (hier families).
  std::int64_t radix = 0;
  /// Forced wire-segment count (resolved through resolve_segment_knob, so
  /// the kMinSegmentBytes floor still clamps it).
  int segments = 0;
  /// Hier families only: 1 forces the hierarchical shape, 0 forces flat,
  /// -1 means not applicable.
  int hier = -1;
  /// Hier families only: nominal group size (0 = the tuner's sweep).
  std::int64_t group = 0;

  friend bool operator==(const TunerConfig&, const TunerConfig&) = default;
};

/// One tuned decision point.  The machine constants enter as bit patterns
/// (model_bits) — the memo caches' keying idiom — so a learned entry never
/// leaks across machines.  For hier families the bits are the *inter*
/// model's (the level that dominates the flat-vs-hier comparison).
struct TunerQuery {
  TunedFamily family = TunedFamily::kIndexRadix;
  std::int64_t n = 0;
  int k = 0;
  std::int64_t block_bytes = 0;
  std::uint64_t beta_bits = 0;
  std::uint64_t tau_bits = 0;
  std::uint64_t gamma_bits = 0;

  friend auto operator<=>(const TunerQuery&, const TunerQuery&) = default;
};

/// The bit pattern of a double — the exact-round-trip currency of tuner
/// keys and the persisted table (two models predicting identical times are
/// the same key; NaN never reaches the tuner).
[[nodiscard]] std::uint64_t model_bits(double v);

[[nodiscard]] TunerQuery make_tuner_query(TunedFamily family, std::int64_t n,
                                          int k, std::int64_t block_bytes,
                                          const LinearModel& machine);

/// Install (or replace) the learned configuration for one decision point.
void set_tuner_override(const TunerQuery& query, const TunerConfig& config);
/// The learned configuration for a decision point, if any.
[[nodiscard]] std::optional<TunerConfig> tuner_override(
    const TunerQuery& query);
[[nodiscard]] std::size_t tuner_override_count();
/// Every live override, in key order (the persistence serializer's input).
[[nodiscard]] std::vector<std::pair<TunerQuery, TunerConfig>>
tuner_overrides();
void clear_tuner_overrides();

/// Live-exploration hook: consulted by the facade (coll::alltoall /
/// reduce_scatter) after the model's choice is fully resolved (radix AND
/// wire segments).  Returning a config reroutes this one execution;
/// std::nullopt keeps the model's.  Deterministic across SPMD ranks by
/// contract — every rank must be handed the identical schedule or plans
/// diverge and the exchange deadlocks (tune::AdaptiveTuner guarantees this
/// with a per-key call-ordinal schedule).
using AdaptiveHook = std::function<std::optional<TunerConfig>(
    const TunerQuery&, const TunerConfig&)>;
void set_adaptive_hook(AdaptiveHook hook);
[[nodiscard]] bool adaptive_hook_installed();
/// model_choice routed through the installed hook (identity when none).
[[nodiscard]] TunerConfig adaptive_decision(const TunerQuery& query,
                                            const TunerConfig& model_choice);

/// One executed collective as fed back to the learner: what ran, how long
/// it took on the wall, and what the model had predicted.
struct ExecutionSample {
  TunerQuery query;
  TunerConfig config;
  double wall_us = 0.0;
  double predicted_us = 0.0;
};
using ObservationHook = std::function<void(const ExecutionSample&)>;
void set_observation_hook(ObservationHook hook);
[[nodiscard]] bool observation_hook_installed();
void notify_execution(const ExecutionSample& sample);

/// Invoked at the end of clear_tuner_cache (outside the registry locks):
/// a file-backed tune table re-installs its overrides here, which is what
/// makes "survives a clear only when the table file is the source" true.
void set_tuner_reload_hook(std::function<void()> hook);

// ---------------------------------------------------------------------------
// Calibrated-machine substitution.  tune::calibrate publishes the measured
// per-fabric model here; the coll:: facade swaps it in wherever the caller
// left the option struct's machine at its compiled-in default.  The
// substitution is sentinel-based: a machine whose β/τ/γ bits equal
// ibm_sp1()'s (the default of every options struct) is replaced by the
// active model — an explicitly passed ibm_sp1() is indistinguishable from
// the default and is substituted too (documented behavior; pass a model
// with any different bit to opt out).

void set_active_machine(const std::optional<LinearModel>& machine);
[[nodiscard]] std::optional<LinearModel> active_machine();
[[nodiscard]] LinearModel effective_machine(const LinearModel& requested);

void set_active_two_level(const std::optional<TwoLevelModel>& machine);
[[nodiscard]] std::optional<TwoLevelModel> active_two_level();
[[nodiscard]] TwoLevelModel effective_two_level(const TwoLevelModel& requested);

}  // namespace bruck::model
